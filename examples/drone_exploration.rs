//! Incremental exploration — the MAV package-delivery scenario of the
//! paper's introduction (3D map generation can take >70 % of a MAV's
//! runtime, which is why it needs an accelerator).
//!
//! A simulated drone flies the campus loop, integrating scans into two
//! facade maps at once: the accelerator model (for frame-budget
//! accounting) and its fixed-point software mirror (for change tracking
//! and persistence); after each leg the example reports map growth and
//! per-frame latency against the 30 FPS real-time budget, and finally
//! persists the map and reloads it.
//!
//! ```sh
//! cargo run --release --example drone_exploration
//! ```

use omu::accel::OmuConfig;
use omu::datasets::DatasetKind;
use omu::geometry::Occupancy;
use omu::map::{Backend, MapBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 12 poses around the campus loop = a light exploration sortie.
    let dataset = DatasetKind::FreiburgCampus.build_scaled(0.15);
    let spec = *dataset.spec();
    let config = OmuConfig::builder()
        .rows_per_bank(1 << 14) // a full outdoor map needs more than 256 kB/PE
        .build()?;
    let builder = || MapBuilder::new(spec.resolution).max_range(Some(spec.max_range));
    let mut map = builder().backend(Backend::Accelerator(config)).build()?;

    // The mirrored software map the drone can serialize and keep —
    // fixed point, so it stays bit-identical to the accelerator.
    let mut mirror = builder()
        .backend(Backend::SoftwareFixed)
        .change_detection(true)
        .build()?;

    println!(
        "exploring {} ({} scans)...",
        spec.kind.name(),
        dataset.num_scans()
    );
    let mut last_cycles = 0u64;
    for (i, scan) in dataset.scans().enumerate() {
        map.insert(&scan)?;
        mirror.insert(&scan)?;
        let omu = map.accelerator().expect("accelerator backend");
        let stats = omu.stats();
        let frame_cycles = stats.wall_cycles - last_cycles;
        last_cycles = stats.wall_cycles;
        let frame_ms = frame_cycles as f64 / 1e6; // 1 GHz → 1e6 cycles per ms
        let changed = mirror.drain_changed_keys().len();
        println!(
            "scan {i:>2}: {:>7} pts, frame {:>7.2} ms {} | {:>6} voxels changed, T-Mem {:>4.1} %",
            scan.len(),
            frame_ms,
            if frame_ms <= 1000.0 / 30.0 {
                "(within 30 FPS budget)"
            } else {
                "(over 30 FPS budget)  "
            },
            changed,
            omu.sram_utilization() * 100.0,
        );
    }

    // Mission-level numbers.
    let omu = map.accelerator().expect("accelerator backend");
    let stats = omu.stats();
    println!(
        "\nmission total: {:.2} s of accelerator time, {:.2} J",
        omu.elapsed_seconds(),
        omu.energy_joules()
    );
    println!(
        "updates: {} ({} free / {} occupied)",
        stats.voxel_updates, stats.free_updates, stats.occupied_updates
    );

    // Persist the map and reload it — the drone can resume later.
    let bytes = mirror.to_bytes()?;
    let mut restored = omu::map::OccupancyMap::from_bytes_fixed(&bytes)?;
    assert_eq!(restored.snapshot(), mirror.snapshot());
    // The reloaded software map matches the accelerator bit-for-bit.
    assert_eq!(restored.snapshot(), map.snapshot());
    println!("map persisted: {} bytes, reload verified", bytes.len());

    // A landing-site probe on the reloaded map.
    let site = omu::geometry::Point3::new(5.0, 5.0, -1.8);
    println!(
        "landing probe at {site}: {}",
        match restored.occupancy_at(site)? {
            Occupancy::Free => "clear to land",
            Occupancy::Occupied => "obstructed",
            Occupancy::Unknown => "needs another pass",
        }
    );
    Ok(())
}
