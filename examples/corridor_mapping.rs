//! Map the FR-079-style corridor on both backends of the unified
//! `omu::map` facade — the software OctoMap baseline and the OMU
//! accelerator — and verify they produce bit-identical maps.
//!
//! ```sh
//! cargo run --release --example corridor_mapping
//! ```

use omu::accel::OmuConfig;
use omu::cpumodel::{frame_equivalent_fps, CpuCostModel};
use omu::datasets::DatasetKind;
use omu::map::{Backend, MapBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 10 % slice of the corridor dataset keeps this example quick.
    let dataset = DatasetKind::Fr079Corridor.build_scaled(0.1);
    let spec = *dataset.spec();
    println!(
        "mapping {} ({} scans, {:.1} m max range, {} m voxels)",
        spec.kind.name(),
        dataset.num_scans(),
        spec.max_range,
        spec.resolution
    );

    // The same map configuration on three backends — only the
    // `.backend(..)` line differs.
    let builder = || MapBuilder::new(spec.resolution).max_range(Some(spec.max_range));
    let mut software = builder().build()?;
    let mut fixed = builder().backend(Backend::SoftwareFixed).build()?;
    let mut accel = builder()
        .backend(Backend::Accelerator(OmuConfig::default()))
        .build()?;

    let mut updates = 0u64;
    for scan in dataset.scans() {
        updates += software.insert(&scan)?.total_updates();
        fixed.insert(&scan)?;
        accel.insert(&scan)?;
    }

    // --- Software baseline (float log-odds, instrumented). ---
    let counters = software.counters().expect("software backend");
    let i9 = CpuCostModel::i9_9940x().runtime(&counters);
    let stats = software.tree().expect("software backend").tree_stats();
    println!("\nsoftware baseline:");
    println!("  voxel updates:     {updates}");
    println!("  tree nodes:        {}", stats.num_nodes);
    println!("  occupied volume:   {:.1} m^3", stats.occupied_volume);
    println!("  free volume:       {:.1} m^3", stats.free_volume);
    println!(
        "  modeled i9 time:   {:.2} s ({:.2} FPS)",
        i9.total_s(),
        frame_equivalent_fps(updates, i9.total_s())
    );

    // --- OMU accelerator (16-bit fixed point). ---
    let omu = accel.accelerator().expect("accelerator backend");
    let latency = omu.elapsed_seconds();
    println!("\nOMU accelerator:");
    println!(
        "  latency:           {:.3} s ({:.1} FPS)",
        latency,
        frame_equivalent_fps(omu.stats().voxel_updates, latency)
    );
    println!("  speedup over i9:   {:.1}x", i9.total_s() / latency);
    println!(
        "  power:             {:.1} mW",
        omu.power_report().total_mw()
    );
    println!(
        "  SRAM utilization:  {:.0} %",
        omu.sram_utilization() * 100.0
    );

    // --- Equivalence: the accelerator map is bit-identical to the
    //     fixed-point software backend — same facade, same snapshots. ---
    let leaves = omu::accel::verify::compare_snapshots(&fixed.snapshot(), &accel.snapshot())
        .map_err(|m| format!("maps diverged:\n{m}"))?;
    println!("\nequivalence: accelerator and software maps are bit-identical ({leaves} leaves)");
    Ok(())
}
