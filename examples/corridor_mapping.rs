//! Map the FR-079-style corridor with both engines — the software OctoMap
//! baseline and the OMU accelerator — and verify they agree.
//!
//! ```sh
//! cargo run --release --example corridor_mapping
//! ```

use omu::accel::{verify, OmuAccelerator, OmuConfig};
use omu::cpumodel::{frame_equivalent_fps, CpuCostModel};
use omu::datasets::DatasetKind;
use omu::octree::OctreeF32;
use omu::raycast::IntegrationMode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 10 % slice of the corridor dataset keeps this example quick.
    let dataset = DatasetKind::Fr079Corridor.build_scaled(0.1);
    let spec = *dataset.spec();
    println!(
        "mapping {} ({} scans, {:.1} m max range, {} m voxels)",
        spec.kind.name(),
        dataset.num_scans(),
        spec.max_range,
        spec.resolution
    );

    // --- Software baseline (float log-odds, instrumented). ---
    let mut tree = OctreeF32::new(spec.resolution)?;
    tree.set_integration_mode(IntegrationMode::Raywise);
    tree.set_max_range(Some(spec.max_range));
    let mut updates = 0u64;
    for scan in dataset.scans() {
        updates += tree.insert_scan(&scan)?.total_updates();
    }
    let counters = *tree.counters();
    let i9 = CpuCostModel::i9_9940x().runtime(&counters);
    let stats = tree.tree_stats();
    println!("\nsoftware baseline:");
    println!("  voxel updates:     {updates}");
    println!("  tree nodes:        {}", stats.num_nodes);
    println!("  occupied volume:   {:.1} m^3", stats.occupied_volume);
    println!("  free volume:       {:.1} m^3", stats.free_volume);
    println!(
        "  modeled i9 time:   {:.2} s ({:.2} FPS)",
        i9.total_s(),
        frame_equivalent_fps(updates, i9.total_s())
    );

    // --- OMU accelerator (16-bit fixed point). ---
    let config = OmuConfig::builder()
        .resolution(spec.resolution)
        .max_range(Some(spec.max_range))
        .build()?;
    let mut omu = OmuAccelerator::new(config.clone())?;
    for scan in dataset.scans() {
        omu.integrate_scan(&scan)?;
    }
    let latency = omu.elapsed_seconds();
    println!("\nOMU accelerator:");
    println!(
        "  latency:           {:.3} s ({:.1} FPS)",
        latency,
        frame_equivalent_fps(omu.stats().voxel_updates, latency)
    );
    println!("  speedup over i9:   {:.1}x", i9.total_s() / latency);
    println!(
        "  power:             {:.1} mW",
        omu.power_report().total_mw()
    );
    println!(
        "  SRAM utilization:  {:.0} %",
        omu.sram_utilization() * 100.0
    );

    // --- Equivalence: the accelerator map is bit-identical to the
    //     fixed-point software baseline. ---
    let mut fixed = verify::baseline_for(&config);
    for scan in dataset.scans() {
        fixed.insert_scan(&scan)?;
    }
    let leaves =
        verify::check_equivalence(&fixed, &omu).map_err(|m| format!("maps diverged:\n{m}"))?;
    println!("\nequivalence: accelerator and software maps are bit-identical ({leaves} leaves)");
    Ok(())
}
