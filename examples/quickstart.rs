//! Quickstart: build a probabilistic 3D map with the OMU accelerator
//! model and query it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use omu::accel::{OmuAccelerator, OmuConfig};
use omu::geometry::{Occupancy, Point3, PointCloud, Scan};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's design point: 8 PEs × 8 × 32 kB banks, 1 GHz, 0.2 m voxels.
    let mut omu = OmuAccelerator::new(OmuConfig::default())?;

    // One synthetic scan: a ring of wall points around the sensor.
    let origin = Point3::new(0.1, 0.1, 0.1);
    let cloud: PointCloud = (0..360)
        .map(|deg| {
            let a = (deg as f64).to_radians();
            Point3::new(4.0 * a.cos(), 4.0 * a.sin(), 0.3)
        })
        .collect();
    omu.integrate_scan(&Scan::new(origin, cloud))?;

    // Query the map: wall voxels are occupied, the space crossed by the
    // rays is free, and everything beyond the wall is still unknown.
    let wall = Point3::new(4.0, 0.0, 0.3);
    let free = Point3::new(2.0, 0.0, 0.2);
    let unseen = Point3::new(8.0, 0.0, 0.3);
    println!("{wall}  -> {}", omu.query_point(wall)?);
    println!("{free}  -> {}", omu.query_point(free)?);
    println!("{unseen}  -> {}", omu.query_point(unseen)?);
    assert_eq!(omu.query_point(wall)?, Occupancy::Occupied);
    assert_eq!(omu.query_point(free)?, Occupancy::Free);
    assert_eq!(omu.query_point(unseen)?, Occupancy::Unknown);

    // The model accounts every cycle and SRAM access.
    let stats = omu.stats();
    println!("\nvoxel updates:   {}", stats.voxel_updates);
    println!("wall cycles:     {}", stats.wall_cycles);
    println!("SRAM accesses:   {}", stats.sram_total().accesses());
    println!(
        "elapsed:         {:.3} ms at 1 GHz",
        omu.elapsed_seconds() * 1e3
    );
    println!("\n{}", omu.power_report());
    Ok(())
}
