//! Quickstart: build a probabilistic 3D map through the unified
//! `omu::map` facade, backed by the OMU accelerator model, and query it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use omu::accel::OmuConfig;
use omu::geometry::{Occupancy, Point3, PointCloud, Scan};
use omu::map::{Backend, Engine, MapBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One map API over every engine and backend. Here: the paper's
    // design point (8 PEs × 8 × 32 kB banks, 1 GHz) behind the facade,
    // fed by Morton-batched updates.
    let mut map = MapBuilder::new(0.2)
        .engine(Engine::Batched)
        .backend(Backend::Accelerator(OmuConfig::default()))
        .build()?;

    // One synthetic scan: a ring of wall points around the sensor.
    let origin = Point3::new(0.1, 0.1, 0.1);
    let cloud: PointCloud = (0..360)
        .map(|deg| {
            let a = (deg as f64).to_radians();
            Point3::new(4.0 * a.cos(), 4.0 * a.sin(), 0.3)
        })
        .collect();
    let stats = map.insert(&Scan::new(origin, cloud))?;
    println!(
        "integrated {} rays -> {} voxel updates",
        stats.rays,
        stats.total_updates()
    );

    // Query the map: wall voxels are occupied, the space crossed by the
    // rays is free, and everything beyond the wall is still unknown.
    let wall = Point3::new(4.0, 0.0, 0.3);
    let free = Point3::new(2.0, 0.0, 0.2);
    let unseen = Point3::new(8.0, 0.0, 0.3);
    println!("{wall}  -> {}", map.occupancy_at(wall)?);
    println!("{free}  -> {}", map.occupancy_at(free)?);
    println!("{unseen}  -> {}", map.occupancy_at(unseen)?);
    assert_eq!(map.occupancy_at(wall)?, Occupancy::Occupied);
    assert_eq!(map.occupancy_at(free)?, Occupancy::Free);
    assert_eq!(map.occupancy_at(unseen)?, Occupancy::Unknown);

    // The accelerator backend accounts every cycle and SRAM access; the
    // low-level model stays reachable behind the facade.
    let omu = map.accelerator().expect("accelerator backend");
    let stats = omu.stats();
    println!("\nvoxel updates:   {}", stats.voxel_updates);
    println!("wall cycles:     {}", stats.wall_cycles);
    println!("SRAM accesses:   {}", stats.sram_total().accesses());
    println!(
        "elapsed:         {:.3} ms at 1 GHz",
        omu.elapsed_seconds() * 1e3
    );
    println!("\n{}", omu.power_report());
    Ok(())
}
