//! Serving reads under live writes: a [`MapService`] owns the map on
//! its writer thread while this thread streams scans at it, and a squad
//! of collision-checking readers on the service's pool probe pinned
//! snapshots the whole time — no reader ever blocks the writer, no
//! writer ever tears a read.
//!
//! ```sh
//! cargo run --release --example service
//! ```

use std::sync::Mutex;

use omu::geometry::{Occupancy, Point3, PointCloud, Scan};
use omu::map::{MapBuilder, MapError, MapService};

/// One lap of a sensor circling the room: a ring of wall returns from a
/// slowly advancing origin.
fn lap_scan(lap: usize) -> Scan {
    let t = lap as f64 * 0.3;
    let origin = Point3::new(0.5 * t.cos(), 0.5 * t.sin(), 0.2);
    let cloud: PointCloud = (0..360)
        .map(|deg| {
            let a = (deg as f64).to_radians();
            Point3::new(5.0 * a.cos(), 5.0 * a.sin(), 0.2 + 0.1 * (deg % 3) as f64)
        })
        .collect();
    Scan::new(origin, cloud)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The service spawns the writer thread and owns the map; this
    // handle (and its clones of each snapshot) is all we keep.
    let service = MapService::spawn(MapBuilder::new(0.2).max_range(Some(8.0)))?;
    let mut changes = service.subscribe();

    // Seed the first epoch so the readers start on a real map.
    service.ingest(lap_scan(0))?;
    let first = service.flush()?;
    println!(
        "epoch {}: seeded, {} leaves",
        first.epoch(),
        first.canonical_leaves().len()
    );

    // Collision checks a planner would issue: straight-line corridors
    // across the room, each tested against a freshly grabbed snapshot.
    let corridors: Vec<(Point3, Point3)> = (0..8)
        .map(|i| {
            let a = i as f64 * (std::f64::consts::TAU / 8.0);
            (
                Point3::new(0.0, 0.0, 0.25),
                Point3::new(3.0 * a.cos(), 3.0 * a.sin(), 0.25),
            )
        })
        .collect();

    const READERS: usize = 4;
    const LAPS: usize = 40;
    let verdicts = Mutex::new(Vec::new());
    let pool = service.reader_pool().clone();
    let service_ref = &service;
    let corridors_ref = &corridors;
    let verdicts_ref = &verdicts;
    pool.scope(|s| {
        for reader in 0..READERS {
            s.spawn(move || {
                let mut clear = 0usize;
                let mut epochs = (u32::MAX, 0u32);
                for _ in 0..50 {
                    // One Arc bump; the writer publishes new epochs
                    // underneath without ever waiting for us.
                    let snap = service_ref.snapshot();
                    epochs = (epochs.0.min(snap.epoch()), epochs.1.max(snap.epoch()));
                    for &(from, to) in corridors_ref {
                        let step = Point3::new(
                            (to.x - from.x) / 2.0 + from.x,
                            (to.y - from.y) / 2.0 + from.y,
                            from.z,
                        );
                        if snap.occupancy_at(step).unwrap_or(Occupancy::Unknown)
                            != Occupancy::Occupied
                            && !snap.collides_sphere(step, 0.3).unwrap_or(true)
                        {
                            clear += 1;
                        }
                    }
                }
                verdicts_ref.lock().unwrap().push((reader, clear, epochs));
            });
        }
        // The streaming writer: keep feeding the service while the
        // readers probe. Each flush forces a publish, so the epochs the
        // readers report advance live underneath them.
        for lap in 1..LAPS {
            service_ref.ingest(lap_scan(lap)).expect("queue stays open");
            if lap % 4 == 0 {
                service_ref.flush().expect("writer thread alive");
            }
        }
    });
    for (reader, clear, (lo, hi)) in verdicts.into_inner().unwrap() {
        println!("reader {reader}: {clear} corridor midpoints clear, epochs {lo}..={hi}");
    }

    // Drain the writer and fold in everything that changed while the
    // readers ran.
    let last = service.flush()?;
    let changed = match changes.poll() {
        Ok(keys) => keys.len(),
        // A long burst can evict ring epochs faster than one poll; the
        // subscription has already resynchronized for the next poll.
        Err(MapError::Lagged { missed }) => {
            println!("subscription lagged {missed} publish(es); resyncing from the snapshot");
            changes.poll()?.len()
        }
        Err(e) => return Err(e.into()),
    };
    let stats = service.service_stats();
    println!(
        "epoch {}: {} scans / {} rays ingested, {} publishes, {changed} changed keys polled",
        last.epoch(),
        stats.scans_ingested,
        stats.rays,
        stats.publishes
    );
    println!(
        "row COW: {} node + {} leaf rows copied, {} reclaimed",
        stats.snapshot.node_rows_copied,
        stats.snapshot.leaf_rows_copied,
        stats.snapshot.rows_reclaimed
    );

    assert!(!last.is_empty());
    assert_eq!(stats.scans_ingested, LAPS as u64);
    service.shutdown()?;
    Ok(())
}
