//! Collision detection — the safety-critical query workload the paper's
//! introduction motivates (Fig. 1: the real-time 3D map serves collision
//! detect / motion planning).
//!
//! Builds a corridor map, then validates a planned robot path against it
//! using (a) the accelerator's voxel query unit and (b) the software
//! tree's ray casting and sphere probes.
//!
//! ```sh
//! cargo run --release --example collision_detection
//! ```

use omu::accel::{OmuAccelerator, OmuConfig};
use omu::datasets::DatasetKind;
use omu::geometry::{Occupancy, Point3};
use omu::octree::{OctreeF32, RayCastResult};
use omu::raycast::IntegrationMode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = DatasetKind::Fr079Corridor.build_scaled(0.1);
    let spec = *dataset.spec();

    // Build the same map on both engines.
    let mut tree = OctreeF32::new(spec.resolution)?;
    tree.set_integration_mode(IntegrationMode::Raywise);
    tree.set_max_range(Some(spec.max_range));
    let mut omu = OmuAccelerator::new(
        OmuConfig::builder()
            .resolution(spec.resolution)
            .max_range(Some(spec.max_range))
            .build()?,
    )?;
    for scan in dataset.scans() {
        tree.insert_scan(&scan)?;
        omu.integrate_scan(&scan)?;
    }

    // A planned path down the corridor centre, and a bad one into a wall.
    let safe_path: Vec<Point3> = (0..20)
        .map(|i| Point3::new(-10.0 + i as f64, 0.0, 0.0))
        .collect();
    let bad_path: Vec<Point3> = (0..12)
        .map(|i| Point3::new(0.0, -0.5 + i as f64 * 0.25, 0.0))
        .collect();

    for (name, path) in [
        ("safe corridor path", &safe_path),
        ("path into the wall", &bad_path),
    ] {
        // (a) Accelerator voxel queries: every waypoint must be free.
        let mut verdict = "clear";
        for &p in path {
            match omu.query_point(p)? {
                Occupancy::Occupied => {
                    verdict = "COLLISION";
                    break;
                }
                Occupancy::Unknown => {
                    verdict = "blocked by unknown space";
                    break;
                }
                Occupancy::Free => {}
            }
        }
        // (b) Software sphere probe with the robot's 0.3 m radius.
        let mut sphere_hit = false;
        for &p in path {
            if tree.collides_sphere(p, 0.3)? {
                sphere_hit = true;
                break;
            }
        }
        println!(
            "{name:<22} voxel query: {verdict:<24} sphere probe: {}",
            if sphere_hit { "COLLISION" } else { "clear" }
        );
    }

    // Ray casting: look-ahead from the robot's pose, like a virtual bumper.
    println!("\nvirtual bumper (cast_ray from the corridor centre):");
    for (label, dir) in [
        ("ahead  (+x)", Point3::new(1.0, 0.0, 0.0)),
        ("left   (+y)", Point3::new(0.0, 1.0, 0.0)),
        ("up     (+z)", Point3::new(0.0, 0.0, 1.0)),
    ] {
        match tree.cast_ray(Point3::new(0.0, 0.0, 0.0), dir, 10.0, true)? {
            RayCastResult::Hit { point, .. } => {
                println!("  {label}: obstacle at {:.2} m ({point})", point.norm())
            }
            RayCastResult::MaxRangeReached => println!("  {label}: clear for 10 m"),
            RayCastResult::UnknownBlocked { .. } => println!("  {label}: unknown space"),
        }
    }

    let q = omu.stats();
    println!(
        "\nvoxel query unit served {} queries at {:.1} cycles mean latency",
        q.queries,
        q.query_cycles as f64 / q.queries.max(1) as f64
    );
    Ok(())
}
