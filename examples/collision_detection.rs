//! Collision detection — the safety-critical query workload the paper's
//! introduction motivates (Fig. 1: the real-time 3D map serves collision
//! detect / motion planning).
//!
//! Builds a corridor map on both facade backends, then validates a
//! planned robot path against it with the unified query surface:
//! per-waypoint occupancy on the accelerator, sphere probes and
//! ray casting on the software tree — the same `QueryView` API either
//! way.
//!
//! ```sh
//! cargo run --release --example collision_detection
//! ```

use omu::accel::OmuConfig;
use omu::datasets::DatasetKind;
use omu::geometry::{Occupancy, Point3};
use omu::map::{Backend, MapBuilder};
use omu::octree::RayCastResult;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = DatasetKind::Fr079Corridor.build_scaled(0.1);
    let spec = *dataset.spec();

    // Build the same map on both backends through one builder.
    let builder = || MapBuilder::new(spec.resolution).max_range(Some(spec.max_range));
    let mut tree = builder().build()?;
    let mut omu = builder()
        .backend(Backend::Accelerator(OmuConfig::default()))
        .build()?;
    for scan in dataset.scans() {
        tree.insert(&scan)?;
        omu.insert(&scan)?;
    }

    // A planned path down the corridor centre, and a bad one into a wall.
    let safe_path: Vec<Point3> = (0..20)
        .map(|i| Point3::new(-10.0 + i as f64, 0.0, 0.0))
        .collect();
    let bad_path: Vec<Point3> = (0..12)
        .map(|i| Point3::new(0.0, -0.5 + i as f64 * 0.25, 0.0))
        .collect();

    for (name, path) in [
        ("safe corridor path", &safe_path),
        ("path into the wall", &bad_path),
    ] {
        // (a) Accelerator voxel queries: every waypoint must be free.
        let mut verdict = "clear";
        for &p in path {
            match omu.occupancy_at(p)? {
                Occupancy::Occupied => {
                    verdict = "COLLISION";
                    break;
                }
                Occupancy::Unknown => {
                    verdict = "blocked by unknown space";
                    break;
                }
                Occupancy::Free => {}
            }
        }
        // (b) Software sphere probe with the robot's 0.3 m radius.
        let mut sphere_hit = false;
        for &p in path {
            if tree.collides_sphere(p, 0.3)? {
                sphere_hit = true;
                break;
            }
        }
        println!(
            "{name:<22} voxel query: {verdict:<24} sphere probe: {}",
            if sphere_hit { "COLLISION" } else { "clear" }
        );
    }

    // Ray casting: look-ahead from the robot's pose, like a virtual bumper.
    println!("\nvirtual bumper (cast_ray from the corridor centre):");
    for (label, dir) in [
        ("ahead  (+x)", Point3::new(1.0, 0.0, 0.0)),
        ("left   (+y)", Point3::new(0.0, 1.0, 0.0)),
        ("up     (+z)", Point3::new(0.0, 0.0, 1.0)),
    ] {
        match tree.cast_ray(Point3::new(0.0, 0.0, 0.0), dir, 10.0, true)? {
            RayCastResult::Hit { point, .. } => {
                println!("  {label}: obstacle at {:.2} m ({point})", point.norm())
            }
            RayCastResult::MaxRangeReached => println!("  {label}: clear for 10 m"),
            RayCastResult::UnknownBlocked { .. } => println!("  {label}: unknown space"),
        }
    }

    let q = omu.accelerator().expect("accelerator backend").stats();
    println!(
        "\nvoxel query unit served {} queries at {:.1} cycles mean latency",
        q.queries,
        q.query_cycles as f64 / q.queries.max(1) as f64
    );
    Ok(())
}
