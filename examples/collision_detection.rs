//! Collision detection — the safety-critical query workload the paper's
//! introduction motivates (Fig. 1: the real-time 3D map serves collision
//! detect / motion planning).
//!
//! Builds a corridor map on both facade backends, then validates planned
//! robot paths against it through the **batched query surface**: one
//! `occupancy_batch` per path (Morton-coalesced cached descent on the
//! software tree, the voxel query unit's register file on the
//! accelerator), one `cast_rays` fan for the virtual bumper, sphere
//! probes riding the same cached-descent cursors — the same `QueryView`
//! API either way.
//!
//! ```sh
//! cargo run --release --example collision_detection
//! ```

use omu::accel::OmuConfig;
use omu::datasets::DatasetKind;
use omu::geometry::{Occupancy, Point3};
use omu::map::{Backend, Engine, MapBuilder};
use omu::octree::RayCastResult;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = DatasetKind::Fr079Corridor.build_scaled(0.1);
    let spec = *dataset.spec();

    // Build the same map on both backends through one builder.
    let builder = || MapBuilder::new(spec.resolution).max_range(Some(spec.max_range));
    let mut tree = builder().engine(Engine::Parallel).build()?;
    let mut omu = builder()
        .backend(Backend::Accelerator(OmuConfig::default()))
        .build()?;
    for scan in dataset.scans() {
        tree.insert(&scan)?;
        omu.insert(&scan)?;
    }

    // A planned path down the corridor centre, and a bad one into a wall.
    let safe_path: Vec<Point3> = (0..20)
        .map(|i| Point3::new(-10.0 + i as f64, 0.0, 0.0))
        .collect();
    let bad_path: Vec<Point3> = (0..12)
        .map(|i| Point3::new(0.0, -0.5 + i as f64 * 0.25, 0.0))
        .collect();

    for (name, path) in [
        ("safe corridor path", &safe_path),
        ("path into the wall", &bad_path),
    ] {
        // (a) One batched voxel query per path — every waypoint
        // classified in a single Morton-coalesced sweep, on the
        // accelerator's voxel query unit.
        let verdict = omu
            .occupancy_batch(path)?
            .iter()
            .find_map(|&occ| match occ {
                Occupancy::Occupied => Some("COLLISION"),
                Occupancy::Unknown => Some("blocked by unknown space"),
                Occupancy::Free => None,
            })
            .unwrap_or("clear");
        // (b) Software sphere probes with the robot's 0.3 m radius (the
        // grid sweep inside each ball rides the cached-descent cursor).
        let mut sphere_hit = false;
        for &p in path {
            if tree.collides_sphere(p, 0.3)? {
                sphere_hit = true;
                break;
            }
        }
        println!(
            "{name:<22} voxel query: {verdict:<24} sphere probe: {}",
            if sphere_hit { "COLLISION" } else { "clear" }
        );
    }

    // Virtual bumper: one batched cast_rays fan from the robot's pose —
    // consecutive DDA steps share almost their whole root path, so each
    // probe is amortized O(1) instead of a full descent.
    println!("\nvirtual bumper (one cast_rays batch from the corridor centre):");
    let bumper = [
        ("ahead  (+x)", Point3::new(1.0, 0.0, 0.0)),
        ("left   (+y)", Point3::new(0.0, 1.0, 0.0)),
        ("up     (+z)", Point3::new(0.0, 0.0, 1.0)),
    ];
    let rays: Vec<(Point3, Point3)> = bumper
        .iter()
        .map(|&(_, dir)| (Point3::new(0.0, 0.0, 0.0), dir))
        .collect();
    for ((label, _), result) in bumper.iter().zip(tree.cast_rays(&rays, 10.0, true)?) {
        match result {
            RayCastResult::Hit { point, .. } => {
                println!("  {label}: obstacle at {:.2} m ({point})", point.norm())
            }
            RayCastResult::MaxRangeReached => println!("  {label}: clear for 10 m"),
            RayCastResult::UnknownBlocked { .. } => println!("  {label}: unknown space"),
        }
    }

    // Read-side telemetry from both backends.
    let c = tree.query_counters().expect("software tree counts queries");
    println!(
        "\nsoftware read path: {} probes, {} rays, prefix reuse {:.1} %",
        c.probes,
        c.rays,
        c.prefix_reuse_rate() * 100.0
    );
    let q = omu
        .accelerator()
        .expect("accelerator backend")
        .query_unit_stats();
    println!(
        "voxel query unit: {} queries ({} batched) at {:.1} cycles mean latency, \
         {} levels replayed from path registers ({} cycles saved)",
        q.queries,
        q.batch_queries,
        q.mean_latency(),
        q.reused_levels,
        q.saved_cycles
    );
    Ok(())
}
