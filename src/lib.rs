//! OMU: a reproduction of *"OMU: A Probabilistic 3D Occupancy Mapping
//! Accelerator for Real-time OctoMap at the Edge"* (Jia et al., DATE 2022)
//! as a Rust workspace.
//!
//! # The front door: `omu::map`
//!
//! [`map`] is the unified facade: [`map::MapBuilder`] resolves every
//! knob up front (resolution, sensor model, update [`map::Engine`],
//! [`map::Backend`], integration mode, max range, pruning, change
//! detection) and [`map::OccupancyMap`] serves one insert/query/persist
//! API over both the software octree and the accelerator model, with
//! one error type ([`map::MapError`]). Every engine produces
//! bit-identical maps on every backend.
//!
//! ```
//! use omu::map::{Backend, Engine, MapBuilder};
//! use omu::accel::OmuConfig;
//! use omu::geometry::{Occupancy, Point3, PointCloud, Scan};
//!
//! # fn main() -> Result<(), omu::map::MapError> {
//! // The paper's design point: the OMU accelerator model behind the
//! // unified map API, fed by Morton-batched updates.
//! let mut map = MapBuilder::new(0.2)
//!     .engine(Engine::Batched)
//!     .backend(Backend::Accelerator(OmuConfig::default()))
//!     .build()?;
//! let scan = Scan::new(
//!     Point3::ZERO,
//!     [Point3::new(1.0, 0.0, 0.25)].into_iter().collect::<PointCloud>(),
//! );
//! map.insert(&scan)?;
//! assert_eq!(
//!     map.occupancy_at(Point3::new(1.0, 0.0, 0.25))?,
//!     Occupancy::Occupied
//! );
//! # Ok(())
//! # }
//! ```
//!
//! # The low-level layer
//!
//! The component crates remain available for direct use (the facade is
//! built from them):
//!
//! - [`geometry`] — points, voxel keys, log-odds, fixed point.
//! - [`pool`] — the persistent worker pool behind every parallel engine.
//! - [`raycast`] — 3D DDA ray casting and scan integration.
//! - [`octree`] — the software OctoMap baseline (probabilistic octree).
//! - [`simhw`] — hardware modeling substrate (SRAM, cycles, energy, area).
//! - [`cpumodel`] — calibrated CPU timing models (i9-9940X, Cortex-A57).
//! - [`datasets`] — synthetic stand-ins for the OctoMap 3D scan dataset.
//! - [`accel`] — the OMU accelerator model itself (`omu-core`).

pub use omu_core as accel;
pub use omu_cpumodel as cpumodel;
pub use omu_datasets as datasets;
pub use omu_geometry as geometry;
pub use omu_map as map;
pub use omu_octree as octree;
pub use omu_pool as pool;
pub use omu_raycast as raycast;
pub use omu_simhw as simhw;
