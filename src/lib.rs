//! OMU: a reproduction of *"OMU: A Probabilistic 3D Occupancy Mapping
//! Accelerator for Real-time OctoMap at the Edge"* (Jia et al., DATE 2022)
//! as a Rust workspace.
//!
//! This umbrella crate re-exports every component crate:
//!
//! - [`geometry`] — points, voxel keys, log-odds, fixed point.
//! - [`raycast`] — 3D DDA ray casting and scan integration.
//! - [`octree`] — the software OctoMap baseline (probabilistic octree).
//! - [`simhw`] — hardware modeling substrate (SRAM, cycles, energy, area).
//! - [`cpumodel`] — calibrated CPU timing models (i9-9940X, Cortex-A57).
//! - [`datasets`] — synthetic stand-ins for the OctoMap 3D scan dataset.
//! - [`accel`] — the OMU accelerator model itself (`omu-core`).
//!
//! # Quickstart
//!
//! ```
//! use omu::accel::{OmuAccelerator, OmuConfig};
//! use omu::geometry::{Point3, PointCloud, Scan};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut omu = OmuAccelerator::new(OmuConfig::default())?;
//! let scan = Scan::new(
//!     Point3::ZERO,
//!     [Point3::new(1.0, 0.0, 0.25)].into_iter().collect::<PointCloud>(),
//! );
//! omu.integrate_scan(&scan)?;
//! let state = omu.query_point(Point3::new(1.0, 0.0, 0.25))?;
//! assert_eq!(state, omu::geometry::Occupancy::Occupied);
//! # Ok(())
//! # }
//! ```

pub use omu_core as accel;
pub use omu_cpumodel as cpumodel;
pub use omu_datasets as datasets;
pub use omu_geometry as geometry;
pub use omu_octree as octree;
pub use omu_raycast as raycast;
pub use omu_simhw as simhw;
