//! Calibration helpers: fitting model constants to the paper's published
//! totals and shares.
//!
//! The procedure (run by `cargo run -p omu-bench --bin calibrate`):
//!
//! 1. Run the three synthetic datasets through the instrumented octree,
//!    collecting one [`OpCounters`] record per dataset.
//! 2. For each of the four runtime categories, compute the *predicted*
//!    seconds under the current model and the *target* seconds
//!    (paper total × paper share), then fit one scale factor per category
//!    by least squares through the origin.
//! 3. Scale the per-operation constants of that category and re-emit the
//!    platform definition.
//!
//! Keeping one scalar per category (rather than a full least-squares over
//! all constants) preserves the microarchitectural structure of the priors
//! and cannot overfit three data points.

use omu_octree::OpCounters;

use crate::model::{CpuCostModel, RuntimeBreakdown};

/// Least-squares scale through the origin: the `α` minimizing
/// `Σ (α·pred − target)²`.
///
/// Returns 1.0 when all predictions are zero (nothing to scale).
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// # Examples
///
/// ```
/// let alpha = omu_cpumodel::fit::fit_scale(&[1.0, 2.0], &[2.0, 4.0]);
/// assert!((alpha - 2.0).abs() < 1e-12);
/// ```
pub fn fit_scale(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(
        pred.len(),
        target.len(),
        "prediction/target length mismatch"
    );
    let denom: f64 = pred.iter().map(|p| p * p).sum();
    if denom == 0.0 {
        return 1.0;
    }
    let num: f64 = pred.iter().zip(target).map(|(p, t)| p * t).sum();
    num / denom
}

/// Per-category scale factors produced by a calibration pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CategoryScales {
    /// Scale for the ray-casting constants.
    pub ray_casting: f64,
    /// Scale for the update-leaf constants.
    pub update_leaf: f64,
    /// Scale for the update-parents constants.
    pub update_parents: f64,
    /// Scale for the prune/expand constants.
    pub prune_expand: f64,
}

/// Calibration targets for one dataset: the paper's total runtime and the
/// four category shares (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationTarget {
    /// Published total runtime in seconds.
    pub total_s: f64,
    /// Published shares `[ray, leaf, parents, prune]`, summing to ≈ 1.
    pub shares: [f64; 4],
}

impl CalibrationTarget {
    /// Target seconds per category.
    pub fn category_seconds(&self) -> [f64; 4] {
        self.shares.map(|s| s * self.total_s)
    }
}

/// Fits one scale per category across several datasets.
///
/// # Panics
///
/// Panics if `counters` and `targets` differ in length or are empty.
pub fn fit_categories(
    model: &CpuCostModel,
    counters: &[OpCounters],
    targets: &[CalibrationTarget],
) -> CategoryScales {
    assert_eq!(
        counters.len(),
        targets.len(),
        "need one target per counter record"
    );
    assert!(!counters.is_empty(), "need at least one dataset");

    let preds: Vec<RuntimeBreakdown> = counters.iter().map(|c| model.runtime(c)).collect();
    let column = |f: fn(&RuntimeBreakdown) -> f64| -> Vec<f64> { preds.iter().map(f).collect() };
    let target_col =
        |i: usize| -> Vec<f64> { targets.iter().map(|t| t.category_seconds()[i]).collect() };

    CategoryScales {
        ray_casting: fit_scale(&column(|b| b.ray_casting_s), &target_col(0)),
        update_leaf: fit_scale(&column(|b| b.update_leaf_s), &target_col(1)),
        update_parents: fit_scale(&column(|b| b.update_parents_s), &target_col(2)),
        prune_expand: fit_scale(&column(|b| b.prune_expand_s), &target_col(3)),
    }
}

/// Applies category scales to a model, producing the calibrated model.
#[must_use]
pub fn apply_scales(model: &CpuCostModel, s: &CategoryScales) -> CpuCostModel {
    CpuCostModel {
        name: model.name,
        dda_step_ns: model.dda_step_ns * s.ray_casting,
        leaf_update_ns: model.leaf_update_ns * s.update_leaf,
        traverse_step_ns: model.traverse_step_ns * s.update_leaf,
        saturation_probe_ns: model.saturation_probe_ns * s.update_leaf,
        parent_update_ns: model.parent_update_ns * s.update_parents,
        parent_child_read_ns: model.parent_child_read_ns * s.update_parents,
        prune_check_ns: model.prune_check_ns * s.prune_expand,
        prune_child_read_ns: model.prune_child_read_ns * s.prune_expand,
        prune_ns: model.prune_ns * s.prune_expand,
        expand_ns: model.expand_ns * s.prune_expand,
        power_w: model.power_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_scale_exact_for_proportional_data() {
        assert!((fit_scale(&[1.0, 2.0, 3.0], &[3.0, 6.0, 9.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fit_scale_zero_pred_is_identity() {
        assert_eq!(fit_scale(&[0.0, 0.0], &[1.0, 2.0]), 1.0);
    }

    #[test]
    fn calibration_recovers_known_scales() {
        let base = CpuCostModel::i9_9940x();
        // Ground truth: a model with every category scaled differently.
        let truth = apply_scales(
            &base,
            &CategoryScales {
                ray_casting: 2.0,
                update_leaf: 0.5,
                update_parents: 3.0,
                prune_expand: 1.5,
            },
        );
        let counters = vec![
            OpCounters {
                dda_steps: 5000,
                leaf_updates: 400,
                traverse_steps: 6400,
                saturation_probes: 400,
                parent_updates: 6000,
                parent_child_reads: 20000,
                prune_checks: 6000,
                prune_child_reads: 9000,
                prunes: 50,
                expands: 20,
                ..Default::default()
            },
            OpCounters {
                dda_steps: 100_000,
                leaf_updates: 4000,
                traverse_steps: 64_000,
                saturation_probes: 4000,
                parent_updates: 60_000,
                parent_child_reads: 150_000,
                prune_checks: 60_000,
                prune_child_reads: 120_000,
                prunes: 700,
                expands: 300,
                ..Default::default()
            },
        ];
        let targets: Vec<CalibrationTarget> = counters
            .iter()
            .map(|c| {
                let b = truth.runtime(c);
                CalibrationTarget {
                    total_s: b.total_s(),
                    shares: b.shares(),
                }
            })
            .collect();
        let scales = fit_categories(&base, &counters, &targets);
        assert!((scales.ray_casting - 2.0).abs() < 1e-9);
        assert!((scales.update_leaf - 0.5).abs() < 1e-9);
        assert!((scales.update_parents - 3.0).abs() < 1e-9);
        assert!((scales.prune_expand - 1.5).abs() < 1e-9);
        // Applying the fitted scales reproduces the truth model's output.
        let fitted = apply_scales(&base, &scales);
        for c in &counters {
            assert!((fitted.runtime(c).total_s() - truth.runtime(c).total_s()).abs() < 1e-9);
        }
    }

    #[test]
    fn category_seconds_from_shares() {
        let t = CalibrationTarget {
            total_s: 10.0,
            shares: [0.1, 0.2, 0.3, 0.4],
        };
        assert_eq!(t.category_seconds(), [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_rejected() {
        let _ = fit_scale(&[1.0], &[1.0, 2.0]);
    }
}
