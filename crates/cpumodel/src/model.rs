//! The per-operation cost model and the runtime breakdown it produces.

use omu_octree::OpCounters;
use serde::{Deserialize, Serialize};

/// Per-operation latencies (nanoseconds) of one CPU platform running the
/// OctoMap baseline, plus its mapping-time power draw.
///
/// The four paper categories are produced as:
///
/// - *Ray casting* — `dda_step_ns × dda_steps`
/// - *Update leaf* — leaf additions, descent steps and (when enabled) the
///   early-abort saturation probes
/// - *Update parents* — per-node max recomputations and their child reads
/// - *Node prune/expand* — collapsibility checks, their child reads, and
///   successful prunes/expansions
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuCostModel {
    /// Platform display name.
    pub name: &'static str,
    /// Cost of one DDA step (pure arithmetic).
    pub dda_step_ns: f64,
    /// Cost of one leaf log-odds addition (read-modify-write).
    pub leaf_update_ns: f64,
    /// Cost of descending one tree level (pointer dereference).
    pub traverse_step_ns: f64,
    /// Cost of one early-abort saturation probe (a root-to-leaf search).
    pub saturation_probe_ns: f64,
    /// Base cost of one parent occupancy recomputation.
    pub parent_update_ns: f64,
    /// Cost of reading one child during a parent update.
    pub parent_child_read_ns: f64,
    /// Base cost of one prune attempt.
    pub prune_check_ns: f64,
    /// Cost of reading one child during a prune check (the irregular
    /// accesses the paper identifies as the bottleneck).
    pub prune_child_read_ns: f64,
    /// Cost of one successful prune (freeing 8 children).
    pub prune_ns: f64,
    /// Cost of one node expansion (allocating 8 children).
    pub expand_ns: f64,
    /// Average power draw while mapping, in watts.
    pub power_w: f64,
}

impl CpuCostModel {
    /// Computes the modeled runtime breakdown for a counter record.
    pub fn runtime(&self, c: &OpCounters) -> RuntimeBreakdown {
        let ns_to_s = 1e-9;
        let ray_casting_s = self.dda_step_ns * c.dda_steps as f64 * ns_to_s;
        let update_leaf_s = (self.leaf_update_ns * c.leaf_updates as f64
            + self.traverse_step_ns * c.traverse_steps as f64
            + self.saturation_probe_ns * c.saturation_probes as f64)
            * ns_to_s;
        let update_parents_s = (self.parent_update_ns * c.parent_updates as f64
            + self.parent_child_read_ns * c.parent_child_reads as f64)
            * ns_to_s;
        let prune_expand_s = (self.prune_check_ns * c.prune_checks as f64
            + self.prune_child_read_ns * c.prune_child_reads as f64
            + self.prune_ns * c.prunes as f64
            + self.expand_ns * c.expands as f64)
            * ns_to_s;
        RuntimeBreakdown {
            ray_casting_s,
            update_leaf_s,
            update_parents_s,
            prune_expand_s,
        }
    }

    /// Energy in joules for a counter record: modeled runtime × power.
    pub fn energy_j(&self, c: &OpCounters) -> f64 {
        self.runtime(c).total_s() * self.power_w
    }

    /// Returns a copy with every per-operation cost scaled by `factor`
    /// (used to derive one platform from another during calibration).
    #[must_use]
    pub fn scaled(&self, name: &'static str, factor: f64, power_w: f64) -> CpuCostModel {
        CpuCostModel {
            name,
            dda_step_ns: self.dda_step_ns * factor,
            leaf_update_ns: self.leaf_update_ns * factor,
            traverse_step_ns: self.traverse_step_ns * factor,
            saturation_probe_ns: self.saturation_probe_ns * factor,
            parent_update_ns: self.parent_update_ns * factor,
            parent_child_read_ns: self.parent_child_read_ns * factor,
            prune_check_ns: self.prune_check_ns * factor,
            prune_child_read_ns: self.prune_child_read_ns * factor,
            prune_ns: self.prune_ns * factor,
            expand_ns: self.expand_ns * factor,
            power_w,
        }
    }
}

/// Modeled wall-clock time split into the paper's four categories
/// (Fig. 3 / Fig. 10).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RuntimeBreakdown {
    /// Time in the ray-casting kernel.
    pub ray_casting_s: f64,
    /// Time updating leaves (descent + log-odds addition + probes).
    pub update_leaf_s: f64,
    /// Time recursively updating parent occupancies.
    pub update_parents_s: f64,
    /// Time in node prune / expand handling.
    pub prune_expand_s: f64,
}

impl RuntimeBreakdown {
    /// Total modeled runtime in seconds.
    pub fn total_s(&self) -> f64 {
        self.ray_casting_s + self.update_leaf_s + self.update_parents_s + self.prune_expand_s
    }

    /// Category shares `[ray, leaf, parents, prune]` summing to 1 (all
    /// zeros for an empty record).
    pub fn shares(&self) -> [f64; 4] {
        let t = self.total_s();
        if t <= 0.0 {
            return [0.0; 4];
        }
        [
            self.ray_casting_s / t,
            self.update_leaf_s / t,
            self.update_parents_s / t,
            self.prune_expand_s / t,
        ]
    }

    /// The category names, aligned with [`RuntimeBreakdown::shares`].
    pub const CATEGORY_NAMES: [&'static str; 4] = [
        "Ray Casting",
        "Update Leaf",
        "Update Parents",
        "Node Prune/Expand",
    ];

    /// Adds another breakdown (e.g. accumulating scans).
    pub fn merge(&mut self, other: &RuntimeBreakdown) {
        self.ray_casting_s += other.ray_casting_s;
        self.update_leaf_s += other.update_leaf_s;
        self.update_parents_s += other.update_parents_s;
        self.prune_expand_s += other.prune_expand_s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CpuCostModel as M;

    fn counters() -> OpCounters {
        OpCounters {
            dda_steps: 1000,
            leaf_updates: 100,
            traverse_steps: 1600,
            saturation_probes: 100,
            parent_updates: 1500,
            parent_child_reads: 6000,
            prune_checks: 1500,
            prune_child_reads: 3000,
            prunes: 10,
            expands: 5,
            ..Default::default()
        }
    }

    #[test]
    fn runtime_is_linear_in_counters() {
        let m = M::i9_9940x();
        let c = counters();
        let b1 = m.runtime(&c);
        let mut c2 = c;
        c2.merge(&c);
        let b2 = m.runtime(&c2);
        assert!((b2.total_s() - 2.0 * b1.total_s()).abs() < 1e-12);
    }

    #[test]
    fn shares_sum_to_one() {
        let m = M::i9_9940x();
        let s = m.runtime(&counters()).shares();
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(s.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn empty_counters_give_zero_runtime() {
        let m = M::cortex_a57();
        let b = m.runtime(&OpCounters::default());
        assert_eq!(b.total_s(), 0.0);
        assert_eq!(b.shares(), [0.0; 4]);
    }

    #[test]
    fn a57_is_slower_than_i9() {
        let c = counters();
        let i9 = M::i9_9940x().runtime(&c).total_s();
        let a57 = M::cortex_a57().runtime(&c).total_s();
        let ratio = a57 / i9;
        assert!(ratio > 3.0 && ratio < 8.0, "A57/i9 ratio = {ratio:.2}");
    }

    #[test]
    fn energy_uses_platform_power() {
        let c = counters();
        let m = M::cortex_a57();
        let e = m.energy_j(&c);
        assert!((e - m.runtime(&c).total_s() * m.power_w).abs() < 1e-15);
    }

    #[test]
    fn scaled_scales_costs_not_structure() {
        let m = M::i9_9940x();
        let s = m.scaled("2x", 2.0, 10.0);
        let c = counters();
        assert!((s.runtime(&c).total_s() - 2.0 * m.runtime(&c).total_s()).abs() < 1e-12);
        assert_eq!(s.power_w, 10.0);
        // Shares unchanged by uniform scaling.
        let a = m.runtime(&c).shares();
        let b = s.runtime(&c).shares();
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn merge_accumulates() {
        let m = M::i9_9940x();
        let mut b = m.runtime(&counters());
        let t = b.total_s();
        b.merge(&m.runtime(&counters()));
        assert!((b.total_s() - 2.0 * t).abs() < 1e-12);
    }
}
