//! Calibrated per-operation CPU timing models for OctoMap workloads.
//!
//! The OMU paper compares its accelerator against two CPUs running the
//! OctoMap software baseline: a desktop **Intel i9-9940X** and the edge
//! **ARM Cortex-A57** of an Nvidia Jetson TX2 (Tables II–V, Fig. 3,
//! Fig. 9/10). Neither machine is available to this reproduction, so they
//! are *modeled*: the instrumented octree in `omu-octree` counts every
//! operation ([`OpCounters`](omu_octree::OpCounters)), and a [`CpuCostModel`] maps counts to
//! seconds via per-operation latencies.
//!
//! The latencies are **calibrated**, not measured: they are chosen so the
//! three paper workloads land on the published totals (Table II/III) and
//! runtime shares (Fig. 3). The calibration procedure lives in [`fit`] and
//! is rerun by `cargo run -p omu-bench --bin calibrate`; EXPERIMENTS.md
//! records the fit quality. What the model preserves — and what the
//! paper's comparisons need — is the *shape*: node prune/expand dominates
//! CPU runtime because of irregular 8-children accesses, and the i9→A57
//! gap is roughly 5×.
//!
//! # Examples
//!
//! ```
//! use omu_cpumodel::CpuCostModel;
//! use omu_octree::OpCounters;
//!
//! let model = CpuCostModel::i9_9940x();
//! let counters = OpCounters { leaf_updates: 1_000_000, ..Default::default() };
//! let breakdown = model.runtime(&counters);
//! assert!(breakdown.total_s() > 0.0);
//! ```

pub mod fit;
mod model;
mod platforms;

pub use model::{CpuCostModel, RuntimeBreakdown};

/// Voxel updates contained in one "frame equivalent".
///
/// The paper derives FPS "equivalently ... for common 320x240 sensor image
/// size" (Section III-B). Cross-checking Tables II–IV shows the conversion
/// that reproduces *all nine* published FPS values is
/// `FPS = voxel_updates / s / (320 × 240 × 15)` — one frame equals a
/// 320 × 240 depth image at a nominal 15 voxel updates per pixel
/// (101 M / 16.8 s / 1.152 M = 5.22 ≈ the published 5.23, and likewise for
/// the other eight entries). A points-based convention cannot: it would
/// give the campus workload 1.47 FPS, not the published 5.03.
pub const UPDATES_PER_FRAME: f64 = 320.0 * 240.0 * 15.0;

/// Frame-equivalent throughput: `voxel_updates / seconds /`
/// [`UPDATES_PER_FRAME`].
///
/// # Examples
///
/// ```
/// // Table II/IV: FR-079 on the i9 — 101 M updates in 16.8 s ≈ 5.2 FPS.
/// let fps = omu_cpumodel::frame_equivalent_fps(101_000_000, 16.8);
/// assert!((fps - 5.22).abs() < 0.05);
/// ```
pub fn frame_equivalent_fps(voxel_updates: u64, seconds: f64) -> f64 {
    assert!(seconds > 0.0, "runtime must be positive, got {seconds}");
    voxel_updates as f64 / seconds / UPDATES_PER_FRAME
}

#[cfg(test)]
mod tests {
    #[test]
    fn fps_convention_matches_all_paper_entries() {
        // (updates in millions, latency s, published FPS) from Tables II–IV.
        let entries = [
            (101.0, 16.8, 5.23),
            (1031.0, 177.7, 5.03),
            (449.0, 77.3, 5.04),
            (101.0, 81.7, 1.07),
            (1031.0, 897.2, 1.0),
            (449.0, 401.5, 0.97),
            (101.0, 1.31, 63.66),
            (1031.0, 14.4, 62.05),
            (449.0, 6.5, 60.87),
        ];
        for (updates_m, latency, published) in entries {
            let fps = super::frame_equivalent_fps((updates_m * 1e6) as u64, latency);
            assert!(
                (fps - published).abs() / published < 0.06,
                "{updates_m} M updates / {latency} s: {fps:.2} vs published {published}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "runtime must be positive")]
    fn zero_runtime_rejected() {
        let _ = super::frame_equivalent_fps(1, 0.0);
    }
}
