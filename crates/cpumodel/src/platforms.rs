//! The two calibrated CPU platforms of the paper's evaluation.

use crate::model::CpuCostModel;

impl CpuCostModel {
    /// The desktop Intel i9-9940X baseline (Table II).
    ///
    /// Constants produced by the calibration fit
    /// (`cargo run -p omu-bench --bin calibrate`): one least-squares scale
    /// per runtime category against the paper's totals (16.8 s / 177.7 s /
    /// 77.3 s, Table II) and Fig. 3 shares, starting from
    /// microarchitectural priors. The large prune-side constants reflect
    /// that collapsibility checks gather 8 children over irregular
    /// pointers — the cache-miss pattern the paper identifies as the CPU
    /// bottleneck. Rerun the calibration after changing dataset
    /// generation, and see EXPERIMENTS.md for the fit-quality record.
    pub fn i9_9940x() -> CpuCostModel {
        CpuCostModel {
            name: "Intel i9-9940X",
            // Pure arithmetic; stays in registers/L1.
            dda_step_ns: 2.180,
            // Log-odds add + clamp + store on an already-resident node.
            leaf_update_ns: 8.441,
            // One pointer dereference per level; upper levels cache well.
            traverse_step_ns: 2.814,
            // Root-to-leaf search before each update (early abort).
            saturation_probe_ns: 45.019,
            // Max over children: base + per-child read below.
            parent_update_ns: 5.434,
            parent_child_read_ns: 4.891,
            // Collapsibility check: the 8-children gather is the irregular
            // access pattern the paper blames for the CPU bottleneck.
            prune_check_ns: 33.376,
            prune_child_read_ns: 47.283,
            // Freeing / allocating 8 children (allocator + cold misses).
            prune_ns: 834.411,
            expand_ns: 1251.617,
            // Package power while mapping (single-threaded, desktop part).
            power_w: 120.0,
        }
    }

    /// The ARM Cortex-A57 (Nvidia Jetson TX2) edge baseline.
    ///
    /// The paper reports 4.9–5.2× the i9 latency across the three maps and
    /// 2.6–2.9 W CPU power; the calibration fits a single ×5.074 factor
    /// over the i9 model and uses the mid-band power.
    pub fn cortex_a57() -> CpuCostModel {
        CpuCostModel::i9_9940x().scaled("ARM Cortex-A57 (Jetson TX2)", 5.074, 2.78)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_names_match_paper() {
        assert!(CpuCostModel::i9_9940x().name.contains("i9"));
        assert!(CpuCostModel::cortex_a57().name.contains("A57"));
    }

    #[test]
    fn a57_power_in_reported_band() {
        let p = CpuCostModel::cortex_a57().power_w;
        assert!(
            (2.6..=2.9).contains(&p),
            "paper reports 2.6–2.9 W, model uses {p}"
        );
    }

    #[test]
    fn a57_scale_in_reported_band() {
        let i9 = CpuCostModel::i9_9940x();
        let a57 = CpuCostModel::cortex_a57();
        let ratio = a57.prune_child_read_ns / i9.prune_child_read_ns;
        assert!((4.8..=5.3).contains(&ratio), "latency ratio {ratio:.2}");
    }
}
