//! Bounded FIFO queue with backpressure statistics.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// A bounded FIFO with occupancy and stall accounting.
///
/// Models the voxel queues between the ray-casting unit, the voxel
/// scheduler, and the PE inputs (Fig. 7). `try_push` refuses when full —
/// the producer stalls, and the queueing model charges the stall cycles.
///
/// # Examples
///
/// ```
/// use omu_simhw::BoundedFifo;
///
/// let mut q: BoundedFifo<u32> = BoundedFifo::new(2);
/// assert!(q.try_push(1).is_ok());
/// assert!(q.try_push(2).is_ok());
/// assert_eq!(q.try_push(3), Err(3)); // full: caller must retry
/// assert_eq!(q.pop(), Some(1));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BoundedFifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    high_water: usize,
    rejected: u64,
    accepted: u64,
}

impl<T> BoundedFifo<T> {
    /// Creates an empty queue with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be positive");
        BoundedFifo {
            items: VecDeque::with_capacity(capacity),
            capacity,
            high_water: 0,
            rejected: 0,
            accepted: 0,
        }
    }

    /// Enqueues a value, or returns it back when the queue is full.
    ///
    /// # Errors
    ///
    /// Returns `Err(value)` when the queue is at capacity, handing the
    /// value back to the stalled producer.
    pub fn try_push(&mut self, value: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            self.rejected += 1;
            return Err(value);
        }
        self.items.push_back(value);
        self.accepted += 1;
        self.high_water = self.high_water.max(self.items.len());
        Ok(())
    }

    /// Dequeues the oldest value.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Maximum occupancy ever reached.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Push attempts refused because the queue was full.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Values accepted over the queue's lifetime.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedFifo::new(3);
        q.try_push('a').unwrap();
        q.try_push('b').unwrap();
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(q.pop(), Some('b'));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_queue_rejects() {
        let mut q = BoundedFifo::new(1);
        q.try_push(1).unwrap();
        assert!(q.is_full());
        assert_eq!(q.try_push(2), Err(2));
        assert_eq!(q.rejected(), 1);
        q.pop();
        q.try_push(2).unwrap();
        assert_eq!(q.accepted(), 2);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut q = BoundedFifo::new(10);
        for i in 0..7 {
            q.try_push(i).unwrap();
        }
        while q.pop().is_some() {}
        assert_eq!(q.high_water(), 7);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: BoundedFifo<u8> = BoundedFifo::new(0);
    }
}
