//! Calibrated 12 nm technology constants.
//!
//! The OMU paper signs its accelerator off in a commercial 12 nm process at
//! 1 GHz / 0.8 V and reports three silicon-level anchors:
//!
//! 1. total power 250.8 mW at 1 GHz, of which 91 % is SRAM (Section VI-C);
//! 2. total area 2.5 mm², 2.0 mm × 1.25 mm floorplan (Fig. 8);
//! 3. 8 PEs × 256 kB (8 × 32 kB banks) of compiler-generated SRAM.
//!
//! Without the PDK, per-access energies and per-kB densities cannot be
//! *derived*; instead they are **calibrated**: the constants below are
//! chosen so that the transaction-level model, executing the FR-079
//! workload, lands on the paper's anchors. All downstream results (energy
//! tables, power split, area report) follow from event counts × these
//! constants. See EXPERIMENTS.md § "Technology calibration".

/// Accelerator clock frequency (GHz).
pub const FREQ_GHZ: f64 = 1.0;

/// Supply voltage (V) — informational; energies below already assume it.
pub const VDD: f64 = 0.8;

/// Dynamic read energy of one 64-bit access to a 32 kB bank (pJ).
pub const SRAM_READ_PJ: f64 = 19.6;

/// Dynamic write energy of one 64-bit access to a 32 kB bank (pJ).
pub const SRAM_WRITE_PJ: f64 = 22.1;

/// Leakage power per 32 kB bank (mW).
pub const SRAM_LEAKAGE_MW_PER_BANK: f64 = 0.05;

/// PE control/datapath logic energy per active PE cycle (pJ).
pub const PE_LOGIC_PJ_PER_CYCLE: f64 = 3.4;

/// Voxel scheduler energy per dispatched voxel (pJ).
pub const SCHEDULER_PJ_PER_VOXEL: f64 = 2.6;

/// Ray-casting unit energy per DDA step (pJ).
pub const RAYCAST_PJ_PER_STEP: f64 = 1.6;

/// Voxel query unit energy per query (pJ).
pub const QUERY_PJ_PER_QUERY: f64 = 8.0;

/// AXI/controller energy per transferred byte (pJ).
pub const AXI_PJ_PER_BYTE: f64 = 0.8;

/// SRAM macro density (mm² per kB) for the 12 nm compiler memories.
pub const SRAM_MM2_PER_KB: f64 = 0.000_58;

/// PE logic area per PE instance (mm²).
pub const PE_LOGIC_MM2: f64 = 0.055;

/// Voxel scheduler area (mm²).
pub const SCHEDULER_MM2: f64 = 0.09;

/// Ray-casting unit area (mm²).
pub const RAYCAST_MM2: f64 = 0.14;

/// Voxel query unit area (mm²).
pub const QUERY_MM2: f64 = 0.06;

/// AXI interface + controller + queues area (mm²).
pub const AXI_CTRL_MM2: f64 = 0.12;

/// Top-level overhead factor (P&R utilization, power grid, spacing).
pub const TOP_OVERHEAD_FACTOR: f64 = 1.226;

/// Die outline reported in Fig. 8 (mm × mm).
pub const DIE_OUTLINE_MM: (f64, f64) = (2.0, 1.25);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // the point is documenting the invariants
    fn constants_are_physical() {
        assert!(SRAM_READ_PJ > 0.0 && SRAM_WRITE_PJ >= SRAM_READ_PJ);
        assert!(PE_LOGIC_PJ_PER_CYCLE > 0.0);
        assert!(SRAM_MM2_PER_KB > 0.0);
        assert!(TOP_OVERHEAD_FACTOR >= 1.0);
        assert!(FREQ_GHZ == 1.0, "the paper signs off at 1 GHz");
    }

    #[test]
    fn area_anchors_near_paper() {
        // 8 PEs × 256 kB SRAM + logic, with overhead, lands near 2.5 mm².
        let sram = 8.0 * 256.0 * SRAM_MM2_PER_KB;
        let logic = 8.0 * PE_LOGIC_MM2 + SCHEDULER_MM2 + RAYCAST_MM2 + QUERY_MM2 + AXI_CTRL_MM2;
        let total = (sram + logic) * TOP_OVERHEAD_FACTOR;
        assert!(
            (total - 2.5).abs() < 0.1,
            "total area model = {total:.3} mm²"
        );
        // And it fits the reported die outline.
        assert!(total <= DIE_OUTLINE_MM.0 * DIE_OUTLINE_MM.1 * 1.02);
    }
}
