//! Hardware modeling substrate for the OMU accelerator simulation.
//!
//! The OMU paper evaluates silicon: a 12 nm post-P&R netlist running at
//! 1 GHz / 0.8 V. This crate provides the building blocks that let a
//! transaction-level Rust model produce the same *architectural* numbers —
//! cycle counts, SRAM access counts, energy, power, and area:
//!
//! - [`SramBank`] — a single-port SRAM bank with access counting. Eight of
//!   these per PE form the paper's `T-Mem0..7` (Fig. 5).
//! - [`StackBuffer`] — the bounded LIFO used by the prune address manager
//!   (Fig. 6).
//! - [`BoundedFifo`] — queues with occupancy/stall accounting (voxel
//!   queues, scheduler input).
//! - [`EnergyLedger`] / [`PowerReport`] — per-component energy bookkeeping
//!   and conversion to average power.
//! - [`AreaModel`] — per-component silicon area (reproduces Fig. 8).
//! - [`AxiStreamModel`] — DMA/bus bandwidth model for host transfers.
//! - [`tech12nm`] — the calibrated 12 nm technology constants.
//!
//! All constants in [`tech12nm`] are *calibrated* against the paper's
//! reported operating point (250.8 mW, 91 % SRAM power, 2.5 mm²) rather
//! than derived from a foundry PDK; EXPERIMENTS.md documents the
//! calibration.

mod area;
mod axi;
mod energy;
mod fifo;
mod power;
mod sram;
mod stack;
pub mod tech12nm;

pub use area::{AreaComponent, AreaModel};
pub use axi::AxiStreamModel;
pub use energy::EnergyLedger;
pub use fifo::BoundedFifo;
pub use power::{PowerComponent, PowerReport};
pub use sram::{SramBank, SramSpec, SramStats};
pub use stack::StackBuffer;

/// Converts a cycle count at `freq_ghz` to seconds.
///
/// # Examples
///
/// ```
/// assert_eq!(omu_simhw::cycles_to_seconds(2_000_000_000, 1.0), 2.0);
/// ```
pub fn cycles_to_seconds(cycles: u64, freq_ghz: f64) -> f64 {
    cycles as f64 / (freq_ghz * 1e9)
}

/// Converts picojoules to joules.
pub fn pj_to_joules(pj: f64) -> f64 {
    pj * 1e-12
}

#[cfg(test)]
mod tests {
    #[test]
    fn unit_conversions() {
        assert_eq!(super::cycles_to_seconds(1_000_000_000, 1.0), 1.0);
        assert_eq!(super::cycles_to_seconds(500_000_000, 0.5), 1.0);
        assert!((super::pj_to_joules(1e12) - 1.0).abs() < 1e-12);
    }
}
