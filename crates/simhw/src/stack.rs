//! Bounded LIFO stack buffer — the prune address manager's storage.

use serde::{Deserialize, Serialize};

/// A bounded LIFO stack with occupancy statistics.
///
/// The OMU prune address manager (Fig. 6) uses "a simple stack buffer
/// instead of a more complex FIFO to manage the dynamic addresses with very
/// small area cost". Pushing to a full stack *drops* the value (the pruned
/// row is leaked until the map is rebuilt) — the model counts such drops so
/// experiments can size the stack.
///
/// # Examples
///
/// ```
/// use omu_simhw::StackBuffer;
///
/// let mut s: StackBuffer<u32> = StackBuffer::new(2);
/// assert!(s.push(1));
/// assert!(s.push(2));
/// assert!(!s.push(3)); // full: dropped
/// assert_eq!(s.pop(), Some(2));
/// assert_eq!(s.dropped(), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StackBuffer<T> {
    items: Vec<T>,
    capacity: usize,
    high_water: usize,
    dropped: u64,
    pushes: u64,
    pops: u64,
}

impl<T> StackBuffer<T> {
    /// Creates an empty stack with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "stack capacity must be positive");
        StackBuffer {
            items: Vec::with_capacity(capacity),
            capacity,
            high_water: 0,
            dropped: 0,
            pushes: 0,
            pops: 0,
        }
    }

    /// Pushes a value; returns `false` (and drops the value) when full.
    pub fn push(&mut self, value: T) -> bool {
        if self.items.len() >= self.capacity {
            self.dropped += 1;
            return false;
        }
        self.items.push(value);
        self.pushes += 1;
        self.high_water = self.high_water.max(self.items.len());
        true
    }

    /// Pops the most recently pushed value.
    pub fn pop(&mut self) -> Option<T> {
        let v = self.items.pop();
        if v.is_some() {
            self.pops += 1;
        }
        v
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Maximum occupancy ever reached.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Values dropped due to overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Successful pushes.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Successful pops.
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Empties the stack, keeping statistics.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut s = StackBuffer::new(4);
        s.push(1);
        s.push(2);
        s.push(3);
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let mut s = StackBuffer::new(1);
        assert!(s.push(10));
        assert!(!s.push(11));
        assert!(!s.push(12));
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.len(), 1);
        assert!(s.is_full());
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut s = StackBuffer::new(8);
        for i in 0..5 {
            s.push(i);
        }
        for _ in 0..5 {
            s.pop();
        }
        assert!(s.is_empty());
        assert_eq!(s.high_water(), 5);
        assert_eq!(s.pushes(), 5);
        assert_eq!(s.pops(), 5);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: StackBuffer<u32> = StackBuffer::new(0);
    }

    #[test]
    fn clear_keeps_stats() {
        let mut s = StackBuffer::new(4);
        s.push(1);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.pushes(), 1);
        assert_eq!(s.high_water(), 1);
    }
}
