//! Average-power reports derived from energy ledgers.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::energy::EnergyLedger;

/// One row of a [`PowerReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerComponent {
    /// Component name (as charged in the energy ledger).
    pub name: String,
    /// Average power in milliwatts over the report window.
    pub milliwatts: f64,
    /// Fraction of total power.
    pub share: f64,
}

/// Average power over a runtime window, broken down by component.
///
/// # Examples
///
/// ```
/// use omu_simhw::{EnergyLedger, PowerReport};
///
/// let mut e = EnergyLedger::new();
/// e.add("sram", 91.0e9); // pJ
/// e.add("logic", 9.0e9);
/// let p = PowerReport::from_energy(&e, 0.4); // 0.4 s window
/// assert!((p.total_mw() - 250.0).abs() < 1e-9); // 0.1 J / 0.4 s = 250 mW
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    components: Vec<PowerComponent>,
    total_mw: f64,
    runtime_s: f64,
}

impl PowerReport {
    /// Builds a report from an energy ledger and the runtime it covers.
    ///
    /// # Panics
    ///
    /// Panics if `runtime_s` is not positive and finite.
    pub fn from_energy(energy: &EnergyLedger, runtime_s: f64) -> Self {
        assert!(
            runtime_s.is_finite() && runtime_s > 0.0,
            "runtime must be positive, got {runtime_s}"
        );
        let total_pj = energy.total_pj();
        let total_mw = total_pj * 1e-12 / runtime_s * 1e3;
        let components = energy
            .iter()
            .map(|(name, pj)| PowerComponent {
                name: name.to_owned(),
                milliwatts: pj * 1e-12 / runtime_s * 1e3,
                share: if total_pj > 0.0 { pj / total_pj } else { 0.0 },
            })
            .collect();
        PowerReport {
            components,
            total_mw,
            runtime_s,
        }
    }

    /// Total average power in milliwatts.
    pub fn total_mw(&self) -> f64 {
        self.total_mw
    }

    /// The runtime window in seconds.
    pub fn runtime_s(&self) -> f64 {
        self.runtime_s
    }

    /// The per-component rows, sorted by descending power.
    pub fn components(&self) -> &[PowerComponent] {
        &self.components
    }

    /// Total power share of components whose name starts with `prefix`.
    pub fn share_prefix(&self, prefix: &str) -> f64 {
        self.components
            .iter()
            .filter(|c| c.name.starts_with(prefix))
            .map(|c| c.share)
            .sum()
    }

    /// Total power share of components whose name contains `needle`.
    pub fn share_containing(&self, needle: &str) -> f64 {
        self.components
            .iter()
            .filter(|c| c.name.contains(needle))
            .map(|c| c.share)
            .sum()
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "power over {:.4} s: {:.1} mW",
            self.runtime_s, self.total_mw
        )?;
        let mut rows: Vec<&PowerComponent> = self.components.iter().collect();
        rows.sort_by(|a, b| b.milliwatts.total_cmp(&a.milliwatts));
        for c in rows {
            writeln!(
                f,
                "  {:<24} {:>9.2} mW  {:>5.1} %",
                c.name,
                c.milliwatts,
                c.share * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> EnergyLedger {
        // 0.91 mJ + 0.09 mJ = 1 mJ total.
        let mut e = EnergyLedger::new();
        e.add("sram", 910.0e6);
        e.add("logic", 90.0e6);
        e
    }

    #[test]
    fn power_is_energy_over_time() {
        let p = PowerReport::from_energy(&ledger(), 1.0);
        assert!((p.total_mw() - 1.0).abs() < 1e-9, "1 mJ over 1 s = 1 mW");
        assert!((p.share_prefix("sram") - 0.91).abs() < 1e-9);
    }

    #[test]
    fn halving_runtime_doubles_power() {
        let p1 = PowerReport::from_energy(&ledger(), 1.0);
        let p2 = PowerReport::from_energy(&ledger(), 0.5);
        assert!((p2.total_mw() - 2.0 * p1.total_mw()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "runtime must be positive")]
    fn zero_runtime_rejected() {
        let _ = PowerReport::from_energy(&ledger(), 0.0);
    }

    #[test]
    fn display_lists_components() {
        let p = PowerReport::from_energy(&ledger(), 1.0);
        let s = p.to_string();
        assert!(s.contains("sram"));
        assert!(s.contains("logic"));
        assert!(s.contains("mW"));
    }

    #[test]
    fn share_containing_matches_substrings() {
        let mut e = EnergyLedger::new();
        e.add("pe0.sram", 50.0);
        e.add("pe1.sram", 30.0);
        e.add("pe0.logic", 20.0);
        let p = PowerReport::from_energy(&e, 1.0);
        assert!((p.share_containing("sram") - 0.8).abs() < 1e-12);
    }
}
