//! Per-component energy bookkeeping.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// An energy ledger: picojoules attributed to named components.
///
/// The accelerator model charges every SRAM access, logic cycle and queue
/// operation to a component; the ledger then yields totals and the
/// per-component power split (the paper reports 91 % of OMU power in SRAM).
///
/// # Examples
///
/// ```
/// use omu_simhw::EnergyLedger;
///
/// let mut e = EnergyLedger::new();
/// e.add("pe.sram", 910.0);
/// e.add("pe.logic", 90.0);
/// assert_eq!(e.total_pj(), 1000.0);
/// assert_eq!(e.share("pe.sram"), 0.91);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedger {
    entries: BTreeMap<String, f64>,
}

impl EnergyLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `pj` picojoules to `component`.
    ///
    /// # Panics
    ///
    /// Panics if `pj` is negative or not finite.
    pub fn add(&mut self, component: &str, pj: f64) {
        assert!(
            pj.is_finite() && pj >= 0.0,
            "energy must be non-negative, got {pj}"
        );
        *self.entries.entry(component.to_owned()).or_insert(0.0) += pj;
    }

    /// Energy attributed to `component`, in pJ (0 when absent).
    pub fn get(&self, component: &str) -> f64 {
        self.entries.get(component).copied().unwrap_or(0.0)
    }

    /// Total energy across components, in pJ.
    pub fn total_pj(&self) -> f64 {
        self.entries.values().sum()
    }

    /// Total energy in joules.
    pub fn total_joules(&self) -> f64 {
        crate::pj_to_joules(self.total_pj())
    }

    /// Fraction of total energy attributed to `component` (0 when the
    /// ledger is empty).
    pub fn share(&self, component: &str) -> f64 {
        let total = self.total_pj();
        if total == 0.0 {
            0.0
        } else {
            self.get(component) / total
        }
    }

    /// Fraction of total energy over all components whose name starts with
    /// `prefix` — e.g. `sum_share_prefix("pe.sram")` over per-PE entries.
    pub fn share_prefix(&self, prefix: &str) -> f64 {
        let total = self.total_pj();
        if total == 0.0 {
            return 0.0;
        }
        self.entries
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum::<f64>()
            / total
    }

    /// Iterates `(component, pJ)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.entries.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &EnergyLedger) {
        for (k, v) in other.iter() {
            self.add(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_component() {
        let mut e = EnergyLedger::new();
        e.add("a", 1.0);
        e.add("a", 2.0);
        e.add("b", 3.0);
        assert_eq!(e.get("a"), 3.0);
        assert_eq!(e.get("b"), 3.0);
        assert_eq!(e.get("missing"), 0.0);
        assert_eq!(e.total_pj(), 6.0);
    }

    #[test]
    fn shares_and_prefixes() {
        let mut e = EnergyLedger::new();
        e.add("pe0.sram", 40.0);
        e.add("pe1.sram", 40.0);
        e.add("pe0.logic", 20.0);
        assert_eq!(e.share("pe0.sram"), 0.4);
        assert!((e.share_prefix("pe") - 1.0).abs() < 1e-12);
        let sram: f64 = e
            .iter()
            .filter(|(k, _)| k.ends_with("sram"))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(sram, 80.0);
    }

    #[test]
    fn empty_ledger_shares_are_zero() {
        let e = EnergyLedger::new();
        assert_eq!(e.share("x"), 0.0);
        assert_eq!(e.total_pj(), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_energy_rejected() {
        let mut e = EnergyLedger::new();
        e.add("a", -1.0);
    }

    #[test]
    fn merge_adds() {
        let mut a = EnergyLedger::new();
        a.add("x", 1.0);
        let mut b = EnergyLedger::new();
        b.add("x", 2.0);
        b.add("y", 3.0);
        a.merge(&b);
        assert_eq!(a.get("x"), 3.0);
        assert_eq!(a.get("y"), 3.0);
    }
}
