//! Single-port SRAM bank model with access accounting.

use serde::{Deserialize, Serialize};

/// Geometry of one SRAM bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SramSpec {
    /// Number of addressable rows.
    pub rows: usize,
    /// Word width in bits (the OMU node entry is 64 bits).
    pub width_bits: u32,
}

impl SramSpec {
    /// The paper's T-Mem bank: 32 kB of 64-bit words (4096 rows).
    pub const OMU_TMEM: SramSpec = SramSpec {
        rows: 4096,
        width_bits: 64,
    };

    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero or `width_bits` is zero or above 64.
    pub fn new(rows: usize, width_bits: u32) -> Self {
        assert!(rows > 0, "an SRAM bank needs at least one row");
        assert!(
            (1..=64).contains(&width_bits),
            "word width must be 1..=64 bits, got {width_bits}"
        );
        SramSpec { rows, width_bits }
    }

    /// Capacity in bytes.
    pub fn bytes(&self) -> usize {
        self.rows * (self.width_bits as usize).div_ceil(8)
    }

    /// Capacity in kilobytes (1 kB = 1024 B).
    pub fn kilobytes(&self) -> f64 {
        self.bytes() as f64 / 1024.0
    }
}

/// Access counters of one bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SramStats {
    /// Word reads served.
    pub reads: u64,
    /// Word writes served.
    pub writes: u64,
}

impl SramStats {
    /// Total accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Adds another bank's counters.
    pub fn merge(&mut self, other: &SramStats) {
        self.reads += other.reads;
        self.writes += other.writes;
    }
}

/// A single-port SRAM bank storing 64-bit words.
///
/// The functional model stores words in a `Vec<u64>`; every access is
/// counted so that energy (`accesses × pJ/access`) and bandwidth arguments
/// can be made exactly. One access completes per cycle — the *caller* (the
/// PE model) accounts cycles, since the whole point of the OMU memory
/// organization is that 8 banks serve one row access in the same cycle.
///
/// # Examples
///
/// ```
/// use omu_simhw::{SramBank, SramSpec};
///
/// let mut bank = SramBank::new(SramSpec::OMU_TMEM);
/// bank.write(17, 0xDEAD_BEEF);
/// assert_eq!(bank.read(17), 0xDEAD_BEEF);
/// assert_eq!(bank.stats().accesses(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SramBank {
    spec: SramSpec,
    words: Vec<u64>,
    stats: SramStats,
}

impl SramBank {
    /// Creates a zero-initialized bank.
    pub fn new(spec: SramSpec) -> Self {
        SramBank {
            spec,
            words: vec![0; spec.rows],
            stats: SramStats::default(),
        }
    }

    /// The bank geometry.
    pub fn spec(&self) -> SramSpec {
        self.spec
    }

    /// Reads the word at `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range — addresses are produced by the
    /// allocator, which enforces capacity, so an out-of-range row is a
    /// model bug rather than a workload condition.
    #[inline]
    pub fn read(&mut self, row: usize) -> u64 {
        assert!(
            row < self.spec.rows,
            "SRAM row {row} out of range ({})",
            self.spec.rows
        );
        self.stats.reads += 1;
        self.words[row]
    }

    /// Writes the word at `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range (see [`SramBank::read`]).
    #[inline]
    pub fn write(&mut self, row: usize, word: u64) {
        assert!(
            row < self.spec.rows,
            "SRAM row {row} out of range ({})",
            self.spec.rows
        );
        self.stats.writes += 1;
        self.words[row] = word;
    }

    /// Reads without counting (for debug inspection / map export, which
    /// does not model hardware accesses).
    #[inline]
    pub fn peek(&self, row: usize) -> u64 {
        self.words[row]
    }

    /// The access counters.
    pub fn stats(&self) -> SramStats {
        self.stats
    }

    /// Resets the access counters (contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = SramStats::default();
    }

    /// Zeroes the contents and counters.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.stats = SramStats::default();
    }

    /// Flips one bit of the stored word — fault injection for resilience
    /// experiments (modeling a soft error in the macro). Not counted as an
    /// access.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `bit` is out of range.
    pub fn inject_bit_flip(&mut self, row: usize, bit: u32) {
        assert!(
            row < self.spec.rows,
            "SRAM row {row} out of range ({})",
            self.spec.rows
        );
        assert!(bit < self.spec.width_bits, "bit {bit} outside word width");
        self.words[row] ^= 1 << bit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_geometry() {
        let s = SramSpec::OMU_TMEM;
        assert_eq!(s.bytes(), 32 * 1024);
        assert_eq!(s.kilobytes(), 32.0);
        assert_eq!(s.rows, 4096);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_rows_rejected() {
        let _ = SramSpec::new(0, 64);
    }

    #[test]
    #[should_panic(expected = "word width")]
    fn wide_words_rejected() {
        let _ = SramSpec::new(16, 65);
    }

    #[test]
    fn read_write_and_counters() {
        let mut b = SramBank::new(SramSpec::new(8, 64));
        assert_eq!(b.read(3), 0, "zero initialized");
        b.write(3, 42);
        b.write(7, 7);
        assert_eq!(b.read(3), 42);
        assert_eq!(b.stats().reads, 2);
        assert_eq!(b.stats().writes, 2);
        assert_eq!(b.stats().accesses(), 4);
    }

    #[test]
    fn peek_does_not_count() {
        let mut b = SramBank::new(SramSpec::new(8, 64));
        b.write(1, 5);
        assert_eq!(b.peek(1), 5);
        assert_eq!(b.stats().reads, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_read_panics() {
        let mut b = SramBank::new(SramSpec::new(8, 64));
        let _ = b.read(8);
    }

    #[test]
    fn clear_and_reset() {
        let mut b = SramBank::new(SramSpec::new(4, 64));
        b.write(0, 9);
        b.reset_stats();
        assert_eq!(b.stats().accesses(), 0);
        assert_eq!(b.peek(0), 9);
        b.clear();
        assert_eq!(b.peek(0), 0);
    }

    #[test]
    fn bit_flip_flips_exactly_one_bit() {
        let mut b = SramBank::new(SramSpec::new(4, 64));
        b.write(2, 0b1010);
        b.inject_bit_flip(2, 0);
        assert_eq!(b.peek(2), 0b1011);
        b.inject_bit_flip(2, 0);
        assert_eq!(b.peek(2), 0b1010, "double flip restores");
    }

    #[test]
    #[should_panic(expected = "outside word width")]
    fn bit_flip_bounds_checked() {
        let mut b = SramBank::new(SramSpec::new(4, 32));
        b.inject_bit_flip(0, 40);
    }

    #[test]
    fn stats_merge() {
        let mut a = SramStats {
            reads: 1,
            writes: 2,
        };
        a.merge(&SramStats {
            reads: 10,
            writes: 20,
        });
        assert_eq!(a.reads, 11);
        assert_eq!(a.writes, 22);
    }
}
