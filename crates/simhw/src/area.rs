//! Silicon area model (reproduces the Fig. 8 floorplan numbers).

use std::fmt;

use serde::{Deserialize, Serialize};

/// One component's area contribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaComponent {
    /// Component name.
    pub name: String,
    /// Area of one instance in mm².
    pub mm2_each: f64,
    /// Instance count.
    pub count: usize,
}

impl AreaComponent {
    /// Total area of all instances.
    pub fn total_mm2(&self) -> f64 {
        self.mm2_each * self.count as f64
    }
}

/// A per-component area model with a top-level overhead factor for
/// placement/routing utilization.
///
/// # Examples
///
/// ```
/// use omu_simhw::AreaModel;
///
/// let mut a = AreaModel::new(1.25);
/// a.add("sram", 0.8, 2);
/// assert!((a.total_mm2() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    components: Vec<AreaComponent>,
    overhead_factor: f64,
}

impl AreaModel {
    /// Creates an empty model with the given top-level overhead factor
    /// (≥ 1; accounts for P&R utilization, power grid, spacing).
    ///
    /// # Panics
    ///
    /// Panics if `overhead_factor < 1.0` or is not finite.
    pub fn new(overhead_factor: f64) -> Self {
        assert!(
            overhead_factor.is_finite() && overhead_factor >= 1.0,
            "overhead factor must be >= 1, got {overhead_factor}"
        );
        AreaModel {
            components: Vec::new(),
            overhead_factor,
        }
    }

    /// Adds `count` instances of a component of `mm2_each` mm².
    pub fn add(&mut self, name: &str, mm2_each: f64, count: usize) {
        assert!(
            mm2_each.is_finite() && mm2_each >= 0.0,
            "area must be non-negative"
        );
        self.components.push(AreaComponent {
            name: name.to_owned(),
            mm2_each,
            count,
        });
    }

    /// The component rows.
    pub fn components(&self) -> &[AreaComponent] {
        &self.components
    }

    /// Sum of component areas, before overhead.
    pub fn cell_mm2(&self) -> f64 {
        self.components.iter().map(AreaComponent::total_mm2).sum()
    }

    /// Total area including overhead.
    pub fn total_mm2(&self) -> f64 {
        self.cell_mm2() * self.overhead_factor
    }

    /// The overhead factor.
    pub fn overhead_factor(&self) -> f64 {
        self.overhead_factor
    }
}

impl fmt::Display for AreaModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "area model (overhead ×{:.3}):", self.overhead_factor)?;
        for c in &self.components {
            writeln!(
                f,
                "  {:<24} {:>2} × {:>8.4} mm² = {:>8.4} mm²",
                c.name,
                c.count,
                c.mm2_each,
                c.total_mm2()
            )?;
        }
        writeln!(f, "  {:<24} {:>23.4} mm²", "cell total", self.cell_mm2())?;
        writeln!(
            f,
            "  {:<24} {:>23.4} mm²",
            "with overhead",
            self.total_mm2()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate_with_counts() {
        let mut a = AreaModel::new(1.0);
        a.add("pe", 0.1, 8);
        a.add("top", 0.2, 1);
        assert!((a.cell_mm2() - 1.0).abs() < 1e-12);
        assert_eq!(a.components().len(), 2);
    }

    #[test]
    fn overhead_scales_total_only() {
        let mut a = AreaModel::new(1.5);
        a.add("x", 1.0, 1);
        assert_eq!(a.cell_mm2(), 1.0);
        assert!((a.total_mm2() - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "overhead factor")]
    fn sub_unity_overhead_rejected() {
        let _ = AreaModel::new(0.9);
    }

    #[test]
    fn display_shows_components() {
        let mut a = AreaModel::new(1.1);
        a.add("sram", 0.5, 4);
        let s = a.to_string();
        assert!(s.contains("sram"));
        assert!(s.contains("with overhead"));
    }
}
