//! AXI-stream bandwidth model for host ↔ accelerator transfers.

use serde::{Deserialize, Serialize};

/// A simple bandwidth model of the AXI stream interface through which the
/// host CPU DMAs point-cloud data into the accelerator (Fig. 7).
///
/// The paper hides ray-casting latency behind map updates; this model lets
/// the pipeline check that the *transfer* of each scan is also hidden
/// (transfer time per scan ≪ update time per scan).
///
/// # Examples
///
/// ```
/// use omu_simhw::AxiStreamModel;
///
/// let axi = AxiStreamModel::new(128, 1.0);
/// // 16 bytes per beat at 1 GHz = 16 GB/s.
/// assert_eq!(axi.bandwidth_bytes_per_sec(), 16e9);
/// assert_eq!(axi.cycles_for_bytes(64), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AxiStreamModel {
    bus_width_bits: u32,
    freq_ghz: f64,
}

impl AxiStreamModel {
    /// Creates a model for a bus of `bus_width_bits` running at
    /// `freq_ghz`.
    ///
    /// # Panics
    ///
    /// Panics if the width is zero or not a multiple of 8, or if the
    /// frequency is not positive and finite.
    pub fn new(bus_width_bits: u32, freq_ghz: f64) -> Self {
        assert!(
            bus_width_bits > 0 && bus_width_bits.is_multiple_of(8),
            "bus width must be a positive multiple of 8, got {bus_width_bits}"
        );
        assert!(
            freq_ghz.is_finite() && freq_ghz > 0.0,
            "frequency must be positive, got {freq_ghz}"
        );
        AxiStreamModel {
            bus_width_bits,
            freq_ghz,
        }
    }

    /// Bus width in bits.
    pub fn bus_width_bits(&self) -> u32 {
        self.bus_width_bits
    }

    /// Clock frequency in GHz.
    pub fn freq_ghz(&self) -> f64 {
        self.freq_ghz
    }

    /// Beats (cycles) needed to move `bytes`.
    pub fn cycles_for_bytes(&self, bytes: u64) -> u64 {
        let beat = (self.bus_width_bits / 8) as u64;
        bytes.div_ceil(beat)
    }

    /// Seconds needed to move `bytes`.
    pub fn seconds_for_bytes(&self, bytes: u64) -> f64 {
        crate::cycles_to_seconds(self.cycles_for_bytes(bytes), self.freq_ghz)
    }

    /// Peak bandwidth in bytes per second.
    pub fn bandwidth_bytes_per_sec(&self) -> f64 {
        (self.bus_width_bits as f64 / 8.0) * self.freq_ghz * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beat_rounding_up() {
        let axi = AxiStreamModel::new(64, 1.0);
        assert_eq!(axi.cycles_for_bytes(0), 0);
        assert_eq!(axi.cycles_for_bytes(1), 1);
        assert_eq!(axi.cycles_for_bytes(8), 1);
        assert_eq!(axi.cycles_for_bytes(9), 2);
    }

    #[test]
    fn seconds_scale_with_frequency() {
        let a = AxiStreamModel::new(64, 1.0);
        let b = AxiStreamModel::new(64, 2.0);
        assert!((a.seconds_for_bytes(800) - 2.0 * b.seconds_for_bytes(800)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "bus width")]
    fn non_byte_width_rejected() {
        let _ = AxiStreamModel::new(12, 1.0);
    }

    #[test]
    #[should_panic(expected = "frequency")]
    fn zero_frequency_rejected() {
        let _ = AxiStreamModel::new(64, 0.0);
    }
}
