//! A persistent, lazily-spawned worker pool for the OMU reproduction's
//! parallel engines.
//!
//! Every parallel path in the workspace used to pay a full
//! `std::thread::scope` spawn/join per call — at scan rate that is pure
//! overhead, and on a 1-CPU container it made the sharded engines
//! *slower* than single-shard. [`WorkerPool`] replaces that with:
//!
//! - **per-worker task queues** (`Mutex<VecDeque>` + `Condvar`), mirroring
//!   the accelerator's one-issue-queue-per-PE layout: branch shard *i*
//!   always lands on worker `i % threads`, so a shard's tasks never
//!   migrate between workers;
//! - **lazy spawning** — a worker thread is created the first time a task
//!   is pushed to its queue, so `sharded_1` never pays for eight threads;
//! - **condvar parking** — idle workers sleep; waking one is a single
//!   futex operation, orders of magnitude cheaper than a thread spawn;
//! - **optional core pinning** (Linux `sched_setaffinity`, best-effort,
//!   no extra dependency) for stable scaling curves on multi-core hosts;
//! - a **scope-safe borrow API** ([`WorkerPool::scope`]) with the same
//!   shape as `std::thread::scope`, so call sites that lend `&mut`
//!   borrows to workers port without lifetime gymnastics;
//! - **caller help**: while a scope waits for its tasks, the calling
//!   thread pops queued tasks and runs them itself. On a single CPU the
//!   caller usually drains the whole scope before any worker is
//!   scheduled, which is what makes pooled dispatch cost comparable to
//!   the inline path instead of a spawn storm.
//!
//! Worker panics never poison the pool: each task runs under
//! `catch_unwind`, and [`WorkerPool::try_scope`] reports them as a typed
//! [`TaskPanic`] so callers (the octree, the map facade) can surface a
//! structured error while restoring their own invariants.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Lock a mutex, recovering from poisoning instead of panicking.
///
/// Every mutex in this crate guards state that is consistent at each
/// instant a lock is released: tasks execute under `catch_unwind`
/// *outside* any pool lock, so a poisoned flag carries no information
/// about the guarded data — recovering is always sound, and it keeps the
/// pool's own code free of panic paths (the workspace `no-panic` rule).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// [`Condvar::wait`] with the same poison-recovery policy.
fn wait_unpoisoned<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A heap-allocated unit of work queued on one worker.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// One worker's queue: tasks plus the shutdown latch, guarded together so
/// a parked worker can atomically observe "no tasks and shutting down".
struct QueueState {
    tasks: VecDeque<Task>,
    shutdown: bool,
}

struct WorkerQueue {
    state: Mutex<QueueState>,
    available: Condvar,
}

impl WorkerQueue {
    fn new() -> Self {
        Self {
            state: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        }
    }
}

/// Cumulative pool counters (monotonic; snapshot via [`WorkerPool::stats`]).
///
/// `threads_spawned` is the load-bearing one for the perf story: after
/// warm-up it must stay flat across calls — the engine paths perform
/// *zero* per-call thread spawns (asserted in the integration tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads created so far (lazy; at most the pool's capacity).
    pub threads_spawned: u64,
    /// Workers successfully pinned to a core (Linux only, best-effort).
    pub workers_pinned: u64,
    /// `scope`/`try_scope` invocations.
    pub scopes: u64,
    /// Tasks pushed to worker queues.
    pub tasks_dispatched: u64,
    /// Tasks executed by pool worker threads.
    pub tasks_run_by_workers: u64,
    /// Tasks the waiting scope caller popped and ran itself.
    pub tasks_run_by_caller: u64,
    /// Times an idle worker parked on its condvar.
    pub parks: u64,
    /// Scopes that ran with the task-order shuffle engaged (the
    /// deterministic stress knob; see [`WorkerPool::set_shuffle_seed`]).
    pub shuffled_scopes: u64,
}

impl PoolStats {
    /// Total tasks that finished, regardless of which thread ran them.
    pub fn tasks_completed(&self) -> u64 {
        self.tasks_run_by_workers + self.tasks_run_by_caller
    }
}

#[derive(Default)]
struct StatCells {
    threads_spawned: AtomicU64,
    workers_pinned: AtomicU64,
    scopes: AtomicU64,
    tasks_dispatched: AtomicU64,
    tasks_run_by_workers: AtomicU64,
    tasks_run_by_caller: AtomicU64,
    parks: AtomicU64,
    shuffled_scopes: AtomicU64,
}

/// State shared between the pool handle and its worker threads.
struct Shared {
    queues: Box<[WorkerQueue]>,
    pin_workers: bool,
    /// Task-order shuffle knob: `shuffle_on` gates whether
    /// `shuffle_seed` is live (so every `u64` remains a usable seed).
    shuffle_on: AtomicBool,
    shuffle_seed: AtomicU64,
    stats: StatCells,
}

/// Lazily-spawned worker slot; `spawned` is a lock-free fast check so the
/// dispatch hot path takes the handle mutex only once per worker lifetime.
struct WorkerSlot {
    spawned: AtomicBool,
    handle: Mutex<Option<JoinHandle<()>>>,
}

/// A persistent pool of worker threads with per-worker task queues and a
/// scoped borrow API. See the crate docs for the design rationale.
///
/// The pool is `Send + Sync`; engines share one via `Arc<WorkerPool>` so
/// the read and write paths reuse the same warmed-up workers. Dropping
/// the pool signals shutdown and joins every spawned worker.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Box<[WorkerSlot]>,
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .field("stats", &self.stats())
            .finish()
    }
}

impl WorkerPool {
    /// Create a pool with capacity for `threads` workers (`0` resolves to
    /// the host's available parallelism). No thread is spawned until a
    /// task is first pushed to its queue.
    pub fn new(threads: usize) -> Self {
        Self::with_flags(threads, false)
    }

    /// Like [`WorkerPool::new`], but each worker pins itself to core
    /// `index % num_cores` on spawn (Linux; a silent no-op elsewhere).
    pub fn pinned(threads: usize) -> Self {
        Self::with_flags(threads, true)
    }

    fn with_flags(threads: usize, pin_workers: bool) -> Self {
        let threads = resolve_threads(threads);
        let queues: Box<[WorkerQueue]> = (0..threads).map(|_| WorkerQueue::new()).collect();
        let workers: Box<[WorkerSlot]> = (0..threads)
            .map(|_| WorkerSlot {
                spawned: AtomicBool::new(false),
                handle: Mutex::new(None),
            })
            .collect();
        let env_seed = shuffle_seed_from_env();
        Self {
            shared: Arc::new(Shared {
                queues,
                pin_workers,
                shuffle_on: AtomicBool::new(env_seed.is_some()),
                shuffle_seed: AtomicU64::new(env_seed.unwrap_or(0)),
                stats: StatCells::default(),
            }),
            workers,
        }
    }

    /// Engage (or disarm, with `None`) the deterministic task-order
    /// shuffle: while set, each scope holds its spawned tasks back,
    /// publishes them to their worker queues in a seeded permuted order,
    /// and the caller-help drain sweeps queues in a permuted order too.
    ///
    /// This is a debug/stress knob: the engines' bit-identity contract
    /// must hold for *every* execution order, and the shuffle flushes
    /// ordering bugs (merge order, finish order, counter order) that the
    /// default round-robin schedule would mask. Runs with the same seed
    /// permute identically; the equivalence suite re-runs under several
    /// seeds in CI. Also settable at pool creation via the
    /// `OMU_POOL_SHUFFLE_SEED` environment variable (decimal or `0x` hex).
    pub fn set_shuffle_seed(&self, seed: Option<u64>) {
        match seed {
            Some(s) => {
                self.shared.shuffle_seed.store(s, Ordering::Relaxed);
                self.shared.shuffle_on.store(true, Ordering::Release);
            }
            None => self.shared.shuffle_on.store(false, Ordering::Release),
        }
    }

    /// The active shuffle seed, or `None` when the shuffle is off.
    pub fn shuffle_seed(&self) -> Option<u64> {
        if self.shared.shuffle_on.load(Ordering::Acquire) {
            Some(self.shared.shuffle_seed.load(Ordering::Relaxed))
        } else {
            None
        }
    }

    /// Worker capacity (queues), not the number of threads spawned so far.
    pub fn threads(&self) -> usize {
        self.shared.queues.len()
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> PoolStats {
        let s = &self.shared.stats;
        PoolStats {
            threads_spawned: s.threads_spawned.load(Ordering::Relaxed),
            workers_pinned: s.workers_pinned.load(Ordering::Relaxed),
            scopes: s.scopes.load(Ordering::Relaxed),
            tasks_dispatched: s.tasks_dispatched.load(Ordering::Relaxed),
            tasks_run_by_workers: s.tasks_run_by_workers.load(Ordering::Relaxed),
            tasks_run_by_caller: s.tasks_run_by_caller.load(Ordering::Relaxed),
            parks: s.parks.load(Ordering::Relaxed),
            shuffled_scopes: s.shuffled_scopes.load(Ordering::Relaxed),
        }
    }

    /// Run `f` with a [`Scope`] on which tasks borrowing from the caller's
    /// environment can be spawned; returns once every spawned task has
    /// completed. If any task panicked, the panic is resumed on the caller
    /// (matching `std::thread::scope`); use [`WorkerPool::try_scope`] for
    /// a typed error instead.
    pub fn scope<'env, T>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> T) -> T {
        match self.try_scope(f) {
            Ok(value) => value,
            // omu-lint: allow(no-panic) — documented contract: `scope`
            // resumes task panics on the caller exactly like
            // `std::thread::scope`; `try_scope` is the typed-error form.
            Err(panic) => panic!("{panic}"),
        }
    }

    /// Like [`WorkerPool::scope`], but task panics are captured and
    /// returned as [`TaskPanic`] instead of unwinding, so the caller can
    /// restore its own invariants and surface a structured error. A panic
    /// in the scope body `f` itself (not in a task) still unwinds — but
    /// only after every already-spawned task has completed, preserving
    /// the borrow-safety guarantee.
    pub fn try_scope<'env, T>(
        &self,
        f: impl FnOnce(&Scope<'_, 'env>) -> T,
    ) -> Result<T, TaskPanic> {
        self.shared.stats.scopes.fetch_add(1, Ordering::Relaxed);
        // Each shuffled scope draws its own permutation stream so a
        // multi-scope run (scan after scan) explores different task
        // orders while staying reproducible from the one seed.
        let shuffle = self.shuffle_seed().map(|seed| {
            let nth = self
                .shared
                .stats
                .shuffled_scopes
                .fetch_add(1, Ordering::Relaxed);
            splitmix64(seed ^ nth.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        });
        let state = Arc::new(ScopeState::new());
        let scope = Scope {
            pool: self,
            state: &state,
            next_worker: std::cell::Cell::new(0),
            deferred: RefCell::new(Vec::new()),
            shuffle,
            _env: PhantomData,
        };
        let body = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Shuffle mode: tasks were held back by `spawn_on`; publish them
        // to their queues in a seeded permuted order. This happens even
        // when the body panicked — the tasks exist and hold borrows, so
        // they must run before the scope unwinds.
        let deferred = std::mem::take(&mut *scope.deferred.borrow_mut());
        if !deferred.is_empty() {
            let mut rng = shuffle.unwrap_or(1);
            let order = permuted_indices(&mut rng, deferred.len());
            let mut slots: Vec<Option<(usize, Task)>> = deferred.into_iter().map(Some).collect();
            for i in order {
                // omu-lint: allow(no-panic) — every index from
                // `permuted_indices` appears exactly once, so each slot
                // is taken exactly once.
                let (worker, task) = slots[i].take().expect("permutation visits each slot once");
                self.push_task(worker, task);
            }
        }
        // Always wait for spawned tasks, even when the body panicked:
        // the tasks hold borrows into the caller's frame.
        self.drain_and_wait(&state, shuffle);
        match body {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                let panics = std::mem::take(&mut *lock_unpoisoned(&state.panics));
                if panics.is_empty() {
                    Ok(value)
                } else {
                    Err(TaskPanic { messages: panics })
                }
            }
        }
    }

    /// Caller-help wait loop: run queued tasks on this thread until the
    /// scope's pending count reaches zero, then park on the scope condvar
    /// for any still in flight on workers.
    ///
    /// Under shuffle mode the sweep visits queues in a freshly permuted
    /// order each round: on a single CPU the caller usually drains the
    /// whole scope itself, so without this the queue-index sweep order
    /// would fix the execution order no matter how publication was
    /// permuted.
    fn drain_and_wait(&self, state: &ScopeState, shuffle: Option<u64>) {
        let nqueues = self.shared.queues.len();
        let mut rng = shuffle.unwrap_or(0);
        loop {
            if *lock_unpoisoned(&state.pending) == 0 {
                return;
            }
            let mut ran = false;
            let sweep: Vec<usize> = match shuffle {
                Some(_) => permuted_indices(&mut rng, nqueues),
                None => (0..nqueues).collect(),
            };
            for qi in sweep {
                let queue = &self.shared.queues[qi];
                let task = lock_unpoisoned(&queue.state).tasks.pop_front();
                if let Some(task) = task {
                    task();
                    self.shared
                        .stats
                        .tasks_run_by_caller
                        .fetch_add(1, Ordering::Relaxed);
                    ran = true;
                }
            }
            if !ran {
                // Queues are empty; whatever is still pending is running
                // on a worker right now. Sleep until the last one signals.
                let mut pending = lock_unpoisoned(&state.pending);
                while *pending != 0 {
                    pending = wait_unpoisoned(&state.done, pending);
                }
                return;
            }
        }
    }

    fn push_task(&self, worker: usize, task: Task) {
        self.shared
            .stats
            .tasks_dispatched
            .fetch_add(1, Ordering::Relaxed);
        self.ensure_worker(worker);
        let queue = &self.shared.queues[worker];
        lock_unpoisoned(&queue.state).tasks.push_back(task);
        queue.available.notify_one();
    }

    /// Spawn worker `index` if it has not been spawned yet (lazy).
    fn ensure_worker(&self, index: usize) {
        let slot = &self.workers[index];
        if slot.spawned.load(Ordering::Acquire) {
            return;
        }
        let mut handle = lock_unpoisoned(&slot.handle);
        if handle.is_some() {
            return;
        }
        let shared = Arc::clone(&self.shared);
        let joiner = std::thread::Builder::new()
            .name(format!("omu-pool-{index}"))
            .spawn(move || worker_loop(shared, index))
            // omu-lint: allow(no-panic) — thread-spawn failure is
            // unrecoverable resource exhaustion; a typed error here
            // would leave the scope's pending count permanently stuck.
            .expect("spawn pool worker thread");
        *handle = Some(joiner);
        slot.spawned.store(true, Ordering::Release);
        self.shared
            .stats
            .threads_spawned
            .fetch_add(1, Ordering::Relaxed);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for queue in self.shared.queues.iter() {
            lock_unpoisoned(&queue.state).shutdown = true;
            queue.available.notify_all();
        }
        for slot in self.workers.iter() {
            if let Some(handle) = lock_unpoisoned(&slot.handle).take() {
                let _ = handle.join();
            }
        }
    }
}

/// Seed for the task-order shuffle from `OMU_POOL_SHUFFLE_SEED`
/// (decimal or `0x`-prefixed hex); unset or unparsable means off.
fn shuffle_seed_from_env() -> Option<u64> {
    parse_shuffle_seed(&std::env::var("OMU_POOL_SHUFFLE_SEED").ok()?)
}

/// Parse a shuffle seed: decimal or `0x`-prefixed hex, whitespace-tolerant.
fn parse_shuffle_seed(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

/// One step of the splitmix64 sequence — the permutation stream behind
/// the shuffle knob. Small, seedable, and dependency-free; statistical
/// quality far beyond what a stress-order scrambler needs.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Advance `state` and return the next pseudo-random word.
fn next_rand(state: &mut u64) -> u64 {
    *state = splitmix64(*state);
    *state
}

/// A seeded Fisher–Yates permutation of `0..n`, advancing `state`.
fn permuted_indices(state: &mut u64, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next_rand(state) % (i as u64 + 1)) as usize;
        idx.swap(i, j);
    }
    idx
}

fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    if shared.pin_workers && pin_to_core(index) {
        shared.stats.workers_pinned.fetch_add(1, Ordering::Relaxed);
    }
    let queue = &shared.queues[index];
    let mut state = lock_unpoisoned(&queue.state);
    loop {
        if let Some(task) = state.tasks.pop_front() {
            drop(state);
            // Tasks are wrapped in catch_unwind by Scope::spawn_on, so
            // this call never unwinds through the worker loop.
            task();
            shared
                .stats
                .tasks_run_by_workers
                .fetch_add(1, Ordering::Relaxed);
            state = lock_unpoisoned(&queue.state);
        } else if state.shutdown {
            return;
        } else {
            shared.stats.parks.fetch_add(1, Ordering::Relaxed);
            state = wait_unpoisoned(&queue.available, state);
        }
    }
}

/// Pin the calling thread to `core % num_cores`. Linux-only; std already
/// links libc, so binding `sched_setaffinity` directly avoids a crate
/// dependency. Best-effort: failures are reported, never fatal.
#[cfg(target_os = "linux")]
fn pin_to_core(core: usize) -> bool {
    // glibc's cpu_set_t is 1024 bits.
    const CPU_SET_WORDS: usize = 16;
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    let ncpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(CPU_SET_WORDS * 64);
    let core = core % ncpus;
    let mut mask = [0u64; CPU_SET_WORDS];
    mask[core / 64] |= 1u64 << (core % 64);
    // SAFETY: pid 0 targets the calling thread; the mask pointer is valid
    // for the advertised size for the duration of the call.
    unsafe {
        sched_setaffinity(
            0,
            std::mem::size_of::<[u64; CPU_SET_WORDS]>(),
            mask.as_ptr(),
        ) == 0
    }
}

#[cfg(not(target_os = "linux"))]
fn pin_to_core(_core: usize) -> bool {
    false
}

/// Completion tracking for one `scope` call.
struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panics: Mutex<Vec<String>>,
}

impl ScopeState {
    fn new() -> Self {
        Self {
            pending: Mutex::new(0),
            done: Condvar::new(),
            panics: Mutex::new(Vec::new()),
        }
    }

    fn finish_task(&self, panic_payload: Option<Box<dyn Any + Send>>) {
        if let Some(payload) = panic_payload {
            // `payload.as_ref()` (not `&payload`): a `&Box<dyn Any>` would
            // unsize the Box itself into `dyn Any` and defeat the downcasts.
            lock_unpoisoned(&self.panics).push(panic_message(payload.as_ref()));
        }
        let mut pending = lock_unpoisoned(&self.pending);
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker task panicked with a non-string payload".to_owned()
    }
}

/// Error returned by [`WorkerPool::try_scope`] when one or more tasks
/// panicked. Carries the extracted panic messages; the pool itself stays
/// fully usable afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskPanic {
    messages: Vec<String>,
}

impl TaskPanic {
    /// Builds a `TaskPanic` from a caught unwind payload (as returned
    /// by `std::panic::catch_unwind`). For service loops that catch
    /// their own panics in order to record a typed error before the
    /// thread exits — e.g. the map service's writer — instead of
    /// letting the payload reach the joiner.
    pub fn from_payload(payload: &(dyn Any + Send)) -> Self {
        TaskPanic {
            messages: vec![panic_message(payload)],
        }
    }

    /// Number of tasks that panicked in the scope.
    pub fn count(&self) -> usize {
        self.messages.len()
    }

    /// Message extracted from the first panic payload.
    pub fn first_message(&self) -> &str {
        self.messages.first().map(String::as_str).unwrap_or("")
    }
}

impl fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.messages.len() {
            1 => write!(f, "worker task panicked: {}", self.messages[0]),
            n => write!(
                f,
                "{n} worker tasks panicked; first: {}",
                self.first_message()
            ),
        }
    }
}

impl std::error::Error for TaskPanic {}

/// A dedicated long-lived thread running one service loop to completion
/// — e.g. the map service's writer thread. Service threads live outside
/// the worker-pool queues (a service loop parks on its own channel and
/// must never occupy a pool worker slot), but they are spawned and
/// joined through this crate so thread management stays confined here
/// (the workspace thread-confinement lint).
///
/// Join explicitly with [`ServiceThread::join`] to observe a panic as a
/// typed [`TaskPanic`]; dropping the handle joins implicitly and
/// swallows the outcome.
#[derive(Debug)]
pub struct ServiceThread {
    handle: Option<JoinHandle<()>>,
}

/// Spawn `f` on a dedicated OS thread named `name` and return its
/// [`ServiceThread`] handle.
pub fn spawn_service<F>(name: &str, f: F) -> ServiceThread
where
    F: FnOnce() + Send + 'static,
{
    let handle = std::thread::Builder::new()
        .name(format!("omu-svc-{name}"))
        .spawn(f)
        // omu-lint: allow(no-panic) — same policy as pool workers:
        // thread-spawn failure is unrecoverable resource exhaustion and
        // a typed error would leave the service permanently absent.
        .expect("spawn service thread");
    ServiceThread {
        handle: Some(handle),
    }
}

impl ServiceThread {
    /// Wait for the service loop to finish. A panic inside the loop is
    /// reported as a [`TaskPanic`] (message extracted from the payload);
    /// the panic does not propagate to the caller.
    pub fn join(mut self) -> Result<(), TaskPanic> {
        match self.handle.take() {
            None => Ok(()),
            Some(handle) => match handle.join() {
                Ok(()) => Ok(()),
                Err(payload) => Err(TaskPanic {
                    messages: vec![panic_message(payload.as_ref())],
                }),
            },
        }
    }
}

impl Drop for ServiceThread {
    /// Joining on drop (rather than detaching) keeps service shutdown
    /// deterministic: by the time the owner is gone, the loop has exited.
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Handle passed to the closure of [`WorkerPool::scope`]; spawns tasks
/// that may borrow from the enclosing environment (`'env`).
pub struct Scope<'pool, 'env> {
    pool: &'pool WorkerPool,
    state: &'pool Arc<ScopeState>,
    next_worker: std::cell::Cell<usize>,
    /// Shuffle mode holds spawned tasks here (with their target worker)
    /// instead of publishing immediately; `try_scope` releases them in a
    /// seeded permuted order once the scope body returns.
    deferred: RefCell<Vec<(usize, Task)>>,
    /// Per-scope shuffle stream; `None` when the shuffle is off.
    shuffle: Option<u64>,
    /// Invariant over `'env`, like `std::thread::Scope`, so the borrow
    /// checker cannot shrink the environment lifetime under us.
    _env: PhantomData<&'env mut &'env ()>,
}

impl fmt::Debug for Scope<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scope")
            .field("next_worker", &self.next_worker.get())
            .field("shuffle", &self.shuffle)
            .finish_non_exhaustive()
    }
}

impl<'env> Scope<'_, 'env> {
    /// Spawn `f` on the next worker (round-robin). Completion is awaited
    /// by the enclosing `scope`/`try_scope` before it returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let worker = self.next_worker.get();
        self.next_worker.set(worker.wrapping_add(1));
        self.spawn_on(worker, f);
    }

    /// Spawn `f` on worker `worker % threads`. Pinning a shard to a fixed
    /// worker keeps its queue — and therefore its cache working set — on
    /// one thread across calls.
    pub fn spawn_on<F>(&self, worker: usize, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let worker = worker % self.pool.threads();
        *lock_unpoisoned(&self.state.pending) += 1;
        let state = Arc::clone(self.state);
        let wrapped: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            state.finish_task(result.err());
        });
        // SAFETY: `try_scope` does not return before this task has run to
        // completion (`drain_and_wait` blocks on the pending count even
        // when the scope body panics — deferred tasks are published first
        // and then awaited the same way), so every borrow captured by `f`
        // strictly outlives the task. Erasing `'env` to `'static` is the
        // same containment argument `std::thread::scope` relies on.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(
                wrapped,
            )
        };
        if self.shuffle.is_some() {
            self.deferred.borrow_mut().push((worker, task));
        } else {
            self.pool.push_task(worker, task);
        }
    }

    /// Worker capacity of the owning pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn pool_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WorkerPool>();
        assert_send_sync::<Arc<WorkerPool>>();
    }

    #[test]
    fn scope_runs_borrowing_tasks_to_completion() {
        let pool = WorkerPool::new(4);
        let mut outputs = [0usize; 16];
        let total = pool.scope(|s| {
            for (i, slot) in outputs.iter_mut().enumerate() {
                s.spawn(move || *slot = i * i);
            }
            42
        });
        assert_eq!(total, 42);
        for (i, v) in outputs.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
        let stats = pool.stats();
        assert_eq!(stats.tasks_dispatched, 16);
        assert_eq!(stats.tasks_completed(), 16);
        assert_eq!(stats.scopes, 1);
    }

    #[test]
    fn workers_spawn_lazily_and_only_once() {
        let pool = WorkerPool::new(8);
        assert_eq!(pool.stats().threads_spawned, 0);
        pool.scope(|s| s.spawn_on(0, || {}));
        assert_eq!(pool.stats().threads_spawned, 1);
        // Repeated scopes on the same worker spawn nothing new.
        for _ in 0..32 {
            pool.scope(|s| s.spawn_on(0, || {}));
        }
        assert_eq!(pool.stats().threads_spawned, 1);
        // Touching all eight queues tops out at the capacity.
        pool.scope(|s| {
            for w in 0..8 {
                s.spawn_on(w, || {});
            }
        });
        assert_eq!(pool.stats().threads_spawned, 8);
        for _ in 0..32 {
            pool.scope(|s| {
                for w in 0..8 {
                    s.spawn_on(w, || {});
                }
            });
        }
        assert_eq!(pool.stats().threads_spawned, 8);
    }

    #[test]
    fn idle_workers_park_after_a_scope() {
        let pool = WorkerPool::new(2);
        pool.scope(|s| {
            s.spawn_on(0, || {});
            s.spawn_on(1, || {});
        });
        // Workers park once their queues drain; give the scheduler a
        // moment (polling, not a fixed sleep, so the test stays fast).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pool.stats().parks < pool.stats().threads_spawned {
            assert!(
                std::time::Instant::now() < deadline,
                "workers never parked: {:?}",
                pool.stats()
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn try_scope_reports_task_panics_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let mut done = [false; 4];
        let err = pool
            .try_scope(|s| {
                for (i, flag) in done.iter_mut().enumerate() {
                    s.spawn_on(i, move || {
                        if i == 2 {
                            panic!("injected failure {i}");
                        }
                        *flag = true;
                    });
                }
            })
            .unwrap_err();
        assert_eq!(err.count(), 1);
        assert!(err.first_message().contains("injected failure 2"));
        assert_eq!(done, [true, true, false, true]);
        // The pool keeps working after a panic.
        let sum = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    sum.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn scope_resumes_task_panics_on_the_caller() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| s.spawn(|| panic!("boom")));
        }));
        let payload = result.unwrap_err();
        assert!(panic_message(payload.as_ref()).contains("boom"));
    }

    #[test]
    fn body_panic_still_waits_for_spawned_tasks() {
        let pool = WorkerPool::new(2);
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
                panic!("body failed");
            });
        }));
        assert!(result.is_err());
        // The borrow-safety contract: all spawned tasks finished before
        // the panic escaped the scope.
        assert_eq!(ran.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn drop_joins_spawned_workers() {
        let marker = Arc::new(());
        let pool = WorkerPool::new(4);
        pool.scope(|s| {
            for w in 0..4 {
                let m = Arc::clone(&marker);
                s.spawn_on(w, move || drop(m));
            }
        });
        drop(pool);
        // All worker threads exited and released their shared state.
        assert_eq!(Arc::strong_count(&marker), 1);
    }

    #[test]
    fn zero_threads_resolves_to_host_parallelism() {
        let pool = WorkerPool::new(0);
        assert!(pool.threads() >= 1);
    }

    #[test]
    fn pinned_pool_runs_tasks() {
        let pool = WorkerPool::pinned(2);
        let count = AtomicUsize::new(0);
        pool.scope(|s| {
            for w in 0..2 {
                s.spawn_on(w, || {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn permutations_are_deterministic_per_seed() {
        let mut a = 0xDEAD_BEEF;
        let mut b = 0xDEAD_BEEF;
        let pa = permuted_indices(&mut a, 64);
        let pb = permuted_indices(&mut b, 64);
        assert_eq!(pa, pb, "same seed must give the same permutation");
        let mut sorted = pa.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>(), "must be a permutation");
        // Consecutive draws from one stream differ (the per-scope streams).
        let pc = permuted_indices(&mut a, 64);
        assert_ne!(pa, pc, "stream must advance between draws");
    }

    #[test]
    fn parse_shuffle_seed_accepts_decimal_and_hex() {
        assert_eq!(parse_shuffle_seed("42"), Some(42));
        assert_eq!(parse_shuffle_seed(" 0xFF \n"), Some(255));
        assert_eq!(parse_shuffle_seed("0X10"), Some(16));
        assert_eq!(parse_shuffle_seed("banana"), None);
        assert_eq!(parse_shuffle_seed(""), None);
    }

    #[test]
    fn shuffle_seed_round_trips_and_disarms() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.shuffle_seed(), None);
        pool.set_shuffle_seed(Some(7));
        assert_eq!(pool.shuffle_seed(), Some(7));
        pool.set_shuffle_seed(None);
        assert_eq!(pool.shuffle_seed(), None);
    }

    #[test]
    fn shuffled_scopes_run_every_task_exactly_once() {
        let pool = WorkerPool::new(4);
        pool.set_shuffle_seed(Some(0x5EED));
        for round in 0..8u64 {
            let mut outputs = [0u64; 32];
            pool.scope(|s| {
                for (i, slot) in outputs.iter_mut().enumerate() {
                    s.spawn(move || *slot = round * 1000 + i as u64);
                }
            });
            for (i, v) in outputs.iter().enumerate() {
                assert_eq!(*v, round * 1000 + i as u64);
            }
        }
        assert_eq!(pool.stats().shuffled_scopes, 8);
        assert_eq!(pool.stats().tasks_completed(), 8 * 32);
    }

    #[test]
    fn shuffled_try_scope_still_reports_panics() {
        let pool = WorkerPool::new(2);
        pool.set_shuffle_seed(Some(99));
        let err = pool
            .try_scope(|s| {
                s.spawn(|| panic!("shuffled boom"));
                s.spawn(|| {});
            })
            .unwrap_err();
        assert_eq!(err.count(), 1);
        assert!(err.first_message().contains("shuffled boom"));
    }

    #[test]
    fn shuffled_body_panic_still_runs_deferred_tasks() {
        let pool = WorkerPool::new(2);
        pool.set_shuffle_seed(Some(3));
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
                panic!("body failed under shuffle");
            });
        }));
        assert!(result.is_err());
        // Deferred tasks were published and completed before the panic
        // escaped — the borrow-safety contract holds under shuffle too.
        assert_eq!(ran.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_values_round_trip_through_scope() {
        let pool = WorkerPool::new(3);
        let inputs: Vec<u64> = (0..24).collect();
        let mut outputs: Vec<Option<u64>> = vec![None; inputs.len()];
        pool.scope(|s| {
            for (slot, v) in outputs.iter_mut().zip(&inputs) {
                s.spawn(move || *slot = Some(v * 3));
            }
        });
        for (i, v) in outputs.iter().enumerate() {
            assert_eq!(*v, Some(i as u64 * 3));
        }
    }

    #[test]
    fn service_thread_runs_to_completion_and_joins_clean() {
        let flag = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&flag);
        let svc = spawn_service("test", move || {
            seen.store(7, Ordering::Release);
        });
        assert!(svc.join().is_ok());
        assert_eq!(flag.load(Ordering::Acquire), 7);
    }

    #[test]
    fn service_thread_panic_surfaces_as_task_panic() {
        let svc = spawn_service("test-panic", || {
            panic!("service loop died");
        });
        let err = svc.join().unwrap_err();
        assert_eq!(err.count(), 1);
        assert!(err.first_message().contains("service loop died"));
    }

    #[test]
    fn service_thread_drop_joins_implicitly() {
        let flag = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&flag);
        drop(spawn_service("test-drop", move || {
            seen.store(3, Ordering::Release);
        }));
        // Drop joined: the store is guaranteed visible afterwards.
        assert_eq!(flag.load(Ordering::Acquire), 3);
    }
}
