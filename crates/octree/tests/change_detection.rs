//! Change detection (OctoMap's `enableChangeDetection`): the tree records
//! voxels whose occupancy classification changed, so incremental
//! consumers only touch what moved.

use omu_geometry::{Point3, PointCloud, Scan, VoxelKey};
use omu_octree::OctreeF32;

#[test]
fn disabled_by_default_and_costs_nothing() {
    let mut t = OctreeF32::new(0.1).unwrap();
    assert!(!t.change_detection_enabled());
    t.update_key(VoxelKey::ORIGIN, true);
    assert_eq!(t.num_changed_keys(), 0);
    assert_eq!(t.changed_keys().count(), 0);
}

#[test]
fn new_observations_are_changes() {
    let mut t = OctreeF32::new(0.1).unwrap();
    t.set_change_detection(true);
    let a = VoxelKey::new(33000, 33000, 33000);
    let b = VoxelKey::new(33001, 33000, 33000);
    t.update_key(a, true);
    t.update_key(b, false);
    let mut changed: Vec<VoxelKey> = t.changed_keys().copied().collect();
    changed.sort();
    assert_eq!(changed, vec![a, b], "both first observations are changes");
}

#[test]
fn reinforcing_observations_are_not_changes() {
    let mut t = OctreeF32::new(0.1).unwrap();
    t.set_change_detection(true);
    let k = VoxelKey::ORIGIN;
    t.update_key(k, true);
    t.reset_changed_keys();
    // More hits keep the classification at occupied: no change.
    t.update_key(k, true);
    t.update_key(k, true);
    assert_eq!(t.num_changed_keys(), 0);
}

#[test]
fn classification_flip_is_a_change() {
    let mut t = OctreeF32::new(0.1).unwrap();
    t.set_change_detection(true);
    let k = VoxelKey::ORIGIN;
    t.update_key(k, true); // occupied
    t.reset_changed_keys();
    // Misses until the classification flips to free.
    t.update_key(k, false);
    t.update_key(k, false);
    t.update_key(k, false);
    assert_eq!(t.num_changed_keys(), 1);
    assert_eq!(t.changed_keys().next(), Some(&k));
}

#[test]
fn reset_and_disable_clear_the_set() {
    let mut t = OctreeF32::new(0.1).unwrap();
    t.set_change_detection(true);
    t.update_key(VoxelKey::ORIGIN, true);
    assert_eq!(t.num_changed_keys(), 1);
    t.reset_changed_keys();
    assert_eq!(t.num_changed_keys(), 0);
    t.update_key(VoxelKey::new(100, 100, 100), true);
    t.set_change_detection(false);
    assert_eq!(t.num_changed_keys(), 0);
    assert!(!t.change_detection_enabled());
}

#[test]
fn scan_insertion_reports_frontier_only() {
    let mut t = OctreeF32::new(0.1).unwrap();
    t.set_change_detection(true);
    let scan = Scan::new(
        Point3::ZERO,
        [Point3::new(1.0, 0.0, 0.0)]
            .into_iter()
            .collect::<PointCloud>(),
    );
    t.insert_scan(&scan).unwrap();
    let first_pass = t.num_changed_keys();
    assert!(first_pass > 5, "a fresh ray changes every traversed voxel");
    t.reset_changed_keys();
    // Re-inserting the same scan reinforces existing classifications.
    t.insert_scan(&scan).unwrap();
    assert_eq!(
        t.num_changed_keys(),
        0,
        "repeat observations change nothing"
    );
}

#[test]
fn clear_resets_change_set_too() {
    let mut t = OctreeF32::new(0.1).unwrap();
    t.set_change_detection(true);
    t.update_key(VoxelKey::ORIGIN, true);
    t.clear();
    assert_eq!(t.num_changed_keys(), 0);
    assert!(t.change_detection_enabled(), "tracking survives clear()");
}
