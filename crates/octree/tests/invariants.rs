//! Property-based invariants of the occupancy octree under random
//! operation sequences.
//!
//! These are the structural guarantees OctoMap's correctness rests on:
//!
//! 1. Every stored value lies within the clamping bounds.
//! 2. Every inner node's value is the max of its children (eq. 3).
//! 3. The tree is canonical: no inner node has 8 equal-valued leaf
//!    children (it would have been pruned).
//! 4. Search answers agree with bulk iteration.
//! 5. Node accounting matches iteration.

use omu_geometry::{LogOdds, Occupancy, Point3, PointCloud, Scan, VoxelKey, TREE_DEPTH};
use omu_octree::{OccupancyOctree, OctreeF32, OctreeFixed};
use proptest::prelude::*;

/// Checks all structural invariants via public APIs.
fn check_invariants<V: LogOdds>(tree: &OccupancyOctree<V>) {
    let params = tree.params();
    let mut leaves = 0usize;
    for leaf in tree.iter_leaves() {
        leaves += 1;
        // (1) Clamping bounds (half-LSB slack for the fixed representation).
        assert!(
            leaf.logodds >= params.clamp_min - 1e-3 && leaf.logodds <= params.clamp_max + 1e-3,
            "leaf {} out of clamp range: {}",
            leaf.key,
            leaf.logodds
        );
        // (4) Point search agrees with iteration for finest leaves.
        if leaf.depth == TREE_DEPTH {
            let (v, d) = tree
                .search(leaf.key)
                .expect("iterated leaf must be searchable");
            assert_eq!(d, TREE_DEPTH);
            assert_eq!(v.to_f32(), leaf.logodds);
        }
        // (2) Parent values dominate (max policy): every ancestor's value
        // is at least this leaf's value.
        for depth in (0..leaf.depth).rev() {
            let (pv, _) = tree
                .search_at_depth(leaf.key, depth)
                .expect("ancestors of a leaf exist");
            assert!(
                pv.to_f32() >= leaf.logodds - 1e-6,
                "ancestor at depth {depth} below leaf value"
            );
        }
    }
    // (5) Node accounting.
    let stats = tree.tree_stats();
    assert_eq!(stats.num_leaves, leaves);
    assert_eq!(stats.num_nodes, tree.num_nodes());
    assert_eq!(stats.num_inner + stats.num_leaves, stats.num_nodes);
    // (6) Sibling-row invariants: every inner node's child_mask equals
    // its set of live children, rows are singly-referenced, and free
    // lists exactly complement the reachable rows.
    tree.debug_validate();
    // Each inner node owns exactly one sibling row (+1 for the root row).
    let mem = tree.memory_stats();
    if stats.num_nodes > 0 {
        assert_eq!(mem.live_rows, stats.num_inner + 1, "rows ↔ inner nodes");
    }
}

/// Canonical form: updating any voxel inside a pruned leaf and undoing it
/// must re-prune back to the identical structure.
fn check_prune_canonical(tree: &mut OctreeF32) {
    let before = tree.snapshot();
    let coarse: Vec<VoxelKey> = tree
        .iter_leaves()
        .filter(|l| l.depth < TREE_DEPTH && l.occupancy == Occupancy::Occupied)
        .map(|l| l.key)
        .take(3)
        .collect();
    for key in coarse {
        // One miss then one hit inside the pruned region: values saturate
        // back to the clamp, so the octant re-prunes to the same map.
        tree.update_key(key, false);
        tree.update_key(key, true);
        tree.update_key(key, true);
        tree.update_key(key, true);
        tree.update_key(key, true);
        tree.update_key(key, true);
    }
    let after = tree.snapshot();
    assert_eq!(
        before, after,
        "saturate-and-return must restore the pruned map"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_updates_preserve_invariants(
        seed in any::<u64>(),
        updates in 50usize..400,
        span in 2u16..40,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut ftree = OctreeF32::new(0.1).unwrap();
        let mut qtree = OctreeFixed::new(0.1).unwrap();
        for _ in 0..updates {
            let k = VoxelKey::new(
                32768 + rng.random_range(0..span),
                32768 + rng.random_range(0..span),
                32768 + rng.random_range(0..span),
            );
            let hit = rng.random_range(0..3) != 0;
            ftree.update_key(k, hit);
            qtree.update_key(k, hit);
        }
        check_invariants(&ftree);
        check_invariants(&qtree);
    }

    #[test]
    fn scan_insertion_preserves_invariants(seed in any::<u64>(), points in 10usize..80) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut tree = OctreeF32::new(0.2).unwrap();
        for _ in 0..3 {
            let origin = Point3::new(
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
            );
            let cloud: PointCloud = (0..points)
                .map(|_| Point3::new(
                    rng.random_range(-8.0..8.0),
                    rng.random_range(-8.0..8.0),
                    rng.random_range(-3.0..3.0),
                ))
                .collect();
            tree.insert_scan(&Scan::new(origin, cloud)).unwrap();
        }
        check_invariants(&tree);
        // Serialization preserves the canonical structure.
        let restored = OctreeF32::from_bytes(&tree.to_bytes()).unwrap();
        prop_assert_eq!(restored.snapshot(), tree.snapshot());
    }

    #[test]
    fn saturated_octants_prune_canonically(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut tree = OctreeF32::new(0.1).unwrap();
        tree.set_early_abort_saturated(false);
        // Saturate a few whole octants so pruning definitely happens.
        for _ in 0..3 {
            let bx = 32768 + rng.random_range(0..20u16) * 2;
            let by = 32768 + rng.random_range(0..20u16) * 2;
            let bz = 32768 + rng.random_range(0..20u16) * 2;
            for _ in 0..6 {
                for i in 0..8u16 {
                    tree.update_key(
                        VoxelKey::new(bx + (i & 1), by + ((i >> 1) & 1), bz + ((i >> 2) & 1)),
                        true,
                    );
                }
            }
        }
        prop_assert!(tree.counters().prunes > 0);
        check_invariants(&tree);
        check_prune_canonical(&mut tree);
    }

    #[test]
    fn row_masks_track_live_children_under_mixed_engines(
        seed in any::<u64>(),
        updates in 30usize..250,
        span in 2u16..24,
        shards in 1usize..=8,
    ) {
        use omu_raycast::VoxelUpdate;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut tree = OctreeF32::new(0.1).unwrap();
        // Interleave scalar updates, sequential batches and the sharded
        // parallel apply — insert/update/prune/expand in every engine —
        // validating the row invariants between phases.
        for phase in 0..3 {
            let batch: Vec<VoxelUpdate> = (0..updates)
                .map(|_| VoxelUpdate {
                    key: VoxelKey::new(
                        // Straddle the branch boundary so several arena
                        // shards participate.
                        32760 + rng.random_range(0..span),
                        32760 + rng.random_range(0..span),
                        32760 + rng.random_range(0..span),
                    ),
                    hit: rng.random_range(0..4) != 0,
                })
                .collect();
            match phase {
                0 => {
                    for u in &batch {
                        tree.update_key(u.key, u.hit);
                    }
                }
                1 => {
                    tree.apply_update_batch(&batch);
                }
                _ => {
                    tree.apply_update_batch_parallel(&batch, shards);
                }
            }
            tree.debug_validate();
        }
        // Maintenance passes keep the invariants too.
        tree.prune_all();
        tree.debug_validate();
        tree.update_inner_occupancy();
        tree.debug_validate();
        // And a serialization round trip rebuilds valid rows.
        let restored = OctreeF32::from_bytes(&tree.to_bytes()).unwrap();
        restored.debug_validate();
        prop_assert_eq!(restored.snapshot(), tree.snapshot());
        // Clearing returns every row to the free lists.
        let mut cleared = tree.clone();
        cleared.clear();
        cleared.debug_validate();
        prop_assert_eq!(cleared.num_nodes(), 0);
    }

    #[test]
    fn occupancy_is_deterministic_of_observation_multiset_per_voxel(
        hits in 0u32..12,
        misses in 0u32..12,
        seed in any::<u64>(),
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        // Order of hits and misses on one voxel does not change the final
        // value (addition commutes under clamping only when not saturated;
        // with saturation order matters in general, but the *final
        // classification* after re-saturation must match when the sequence
        // never clamps). Constrain to non-clamping counts.
        let params = omu_geometry::OccupancyParams::default();
        let net = hits as f32 * params.hit + misses as f32 * params.miss;
        prop_assume!(net < params.clamp_max && net > params.clamp_min);
        prop_assume!(hits as f32 * params.hit < params.clamp_max);
        prop_assume!(misses as f32 * params.miss > params.clamp_min);

        let mut seq: Vec<bool> = std::iter::repeat_n(true, hits as usize)
            .chain(std::iter::repeat_n(false, misses as usize))
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let k = VoxelKey::ORIGIN;

        let mut a = OctreeF32::new(0.1).unwrap();
        for &h in &seq {
            a.update_key(k, h);
        }
        seq.shuffle(&mut rng);
        let mut b = OctreeF32::new(0.1).unwrap();
        for &h in &seq {
            b.update_key(k, h);
        }
        if hits + misses > 0 {
            let va = a.logodds(k).unwrap();
            let vb = b.logodds(k).unwrap();
            prop_assert!((va - vb).abs() < 1e-4, "order-dependence: {va} vs {vb}");
        }
    }
}
