//! CRC-32 (IEEE 802.3) over byte slices.
//!
//! One tiny, dependency-free implementation shared by every integrity
//! frame in the workspace: the v2 `.omut` checksum trailer in this
//! crate and the map service's write-ahead-log record framing. The
//! polynomial is the reflected IEEE one (`0xEDB88320`), i.e. the same
//! CRC as zlib/PNG/Ethernet, so files can be cross-checked with any
//! standard tool.
//!
//! The hot loop uses slicing-by-8 (eight compile-time tables, eight
//! input bytes folded per iteration): checkpoint blobs and WAL records
//! run to tens of megabytes, and the checksum sits on both the ingest
//! fsync path and the recovery replay path.

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Slicing-by-8 tables, built at compile time. `TABLES[0]` is the
/// classic byte-at-a-time table; `TABLES[j][b]` advances byte `b`
/// through `j` additional zero bytes.
const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut i = 0;
    while i < 256 {
        let mut c = tables[0][i];
        let mut j = 1;
        while j < 8 {
            // omu-lint: allow(handle-bits) — CRC byte fold, not handle packing
            c = tables[0][(c & 0xFF) as usize] ^ (c >> 8);
            tables[j][i] = c;
            j += 1;
        }
        i += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// CRC-32 (IEEE) of `data` — the checksum of the v2 `.omut` trailer and
/// the map service's WAL record frames.
///
/// # Examples
///
/// ```
/// // The standard CRC-32 check value.
/// assert_eq!(omu_octree::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = u32::MAX;
    let mut chunks = data.chunks_exact(8);
    for chunk in chunks.by_ref() {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize] // omu-lint: allow(handle-bits) — CRC byte extraction
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize] // omu-lint: allow(handle-bits) — CRC byte extraction
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        // omu-lint: allow(handle-bits) — CRC byte fold, not handle packing
        c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sliced_fold_matches_byte_at_a_time_at_every_length() {
        // Cross-check the slicing-by-8 fast path against the scalar
        // table for every alignment/remainder combination.
        let data: Vec<u8> = (0..64u8).map(|i| i.wrapping_mul(37) ^ 0x5A).collect();
        for len in 0..data.len() {
            let mut c = u32::MAX;
            for &b in &data[..len] {
                // omu-lint: allow(handle-bits) — CRC byte fold, not handle packing
                c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
            }
            assert_eq!(crc32(&data[..len]), !c, "length {len}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"occupancy octree wire bytes".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut mutant = base.clone();
                mutant[i] ^= 1 << bit;
                assert_ne!(crc32(&mutant), reference, "flip at byte {i} bit {bit}");
            }
        }
    }
}
