//! The measurement-update path: descent, expansion, leaf update, parent
//! update and pruning — a faithful port of OctoMap's `updateNodeRecurs`.
//!
//! The per-operation machinery lives in the storage-generic
//! [`WalkCtx`](crate::walk::WalkCtx); this module wires it to the tree's
//! own arena for the scalar per-update path and the whole-tree
//! maintenance passes.

use omu_geometry::{LogOdds, VoxelKey, TREE_DEPTH};

use crate::arena::NodeStore;
use crate::node::NIL;
use crate::tree::OccupancyOctree;
use crate::walk::{ChangeLog, WalkCtx};

impl<V: LogOdds> OccupancyOctree<V> {
    /// Integrates one hit (`true`) / miss (`false`) observation of the
    /// voxel at `key`, returning the voxel's new log-odds value.
    ///
    /// This performs the three basic OctoMap operations of the paper's
    /// Section III-A: update leaf (eq. 2), recursively update parents
    /// (eq. 3), and node prune/expand.
    pub fn update_key(&mut self, key: VoxelKey, hit: bool) -> V {
        let delta = if hit {
            self.resolved.hit
        } else {
            self.resolved.miss
        };
        self.update_key_logodds(key, delta)
    }

    /// Integrates an observation expressed directly as a log-odds delta.
    pub fn update_key_logodds(&mut self, key: VoxelKey, delta: V) -> V {
        self.arena.sync_pins();
        // OctoMap's early abort: if the covering leaf is already clamped in
        // the update direction, the update cannot change anything — skip
        // the whole descend/prune machinery. (This is why saturated
        // re-observations are cheap on the CPU baseline.)
        if self.early_abort_saturated {
            self.counters.saturation_probes += 1;
            if let Some((value, _)) = self.search(key) {
                let positive = delta >= V::ZERO;
                if (positive && value >= self.resolved.clamp_max)
                    || (!positive && value <= self.resolved.clamp_min)
                {
                    self.counters.saturated_skips += 1;
                    return value;
                }
            }
        }

        // --- Descent: locate (creating / expanding as needed) the leaf. ---
        let mut just_created = false;
        if self.root == NIL {
            self.root = self.arena.alloc_root(V::ZERO);
            self.counters.node_creations += 1;
            just_created = true;
        }
        let root = self.root;
        let mut ctx = self.walk_ctx();

        // path[d] = node at depth d along the key's root path.
        let mut path = [NIL; TREE_DEPTH as usize + 1];
        let mut node = root;
        path[0] = node;

        for depth in 0..TREE_DEPTH {
            let (child, created) = ctx.step_down(node, key, depth, just_created);
            just_created = created;
            node = child;
            path[depth as usize + 1] = node;
        }

        // --- Leaf update (eq. 2). ---
        let updated = ctx.apply_leaf_delta(node, key, delta, just_created);

        // --- Parent updates and pruning, bottom-up (eq. 3). ---
        let mut result = updated;
        for depth in (0..TREE_DEPTH).rev() {
            if let Some(pruned_value) = ctx.finish_node(path[depth as usize], depth) {
                result = pruned_value;
            }
        }
        result
    }

    /// Prunes the whole tree in one post-order pass (for maps built with
    /// pruning disabled, or after bulk edits). Returns the number of nodes
    /// pruned.
    pub fn prune_all(&mut self) -> u64 {
        if self.root == NIL {
            return 0;
        }
        self.arena.sync_pins();
        let root = self.root;
        let before = self.counters.prunes;
        let mut ctx = self.walk_ctx();
        prune_recurs(&mut ctx, root, 0);
        self.counters.prunes - before
    }

    /// Recomputes every inner node's occupancy bottom-up (OctoMap
    /// `updateInnerOccupancy`). Only needed after operations that bypass
    /// the eager per-update parent refresh.
    pub fn update_inner_occupancy(&mut self) {
        if self.root != NIL {
            self.arena.sync_pins();
            let root = self.root;
            let mut ctx = self.walk_ctx();
            inner_occupancy_recurs(&mut ctx, root, 0);
        }
    }
}

/// Post-order prune sweep below `node` (at `depth`). Depth-15 nodes have
/// only depth-16 voxel children, so recursion stops there and
/// `try_prune` inspects the leaf row directly.
fn prune_recurs<S, V, C>(ctx: &mut WalkCtx<'_, S, V, C>, node: u32, depth: u8)
where
    S: NodeStore<V>,
    V: LogOdds,
    C: ChangeLog,
{
    let n = *ctx.store.node(node);
    if n.is_leaf() {
        return;
    }
    if depth + 1 < TREE_DEPTH {
        // This pass bypasses `step_down`, and pruning a child mutates its
        // slot in this node's children row — make the row COW-current
        // before recursing (leaf rows are only read and freed, never
        // written, so depth-15 parents need no hook).
        ctx.store.ensure_children_current(node, false);
        for pos in 0..8 {
            if n.has_child(pos) {
                let child = ctx.store.child_of(node, pos);
                if !ctx.store.node(child).is_leaf() {
                    prune_recurs(ctx, child, depth + 1);
                }
            }
        }
    }
    ctx.try_prune(node, depth);
}

/// Post-order parent-value refresh below `node` (at `depth`).
fn inner_occupancy_recurs<S, V, C>(ctx: &mut WalkCtx<'_, S, V, C>, node: u32, depth: u8)
where
    S: NodeStore<V>,
    V: LogOdds,
    C: ChangeLog,
{
    let n = *ctx.store.node(node);
    if n.is_leaf() {
        return;
    }
    if depth + 1 < TREE_DEPTH {
        // Same COW hook as `prune_recurs`: child refreshes write into
        // this node's children row.
        ctx.store.ensure_children_current(node, false);
        for pos in 0..8 {
            if n.has_child(pos) {
                let child = ctx.store.child_of(node, pos);
                if !ctx.store.node(child).is_leaf() {
                    inner_occupancy_recurs(ctx, child, depth + 1);
                }
            }
        }
    }
    ctx.refresh_parent_value(node, depth);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{OctreeF32, OctreeFixed};
    use omu_geometry::{Occupancy, Point3};

    fn tree() -> OctreeF32 {
        OctreeF32::new(0.1).unwrap()
    }

    #[test]
    fn single_hit_creates_full_path() {
        let mut t = tree();
        t.update_key(VoxelKey::ORIGIN, true);
        // Root + 16 levels of nodes on one path.
        assert_eq!(t.num_nodes(), 17);
        assert_eq!(t.counters().leaf_updates, 1);
        assert_eq!(t.counters().node_creations, 17);
        let (v, d) = t.search(VoxelKey::ORIGIN).unwrap();
        assert_eq!(d, TREE_DEPTH);
        assert!((v - t.params().hit).abs() < 1e-6);
    }

    #[test]
    fn hits_accumulate_and_clamp() {
        let mut t = tree();
        for _ in 0..10 {
            t.update_key(VoxelKey::ORIGIN, true);
        }
        let (v, _) = t.search(VoxelKey::ORIGIN).unwrap();
        assert_eq!(v, t.params().clamp_max);
    }

    #[test]
    fn misses_clamp_at_min() {
        let mut t = tree();
        for _ in 0..10 {
            t.update_key(VoxelKey::ORIGIN, false);
        }
        let (v, _) = t.search(VoxelKey::ORIGIN).unwrap();
        assert_eq!(v, t.params().clamp_min);
        assert_eq!(t.occupancy(VoxelKey::ORIGIN), Occupancy::Free);
    }

    #[test]
    fn early_abort_skips_saturated_updates() {
        let mut t = tree();
        for _ in 0..20 {
            t.update_key(VoxelKey::ORIGIN, true);
        }
        assert!(t.counters().saturated_skips > 0);
        // With the optimization disabled every update walks the tree.
        let mut t2 = tree();
        t2.set_early_abort_saturated(false);
        for _ in 0..20 {
            t2.update_key(VoxelKey::ORIGIN, true);
        }
        assert_eq!(t2.counters().saturated_skips, 0);
        assert_eq!(t2.counters().leaf_updates, 20);
        // Same final value either way.
        assert_eq!(t.logodds(VoxelKey::ORIGIN), t2.logodds(VoxelKey::ORIGIN));
    }

    #[test]
    fn parent_holds_max_of_children() {
        let mut t = tree();
        let k_occ = VoxelKey::new(40000, 40000, 40000);
        let k_free = VoxelKey::new(40000, 40000, 40001);
        t.update_key(k_occ, true);
        t.update_key(k_free, false);
        // The shared parent (depth 15) covers both voxels; its value must be
        // the max — the hit value.
        let (v, d) = t.search_at_depth(k_occ, 15).unwrap();
        assert_eq!(d, 15);
        assert!((v - t.params().hit).abs() < 1e-6);
    }

    #[test]
    fn eight_equal_siblings_prune() {
        let mut t = tree();
        t.set_early_abort_saturated(false);
        // Saturate all 8 voxels of one finest-level octant so their values
        // become exactly equal (clamp_max).
        let base = VoxelKey::new(33000, 33000, 33000);
        assert_eq!(base.x % 2, 0);
        for _round in 0..10 {
            for dz in 0..2u16 {
                for dy in 0..2u16 {
                    for dx in 0..2u16 {
                        t.update_key(VoxelKey::new(base.x + dx, base.y + dy, base.z + dz), true);
                    }
                }
            }
        }
        assert!(t.counters().prunes > 0, "siblings at clamp_max must prune");
        // The pruned leaf covers the octant at depth 15.
        let (v, d) = t.search(base).unwrap();
        assert_eq!(d, 15);
        assert_eq!(v, t.params().clamp_max);
    }

    #[test]
    fn update_inside_pruned_leaf_expands() {
        let mut t = tree();
        t.set_early_abort_saturated(false);
        let base = VoxelKey::new(33000, 33000, 33000);
        for _round in 0..10 {
            for dz in 0..2u16 {
                for dy in 0..2u16 {
                    for dx in 0..2u16 {
                        t.update_key(VoxelKey::new(base.x + dx, base.y + dy, base.z + dz), true);
                    }
                }
            }
        }
        let prunes_before = t.counters().prunes;
        assert!(prunes_before > 0);
        // A miss inside the pruned region must expand it back.
        t.update_key(base, false);
        assert!(t.counters().expands > 0);
        let (_, d) = t.search(base).unwrap();
        assert_eq!(d, TREE_DEPTH, "expanded voxel is at finest depth again");
        // Sibling values are preserved from the pruned leaf.
        let sib = VoxelKey::new(base.x + 1, base.y, base.z);
        let (v, _) = t.search(sib).unwrap();
        assert_eq!(v, t.params().clamp_max);
    }

    #[test]
    fn pruning_disabled_keeps_children() {
        let mut t = tree();
        t.set_pruning_enabled(false);
        t.set_early_abort_saturated(false);
        let base = VoxelKey::new(33000, 33000, 33000);
        for _round in 0..10 {
            for dz in 0..2u16 {
                for dy in 0..2u16 {
                    for dx in 0..2u16 {
                        t.update_key(VoxelKey::new(base.x + dx, base.y + dy, base.z + dz), true);
                    }
                }
            }
        }
        assert_eq!(t.counters().prunes, 0);
        let nodes_unpruned = t.num_nodes();
        // prune_all collapses them afterwards.
        let pruned = t.prune_all();
        assert!(pruned > 0);
        assert!(t.num_nodes() < nodes_unpruned);
        let (v, d) = t.search(base).unwrap();
        assert!(d < TREE_DEPTH);
        assert_eq!(v, t.params().clamp_max);
    }

    #[test]
    fn fixed_point_tree_matches_float_classification() {
        let mut tf = tree();
        let mut tq = OctreeFixed::new(0.1).unwrap();
        let keys: Vec<VoxelKey> = (0..200u16)
            .map(|i| VoxelKey::new(32768 + i % 13, 32768 + (i * 7) % 11, 32768 + (i * 3) % 9))
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            let hit = i % 3 != 0;
            tf.update_key(k, hit);
            tq.update_key(k, hit);
        }
        for &k in &keys {
            assert_eq!(
                tf.occupancy(k),
                tq.occupancy(k),
                "classification must agree at {k}"
            );
        }
    }

    #[test]
    fn update_point_out_of_bounds_checked_in_tree_tests() {
        let mut t = tree();
        let r = t.update_point(Point3::new(1e9, 0.0, 0.0), true);
        assert!(r.is_err());
    }

    #[test]
    fn update_inner_occupancy_rebuilds_parent_values() {
        let mut t = tree();
        t.update_key(VoxelKey::ORIGIN, true);
        // Corrupt an inner value deliberately via a direct leaf edit
        // through the public API: add misses to a sibling and verify the
        // parent tracks the max.
        t.update_inner_occupancy();
        let (v, _) = t.search_at_depth(VoxelKey::ORIGIN, 1).unwrap();
        assert!(v > 0.0);
    }
}
