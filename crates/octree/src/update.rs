//! The measurement-update path: descent, expansion, leaf update, parent
//! update and pruning — a faithful port of OctoMap's `updateNodeRecurs`.

use omu_geometry::{LogOdds, VoxelKey, TREE_DEPTH};

use crate::node::NIL;
use crate::tree::OccupancyOctree;

impl<V: LogOdds> OccupancyOctree<V> {
    /// Integrates one hit (`true`) / miss (`false`) observation of the
    /// voxel at `key`, returning the voxel's new log-odds value.
    ///
    /// This performs the three basic OctoMap operations of the paper's
    /// Section III-A: update leaf (eq. 2), recursively update parents
    /// (eq. 3), and node prune/expand.
    pub fn update_key(&mut self, key: VoxelKey, hit: bool) -> V {
        let delta = if hit {
            self.resolved.hit
        } else {
            self.resolved.miss
        };
        self.update_key_logodds(key, delta)
    }

    /// Integrates an observation expressed directly as a log-odds delta.
    pub fn update_key_logodds(&mut self, key: VoxelKey, delta: V) -> V {
        // OctoMap's early abort: if the covering leaf is already clamped in
        // the update direction, the update cannot change anything — skip
        // the whole descend/prune machinery. (This is why saturated
        // re-observations are cheap on the CPU baseline.)
        if self.early_abort_saturated {
            self.counters.saturation_probes += 1;
            if let Some((value, _)) = self.search(key) {
                let positive = delta >= V::ZERO;
                if (positive && value >= self.resolved.clamp_max)
                    || (!positive && value <= self.resolved.clamp_min)
                {
                    self.counters.saturated_skips += 1;
                    return value;
                }
            }
        }

        // --- Descent: locate (creating / expanding as needed) the leaf. ---
        let mut just_created = false;
        if self.root == NIL {
            self.root = self.arena.alloc_node(V::ZERO);
            self.counters.node_creations += 1;
            just_created = true;
        }

        // path[d] = node at depth d along the key's root path.
        let mut path = [NIL; TREE_DEPTH as usize + 1];
        let mut node = self.root;
        path[0] = node;

        for depth in 0..TREE_DEPTH {
            let (child, created) = self.step_down(node, key, depth, just_created);
            just_created = created;
            node = child;
            path[depth as usize + 1] = node;
        }

        // --- Leaf update (eq. 2). ---
        let updated = self.apply_leaf_delta(node, key, delta, just_created);

        // --- Parent updates and pruning, bottom-up (eq. 3). ---
        let mut result = updated;
        for depth in (0..TREE_DEPTH).rev() {
            if let Some(pruned_value) = self.finish_node(path[depth as usize]) {
                result = pruned_value;
            }
        }
        result
    }

    /// One level of descent towards `key`: returns the child at
    /// `depth + 1` on the key's root path, creating or expanding as
    /// OctoMap's `updateNodeRecurs` would.
    ///
    /// `just_created` must be true when `node` was freshly created during
    /// the current descent (a fresh branch grows one child per level; a
    /// pre-existing childless node is a pruned leaf that must expand into
    /// all 8). The returned flag is the same property for the child.
    #[inline]
    pub(crate) fn step_down(
        &mut self,
        node: u32,
        key: VoxelKey,
        depth: u8,
        just_created: bool,
    ) -> (u32, bool) {
        let pos = key.child_index_at(depth).index();
        let mut child = self.arena.child_of(node, pos);
        let mut created = false;
        if child == NIL {
            if self.arena.node(node).is_leaf() && !just_created {
                // A pruned leaf covers this key: expand it so the update
                // applies to the single target voxel only.
                self.expand_node(node);
                child = self.arena.child_of(node, pos);
            } else {
                // Fresh branch: create just the requested child.
                child = self.create_child(node, pos);
                created = true;
            }
        }
        self.counters.traverse_steps += 1;
        (child, created)
    }

    /// Applies one clamped log-odds addition to a located leaf (eq. 2),
    /// recording change detection, and returns the new value.
    #[inline]
    pub(crate) fn apply_leaf_delta(
        &mut self,
        node: u32,
        key: VoxelKey,
        delta: V,
        just_created: bool,
    ) -> V {
        let (updated, old_value) = {
            let n = self.arena.node_mut(node);
            let old = n.value;
            n.value = n
                .value
                .add(delta)
                .clamp_to(self.resolved.clamp_min, self.resolved.clamp_max);
            (n.value, old)
        };
        self.counters.leaf_updates += 1;

        // Change detection: record newly observed voxels and
        // occupied↔free classification flips.
        if let Some(changed) = &mut self.changed {
            let flipped = just_created
                || self.resolved.classify(old_value) != self.resolved.classify(updated);
            if flipped {
                changed.insert(key);
            }
        }
        updated
    }

    /// Finishes an inner node after updates below it: prune when enabled
    /// and collapsible, otherwise refresh the value to the max over
    /// children. Returns `Some(value)` when the node was pruned.
    ///
    /// The scalar path calls this for every path node after every update;
    /// the batch engine defers it to once per touched node (see
    /// [`apply_update_batch`](Self::apply_update_batch)).
    #[inline]
    pub(crate) fn finish_node(&mut self, node: u32) -> Option<V> {
        if self.pruning_enabled && self.try_prune(node) {
            Some(self.arena.node(node).value)
        } else {
            self.refresh_parent_value(node);
            None
        }
    }

    /// Expands a pruned leaf into 8 children carrying the parent's value
    /// (OctoMap `expandNode`).
    pub(crate) fn expand_node(&mut self, node: u32) {
        debug_assert!(self.arena.node(node).is_leaf(), "expanding an inner node");
        let value = self.arena.node(node).value;
        let block = self.arena.alloc_block();
        for pos in 0..8 {
            let child = self.arena.alloc_node(value);
            self.arena.block_mut(block).slots[pos] = child;
        }
        self.arena.node_mut(node).block = block;
        self.counters.expands += 1;
        self.counters.node_creations += 8;
    }

    /// Creates a single child (log-odds 0, "just created") under `node`.
    fn create_child(&mut self, node: u32, pos: usize) -> u32 {
        let block = {
            let b = self.arena.node(node).block;
            if b == NIL {
                let b = self.arena.alloc_block();
                self.arena.node_mut(node).block = b;
                b
            } else {
                b
            }
        };
        let child = self.arena.alloc_node(V::ZERO);
        self.arena.block_mut(block).slots[pos] = child;
        self.counters.node_creations += 1;
        child
    }

    /// Attempts to prune `node` (OctoMap `pruneNode`): succeeds when all 8
    /// children exist, none has children of its own, and all hold the same
    /// value. On success the children are deleted and `node` becomes a leaf
    /// carrying their common value.
    ///
    /// Returns `true` when the node was pruned.
    pub(crate) fn try_prune(&mut self, node: u32) -> bool {
        self.counters.prune_checks += 1;
        let block = self.arena.node(node).block;
        if block == NIL {
            return false;
        }

        let slots = self.arena.block(block).slots;
        let first = slots[0];
        if first == NIL {
            return false;
        }
        self.counters.prune_child_reads += 1;
        let first_node = *self.arena.node(first);
        if !first_node.is_leaf() {
            return false;
        }
        for &slot in &slots[1..] {
            if slot == NIL {
                return false;
            }
            self.counters.prune_child_reads += 1;
            let child = self.arena.node(slot);
            if !child.is_leaf() || child.value != first_node.value {
                return false;
            }
        }

        // Collapsible: delete the 8 children and take over their value.
        for &slot in &slots {
            self.arena.free_node(slot);
        }
        self.arena.free_block(block);
        let n = self.arena.node_mut(node);
        n.block = NIL;
        n.value = first_node.value;
        self.counters.prunes += 1;
        true
    }

    /// Recomputes an inner node's value as the maximum over its existing
    /// children (OctoMap `updateOccupancyChildren`).
    pub(crate) fn refresh_parent_value(&mut self, node: u32) {
        let block = self.arena.node(node).block;
        if block == NIL {
            return;
        }
        let slots = self.arena.block(block).slots;
        let mut acc: Option<V> = None;
        let mut reads = 0;
        for &slot in &slots {
            if slot != NIL {
                reads += 1;
                let v = self.arena.node(slot).value;
                acc = Some(match acc {
                    Some(a) => V::max_of(a, v),
                    None => v,
                });
            }
        }
        if let Some(m) = acc {
            self.arena.node_mut(node).value = m;
            self.counters.parent_updates += 1;
            self.counters.parent_child_reads += reads;
        }
    }

    /// Prunes the whole tree in one post-order pass (for maps built with
    /// pruning disabled, or after bulk edits). Returns the number of nodes
    /// pruned.
    pub fn prune_all(&mut self) -> u64 {
        if self.root == NIL {
            return 0;
        }
        let before = self.counters.prunes;
        self.prune_recurs(self.root);
        self.counters.prunes - before
    }

    fn prune_recurs(&mut self, node: u32) {
        let block = self.arena.node(node).block;
        if block == NIL {
            return;
        }
        let slots = self.arena.block(block).slots;
        for &slot in &slots {
            if slot != NIL && !self.arena.node(slot).is_leaf() {
                self.prune_recurs(slot);
            }
        }
        self.try_prune(node);
    }

    /// Recomputes every inner node's occupancy bottom-up (OctoMap
    /// `updateInnerOccupancy`). Only needed after operations that bypass
    /// the eager per-update parent refresh.
    pub fn update_inner_occupancy(&mut self) {
        if self.root != NIL {
            self.inner_occupancy_recurs(self.root);
        }
    }

    fn inner_occupancy_recurs(&mut self, node: u32) {
        let block = self.arena.node(node).block;
        if block == NIL {
            return;
        }
        let slots = self.arena.block(block).slots;
        for &slot in &slots {
            if slot != NIL && !self.arena.node(slot).is_leaf() {
                self.inner_occupancy_recurs(slot);
            }
        }
        self.refresh_parent_value(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{OctreeF32, OctreeFixed};
    use omu_geometry::{Occupancy, Point3};

    fn tree() -> OctreeF32 {
        OctreeF32::new(0.1).unwrap()
    }

    #[test]
    fn single_hit_creates_full_path() {
        let mut t = tree();
        t.update_key(VoxelKey::ORIGIN, true);
        // Root + 16 levels of nodes on one path.
        assert_eq!(t.num_nodes(), 17);
        assert_eq!(t.counters().leaf_updates, 1);
        assert_eq!(t.counters().node_creations, 17);
        let (v, d) = t.search(VoxelKey::ORIGIN).unwrap();
        assert_eq!(d, TREE_DEPTH);
        assert!((v - t.params().hit).abs() < 1e-6);
    }

    #[test]
    fn hits_accumulate_and_clamp() {
        let mut t = tree();
        for _ in 0..10 {
            t.update_key(VoxelKey::ORIGIN, true);
        }
        let (v, _) = t.search(VoxelKey::ORIGIN).unwrap();
        assert_eq!(v, t.params().clamp_max);
    }

    #[test]
    fn misses_clamp_at_min() {
        let mut t = tree();
        for _ in 0..10 {
            t.update_key(VoxelKey::ORIGIN, false);
        }
        let (v, _) = t.search(VoxelKey::ORIGIN).unwrap();
        assert_eq!(v, t.params().clamp_min);
        assert_eq!(t.occupancy(VoxelKey::ORIGIN), Occupancy::Free);
    }

    #[test]
    fn early_abort_skips_saturated_updates() {
        let mut t = tree();
        for _ in 0..20 {
            t.update_key(VoxelKey::ORIGIN, true);
        }
        assert!(t.counters().saturated_skips > 0);
        // With the optimization disabled every update walks the tree.
        let mut t2 = tree();
        t2.set_early_abort_saturated(false);
        for _ in 0..20 {
            t2.update_key(VoxelKey::ORIGIN, true);
        }
        assert_eq!(t2.counters().saturated_skips, 0);
        assert_eq!(t2.counters().leaf_updates, 20);
        // Same final value either way.
        assert_eq!(t.logodds(VoxelKey::ORIGIN), t2.logodds(VoxelKey::ORIGIN));
    }

    #[test]
    fn parent_holds_max_of_children() {
        let mut t = tree();
        let k_occ = VoxelKey::new(40000, 40000, 40000);
        let k_free = VoxelKey::new(40000, 40000, 40001);
        t.update_key(k_occ, true);
        t.update_key(k_free, false);
        // The shared parent (depth 15) covers both voxels; its value must be
        // the max — the hit value.
        let (v, d) = t.search_at_depth(k_occ, 15).unwrap();
        assert_eq!(d, 15);
        assert!((v - t.params().hit).abs() < 1e-6);
    }

    #[test]
    fn eight_equal_siblings_prune() {
        let mut t = tree();
        t.set_early_abort_saturated(false);
        // Saturate all 8 voxels of one finest-level octant so their values
        // become exactly equal (clamp_max).
        let base = VoxelKey::new(33000, 33000, 33000);
        assert_eq!(base.x % 2, 0);
        for _round in 0..10 {
            for dz in 0..2u16 {
                for dy in 0..2u16 {
                    for dx in 0..2u16 {
                        t.update_key(VoxelKey::new(base.x + dx, base.y + dy, base.z + dz), true);
                    }
                }
            }
        }
        assert!(t.counters().prunes > 0, "siblings at clamp_max must prune");
        // The pruned leaf covers the octant at depth 15.
        let (v, d) = t.search(base).unwrap();
        assert_eq!(d, 15);
        assert_eq!(v, t.params().clamp_max);
    }

    #[test]
    fn update_inside_pruned_leaf_expands() {
        let mut t = tree();
        t.set_early_abort_saturated(false);
        let base = VoxelKey::new(33000, 33000, 33000);
        for _round in 0..10 {
            for dz in 0..2u16 {
                for dy in 0..2u16 {
                    for dx in 0..2u16 {
                        t.update_key(VoxelKey::new(base.x + dx, base.y + dy, base.z + dz), true);
                    }
                }
            }
        }
        let prunes_before = t.counters().prunes;
        assert!(prunes_before > 0);
        // A miss inside the pruned region must expand it back.
        t.update_key(base, false);
        assert!(t.counters().expands > 0);
        let (_, d) = t.search(base).unwrap();
        assert_eq!(d, TREE_DEPTH, "expanded voxel is at finest depth again");
        // Sibling values are preserved from the pruned leaf.
        let sib = VoxelKey::new(base.x + 1, base.y, base.z);
        let (v, _) = t.search(sib).unwrap();
        assert_eq!(v, t.params().clamp_max);
    }

    #[test]
    fn pruning_disabled_keeps_children() {
        let mut t = tree();
        t.set_pruning_enabled(false);
        t.set_early_abort_saturated(false);
        let base = VoxelKey::new(33000, 33000, 33000);
        for _round in 0..10 {
            for dz in 0..2u16 {
                for dy in 0..2u16 {
                    for dx in 0..2u16 {
                        t.update_key(VoxelKey::new(base.x + dx, base.y + dy, base.z + dz), true);
                    }
                }
            }
        }
        assert_eq!(t.counters().prunes, 0);
        let nodes_unpruned = t.num_nodes();
        // prune_all collapses them afterwards.
        let pruned = t.prune_all();
        assert!(pruned > 0);
        assert!(t.num_nodes() < nodes_unpruned);
        let (v, d) = t.search(base).unwrap();
        assert!(d < TREE_DEPTH);
        assert_eq!(v, t.params().clamp_max);
    }

    #[test]
    fn fixed_point_tree_matches_float_classification() {
        let mut tf = tree();
        let mut tq = OctreeFixed::new(0.1).unwrap();
        let keys: Vec<VoxelKey> = (0..200u16)
            .map(|i| VoxelKey::new(32768 + i % 13, 32768 + (i * 7) % 11, 32768 + (i * 3) % 9))
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            let hit = i % 3 != 0;
            tf.update_key(k, hit);
            tq.update_key(k, hit);
        }
        for &k in &keys {
            assert_eq!(
                tf.occupancy(k),
                tq.occupancy(k),
                "classification must agree at {k}"
            );
        }
    }

    #[test]
    fn update_point_out_of_bounds_checked_in_tree_tests() {
        let mut t = tree();
        let r = t.update_point(Point3::new(1e9, 0.0, 0.0), true);
        assert!(r.is_err());
    }

    #[test]
    fn update_inner_occupancy_rebuilds_parent_values() {
        let mut t = tree();
        t.update_key(VoxelKey::ORIGIN, true);
        // Corrupt an inner value deliberately via a direct leaf edit
        // through the public API: add misses to a sibling and verify the
        // parent tracks the max.
        t.update_inner_occupancy();
        let (v, _) = t.search_at_depth(VoxelKey::ORIGIN, 1).unwrap();
        assert!(v > 0.0);
    }
}
