//! The storage-generic update walk: descent, expansion, leaf update,
//! parent refresh and pruning, written once over [`NodeStore`] so that
//! the same code drives the whole-tree scalar/batched paths (store =
//! [`Arena`](crate::arena::Arena)) and the subtree-sharded parallel
//! workers (store = the branch store in the `shard` module, one branch
//! owned per thread).
//!
//! Operations take the node's tree depth alongside its handle: depth
//! decides whether a node's children live in a node row (8 more
//! `Node<V>`s) or, for depth-15 parents, in a value-only leaf row — see
//! the [`arena`](crate::arena) module for the two-tier sibling-row
//! layout. The walks all track depth anyway, so this costs nothing.
//!
//! Everything an update mutates besides node storage — operation
//! counters, the change-detection log — is carried in the context, so a
//! worker can run with thread-local instances that merge
//! deterministically afterwards.

use omu_geometry::{LogOdds, ResolvedParams, VoxelKey, TREE_DEPTH};
use rustc_hash::FxHashSet;

use crate::arena::{handle, NodeStore};
use crate::counters::OpCounters;
use crate::node::Node;

/// Depth of nodes whose children are depth-16 voxels stored in leaf rows.
const LEAF_PARENT_DEPTH: u8 = TREE_DEPTH - 1;

/// Sink for change-detection events. The tree proper uses the keyed set;
/// shard workers log into a plain `Vec` that is merged into the set after
/// the join (insertion is idempotent, so merge order is irrelevant).
pub(crate) trait ChangeLog {
    /// Records that `key`'s occupancy classification changed.
    fn record(&mut self, key: VoxelKey);
}

impl ChangeLog for FxHashSet<VoxelKey> {
    #[inline]
    fn record(&mut self, key: VoxelKey) {
        self.insert(key);
    }
}

impl ChangeLog for Vec<VoxelKey> {
    #[inline]
    fn record(&mut self, key: VoxelKey) {
        self.push(key);
    }
}

/// Borrowed context for one sequence of update-walk operations.
pub(crate) struct WalkCtx<'a, S, V: LogOdds, C: ChangeLog> {
    pub store: &'a mut S,
    pub resolved: ResolvedParams<V>,
    pub pruning_enabled: bool,
    pub counters: &'a mut OpCounters,
    pub changed: Option<&'a mut C>,
}

impl<S: NodeStore<V>, V: LogOdds, C: ChangeLog> WalkCtx<'_, S, V, C> {
    /// One level of descent towards `key`: returns the child at
    /// `depth + 1` on the key's root path, creating or expanding as
    /// OctoMap's `updateNodeRecurs` would.
    ///
    /// `just_created` must be true when `node` was freshly created during
    /// the current descent (a fresh branch grows one child per level; a
    /// pre-existing childless node is a pruned leaf that must expand into
    /// all 8). The returned flag is the same property for the child.
    #[inline]
    pub fn step_down(
        &mut self,
        node: u32,
        key: VoxelKey,
        depth: u8,
        just_created: bool,
    ) -> (u32, bool) {
        let pos = key.child_index_at(depth).index();
        let n = *self.store.node(node);
        let mut created = false;
        let child = if n.has_child(pos) {
            // The common case is one arithmetic step plus the COW check:
            // the children row must be writable in the current epoch
            // before the walk descends into (and mutates) it. Without
            // pinned snapshots this is one stamp compare.
            let row = self
                .store
                .ensure_children_current(node, depth == LEAF_PARENT_DEPTH);
            handle(self.store.child_shard(node), row, pos)
        } else if n.is_leaf() && !just_created {
            // A pruned leaf covers this key: expand it so the update
            // applies to the single target voxel only.
            self.expand_node(node, depth);
            self.store.child_of(node, pos)
        } else {
            // Fresh branch: create just the requested child.
            created = true;
            self.create_child(node, pos, depth)
        };
        self.counters.traverse_steps += 1;
        (child, created)
    }

    /// Applies one clamped log-odds addition to a located depth-16 voxel
    /// (eq. 2), recording change detection, and returns the new value.
    #[inline]
    pub fn apply_leaf_delta(
        &mut self,
        leaf: u32,
        key: VoxelKey,
        delta: V,
        just_created: bool,
    ) -> V {
        self.apply_leaf_deltas(leaf, key, &[delta], just_created)
    }

    /// Replays a whole per-voxel delta sequence on a located depth-16
    /// voxel: the value stays in a register across the sequence (one
    /// leaf-row load, one store), with per-delta counters and change
    /// detection identical to applying each delta individually. Returns
    /// the final value.
    pub fn apply_leaf_deltas(
        &mut self,
        leaf: u32,
        key: VoxelKey,
        deltas: &[V],
        just_created: bool,
    ) -> V {
        self.replay_leaf(leaf, key, just_created, deltas.iter().copied())
    }

    /// [`Self::apply_leaf_deltas`] over a bit-encoded hit/miss sequence
    /// (the batch engine scatters one byte per update instead of a full
    /// log-odds value; see the `batch` module).
    pub fn apply_leaf_bits(
        &mut self,
        leaf: u32,
        key: VoxelKey,
        bits: &[u8],
        hit: V,
        miss: V,
        just_created: bool,
    ) -> V {
        if self.changed.is_none() {
            // Lane-friendly replay for the common no-change-detection
            // case: the hit/miss branch becomes a two-entry table index
            // and `clamp_to` is comparison-based, so the loop body is
            // branch-free (select + min/max) and the value never leaves a
            // register. This is the batch engine's hottest loop — one
            // iteration per voxel update.
            let clamp_min = self.resolved.clamp_min;
            let clamp_max = self.resolved.clamp_max;
            let lut = [miss, hit];
            let slot = self.store.leaf_value_mut(leaf);
            let mut value = *slot;
            for &b in bits {
                value = value
                    .add(lut[usize::from(b != 0)])
                    .clamp_to(clamp_min, clamp_max);
            }
            *slot = value;
            self.counters.leaf_updates += bits.len() as u64;
            return value;
        }
        self.replay_leaf(
            leaf,
            key,
            just_created,
            bits.iter().map(|&b| if b != 0 { hit } else { miss }),
        )
    }

    fn replay_leaf(
        &mut self,
        leaf: u32,
        key: VoxelKey,
        just_created: bool,
        deltas: impl Iterator<Item = V>,
    ) -> V {
        let slot = self.store.leaf_value_mut(leaf);
        let mut value = *slot;
        let mut steps = 0u64;
        match &mut self.changed {
            None => {
                for delta in deltas {
                    steps += 1;
                    value = value
                        .add(delta)
                        .clamp_to(self.resolved.clamp_min, self.resolved.clamp_max);
                }
            }
            Some(changed) => {
                // Change detection: record newly observed voxels and
                // occupied↔free classification flips.
                for delta in deltas {
                    let old = value;
                    value = value
                        .add(delta)
                        .clamp_to(self.resolved.clamp_min, self.resolved.clamp_max);
                    let flipped = (steps == 0 && just_created)
                        || self.resolved.classify(old) != self.resolved.classify(value);
                    steps += 1;
                    if flipped {
                        changed.record(key);
                    }
                }
            }
        }
        self.counters.leaf_updates += steps;
        *slot = value;
        value
    }

    /// Finishes an inner node at `depth` after updates below it: prune
    /// when enabled and collapsible, otherwise refresh the value to the
    /// max over children. Returns `Some(value)` when the node was pruned.
    ///
    /// The scalar path calls this for every path node after every update;
    /// the batch engines defer it to once per touched node (see
    /// [`apply_update_batch`](crate::tree::OccupancyOctree::apply_update_batch)).
    #[inline]
    pub fn finish_node(&mut self, node: u32, depth: u8) -> Option<V> {
        if self.pruning_enabled && self.try_prune(node, depth) {
            Some(self.store.node(node).value)
        } else {
            self.refresh_parent_value(node, depth);
            None
        }
    }

    /// Expands a pruned leaf at `depth` into 8 children carrying the
    /// parent's value (OctoMap `expandNode`). Filling happens inside the
    /// row allocation — one sibling-row write.
    pub fn expand_node(&mut self, node: u32, depth: u8) {
        debug_assert!(self.store.node(node).is_leaf(), "expanding an inner node");
        let value = self.store.node(node).value;
        let row = if depth == LEAF_PARENT_DEPTH {
            self.store.alloc_leaf_row_for(node, value)
        } else {
            self.store.alloc_row_for(node, Node::leaf(value))
        };
        self.store.node_mut(node).set_children(row, 0xFF);
        self.counters.expands += 1;
        self.counters.node_creations += 8;
    }

    /// Creates a single child (log-odds 0, "just created") under `node`
    /// at `depth`, allocating the sibling row on first use.
    fn create_child(&mut self, node: u32, pos: usize, depth: u8) -> u32 {
        let leaf_tier = depth == LEAF_PARENT_DEPTH;
        let n = *self.store.node(node);
        let child;
        if n.is_leaf() {
            let row = if leaf_tier {
                self.store.alloc_leaf_row_for(node, V::ZERO)
            } else {
                self.store.alloc_row_for(node, Node::leaf(V::ZERO))
            };
            self.store.node_mut(node).set_children(row, 1 << pos);
            child = handle(self.store.child_shard(node), row, pos);
            // Row slots come pre-filled with the zero value.
        } else {
            // Writing a slot of an existing row: make it COW-current
            // first (the row index may move under a pinned snapshot).
            let row = self.store.ensure_children_current(node, leaf_tier);
            child = handle(self.store.child_shard(node), row, pos);
            if leaf_tier {
                *self.store.leaf_value_mut(child) = V::ZERO;
            } else {
                *self.store.node_mut(child) = Node::leaf(V::ZERO);
            }
            self.store.node_mut(node).add_child(pos);
        }
        self.counters.node_creations += 1;
        child
    }

    /// Attempts to prune a node at `depth` (OctoMap `pruneNode`):
    /// succeeds when all 8 children exist, none has children of its own,
    /// and all hold the same value. On success the children's sibling row
    /// is recycled and `node` becomes a leaf carrying their common value.
    ///
    /// Returns `true` when the node was pruned.
    pub fn try_prune(&mut self, node: u32, depth: u8) -> bool {
        self.counters.prune_checks += 1;
        let n = *self.store.node(node);
        if n.is_leaf() {
            return false;
        }
        let shard = self.store.child_shard(node);
        let row = n.row();

        if depth == LEAF_PARENT_DEPTH {
            // Children are depth-16 voxels: leaves by construction, so
            // only value equality gates the prune. One row borrow covers
            // all 8 siblings.
            if !n.has_child(0) {
                return false;
            }
            let kids = self.store.leaf_row(shard, row);
            self.counters.prune_child_reads += 1;
            let first = kids[0];
            for (pos, &kid) in kids.iter().enumerate().skip(1) {
                if !n.has_child(pos) {
                    return false;
                }
                self.counters.prune_child_reads += 1;
                if kid != first {
                    return false;
                }
            }
            self.store.free_leaf_row_of(node);
            let n = self.store.node_mut(node);
            n.clear_children();
            n.value = first;
        } else {
            if !n.has_child(0) {
                return false;
            }
            let kids = self.store.node_row(shard, row);
            self.counters.prune_child_reads += 1;
            let first = kids[0];
            if !first.is_leaf() {
                return false;
            }
            for (pos, child) in kids.iter().enumerate().skip(1) {
                if !n.has_child(pos) {
                    return false;
                }
                self.counters.prune_child_reads += 1;
                if !child.is_leaf() || child.value != first.value {
                    return false;
                }
            }
            self.store.free_row_of(node);
            let n = self.store.node_mut(node);
            n.clear_children();
            n.value = first.value;
        }
        self.counters.prunes += 1;
        true
    }

    /// Recomputes an inner node's value at `depth` as the maximum over
    /// its existing children (OctoMap `updateOccupancyChildren`) — one
    /// sibling-row sweep.
    pub fn refresh_parent_value(&mut self, node: u32, depth: u8) {
        let n = *self.store.node(node);
        if n.is_leaf() {
            return;
        }
        let shard = self.store.child_shard(node);
        let row = n.row();
        let mut acc: Option<V> = None;
        let mut reads = 0;
        if depth == LEAF_PARENT_DEPTH {
            let kids = self.store.leaf_row(shard, row);
            for (pos, &v) in kids.iter().enumerate() {
                if n.has_child(pos) {
                    reads += 1;
                    acc = Some(match acc {
                        Some(a) => V::max_of(a, v),
                        None => v,
                    });
                }
            }
        } else {
            let kids = self.store.node_row(shard, row);
            for (pos, kid) in kids.iter().enumerate() {
                if n.has_child(pos) {
                    reads += 1;
                    acc = Some(match acc {
                        Some(a) => V::max_of(a, kid.value),
                        None => kid.value,
                    });
                }
            }
        }
        if let Some(m) = acc {
            self.store.node_mut(node).value = m;
            self.counters.parent_updates += 1;
            self.counters.parent_child_reads += reads;
        }
    }
}
