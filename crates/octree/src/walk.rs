//! The storage-generic update walk: descent, expansion, leaf update,
//! parent refresh and pruning, written once over [`NodeStore`] so that
//! the same code drives the whole-tree scalar/batched paths (store =
//! [`Arena`](crate::arena::Arena)) and the subtree-sharded parallel
//! workers (store = [`ArenaShard`](crate::arena::ArenaShard), one branch
//! owned per thread).
//!
//! Everything an update mutates besides node storage — operation
//! counters, the change-detection log — is carried in the context, so a
//! worker can run with thread-local instances that merge
//! deterministically afterwards.

use omu_geometry::{LogOdds, ResolvedParams, VoxelKey};
use rustc_hash::FxHashSet;

use crate::arena::NodeStore;
use crate::counters::OpCounters;
use crate::node::NIL;

/// Sink for change-detection events. The tree proper uses the keyed set;
/// shard workers log into a plain `Vec` that is merged into the set after
/// the join (insertion is idempotent, so merge order is irrelevant).
pub(crate) trait ChangeLog {
    /// Records that `key`'s occupancy classification changed.
    fn record(&mut self, key: VoxelKey);
}

impl ChangeLog for FxHashSet<VoxelKey> {
    #[inline]
    fn record(&mut self, key: VoxelKey) {
        self.insert(key);
    }
}

impl ChangeLog for Vec<VoxelKey> {
    #[inline]
    fn record(&mut self, key: VoxelKey) {
        self.push(key);
    }
}

/// Borrowed context for one sequence of update-walk operations.
pub(crate) struct WalkCtx<'a, S, V: LogOdds, C: ChangeLog> {
    pub store: &'a mut S,
    pub resolved: ResolvedParams<V>,
    pub pruning_enabled: bool,
    pub counters: &'a mut OpCounters,
    pub changed: Option<&'a mut C>,
}

impl<S: NodeStore<V>, V: LogOdds, C: ChangeLog> WalkCtx<'_, S, V, C> {
    /// One level of descent towards `key`: returns the child at
    /// `depth + 1` on the key's root path, creating or expanding as
    /// OctoMap's `updateNodeRecurs` would.
    ///
    /// `just_created` must be true when `node` was freshly created during
    /// the current descent (a fresh branch grows one child per level; a
    /// pre-existing childless node is a pruned leaf that must expand into
    /// all 8). The returned flag is the same property for the child.
    #[inline]
    pub fn step_down(
        &mut self,
        node: u32,
        key: VoxelKey,
        depth: u8,
        just_created: bool,
    ) -> (u32, bool) {
        let pos = key.child_index_at(depth).index();
        let mut child = self.store.child_of(node, pos);
        let mut created = false;
        if child == NIL {
            if self.store.node(node).is_leaf() && !just_created {
                // A pruned leaf covers this key: expand it so the update
                // applies to the single target voxel only.
                self.expand_node(node);
                child = self.store.child_of(node, pos);
            } else {
                // Fresh branch: create just the requested child.
                child = self.create_child(node, pos);
                created = true;
            }
        }
        self.counters.traverse_steps += 1;
        (child, created)
    }

    /// Applies one clamped log-odds addition to a located leaf (eq. 2),
    /// recording change detection, and returns the new value.
    #[inline]
    pub fn apply_leaf_delta(
        &mut self,
        node: u32,
        key: VoxelKey,
        delta: V,
        just_created: bool,
    ) -> V {
        let (updated, old_value) = {
            let n = self.store.node_mut(node);
            let old = n.value;
            n.value = n
                .value
                .add(delta)
                .clamp_to(self.resolved.clamp_min, self.resolved.clamp_max);
            (n.value, old)
        };
        self.counters.leaf_updates += 1;

        // Change detection: record newly observed voxels and
        // occupied↔free classification flips.
        if let Some(changed) = &mut self.changed {
            let flipped = just_created
                || self.resolved.classify(old_value) != self.resolved.classify(updated);
            if flipped {
                changed.record(key);
            }
        }
        updated
    }

    /// Finishes an inner node after updates below it: prune when enabled
    /// and collapsible, otherwise refresh the value to the max over
    /// children. Returns `Some(value)` when the node was pruned.
    ///
    /// The scalar path calls this for every path node after every update;
    /// the batch engines defer it to once per touched node (see
    /// [`apply_update_batch`](crate::tree::OccupancyOctree::apply_update_batch)).
    #[inline]
    pub fn finish_node(&mut self, node: u32) -> Option<V> {
        if self.pruning_enabled && self.try_prune(node) {
            Some(self.store.node(node).value)
        } else {
            self.refresh_parent_value(node);
            None
        }
    }

    /// Expands a pruned leaf into 8 children carrying the parent's value
    /// (OctoMap `expandNode`).
    pub fn expand_node(&mut self, node: u32) {
        debug_assert!(self.store.node(node).is_leaf(), "expanding an inner node");
        let value = self.store.node(node).value;
        let block = self.store.alloc_block_for(node);
        for pos in 0..8 {
            let child = self.store.alloc_child_node(node, pos, value);
            self.store.block_mut(block).slots[pos] = child;
        }
        self.store.node_mut(node).block = block;
        self.counters.expands += 1;
        self.counters.node_creations += 8;
    }

    /// Creates a single child (log-odds 0, "just created") under `node`.
    fn create_child(&mut self, node: u32, pos: usize) -> u32 {
        let block = {
            let b = self.store.node(node).block;
            if b == NIL {
                let b = self.store.alloc_block_for(node);
                self.store.node_mut(node).block = b;
                b
            } else {
                b
            }
        };
        let child = self.store.alloc_child_node(node, pos, V::ZERO);
        self.store.block_mut(block).slots[pos] = child;
        self.counters.node_creations += 1;
        child
    }

    /// Attempts to prune `node` (OctoMap `pruneNode`): succeeds when all 8
    /// children exist, none has children of its own, and all hold the same
    /// value. On success the children are deleted and `node` becomes a leaf
    /// carrying their common value.
    ///
    /// Returns `true` when the node was pruned.
    pub fn try_prune(&mut self, node: u32) -> bool {
        self.counters.prune_checks += 1;
        let block = self.store.node(node).block;
        if block == NIL {
            return false;
        }

        let slots = self.store.block(block).slots;
        let first = slots[0];
        if first == NIL {
            return false;
        }
        self.counters.prune_child_reads += 1;
        let first_node = *self.store.node(first);
        if !first_node.is_leaf() {
            return false;
        }
        for &slot in &slots[1..] {
            if slot == NIL {
                return false;
            }
            self.counters.prune_child_reads += 1;
            let child = self.store.node(slot);
            if !child.is_leaf() || child.value != first_node.value {
                return false;
            }
        }

        // Collapsible: delete the 8 children and take over their value.
        for &slot in &slots {
            self.store.free_node(slot);
        }
        self.store.free_block(block);
        let n = self.store.node_mut(node);
        n.block = NIL;
        n.value = first_node.value;
        self.counters.prunes += 1;
        true
    }

    /// Recomputes an inner node's value as the maximum over its existing
    /// children (OctoMap `updateOccupancyChildren`).
    pub fn refresh_parent_value(&mut self, node: u32) {
        let block = self.store.node(node).block;
        if block == NIL {
            return;
        }
        let slots = self.store.block(block).slots;
        let mut acc: Option<V> = None;
        let mut reads = 0;
        for &slot in &slots {
            if slot != NIL {
                reads += 1;
                let v = self.store.node(slot).value;
                acc = Some(match acc {
                    Some(a) => V::max_of(a, v),
                    None => v,
                });
            }
        }
        if let Some(m) = acc {
            self.store.node_mut(node).value = m;
            self.counters.parent_updates += 1;
            self.counters.parent_child_reads += reads;
        }
    }
}
