//! Query-side operations: occupancy ray casting for collision probing.
//!
//! The walk and probe algorithms are generic over an occupancy source
//! ([`cast_ray_with`], [`collides_sphere_with`]) so the tree's inherent
//! methods and the `omu-map` facade (which also serves the accelerator
//! backend) share one implementation.

use omu_geometry::{KeyConverter, KeyError, LogOdds, Occupancy, Point3, VoxelKey};
use omu_raycast::RayWalk;

use crate::tree::OccupancyOctree;

/// Outcome of casting a query ray through the map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RayCastResult {
    /// The ray reached an occupied voxel.
    Hit {
        /// Key of the first occupied voxel.
        key: VoxelKey,
        /// Centre of that voxel.
        point: Point3,
        /// Its log-odds occupancy value.
        logodds: f32,
    },
    /// The ray travelled `max_range` (or left the map) without hitting an
    /// occupied voxel.
    MaxRangeReached,
    /// The ray entered unobserved space and unknown cells were not ignored.
    UnknownBlocked {
        /// Key of the first unknown voxel.
        key: VoxelKey,
    },
}

/// Casts a query ray over any occupancy source — the single
/// implementation behind [`OccupancyOctree::cast_ray`] and the
/// `omu-map` facade's backend-generic query view.
///
/// `probe` classifies a voxel and reports its log-odds; the log-odds
/// value is only read when the classification is
/// [`Occupancy::Occupied`], so sources may return any placeholder
/// otherwise.
///
/// # Errors
///
/// Returns [`KeyError`] when the origin is outside the map or the
/// direction is degenerate.
pub fn cast_ray_with<F>(
    conv: &KeyConverter,
    origin: Point3,
    direction: Point3,
    max_range: f64,
    ignore_unknown: bool,
    probe: F,
) -> Result<RayCastResult, KeyError>
where
    F: FnMut(VoxelKey) -> (Occupancy, f32),
{
    let mut walk = RayWalk::new(conv, origin, direction, max_range)?;
    Ok(drive_walk(conv, &mut walk, ignore_unknown, probe))
}

/// [`cast_ray_with`] over a caller-owned [`RayWalk`]: the walk is
/// re-aimed at the new ray ([`RayWalk::restart`]) and driven in place,
/// so batched casting loops construct no per-ray iterator state. The
/// result is identical to [`cast_ray_with`] for the same ray and probe.
///
/// # Errors
///
/// Returns [`KeyError`] when the origin is outside the map or the
/// direction is degenerate (the walk is left exhausted).
pub fn cast_ray_resuming<F>(
    conv: &KeyConverter,
    walk: &mut RayWalk,
    origin: Point3,
    direction: Point3,
    max_range: f64,
    ignore_unknown: bool,
    probe: F,
) -> Result<RayCastResult, KeyError>
where
    F: FnMut(VoxelKey) -> (Occupancy, f32),
{
    walk.restart(conv, origin, direction, max_range)?;
    Ok(drive_walk(conv, walk, ignore_unknown, probe))
}

/// Drives an aimed walk to its verdict — the shared loop behind
/// [`cast_ray_with`] and [`cast_ray_resuming`].
fn drive_walk<F>(
    conv: &KeyConverter,
    walk: &mut RayWalk,
    ignore_unknown: bool,
    mut probe: F,
) -> RayCastResult
where
    F: FnMut(VoxelKey) -> (Occupancy, f32),
{
    for key in walk {
        match probe(key) {
            (Occupancy::Occupied, logodds) => {
                return RayCastResult::Hit {
                    key,
                    point: conv.key_to_coord(key),
                    logodds,
                };
            }
            (Occupancy::Free, _) => {}
            (Occupancy::Unknown, _) => {
                if !ignore_unknown {
                    return RayCastResult::UnknownBlocked { key };
                }
            }
        }
    }
    RayCastResult::MaxRangeReached
}

/// Sphere collision probe over any occupancy source — the single
/// implementation behind [`OccupancyOctree::collides_sphere`] and the
/// `omu-map` facade. Conservatively samples the voxel grid inside the
/// sphere's bounding cube, accepting voxel centres within the radius
/// plus half a voxel diagonal.
///
/// # Errors
///
/// Returns [`KeyError`] when the probe region leaves the addressable
/// map.
pub fn collides_sphere_with<F>(
    conv: &KeyConverter,
    center: Point3,
    radius: f64,
    mut probe: F,
) -> Result<bool, KeyError>
where
    F: FnMut(VoxelKey) -> Occupancy,
{
    let res = conv.resolution();
    let r = radius.max(0.0);
    let min = conv.coord_to_key(center - Point3::splat(r))?;
    let max = conv.coord_to_key(center + Point3::splat(r))?;
    for x in min.x..=max.x {
        for y in min.y..=max.y {
            for z in min.z..=max.z {
                let key = VoxelKey::new(x, y, z);
                if probe(key) == Occupancy::Occupied {
                    // Check the voxel centre actually lies within the
                    // sphere (plus half a diagonal for conservatism).
                    let c = conv.key_to_coord(key);
                    if c.distance(center) <= r + res * 0.866 {
                        return Ok(true);
                    }
                }
            }
        }
    }
    Ok(false)
}

impl<V: LogOdds> OccupancyOctree<V> {
    /// Casts a query ray from `origin` along `direction`, returning the
    /// first occupied voxel within `max_range` metres.
    ///
    /// With `ignore_unknown = true` unobserved voxels are treated as free
    /// (OctoMap `castRay` semantics with `ignoreUnknownCells`); otherwise
    /// the cast stops at the first unknown voxel.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] when the origin is outside the map or the
    /// direction is degenerate.
    ///
    /// # Examples
    ///
    /// ```
    /// use omu_geometry::{Point3, PointCloud, Scan};
    /// use omu_octree::{OctreeF32, RayCastResult};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut tree = OctreeF32::new(0.1)?;
    /// tree.insert_scan(&Scan::new(
    ///     Point3::ZERO,
    ///     [Point3::new(1.0, 0.0, 0.0)].into_iter().collect::<PointCloud>(),
    /// ))?;
    /// let hit = tree.cast_ray(Point3::ZERO, Point3::new(1.0, 0.0, 0.0), 5.0, true)?;
    /// assert!(matches!(hit, RayCastResult::Hit { .. }));
    /// # Ok(())
    /// # }
    /// ```
    pub fn cast_ray(
        &self,
        origin: Point3,
        direction: Point3,
        max_range: f64,
        ignore_unknown: bool,
    ) -> Result<RayCastResult, KeyError> {
        cast_ray_with(
            &self.conv,
            origin,
            direction,
            max_range,
            ignore_unknown,
            |key| match self.search(key) {
                Some((v, _)) => (self.resolved.classify(v), v.to_f32()),
                None => (Occupancy::Unknown, 0.0),
            },
        )
    }

    /// Convenience collision probe: does a sphere of radius `radius` at
    /// `center` intersect any occupied voxel?
    ///
    /// This is the motion-planning query of the paper's introduction
    /// (Fig. 1: "Collision Detect"). It conservatively samples the voxel
    /// grid inside the axis-aligned bounding cube of the sphere.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] when the probe region leaves the addressable
    /// map.
    pub fn collides_sphere(&self, center: Point3, radius: f64) -> Result<bool, KeyError> {
        collides_sphere_with(&self.conv, center, radius, |key| self.occupancy(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::OctreeF32;
    use omu_geometry::{PointCloud, Scan};

    fn mapped_tree() -> OctreeF32 {
        let mut t = OctreeF32::new(0.1).unwrap();
        // A wall of endpoints at x = 2.0 m.
        let mut cloud = PointCloud::new();
        for y in -5..=5 {
            for z in -5..=5 {
                cloud.push(Point3::new(2.0, y as f64 * 0.1, z as f64 * 0.1));
            }
        }
        t.insert_scan(&Scan::new(Point3::ZERO, cloud)).unwrap();
        t
    }

    #[test]
    fn cast_ray_hits_wall() {
        let t = mapped_tree();
        let r = t
            .cast_ray(Point3::ZERO, Point3::new(1.0, 0.0, 0.0), 5.0, true)
            .unwrap();
        match r {
            RayCastResult::Hit { point, logodds, .. } => {
                assert!((point.x - 2.05).abs() < 0.11, "hit near the wall: {point}");
                assert!(logodds > 0.0);
            }
            other => panic!("expected a hit, got {other:?}"),
        }
    }

    #[test]
    fn cast_ray_respects_max_range() {
        let t = mapped_tree();
        let r = t
            .cast_ray(Point3::ZERO, Point3::new(1.0, 0.0, 0.0), 1.0, true)
            .unwrap();
        assert_eq!(r, RayCastResult::MaxRangeReached);
    }

    #[test]
    fn cast_ray_blocked_by_unknown() {
        let t = mapped_tree();
        // Looking away from the mapped cone: immediately unknown.
        let r = t
            .cast_ray(
                Point3::new(0.0, 0.0, 1.0),
                Point3::new(0.0, 0.0, 1.0),
                5.0,
                false,
            )
            .unwrap();
        assert!(matches!(r, RayCastResult::UnknownBlocked { .. }));
        // Ignoring unknown lets the ray run to range.
        let r = t
            .cast_ray(
                Point3::new(0.0, 0.0, 1.0),
                Point3::new(0.0, 0.0, 1.0),
                5.0,
                true,
            )
            .unwrap();
        assert_eq!(r, RayCastResult::MaxRangeReached);
    }

    #[test]
    fn cast_ray_bad_direction_errors() {
        let t = mapped_tree();
        assert!(t.cast_ray(Point3::ZERO, Point3::ZERO, 1.0, true).is_err());
    }

    #[test]
    fn sphere_collision_near_wall() {
        let t = mapped_tree();
        assert!(t.collides_sphere(Point3::new(2.0, 0.0, 0.0), 0.2).unwrap());
        assert!(!t.collides_sphere(Point3::new(0.5, 0.0, 0.0), 0.2).unwrap());
    }

    #[test]
    fn sphere_probe_out_of_map_errors() {
        let t = mapped_tree();
        let far = t.converter().map_half_extent();
        assert!(t.collides_sphere(Point3::new(far, 0.0, 0.0), 1.0).is_err());
    }
}
