//! Subtree-sharded parallel batch application.
//!
//! Morton order makes the batched walk parallelizable for free: the top
//! 3 bits of a voxel's Morton code are its first-level branch, so the
//! sorted unique keys split into at most 8 contiguous runs over
//! *disjoint* subtrees. This module detaches each active branch's
//! [`ArenaShard`](crate::arena::ArenaShard) from the tree (O(1) — the
//! arena is branch-partitioned from the start, like the OMU accelerator's
//! per-PE T-Mem banks), applies each run on its own thread through the
//! same [`WalkCtx`] machinery the sequential walk uses, then reattaches
//! the shards and finishes the root spine.
//!
//! In the sibling-row layout the 8 depth-1 nodes share one spine row, so
//! a worker cannot own its depth-1 node through the shard alone. Each
//! worker instead runs over a [`BranchStore`]: its branch shard plus a
//! by-value copy of the branch's depth-1 node, written back to the spine
//! after the join (branches are disjoint, so no other thread reads it).
//!
//! The result is **bit-identical** to the scalar and sequential-batched
//! paths: per-voxel delta order is preserved by the grouping pass,
//! branches are disjoint (no cross-thread data), worker-local counters
//! and change logs merge in fixed branch order, and the deferred
//! finishing inside a branch is exactly the sequence the sequential walk
//! would have executed when crossing that branch.

use omu_geometry::{LogOdds, ResolvedParams, VoxelKey, TREE_DEPTH};
use omu_pool::TaskPanic;

use crate::arena::{ArenaShard, NodeStore, NUM_BRANCHES};
use crate::batch::{BatchScratch, BatchStats, DeltaMode};
use crate::counters::OpCounters;
use crate::node::{Node, NIL};
use crate::tree::OccupancyOctree;
use crate::walk::WalkCtx;

/// Minimum number of unique keys in a batch before the sharded apply
/// fans out to pool workers. Queueing on the persistent pool is far
/// cheaper than the old per-call `thread::scope` spawn (a futex wake vs
/// a clone(2)), but below this the dispatch bookkeeping still exceeds
/// the walk itself, so the batch runs through the sequential
/// cached-descent walk instead (bit-identical output and counters).
pub(crate) const PARALLEL_APPLY_MIN_KEYS: usize = 1024;

/// How the sharded write path runs its branch tasks.
///
/// Hidden from docs: `Pooled` is the production path; `ScopedThreads`
/// preserves the pre-pool per-call `std::thread::scope` spawn purely so
/// the benches can record an honest scoped-vs-pooled comparison.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelDispatch {
    /// Queue branch tasks on the tree's persistent [`omu_pool::WorkerPool`].
    #[default]
    Pooled,
    /// Spawn scoped threads per call (legacy; benches only).
    ScopedThreads,
}

/// A worker's storage view: its branch shard plus the branch's depth-1
/// node copied out of the spine row (written back after the join).
struct BranchStore<V> {
    shard: ArenaShard<V>,
    /// Spine handle of the depth-1 node this store masquerades for.
    branch_idx: u32,
    /// The depth-1 node, owned by value for the walk's duration.
    branch_node: Node<V>,
}

impl<V: LogOdds> NodeStore<V> for BranchStore<V> {
    #[inline]
    fn node(&self, h: u32) -> &Node<V> {
        if h == self.branch_idx {
            &self.branch_node
        } else {
            self.shard.node(h)
        }
    }

    #[inline]
    fn node_mut(&mut self, h: u32) -> &mut Node<V> {
        if h == self.branch_idx {
            &mut self.branch_node
        } else {
            self.shard.node_mut(h)
        }
    }

    #[inline]
    fn leaf_value(&self, h: u32) -> V {
        self.shard.leaf_value(h)
    }

    #[inline]
    fn leaf_value_mut(&mut self, h: u32) -> &mut V {
        self.shard.leaf_value_mut(h)
    }

    /// Everything below the depth-1 node lives in this branch's shard —
    /// including the depth-1 node's own children (its octant *is* the
    /// branch id).
    #[inline]
    fn child_shard(&self, _parent: u32) -> usize {
        self.shard.id()
    }

    #[inline]
    fn alloc_row_for(&mut self, _parent: u32, fill: Node<V>) -> u32 {
        self.shard.alloc_row(fill)
    }

    #[inline]
    fn alloc_leaf_row_for(&mut self, _parent: u32, fill: V) -> u32 {
        self.shard.alloc_leaf_row(fill)
    }

    #[inline]
    fn free_row_of(&mut self, parent: u32) {
        let row = self.node(parent).row();
        self.shard.free_row(row);
    }

    #[inline]
    fn free_leaf_row_of(&mut self, parent: u32) {
        let row = self.node(parent).row();
        self.shard.free_leaf_row(row);
    }

    #[inline]
    fn ensure_children_current(&mut self, parent: u32, leaf_tier: bool) -> u32 {
        let n = *self.node(parent);
        debug_assert!(!n.is_leaf(), "ensure on a childless node");
        let row = n.row();
        let current = if leaf_tier {
            self.shard.make_leaf_row_current(row)
        } else {
            self.shard.make_row_current(row)
        };
        if current != row {
            // Republish the packed word — into the by-value branch node
            // when `parent` is the depth-1 node this store masquerades
            // for (its spine slot is written back after the join).
            self.node_mut(parent).set_children(current, n.mask());
        }
        current
    }

    #[inline]
    fn node_row(&self, _shard: usize, row: u32) -> &crate::node::NodeRow<V> {
        self.shard.node_row(row)
    }

    #[inline]
    fn leaf_row(&self, _shard: usize, row: u32) -> &crate::node::LeafRow<V> {
        self.shard.leaf_row(row)
    }
}

/// One branch's slice of the batch plus everything its worker owns.
struct BranchTask<V> {
    branch: usize,
    store: BranchStore<V>,
    /// Whether the depth-1 node was freshly created by the pre-step.
    created: bool,
    /// This branch's contiguous range in the Morton-sorted group order.
    range: std::ops::Range<usize>,
    stats: BatchStats,
    counters: OpCounters,
    changed: Vec<VoxelKey>,
}

/// First-level branch of a group: the top 3 bits of its Morton code.
#[inline]
fn branch_of(morton: u64) -> usize {
    (morton >> 45) as usize
}

/// Resolves a requested worker count: `0` means one per available CPU
/// (same policy as the ray-casting front end), capped at the 8 branch
/// shards that exist.
pub(crate) fn resolve_apply_shards(requested: usize) -> usize {
    omu_raycast::ScanPipeline::resolve_shards(requested).clamp(1, NUM_BRANCHES)
}

impl<V: LogOdds> OccupancyOctree<V> {
    /// The subtree-sharded counterpart of `walk_sequential`: called by the
    /// batch engine after grouping/sorting, with the root already in place.
    ///
    /// On a worker panic in the pooled fan-out, every branch shard is
    /// still reattached (the tasks — and therefore the detached shards —
    /// stay owned by this thread; workers only borrow them), the root
    /// spine is finished, and the panic is reported as [`TaskPanic`]: the
    /// tree remains structurally valid (`debug_validate`-clean), though
    /// the batch's value updates may be partially applied.
    pub(crate) fn walk_sharded(
        &mut self,
        scratch: &BatchScratch<V>,
        mode: DeltaMode<V>,
        stats: &mut BatchStats,
        mut root_just_created: bool,
        shards: usize,
    ) -> Result<(), TaskPanic> {
        let workers = resolve_apply_shards(shards);
        let root = self.root;

        // Split the Morton-sorted group order into per-branch runs.
        let mut runs: Vec<(usize, std::ops::Range<usize>)> = Vec::with_capacity(NUM_BRANCHES);
        let mut start = 0;
        for i in 1..=scratch.order.len() {
            let boundary = i == scratch.order.len()
                || branch_of(scratch.keys[scratch.order[i] as usize].0)
                    != branch_of(scratch.keys[scratch.order[start] as usize].0);
            if boundary {
                let b = branch_of(scratch.keys[scratch.order[start] as usize].0);
                runs.push((b, start..i));
                start = i;
            }
        }

        // Pre-step depth 0 on the main thread, in Morton (= branch) order:
        // locate or create each active branch's depth-1 node, expanding a
        // pruned root exactly as the sequential walk's first descent would.
        let mut pre: Vec<(usize, u32, bool, std::ops::Range<usize>)> =
            Vec::with_capacity(runs.len());
        {
            let mut ctx = self.walk_ctx();
            for (branch, range) in runs {
                let first_key = scratch.keys[scratch.order[range.start] as usize].1;
                let (branch_root, created) = ctx.step_down(root, first_key, 0, root_just_created);
                root_just_created = false;
                stats.descended_levels += 1;
                pre.push((branch, branch_root, created, range));
            }
        }
        let mut tasks: Vec<BranchTask<V>> = pre
            .into_iter()
            .map(|(branch, branch_root, created, range)| BranchTask {
                branch,
                store: BranchStore {
                    shard: self.arena.take_branch(branch),
                    branch_idx: branch_root,
                    branch_node: *self.arena.node(branch_root),
                },
                created,
                range,
                stats: BatchStats::default(),
                counters: OpCounters::default(),
                changed: Vec::new(),
            })
            .collect();

        let resolved = self.resolved;
        let pruning = self.pruning_enabled;
        let track_changes = self.changed.is_some();

        // Dispatch-amortization fast path: below the threshold even pool
        // dispatch bookkeeping dominates the walk, so run every branch
        // task inline on this thread — same stores, same deferred-finish
        // order, bit-identical output and counters.
        let spawn_worthy = scratch.order.len() >= PARALLEL_APPLY_MIN_KEYS;
        let nworkers = if spawn_worthy {
            workers.min(tasks.len()).max(1)
        } else {
            1
        };
        let mut panicked: Option<TaskPanic> = None;
        if nworkers <= 1 {
            for task in &mut tasks {
                run_branch_task(task, scratch, mode, resolved, pruning, track_changes);
            }
        } else if self.parallel_dispatch == ParallelDispatch::ScopedThreads {
            // Legacy dispatch, kept for the benches' scoped-vs-pooled
            // rows: round-robin branches over freshly spawned scoped
            // threads; each thread owns its tasks for the scope.
            let mut groups: Vec<Vec<BranchTask<V>>> = (0..nworkers).map(|_| Vec::new()).collect();
            for (i, task) in tasks.drain(..).enumerate() {
                groups[i % nworkers].push(task);
            }
            // omu-lint: allow(thread-confinement) — the doc(hidden)
            // `ParallelDispatch::ScopedThreads` legacy path, kept so the
            // benches can measure scoped-vs-pooled dispatch.
            let finished = std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .into_iter()
                    .map(|mut group| {
                        scope.spawn(move || {
                            for task in &mut group {
                                run_branch_task(
                                    task,
                                    scratch,
                                    mode,
                                    resolved,
                                    pruning,
                                    track_changes,
                                );
                            }
                            group
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    // omu-lint: allow(no-panic) — legacy bench-only path;
                    // re-raising a worker panic matches the pooled path's
                    // documented behavior.
                    .flat_map(|h| h.join().expect("branch worker thread"))
                    .collect::<Vec<_>>()
            });
            tasks = finished;
            tasks.sort_unstable_by_key(|t| t.branch);
        } else {
            // Pooled dispatch: branch i's task goes to queue i % n, the
            // same round-robin the scoped path used, but onto persistent
            // workers — zero thread spawns per call. Workers only borrow
            // the tasks; the Vec (and the detached shards inside) stays
            // owned here, so reattachment below succeeds even if a task
            // panics mid-walk.
            let pool = self.worker_pool_handle();
            let inject = self.debug_panic_branch;
            let result = pool.try_scope(|s| {
                for (i, task) in tasks.iter_mut().enumerate() {
                    s.spawn_on(i % nworkers, move || {
                        if inject == Some(task.branch) {
                            // omu-lint: allow(no-panic) — deliberate fault
                            // injection behind the doc(hidden) debug knob,
                            // used by tests to prove panic containment.
                            panic!("injected worker panic on branch {}", task.branch);
                        }
                        run_branch_task(task, scratch, mode, resolved, pruning, track_changes);
                    });
                }
            });
            panicked = result.err();
        }

        // Reattach shards, write the depth-1 nodes back to the spine row,
        // and merge in fixed branch order so counters, stats and change
        // logs are deterministic regardless of thread timing. This runs
        // unconditionally — also after a worker panic — so the tree is
        // never left with detached branches.
        for mut task in tasks {
            self.arena.put_branch(task.branch, task.store.shard);
            *self.arena.node_mut(task.store.branch_idx) = task.store.branch_node;
            self.counters.merge(&task.counters);
            stats.merge(&task.stats);
            if let Some(changed) = &mut self.changed {
                changed.extend(task.changed.drain(..));
            }
        }

        // The root spine is finished exactly once, like the sequential
        // walk's final flush step at depth 0.
        let mut ctx = self.walk_ctx();
        ctx.finish_node(root, 0);
        stats.deferred_finishes += 1;

        match panicked {
            Some(panic) => Err(panic),
            None => Ok(()),
        }
    }
}

/// Applies one branch's contiguous run of Morton-sorted groups inside its
/// own branch store — the per-thread body of the sharded walk. Mirrors
/// the sequential walk restricted to depths ≥ 1 (the main thread already
/// performed the depth-0 step).
fn run_branch_task<V: LogOdds>(
    task: &mut BranchTask<V>,
    scratch: &BatchScratch<V>,
    mode: DeltaMode<V>,
    resolved: ResolvedParams<V>,
    pruning_enabled: bool,
    track_changes: bool,
) {
    let BranchTask {
        store,
        created,
        range,
        stats,
        counters,
        changed,
        ..
    } = task;
    let branch_root = store.branch_idx;
    let mut ctx = WalkCtx {
        store,
        resolved,
        pruning_enabled,
        counters,
        changed: if track_changes { Some(changed) } else { None },
    };

    // path[d] = node at depth d along the current key's root path
    // (path[0] is the root, owned by the main thread — never touched).
    let mut path = [NIL; TREE_DEPTH as usize + 1];
    path[1] = branch_root;
    let mut prev: Option<VoxelKey> = None;

    for &id in &scratch.order[range.clone()] {
        let (_, key) = scratch.keys[id as usize];
        let resume_depth = match prev {
            None => 1,
            Some(prev_key) => {
                // Keys in one branch share at least the depth-1 prefix.
                let shared = prev_key.common_prefix_depth(key) as usize;
                for d in ((shared + 1)..TREE_DEPTH as usize).rev() {
                    ctx.finish_node(path[d], d as u8);
                    stats.deferred_finishes += 1;
                }
                stats.reused_levels += shared as u64;
                shared
            }
        };

        let mut node = path[resume_depth];
        let mut just_created = resume_depth == 1 && *created && prev.is_none();
        for depth in resume_depth..TREE_DEPTH as usize {
            let (child, c) = ctx.step_down(node, key, depth as u8, just_created);
            just_created = c;
            node = child;
            path[depth + 1] = node;
            stats.descended_levels += 1;
        }

        // Replay the group's whole delta sequence on the leaf in hand
        // (one leaf-row load and store for the whole sequence).
        let drange = scratch.starts[id as usize] as usize..scratch.cursors[id as usize] as usize;
        match mode {
            DeltaMode::HitMiss { hit, miss } => {
                ctx.apply_leaf_bits(node, key, &scratch.bits[drange], hit, miss, just_created)
            }
            DeltaMode::Raw => {
                ctx.apply_leaf_deltas(node, key, &scratch.deltas[drange], just_created)
            }
        };
        prev = Some(key);
    }

    // Flush the last path down to the branch root; the root spine
    // (depth 0) is finished once by the main thread after the join.
    for d in (1..TREE_DEPTH as usize).rev() {
        ctx.finish_node(path[d], d as u8);
        stats.deferred_finishes += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::OctreeF32;
    use omu_raycast::VoxelUpdate;

    /// Keys spread over all 8 first-level branches, with repeats.
    fn cross_branch_updates() -> Vec<VoxelUpdate> {
        let mut u = Vec::new();
        for i in 0..96u16 {
            let b = i % 8;
            let key = VoxelKey::new(
                ((b & 1) << 15) | (1000 + i % 7),
                (((b >> 1) & 1) << 15) | (2000 + (i * 3) % 5),
                (((b >> 2) & 1) << 15) | (3000 + (i * 5) % 3),
            );
            u.push(VoxelUpdate {
                key,
                hit: i % 3 != 0,
            });
        }
        u
    }

    fn scalar_reference(updates: &[VoxelUpdate], pruning: bool) -> OctreeF32 {
        let mut t = OctreeF32::new(0.1).unwrap();
        t.set_pruning_enabled(pruning);
        t.set_change_detection(true);
        for u in updates {
            t.update_key(u.key, u.hit);
        }
        t
    }

    #[test]
    fn sharded_apply_is_bit_identical_across_shard_counts() {
        let u = cross_branch_updates();
        for pruning in [true, false] {
            let scalar = scalar_reference(&u, pruning);
            let mut sequential = OctreeF32::new(0.1).unwrap();
            sequential.set_pruning_enabled(pruning);
            sequential.apply_update_batch(&u);
            for shards in [1, 2, 4, 8] {
                let mut t = OctreeF32::new(0.1).unwrap();
                t.set_pruning_enabled(pruning);
                t.set_change_detection(true);
                let stats = t.apply_update_batch_parallel(&u, shards);
                assert_eq!(stats.updates, u.len() as u64);
                assert_eq!(
                    scalar.snapshot(),
                    t.snapshot(),
                    "pruning={pruning} shards={shards}"
                );
                assert_eq!(scalar.num_nodes(), t.num_nodes());
                let canon = |t: &OctreeF32| {
                    let mut v: Vec<VoxelKey> = t.changed_keys().copied().collect();
                    v.sort_unstable();
                    v
                };
                assert_eq!(canon(&scalar), canon(&t));
            }
        }
    }

    #[test]
    fn sharded_stats_match_sequential_batch_stats() {
        let u = cross_branch_updates();
        let mut sequential = OctreeF32::new(0.1).unwrap();
        let s1 = sequential.apply_update_batch(&u);
        let mut sharded = OctreeF32::new(0.1).unwrap();
        let s2 = sharded.apply_update_batch_parallel(&u, 4);
        assert_eq!(s1, s2, "the sharded walk does the same deferred work");
        assert_eq!(sequential.counters(), sharded.counters());
    }

    #[test]
    fn single_branch_batch_degenerates_gracefully() {
        // All keys inside one branch: one run, one worker does everything.
        let u: Vec<VoxelUpdate> = (0..40u16)
            .map(|i| VoxelUpdate {
                key: VoxelKey::new(33000 + i % 5, 33000 + (i * 3) % 7, 33000),
                hit: i % 4 != 0,
            })
            .collect();
        let scalar = scalar_reference(&u, true);
        for shards in [1, 8] {
            let mut t = OctreeF32::new(0.1).unwrap();
            t.apply_update_batch_parallel(&u, shards);
            assert_eq!(scalar.snapshot(), t.snapshot(), "shards={shards}");
        }
    }

    #[test]
    fn sharded_apply_expands_a_pruned_root() {
        // Saturating misses everywhere a tiny tree covers can prune all
        // the way to the root; the next sharded batch must expand it on
        // the main thread before fan-out, exactly like the scalar path.
        let mut keys = Vec::new();
        for b in 0..8u16 {
            keys.push(VoxelKey::new(
                (b & 1) << 15,
                ((b >> 1) & 1) << 15,
                ((b >> 2) & 1) << 15,
            ));
        }
        let mut prime: Vec<VoxelUpdate> = Vec::new();
        for _ in 0..10 {
            for &key in &keys {
                prime.push(VoxelUpdate { key, hit: false });
            }
        }
        let mut scalar = OctreeF32::new(0.1).unwrap();
        scalar.set_early_abort_saturated(false);
        let mut t = OctreeF32::new(0.1).unwrap();
        for u in &prime {
            scalar.update_key(u.key, u.hit);
        }
        t.apply_update_batch_parallel(&prime, 8);
        assert_eq!(scalar.snapshot(), t.snapshot());

        let follow_up = [VoxelUpdate {
            key: VoxelKey::ORIGIN,
            hit: true,
        }];
        for u in &follow_up {
            scalar.update_key(u.key, u.hit);
        }
        t.apply_update_batch_parallel(&follow_up, 8);
        assert_eq!(scalar.snapshot(), t.snapshot());
        assert_eq!(scalar.num_nodes(), t.num_nodes());
    }

    #[test]
    fn empty_parallel_batch_is_a_noop() {
        let mut t = OctreeF32::new(0.1).unwrap();
        let stats = t.apply_update_batch_parallel(&[], 4);
        assert_eq!(stats, BatchStats::default());
        assert!(t.is_empty());
    }

    #[test]
    fn zero_shards_resolves_to_cpu_count() {
        assert!(resolve_apply_shards(0) >= 1);
        assert!(resolve_apply_shards(0) <= NUM_BRANCHES);
        assert_eq!(resolve_apply_shards(3), 3);
        assert_eq!(resolve_apply_shards(64), NUM_BRANCHES);
    }
}
