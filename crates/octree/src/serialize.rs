//! Compact binary serialization of occupancy octrees.
//!
//! The format follows the spirit of OctoMap's `.bt`/`.ot` files: a small
//! header followed by a pre-order traversal where each node contributes its
//! log-odds value (as `f32`, lossless for both representations) and a
//! child-presence bitmap.

use std::error::Error;
use std::fmt;

use bytes::{Buf, BufMut, BytesMut};
use omu_geometry::{LogOdds, OccupancyParams, TREE_DEPTH};

use crate::arena::NodeStore;
use crate::node::{Node, NIL};
use crate::tree::OccupancyOctree;

const MAGIC: &[u8; 4] = b"OMUT";
const VERSION: u8 = 1;

/// Errors produced when decoding a serialized octree.
#[derive(Debug, Clone, PartialEq)]
pub enum DeserializeError {
    /// The buffer does not start with the `OMUT` magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// The buffer ended before the encoded tree was complete.
    Truncated,
    /// The encoded resolution is invalid.
    BadResolution(f64),
    /// Structural inconsistency (e.g. children below the maximum depth).
    Malformed(&'static str),
}

impl fmt::Display for DeserializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeserializeError::BadMagic => write!(f, "missing OMUT magic header"),
            DeserializeError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            DeserializeError::Truncated => write!(f, "buffer truncated"),
            DeserializeError::BadResolution(r) => write!(f, "invalid resolution {r}"),
            DeserializeError::Malformed(what) => write!(f, "malformed tree encoding: {what}"),
        }
    }
}

impl Error for DeserializeError {}

impl<V: LogOdds> OccupancyOctree<V> {
    /// Serializes the tree to a compact byte vector.
    ///
    /// # Examples
    ///
    /// ```
    /// use omu_geometry::Point3;
    /// use omu_octree::OctreeF32;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut tree = OctreeF32::new(0.1)?;
    /// tree.update_point(Point3::ZERO, true)?;
    /// let bytes = tree.to_bytes();
    /// let restored = OctreeF32::from_bytes(&bytes)?;
    /// assert_eq!(restored.snapshot(), tree.snapshot());
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(64 + self.num_nodes() * 5);
        buf.put_slice(MAGIC);
        buf.put_u8(VERSION);
        buf.put_f64(self.resolution());
        let p = self.params();
        buf.put_f32(p.hit);
        buf.put_f32(p.miss);
        buf.put_f32(p.clamp_min);
        buf.put_f32(p.clamp_max);
        buf.put_f32(p.occupancy_threshold);
        buf.put_u8(u8::from(self.root != NIL));
        if self.root != NIL {
            self.write_node(&mut buf, self.root, 0);
        }
        buf.to_vec()
    }

    /// Writes one node in the pre-order `(value, child mask)` wire form.
    /// The in-memory sibling-row layout converts at this boundary: the
    /// mask is the node's packed child mask, depth-16 voxels read from
    /// their leaf row and always encode a zero mask — byte-identical to
    /// the format the block-arena layout produced.
    fn write_node(&self, buf: &mut BytesMut, node: u32, depth: u8) {
        if depth == TREE_DEPTH {
            buf.put_f32(self.arena.leaf_value(node).to_f32());
            buf.put_u8(0);
            return;
        }
        let n = self.arena.node(node);
        buf.put_f32(n.value.to_f32());
        buf.put_u8(n.mask());
        if n.is_leaf() {
            return;
        }
        for pos in 0..8 {
            if n.has_child(pos) {
                self.write_node(buf, self.arena.child_of(node, pos), depth + 1);
            }
        }
    }

    /// Reconstructs a tree from bytes produced by [`Self::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`DeserializeError`] for any malformed input; no partial
    /// tree is ever returned.
    pub fn from_bytes(data: &[u8]) -> Result<Self, DeserializeError> {
        let mut buf = data;
        if buf.remaining() < 4 || &buf[..4] != MAGIC {
            return Err(DeserializeError::BadMagic);
        }
        buf.advance(4);
        if buf.remaining() < 1 {
            return Err(DeserializeError::Truncated);
        }
        let version = buf.get_u8();
        if version != VERSION {
            return Err(DeserializeError::BadVersion(version));
        }
        if buf.remaining() < 8 + 5 * 4 + 1 {
            return Err(DeserializeError::Truncated);
        }
        let resolution = buf.get_f64();
        let params = OccupancyParams {
            hit: buf.get_f32(),
            miss: buf.get_f32(),
            clamp_min: buf.get_f32(),
            clamp_max: buf.get_f32(),
            occupancy_threshold: buf.get_f32(),
        };
        let mut tree = OccupancyOctree::with_params(resolution, params)
            .map_err(|e| DeserializeError::BadResolution(e.resolution))?;
        let has_root = buf.get_u8() != 0;
        if has_root {
            let (value, mask) = read_header::<V>(&mut buf)?;
            let root = tree.arena.alloc_root(value);
            tree.root = root;
            tree.read_children(&mut buf, 0, root, mask)?;
        }
        if buf.has_remaining() {
            return Err(DeserializeError::Malformed("trailing bytes"));
        }
        Ok(tree)
    }

    /// Reconstructs the children of `node` (at `depth`) named by `mask`.
    /// Row allocation goes through `alloc_row_for`/`alloc_leaf_row_for`
    /// so every rebuilt subtree lands in its branch's arena shard,
    /// preserving the invariant the sharded parallel apply relies on;
    /// depth-15 parents rebuild value-only leaf rows.
    fn read_children(
        &mut self,
        buf: &mut &[u8],
        depth: u8,
        node: u32,
        mask: u8,
    ) -> Result<(), DeserializeError> {
        if mask == 0 {
            return Ok(());
        }
        if depth >= TREE_DEPTH {
            return Err(DeserializeError::Malformed("children below maximum depth"));
        }
        if depth + 1 == TREE_DEPTH {
            let row = self.arena.alloc_leaf_row_for(node, V::ZERO);
            self.arena.node_mut(node).set_children(row, mask);
            for pos in 0..8 {
                if mask & (1 << pos) != 0 {
                    let (value, child_mask) = read_header::<V>(buf)?;
                    if child_mask != 0 {
                        return Err(DeserializeError::Malformed("children below maximum depth"));
                    }
                    *self.arena.leaf_value_mut(self.arena.child_of(node, pos)) = value;
                }
            }
        } else {
            let row = self.arena.alloc_row_for(node, Node::leaf(V::ZERO));
            self.arena.node_mut(node).set_children(row, mask);
            for pos in 0..8 {
                if mask & (1 << pos) != 0 {
                    let (value, child_mask) = read_header::<V>(buf)?;
                    let child = self.arena.child_of(node, pos);
                    self.arena.node_mut(child).value = value;
                    self.read_children(buf, depth + 1, child, child_mask)?;
                }
            }
        }
        Ok(())
    }
}

/// Reads one node's `(value, child mask)` header.
fn read_header<V: LogOdds>(buf: &mut &[u8]) -> Result<(V, u8), DeserializeError> {
    if buf.remaining() < 5 {
        return Err(DeserializeError::Truncated);
    }
    let value = V::from_f32(buf.get_f32());
    let mask = buf.get_u8();
    Ok((value, mask))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{OctreeF32, OctreeFixed};
    use omu_geometry::{Point3, PointCloud, Scan, VoxelKey};

    fn mapped_tree() -> OctreeF32 {
        let mut t = OctreeF32::new(0.05).unwrap();
        let mut cloud = PointCloud::new();
        for i in 0..100 {
            let a = i as f64 * 0.0628;
            cloud.push(Point3::new(2.0 * a.cos(), 2.0 * a.sin(), 0.3));
        }
        t.insert_scan(&Scan::new(Point3::ZERO, cloud)).unwrap();
        t
    }

    #[test]
    fn roundtrip_preserves_snapshot_and_config() {
        let t = mapped_tree();
        let bytes = t.to_bytes();
        let r = OctreeF32::from_bytes(&bytes).unwrap();
        assert_eq!(r.snapshot(), t.snapshot());
        assert_eq!(r.resolution(), t.resolution());
        assert_eq!(r.params(), t.params());
        assert_eq!(r.num_nodes(), t.num_nodes());
    }

    #[test]
    fn empty_tree_roundtrips() {
        let t = OctreeF32::new(0.1).unwrap();
        let r = OctreeF32::from_bytes(&t.to_bytes()).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn fixed_tree_roundtrips_exactly() {
        let mut t = OctreeFixed::new(0.1).unwrap();
        for i in 0..50u16 {
            t.update_key(VoxelKey::new(32768 + i, 32768, 32768), i % 2 == 0);
        }
        let r = OctreeFixed::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(r.snapshot(), t.snapshot());
    }

    #[test]
    fn bad_magic_rejected() {
        let e = OctreeF32::from_bytes(b"NOPE....").unwrap_err();
        assert_eq!(e, DeserializeError::BadMagic);
    }

    #[test]
    fn truncated_buffer_rejected() {
        let t = mapped_tree();
        let bytes = t.to_bytes();
        for cut in [5, 13, 20, bytes.len() - 1] {
            let e = OctreeF32::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    e,
                    DeserializeError::Truncated | DeserializeError::Malformed(_)
                ),
                "cut at {cut} gave {e:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let t = mapped_tree();
        let mut bytes = t.to_bytes();
        bytes.push(0xFF);
        assert_eq!(
            OctreeF32::from_bytes(&bytes).unwrap_err(),
            DeserializeError::Malformed("trailing bytes")
        );
    }

    #[test]
    fn bad_version_rejected() {
        let t = OctreeF32::new(0.1).unwrap();
        let mut bytes = t.to_bytes();
        bytes[4] = 99;
        assert_eq!(
            OctreeF32::from_bytes(&bytes).unwrap_err(),
            DeserializeError::BadVersion(99)
        );
    }

    #[test]
    fn queries_survive_roundtrip() {
        let t = mapped_tree();
        let r = OctreeF32::from_bytes(&t.to_bytes()).unwrap();
        let probe = Point3::new(2.0, 0.0, 0.3);
        assert_eq!(
            t.occupancy_at(probe).unwrap(),
            r.occupancy_at(probe).unwrap()
        );
    }
}
