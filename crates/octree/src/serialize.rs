//! Compact binary serialization of occupancy octrees.
//!
//! The format follows the spirit of OctoMap's `.bt`/`.ot` files: a small
//! header followed by a pre-order traversal where each node contributes its
//! log-odds value (as `f32`, lossless for both representations) and a
//! child-presence bitmap.

use std::error::Error;
use std::fmt;

use bytes::{Buf, BufMut, BytesMut};
use omu_geometry::{LogOdds, OccupancyParams, TREE_DEPTH};

use crate::arena::NodeStore;
use crate::checksum::crc32;
use crate::node::{Node, NIL};
use crate::snapshot::Snapshot;
use crate::tree::OccupancyOctree;

const MAGIC: &[u8; 4] = b"OMUT";
const VERSION: u8 = 1;
/// Version byte of the checksummed frame: a v1-identical payload
/// followed by an 8-byte integrity trailer.
const VERSION_V2: u8 = 2;
/// End-of-frame magic closing the v2 trailer. Detected tail-first so a
/// flipped header byte still routes corruption to a checksum error.
const END_MAGIC: &[u8; 4] = b"ZOMU";
/// v2 trailer: little-endian CRC-32 of everything before it, then
/// [`END_MAGIC`].
const TRAILER_LEN: usize = 8;

/// Errors produced when decoding a serialized octree.
#[derive(Debug, Clone, PartialEq)]
pub enum DeserializeError {
    /// The buffer does not start with the `OMUT` magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// The buffer ended before the encoded tree was complete.
    Truncated,
    /// The encoded resolution is invalid.
    BadResolution(f64),
    /// Structural inconsistency (e.g. children below the maximum depth).
    Malformed(&'static str),
    /// A v2 checksummed frame whose integrity trailer does not validate:
    /// the payload, checksum, or end magic was corrupted or cut short.
    ChecksumMismatch,
}

impl fmt::Display for DeserializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeserializeError::BadMagic => write!(f, "missing OMUT magic header"),
            DeserializeError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            DeserializeError::Truncated => write!(f, "buffer truncated"),
            DeserializeError::BadResolution(r) => write!(f, "invalid resolution {r}"),
            DeserializeError::Malformed(what) => write!(f, "malformed tree encoding: {what}"),
            DeserializeError::ChecksumMismatch => {
                write!(f, "checksum mismatch: corrupted v2 frame")
            }
        }
    }
}

impl Error for DeserializeError {}

impl<V: LogOdds> OccupancyOctree<V> {
    /// Serializes the tree to a compact byte vector.
    ///
    /// # Examples
    ///
    /// ```
    /// use omu_geometry::Point3;
    /// use omu_octree::OctreeF32;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut tree = OctreeF32::new(0.1)?;
    /// tree.update_point(Point3::ZERO, true)?;
    /// let bytes = tree.to_bytes();
    /// let restored = OctreeF32::from_bytes(&bytes)?;
    /// assert_eq!(restored.snapshot(), tree.snapshot());
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_bytes(&self) -> Vec<u8> {
        self.encode(VERSION)
    }

    /// Serializes the tree to the v2 wire format: the v1 payload (with
    /// the version byte bumped) sealed by a CRC-32 trailer and end
    /// magic, so any single-byte corruption is caught at load time as
    /// [`DeserializeError::ChecksumMismatch`]. [`Self::from_bytes`]
    /// accepts both formats.
    ///
    /// # Examples
    ///
    /// ```
    /// use omu_geometry::Point3;
    /// use omu_octree::{DeserializeError, OctreeF32};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut tree = OctreeF32::new(0.1)?;
    /// tree.update_point(Point3::ZERO, true)?;
    /// let mut bytes = tree.to_bytes_checksummed();
    /// assert_eq!(OctreeF32::from_bytes(&bytes)?.snapshot(), tree.snapshot());
    /// let mid = bytes.len() / 2;
    /// bytes[mid] ^= 0xFF;
    /// assert_eq!(
    ///     OctreeF32::from_bytes(&bytes).unwrap_err(),
    ///     DeserializeError::ChecksumMismatch
    /// );
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_bytes_checksummed(&self) -> Vec<u8> {
        let mut out = self.encode(VERSION_V2);
        seal(&mut out);
        out
    }

    /// Pre-order payload shared by the v1 and v2 formats; only the
    /// version byte differs.
    fn encode(&self, version: u8) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(64 + self.num_nodes() * 5);
        write_header(
            &mut buf,
            version,
            self.resolution(),
            self.params(),
            self.root != NIL,
        );
        if self.root != NIL {
            self.write_node(&mut buf, self.root, 0);
        }
        buf.to_vec()
    }

    /// Writes one node in the pre-order `(value, child mask)` wire form.
    /// The in-memory sibling-row layout converts at this boundary: the
    /// mask is the node's packed child mask, depth-16 voxels read from
    /// their leaf row and always encode a zero mask — byte-identical to
    /// the format the block-arena layout produced.
    fn write_node(&self, buf: &mut BytesMut, node: u32, depth: u8) {
        if depth == TREE_DEPTH {
            buf.put_f32(self.arena.leaf_value(node).to_f32());
            buf.put_u8(0);
            return;
        }
        let n = self.arena.node(node);
        buf.put_f32(n.value.to_f32());
        buf.put_u8(n.mask());
        if n.is_leaf() {
            return;
        }
        for pos in 0..8 {
            if n.has_child(pos) {
                self.write_node(buf, self.arena.child_of(node, pos), depth + 1);
            }
        }
    }

    /// Reconstructs a tree from bytes produced by [`Self::to_bytes`]
    /// (v1) or [`Self::to_bytes_checksummed`] (v2).
    ///
    /// # Errors
    ///
    /// Returns [`DeserializeError`] for any malformed input; no partial
    /// tree is ever returned. Corrupted v2 frames — including a flipped
    /// byte anywhere in the buffer — yield
    /// [`DeserializeError::ChecksumMismatch`].
    pub fn from_bytes(data: &[u8]) -> Result<Self, DeserializeError> {
        // Tail-first v2 detection: if the end magic is present, the
        // buffer claims to be a sealed frame, and a corrupted *header*
        // byte must still be reported as a checksum failure rather than
        // BadMagic/BadVersion.
        if data.len() > TRAILER_LEN && data[data.len() - 4..] == *END_MAGIC {
            let (body, trailer) = data.split_at(data.len() - TRAILER_LEN);
            let stored = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
            if crc32(body) == stored {
                return Self::decode(body, VERSION_V2);
            }
            // The trailer does not validate: either a corrupted v2
            // frame, or a v1 stream whose last four payload bytes
            // happen to spell the end magic. Only a clean v1 parse of
            // the whole buffer proves the latter.
            return Self::decode(data, VERSION).map_err(|_| DeserializeError::ChecksumMismatch);
        }
        Self::decode(data, VERSION)
    }

    /// Parses one unsealed payload, demanding `expect_version`.
    fn decode(data: &[u8], expect_version: u8) -> Result<Self, DeserializeError> {
        let mut buf = data;
        if buf.remaining() < 4 || &buf[..4] != MAGIC {
            return Err(DeserializeError::BadMagic);
        }
        buf.advance(4);
        if buf.remaining() < 1 {
            return Err(DeserializeError::Truncated);
        }
        let version = buf.get_u8();
        if version != expect_version {
            // A v2 header reaching the unsealed parse means the
            // integrity trailer was missing, cut short, or corrupted.
            if version == VERSION_V2 {
                return Err(DeserializeError::ChecksumMismatch);
            }
            return Err(DeserializeError::BadVersion(version));
        }
        if buf.remaining() < 8 + 5 * 4 + 1 {
            return Err(DeserializeError::Truncated);
        }
        let resolution = buf.get_f64();
        let params = OccupancyParams {
            hit: buf.get_f32(),
            miss: buf.get_f32(),
            clamp_min: buf.get_f32(),
            clamp_max: buf.get_f32(),
            occupancy_threshold: buf.get_f32(),
        };
        let mut tree = OccupancyOctree::with_params(resolution, params)
            .map_err(|e| DeserializeError::BadResolution(e.resolution))?;
        let has_root = buf.get_u8() != 0;
        if has_root {
            let (value, mask) = read_header::<V>(&mut buf)?;
            let root = tree.arena.alloc_root(value);
            tree.root = root;
            tree.read_children(&mut buf, 0, root, mask)?;
        }
        if buf.has_remaining() {
            return Err(DeserializeError::Malformed("trailing bytes"));
        }
        Ok(tree)
    }

    /// Reconstructs the children of `node` (at `depth`) named by `mask`.
    /// Row allocation goes through `alloc_row_for`/`alloc_leaf_row_for`
    /// so every rebuilt subtree lands in its branch's arena shard,
    /// preserving the invariant the sharded parallel apply relies on;
    /// depth-15 parents rebuild value-only leaf rows.
    fn read_children(
        &mut self,
        buf: &mut &[u8],
        depth: u8,
        node: u32,
        mask: u8,
    ) -> Result<(), DeserializeError> {
        if mask == 0 {
            return Ok(());
        }
        if depth >= TREE_DEPTH {
            return Err(DeserializeError::Malformed("children below maximum depth"));
        }
        if depth + 1 == TREE_DEPTH {
            let row = self.arena.alloc_leaf_row_for(node, V::ZERO);
            self.arena.node_mut(node).set_children(row, mask);
            for pos in 0..8 {
                if mask & (1 << pos) != 0 {
                    let (value, child_mask) = read_header::<V>(buf)?;
                    if child_mask != 0 {
                        return Err(DeserializeError::Malformed("children below maximum depth"));
                    }
                    *self.arena.leaf_value_mut(self.arena.child_of(node, pos)) = value;
                }
            }
        } else {
            let row = self.arena.alloc_row_for(node, Node::leaf(V::ZERO));
            self.arena.node_mut(node).set_children(row, mask);
            for pos in 0..8 {
                if mask & (1 << pos) != 0 {
                    let (value, child_mask) = read_header::<V>(buf)?;
                    let child = self.arena.child_of(node, pos);
                    self.arena.node_mut(child).value = value;
                    self.read_children(buf, depth + 1, child, child_mask)?;
                }
            }
        }
        Ok(())
    }
}

impl<V: LogOdds> Snapshot<V> {
    /// Serializes the pinned epoch to the checksummed v2 wire format.
    ///
    /// The payload is byte-identical to what the live tree's
    /// [`OccupancyOctree::to_bytes_checksummed`] would have produced at
    /// the instant this snapshot was published — but the walk runs
    /// entirely on the snapshot's frozen rows, so a checkpoint thread
    /// can serialize while the writer keeps ingesting at full speed.
    ///
    /// # Examples
    ///
    /// ```
    /// use omu_geometry::Point3;
    /// use omu_octree::OctreeF32;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut tree = OctreeF32::new(0.1)?;
    /// tree.update_point(Point3::new(0.4, 0.0, 0.0), true)?;
    /// let snap = tree.publish_snapshot();
    /// tree.update_point(Point3::new(0.0, 0.4, 0.0), true)?; // writer moves on
    /// let restored = OctreeF32::from_bytes(&snap.to_bytes())?;
    /// assert_eq!(restored.snapshot(), snap.canonical_leaves());
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(4096);
        write_header(
            &mut buf,
            VERSION_V2,
            self.resolution(),
            self.params(),
            !self.is_empty(),
        );
        if !self.is_empty() {
            self.write_node(&mut buf, self.root_handle(), 0);
        }
        let mut out = buf.to_vec();
        seal(&mut out);
        out
    }

    /// Pre-order `(value, child mask)` walk over the snapshot's frozen
    /// rows — the same traversal as the live tree's `write_node`.
    fn write_node(&self, buf: &mut BytesMut, node: u32, depth: u8) {
        if depth == TREE_DEPTH {
            buf.put_f32(self.leaf_at(node).to_f32());
            buf.put_u8(0);
            return;
        }
        let n = self.node_at(node);
        buf.put_f32(n.value.to_f32());
        buf.put_u8(n.mask());
        if n.is_leaf() {
            return;
        }
        for pos in 0..8 {
            if n.has_child(pos) {
                self.write_node(buf, self.child_handle(node, &n, pos), depth + 1);
            }
        }
    }
}

/// Writes the header shared by the v1 and v2 formats: magic, version,
/// resolution, the five occupancy parameters, and the root flag.
fn write_header(
    buf: &mut BytesMut,
    version: u8,
    resolution: f64,
    p: &OccupancyParams,
    has_root: bool,
) {
    buf.put_slice(MAGIC);
    buf.put_u8(version);
    buf.put_f64(resolution);
    buf.put_f32(p.hit);
    buf.put_f32(p.miss);
    buf.put_f32(p.clamp_min);
    buf.put_f32(p.clamp_max);
    buf.put_f32(p.occupancy_threshold);
    buf.put_u8(u8::from(has_root));
}

/// Seals a v2 payload in place: appends the little-endian CRC-32 of
/// everything so far, then the end magic.
fn seal(out: &mut Vec<u8>) {
    let crc = crc32(out);
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(END_MAGIC);
}

/// Reads one node's `(value, child mask)` header.
fn read_header<V: LogOdds>(buf: &mut &[u8]) -> Result<(V, u8), DeserializeError> {
    if buf.remaining() < 5 {
        return Err(DeserializeError::Truncated);
    }
    let value = V::from_f32(buf.get_f32());
    let mask = buf.get_u8();
    Ok((value, mask))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{OctreeF32, OctreeFixed};
    use omu_geometry::{Point3, PointCloud, Scan, VoxelKey};

    fn mapped_tree() -> OctreeF32 {
        let mut t = OctreeF32::new(0.05).unwrap();
        let mut cloud = PointCloud::new();
        for i in 0..100 {
            let a = i as f64 * 0.0628;
            cloud.push(Point3::new(2.0 * a.cos(), 2.0 * a.sin(), 0.3));
        }
        t.insert_scan(&Scan::new(Point3::ZERO, cloud)).unwrap();
        t
    }

    #[test]
    fn roundtrip_preserves_snapshot_and_config() {
        let t = mapped_tree();
        let bytes = t.to_bytes();
        let r = OctreeF32::from_bytes(&bytes).unwrap();
        assert_eq!(r.snapshot(), t.snapshot());
        assert_eq!(r.resolution(), t.resolution());
        assert_eq!(r.params(), t.params());
        assert_eq!(r.num_nodes(), t.num_nodes());
    }

    #[test]
    fn empty_tree_roundtrips() {
        let t = OctreeF32::new(0.1).unwrap();
        let r = OctreeF32::from_bytes(&t.to_bytes()).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn fixed_tree_roundtrips_exactly() {
        let mut t = OctreeFixed::new(0.1).unwrap();
        for i in 0..50u16 {
            t.update_key(VoxelKey::new(32768 + i, 32768, 32768), i % 2 == 0);
        }
        let r = OctreeFixed::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(r.snapshot(), t.snapshot());
    }

    #[test]
    fn bad_magic_rejected() {
        let e = OctreeF32::from_bytes(b"NOPE....").unwrap_err();
        assert_eq!(e, DeserializeError::BadMagic);
    }

    #[test]
    fn truncated_buffer_rejected() {
        let t = mapped_tree();
        let bytes = t.to_bytes();
        for cut in [5, 13, 20, bytes.len() - 1] {
            let e = OctreeF32::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    e,
                    DeserializeError::Truncated | DeserializeError::Malformed(_)
                ),
                "cut at {cut} gave {e:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let t = mapped_tree();
        let mut bytes = t.to_bytes();
        bytes.push(0xFF);
        assert_eq!(
            OctreeF32::from_bytes(&bytes).unwrap_err(),
            DeserializeError::Malformed("trailing bytes")
        );
    }

    #[test]
    fn bad_version_rejected() {
        let t = OctreeF32::new(0.1).unwrap();
        let mut bytes = t.to_bytes();
        bytes[4] = 99;
        assert_eq!(
            OctreeF32::from_bytes(&bytes).unwrap_err(),
            DeserializeError::BadVersion(99)
        );
    }

    #[test]
    fn checksummed_roundtrip_preserves_snapshot_and_config() {
        let t = mapped_tree();
        let bytes = t.to_bytes_checksummed();
        let r = OctreeF32::from_bytes(&bytes).unwrap();
        assert_eq!(r.snapshot(), t.snapshot());
        assert_eq!(r.resolution(), t.resolution());
        assert_eq!(r.params(), t.params());
    }

    #[test]
    fn checksummed_frame_is_v1_payload_plus_trailer() {
        let t = mapped_tree();
        let v1 = t.to_bytes();
        let v2 = t.to_bytes_checksummed();
        assert_eq!(v2.len(), v1.len() + TRAILER_LEN);
        // Identical payload except the version byte.
        assert_eq!(&v2[..4], &v1[..4]);
        assert_eq!(v2[4], VERSION_V2);
        assert_eq!(&v2[5..v1.len()], &v1[5..]);
        assert_eq!(&v2[v2.len() - 4..], *END_MAGIC);
    }

    #[test]
    fn corrupted_checksummed_frame_rejected_at_every_byte() {
        let mut t = OctreeF32::new(0.1).unwrap();
        t.update_key(VoxelKey::new(32768, 32768, 32768), true);
        let bytes = t.to_bytes_checksummed();
        for i in 0..bytes.len() {
            let mut mutant = bytes.clone();
            mutant[i] ^= 0xFF;
            assert_eq!(
                OctreeF32::from_bytes(&mutant).unwrap_err(),
                DeserializeError::ChecksumMismatch,
                "flipped byte {i} of {}",
                bytes.len()
            );
        }
    }

    #[test]
    fn truncated_checksummed_frame_rejected() {
        let t = mapped_tree();
        let bytes = t.to_bytes_checksummed();
        for cut in [5, 20, bytes.len() / 2, bytes.len() - 1] {
            let e = OctreeF32::from_bytes(&bytes[..cut]).unwrap_err();
            assert_eq!(
                e,
                DeserializeError::ChecksumMismatch,
                "cut at {cut} gave {e:?}"
            );
        }
    }

    #[test]
    fn v1_stream_with_appended_end_magic_is_typed_corruption() {
        // A buffer that ends in the v2 end magic but has no validating
        // CRC and no clean v1 parse must type as checksum corruption —
        // never a panic or a silent partial load. (A *genuine* v1
        // stream can never trip the tail-first detector: its last byte
        // is always a zero mask, not the end magic's final byte.)
        let t = OctreeF32::new(0.1).unwrap();
        let mut bytes = t.to_bytes();
        assert_eq!(*bytes.last().unwrap(), 0);
        bytes.extend_from_slice(b"ZOMU");
        assert_eq!(
            OctreeF32::from_bytes(&bytes).unwrap_err(),
            DeserializeError::ChecksumMismatch
        );
    }

    #[test]
    fn empty_tree_checksummed_roundtrips() {
        let t = OctreeF32::new(0.1).unwrap();
        let r = OctreeF32::from_bytes(&t.to_bytes_checksummed()).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn fixed_tree_checksummed_roundtrips_exactly() {
        let mut t = OctreeFixed::new(0.1).unwrap();
        for i in 0..50u16 {
            t.update_key(VoxelKey::new(32768 + i, 32768, 32768), i % 2 == 0);
        }
        let r = OctreeFixed::from_bytes(&t.to_bytes_checksummed()).unwrap();
        assert_eq!(r.snapshot(), t.snapshot());
    }

    #[test]
    fn snapshot_bytes_match_live_checksummed_bytes() {
        let mut t = mapped_tree();
        let snap = t.publish_snapshot();
        let expected = t.to_bytes_checksummed();
        assert_eq!(snap.to_bytes(), expected);

        // The writer moves on; the snapshot keeps serializing the
        // pinned epoch byte-for-byte.
        let mut cloud = PointCloud::new();
        cloud.push(Point3::new(0.5, -1.0, 0.4));
        t.insert_scan(&Scan::new(Point3::ZERO, cloud)).unwrap();
        assert_ne!(t.to_bytes_checksummed(), expected);
        assert_eq!(snap.to_bytes(), expected);

        let restored = OctreeF32::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(restored.snapshot(), snap.canonical_leaves());
    }

    #[test]
    fn empty_snapshot_serializes() {
        let mut t = OctreeF32::new(0.1).unwrap();
        let snap = t.publish_snapshot();
        assert_eq!(snap.to_bytes(), t.to_bytes_checksummed());
        assert!(OctreeF32::from_bytes(&snap.to_bytes()).unwrap().is_empty());
    }

    #[test]
    fn queries_survive_roundtrip() {
        let t = mapped_tree();
        let r = OctreeF32::from_bytes(&t.to_bytes()).unwrap();
        let probe = Point3::new(2.0, 0.0, 0.3);
        assert_eq!(
            t.occupancy_at(probe).unwrap(),
            r.occupancy_at(probe).unwrap()
        );
    }
}
