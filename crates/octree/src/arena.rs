//! Index-based arenas with free lists for nodes and child blocks.
//!
//! Freed slots are recycled (LIFO) — the software analogue of the OMU prune
//! address manager's stack reuse, and the reason long mapping runs do not
//! grow memory monotonically even though pruning constantly deletes and
//! re-creates nodes.

use crate::node::{ChildBlock, Node, NIL};

/// Arena holding all nodes and child blocks of one octree.
#[derive(Debug, Clone)]
pub(crate) struct Arena<V> {
    nodes: Vec<Node<V>>,
    node_free: Vec<u32>,
    blocks: Vec<ChildBlock>,
    block_free: Vec<u32>,
}

impl<V: Copy> Arena<V> {
    pub fn new() -> Self {
        Arena {
            nodes: Vec::new(),
            node_free: Vec::new(),
            blocks: Vec::new(),
            block_free: Vec::new(),
        }
    }

    /// Allocates a node, reusing a freed slot when available.
    pub fn alloc_node(&mut self, value: V) -> u32 {
        if let Some(idx) = self.node_free.pop() {
            self.nodes[idx as usize] = Node::leaf(value);
            idx
        } else {
            let idx = self.nodes.len() as u32;
            assert!(idx != NIL, "node arena exhausted");
            self.nodes.push(Node::leaf(value));
            idx
        }
    }

    /// Returns a node slot to the free list.
    ///
    /// The caller must have already freed or moved the node's child block.
    pub fn free_node(&mut self, idx: u32) {
        debug_assert!(
            self.nodes[idx as usize].is_leaf(),
            "freeing node with children"
        );
        self.node_free.push(idx);
    }

    /// Allocates an empty child block.
    pub fn alloc_block(&mut self) -> u32 {
        if let Some(idx) = self.block_free.pop() {
            self.blocks[idx as usize] = ChildBlock::EMPTY;
            idx
        } else {
            let idx = self.blocks.len() as u32;
            assert!(idx != NIL, "block arena exhausted");
            self.blocks.push(ChildBlock::EMPTY);
            idx
        }
    }

    /// Returns a child block to the free list.
    pub fn free_block(&mut self, idx: u32) {
        self.block_free.push(idx);
    }

    #[inline]
    pub fn node(&self, idx: u32) -> &Node<V> {
        &self.nodes[idx as usize]
    }

    #[inline]
    pub fn node_mut(&mut self, idx: u32) -> &mut Node<V> {
        &mut self.nodes[idx as usize]
    }

    #[inline]
    pub fn block(&self, idx: u32) -> &ChildBlock {
        &self.blocks[idx as usize]
    }

    #[inline]
    pub fn block_mut(&mut self, idx: u32) -> &mut ChildBlock {
        &mut self.blocks[idx as usize]
    }

    /// Child index of `node` at `pos`, or [`NIL`].
    #[inline]
    pub fn child_of(&self, node: u32, pos: usize) -> u32 {
        let b = self.nodes[node as usize].block;
        if b == NIL {
            NIL
        } else {
            self.blocks[b as usize].slots[pos]
        }
    }

    /// Live node count (allocated minus freed).
    pub fn live_nodes(&self) -> usize {
        self.nodes.len() - self.node_free.len()
    }

    /// Live child-block count.
    pub fn live_blocks(&self) -> usize {
        self.blocks.len() - self.block_free.len()
    }

    /// High-water slot counts `(nodes, blocks)` ever allocated.
    pub fn high_water(&self) -> (usize, usize) {
        (self.nodes.len(), self.blocks.len())
    }

    /// Heap bytes used by the arena backing storage.
    pub fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node<V>>()
            + self.node_free.capacity() * 4
            + self.blocks.capacity() * std::mem::size_of::<ChildBlock>()
            + self.block_free.capacity() * 4
    }

    /// Removes every node and block, keeping allocations.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.node_free.clear();
        self.blocks.clear();
        self.block_free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_reuses_slots() {
        let mut a: Arena<f32> = Arena::new();
        let n0 = a.alloc_node(0.0);
        let n1 = a.alloc_node(1.0);
        assert_eq!(a.live_nodes(), 2);
        a.free_node(n0);
        assert_eq!(a.live_nodes(), 1);
        let n2 = a.alloc_node(2.0);
        assert_eq!(n2, n0, "freed slot is recycled LIFO");
        assert_eq!(a.node(n2).value, 2.0);
        assert_eq!(a.node(n1).value, 1.0);
        assert_eq!(a.high_water().0, 2, "no growth past high water");
    }

    #[test]
    fn blocks_alloc_empty() {
        let mut a: Arena<f32> = Arena::new();
        let b = a.alloc_block();
        assert!(a.block(b).is_empty());
        a.block_mut(b).slots[2] = 5;
        a.free_block(b);
        let b2 = a.alloc_block();
        assert_eq!(b2, b);
        assert!(a.block(b2).is_empty(), "recycled blocks are reset");
    }

    #[test]
    fn child_of_resolves_through_block() {
        let mut a: Arena<f32> = Arena::new();
        let parent = a.alloc_node(0.0);
        assert_eq!(a.child_of(parent, 3), NIL);
        let b = a.alloc_block();
        a.node_mut(parent).block = b;
        let child = a.alloc_node(1.5);
        a.block_mut(b).slots[3] = child;
        assert_eq!(a.child_of(parent, 3), child);
        assert_eq!(a.child_of(parent, 4), NIL);
    }

    #[test]
    fn clear_resets_everything() {
        let mut a: Arena<f32> = Arena::new();
        let n = a.alloc_node(0.0);
        a.free_node(n);
        a.alloc_block();
        a.clear();
        assert_eq!(a.live_nodes(), 0);
        assert_eq!(a.live_blocks(), 0);
    }
}
