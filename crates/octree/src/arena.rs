//! Branch-sharded sibling-row arenas with row free lists, epoch stamps
//! and row-granular copy-on-write.
//!
//! Storage is partitioned the way the OMU hardware partitions its T-Mem:
//! one independently-ownable [`ArenaShard`] per first-level tree branch
//! (the top-3-bit Morton group that also selects the PE), plus a *spine*
//! shard holding the root and the root's children row. A node handle
//! encodes its shard in the top [`SHARD_BITS`] bits, so the full-tree
//! [`Arena`] can route any access while a branch shard can be split off
//! (`take_branch`) and handed to a worker thread that owns its whole
//! subtree — the software analogue of a PE owning its banked memory.
//!
//! Each shard keeps two row arenas:
//!
//! - **node rows** (`[Node<V>; 8]`, 64 B for `f32`): the sibling rows of
//!   inner levels — children of nodes at depths 0‥14;
//! - **leaf rows** (`[V; 8]`, 32 B for `f32`): the children of depth-15
//!   nodes, which are depth-16 voxels and can never have children, so
//!   they carry no pointer word.
//!
//! A node *handle* is `shard:4 | row:25 | octant:3` — the node lives in
//! slot `octant` of sibling row `row`. Whether the row is a node row or
//! a leaf row is decided by tree depth, which every traversal already
//! tracks (depth-16 handles index leaf rows, everything else node rows).
//!
//! Freed rows are recycled (LIFO) — the analogue of the OMU prune
//! address manager's stack reuse, and the reason long mapping runs do
//! not grow memory monotonically even though pruning constantly deletes
//! and re-creates nodes.
//!
//! ## Epochs and copy-on-write (snapshot support)
//!
//! Rows live in chunked, stable-address storage ([`ChunkedVec`], see the
//! `snapshot` module) so a pinned [`Snapshot`](crate::Snapshot) can keep
//! dereferencing them while the live arena grows. Each row carries a
//! *stamp*: the epoch in which it was last made writable. The write path
//! routes the first touch of a row per epoch through
//! [`ArenaShard::make_row_current`], which
//!
//! - mutates in place when no pinned snapshot can reach the row
//!   (`stamp > cow_max_pin`, or no pins at all), merely restamping it;
//! - otherwise **copies** the row to a fresh slot and *retires* the
//!   original, tagged with the current epoch.
//!
//! Retired rows return to the free lists only once every live pin is at
//! least as new as the retire epoch ([`ArenaShard::reclaim`]): a
//! snapshot pinned at epoch `P` was captured *after* all epoch-`P`
//! writes, so it cannot reference a row retired during `P` or earlier…
//! only pins strictly older than the retire epoch can. The writer's only
//! coupling to readers is one atomic load of the pin summary per write
//! entry ([`Arena::sync_pins`]); it never blocks.
//!
//! The root's own row (spine row 0) is COW-exempt: snapshots carry the
//! root node by value and never dereference that row, which keeps the
//! root handle stable forever.
//!
//! The packed child reference in [`Node`] caps rows at 2²⁴ − 1 per shard
//! (≈134 M nodes / ≈1 GB per first-level octant, ≈1 B nodes total).
//! Exhausting a shard panics, like the old global arena did; maps
//! anywhere near that size exhaust host memory first.

use std::collections::VecDeque;

use crate::node::{LeafRow, Node, NodeRow, MAX_ROW, NIL};
use crate::snapshot::{ChunkedVec, PinGuard, PinHandle, PinRegistry, SnapTable, NO_PINS};
use crate::SnapshotStats;

/// Bits of a node handle reserved for the shard id.
const SHARD_BITS: u32 = 4;
/// Bits of a node handle addressing the octant within a sibling row.
const OCT_BITS: u32 = 3;
/// Bits addressing a row within one shard.
const ROW_BITS: u32 = 32 - SHARD_BITS - OCT_BITS;
const ROW_MASK: u32 = (1 << ROW_BITS) - 1;

/// Number of branch shards (one per first-level octree branch).
pub(crate) const NUM_BRANCHES: usize = 8;
/// Shard id of the spine (holds the root node and the root's children).
pub(crate) const SPINE_SHARD: usize = NUM_BRANCHES;
/// Spine row holding the root node (slot 0); the root's children row is
/// whatever the spine allocates next.
const ROOT_ROW: u32 = 0;

/// Builds a node handle from its shard, sibling row and octant.
#[inline]
pub(crate) fn handle(shard: usize, row: u32, oct: usize) -> u32 {
    debug_assert!(shard <= SPINE_SHARD && row <= MAX_ROW && oct < 8);
    ((shard as u32) << (ROW_BITS + OCT_BITS)) | (row << OCT_BITS) | oct as u32
}

/// Shard id of a node handle.
#[inline]
pub(crate) fn shard_of(h: u32) -> usize {
    (h >> (ROW_BITS + OCT_BITS)) as usize
}

/// Sibling-row index of a node handle (within its shard).
#[inline]
pub(crate) fn row_of(h: u32) -> u32 {
    (h >> OCT_BITS) & ROW_MASK
}

/// Octant (slot within the sibling row) of a node handle.
#[inline]
pub(crate) fn oct_of(h: u32) -> usize {
    (h & 7) as usize
}

/// Children placement by pure handle arithmetic: the parent's shard,
/// except below the spine — the root's children stay in the spine (they
/// form one sibling row), and a depth-1 node's children land in the
/// branch shard named by its octant, which is what makes `take_branch`
/// detach a whole subtree. Shared by [`NodeStore::child_shard`] and the
/// snapshot read path.
#[inline]
pub(crate) fn child_shard_of(parent: u32) -> usize {
    let s = shard_of(parent);
    if s != SPINE_SHARD {
        s
    } else if row_of(parent) == ROOT_ROW {
        SPINE_SHARD
    } else {
        oct_of(parent)
    }
}

/// Uniform storage interface for tree walks: implemented by the routing
/// [`Arena`] (whole tree) and by the worker-owned branch store of the
/// sharded parallel apply. Handles are always the encoded form, so child
/// references written by a shard remain valid when it is reattached.
pub(crate) trait NodeStore<V: Copy> {
    /// Immutable node access (depth ≤ 15 handles).
    fn node(&self, h: u32) -> &Node<V>;
    /// Mutable node access.
    fn node_mut(&mut self, h: u32) -> &mut Node<V>;
    /// Reads a depth-16 voxel value (leaf-row handles).
    fn leaf_value(&self, h: u32) -> V;
    /// Mutable depth-16 voxel access.
    fn leaf_value_mut(&mut self, h: u32) -> &mut V;
    /// The shard that holds (or will hold) the children row of `parent`.
    fn child_shard(&self, parent: u32) -> usize;
    /// Allocates a node row for the children of `parent`, every slot set
    /// to `fill`. Returns the raw row index (store it with
    /// [`Node::set_children`]).
    fn alloc_row_for(&mut self, parent: u32, fill: Node<V>) -> u32;
    /// Allocates a leaf row (depth-16 values) for the children of
    /// `parent`, every slot set to `fill`.
    fn alloc_leaf_row_for(&mut self, parent: u32, fill: V) -> u32;
    /// Returns `parent`'s children node row to its shard's free list, or
    /// retires it when a pinned snapshot still reads it (call before
    /// [`Node::clear_children`]).
    fn free_row_of(&mut self, parent: u32);
    /// Returns `parent`'s children leaf row to its shard's free list
    /// (retiring it when pinned, like [`Self::free_row_of`]).
    fn free_leaf_row_of(&mut self, parent: u32);
    /// Makes `parent`'s children row writable in the current epoch,
    /// copying it out (and republishing the parent's packed
    /// `row << 8 | mask` word) when a pinned snapshot still reads it.
    /// Returns the current raw row index. Walks call this top-down on
    /// entry to a node's children, so by induction the parent's own row
    /// is already current (or is the COW-exempt root row) whenever its
    /// word is rewritten here.
    fn ensure_children_current(&mut self, parent: u32, leaf_tier: bool) -> u32;
    /// Borrows a whole node row — one bounds check for all 8 siblings
    /// (the parent refresh / prune-check access pattern).
    fn node_row(&self, shard: usize, row: u32) -> &NodeRow<V>;
    /// Borrows a whole leaf row.
    fn leaf_row(&self, shard: usize, row: u32) -> &LeafRow<V>;

    /// Handle of child `pos` of `parent`, or [`NIL`] when absent. Pure
    /// arithmetic on the parent already in hand — no dependent load.
    #[inline]
    fn child_of(&self, parent: u32, pos: usize) -> u32 {
        let n = self.node(parent);
        if n.has_child(pos) {
            handle(self.child_shard(parent), n.row(), pos)
        } else {
            NIL
        }
    }
}

/// One independently-ownable storage shard (one branch subtree, or the
/// spine). Raw row indices are shard-relative; full node handles carry
/// the shard id.
#[derive(Debug)]
pub(crate) struct ArenaShard<V> {
    id: usize,
    rows: ChunkedVec<NodeRow<V>>,
    /// Epoch each node row was last made writable in (parallel to
    /// `rows`).
    row_stamps: Vec<u32>,
    row_free: Vec<u32>,
    /// Superseded node rows as `(retire_epoch, row)`, oldest first
    /// (epochs are nondecreasing — everything retires at the current
    /// epoch).
    retired: VecDeque<(u32, u32)>,
    leaf_rows: ChunkedVec<LeafRow<V>>,
    leaf_stamps: Vec<u32>,
    leaf_free: Vec<u32>,
    leaf_retired: VecDeque<(u32, u32)>,
    /// Current write epoch (mirrors the owning [`Arena`]'s).
    epoch: u32,
    /// Cached max pinned epoch ([`NO_PINS`] when none): rows stamped at
    /// or before it must be copied, not mutated.
    cow_max_pin: u32,
    cow_copied: u64,
    cow_leaf_copied: u64,
    cow_retired: u64,
    cow_reclaimed: u64,
}

// Derived `Clone` would demand `V: Clone` yet still fail to see that
// `ChunkedVec`'s deep copy needs `V: Copy`; every value type is `Copy`
// (a `LogOdds` supertrait), so bound the manual impl on that directly.
impl<V: Copy> Clone for ArenaShard<V> {
    fn clone(&self) -> Self {
        ArenaShard {
            id: self.id,
            rows: self.rows.clone(),
            row_stamps: self.row_stamps.clone(),
            row_free: self.row_free.clone(),
            retired: self.retired.clone(),
            leaf_rows: self.leaf_rows.clone(),
            leaf_stamps: self.leaf_stamps.clone(),
            leaf_free: self.leaf_free.clone(),
            leaf_retired: self.leaf_retired.clone(),
            epoch: self.epoch,
            cow_max_pin: self.cow_max_pin,
            cow_copied: self.cow_copied,
            cow_leaf_copied: self.cow_leaf_copied,
            cow_retired: self.cow_retired,
            cow_reclaimed: self.cow_reclaimed,
        }
    }
}

impl<V: Copy> ArenaShard<V> {
    fn new(id: usize) -> Self {
        ArenaShard {
            id,
            rows: ChunkedVec::new(),
            row_stamps: Vec::new(),
            row_free: Vec::new(),
            retired: VecDeque::new(),
            leaf_rows: ChunkedVec::new(),
            leaf_stamps: Vec::new(),
            leaf_free: Vec::new(),
            leaf_retired: VecDeque::new(),
            epoch: 0,
            cow_max_pin: NO_PINS,
            cow_copied: 0,
            cow_leaf_copied: 0,
            cow_retired: 0,
            cow_reclaimed: 0,
        }
    }

    /// The branch (or spine) id this shard stores.
    pub fn id(&self) -> usize {
        self.id
    }

    #[inline]
    fn own(&self, h: u32) -> (usize, usize) {
        debug_assert_eq!(shard_of(h), self.id, "handle from a foreign shard");
        (row_of(h) as usize, oct_of(h))
    }

    /// Debug guard behind every in-place node-row write: legal only when
    /// no pinned snapshot can reach the row — its stamp is newer than
    /// every pin — or for the COW-exempt root row (snapshots read the
    /// root by value, never through spine row 0).
    #[inline]
    fn debug_check_row_writable(&self, row: usize) {
        debug_assert!(
            (self.id == SPINE_SHARD && row as u32 == ROOT_ROW)
                || self.cow_max_pin == NO_PINS
                || self.row_stamps[row] > self.cow_max_pin,
            "in-place write to a snapshot-reachable node row (missing \
             ensure_children_current hook?)"
        );
    }

    #[inline]
    fn debug_check_leaf_row_writable(&self, row: usize) {
        debug_assert!(
            self.cow_max_pin == NO_PINS || self.leaf_stamps[row] > self.cow_max_pin,
            "in-place write to a snapshot-reachable leaf row (missing \
             ensure_children_current hook?)"
        );
    }

    #[inline]
    pub fn node(&self, h: u32) -> &Node<V> {
        let (row, oct) = self.own(h);
        &self.rows.get(row)[oct]
    }

    #[inline]
    pub fn node_mut(&mut self, h: u32) -> &mut Node<V> {
        let (row, oct) = self.own(h);
        self.debug_check_row_writable(row);
        &mut self.rows.get_mut(row)[oct]
    }

    #[inline]
    pub fn leaf_value(&self, h: u32) -> V {
        let (row, oct) = self.own(h);
        self.leaf_rows.get(row)[oct]
    }

    #[inline]
    pub fn leaf_value_mut(&mut self, h: u32) -> &mut V {
        let (row, oct) = self.own(h);
        self.debug_check_leaf_row_writable(row);
        &mut self.leaf_rows.get_mut(row)[oct]
    }

    #[inline]
    pub fn node_row(&self, row: u32) -> &NodeRow<V> {
        self.rows.get(row as usize)
    }

    #[inline]
    pub fn leaf_row(&self, row: u32) -> &LeafRow<V> {
        self.leaf_rows.get(row as usize)
    }

    /// Allocates a node row filled with `fill`, reusing a freed row when
    /// available. Returns the raw (shard-relative) row index, stamped
    /// with the current epoch.
    pub fn alloc_row(&mut self, fill: Node<V>) -> u32 {
        if let Some(row) = self.row_free.pop() {
            *self.rows.get_mut(row as usize) = [fill; 8];
            self.row_stamps[row as usize] = self.epoch;
            row
        } else {
            let row = self.rows.len() as u32;
            assert!(row < MAX_ROW, "node-row shard {} exhausted", self.id);
            self.rows.push([fill; 8]);
            self.row_stamps.push(self.epoch);
            row
        }
    }

    /// Allocates a leaf row filled with `fill`.
    pub fn alloc_leaf_row(&mut self, fill: V) -> u32 {
        if let Some(row) = self.leaf_free.pop() {
            *self.leaf_rows.get_mut(row as usize) = [fill; 8];
            self.leaf_stamps[row as usize] = self.epoch;
            row
        } else {
            let row = self.leaf_rows.len() as u32;
            assert!(row < MAX_ROW, "leaf-row shard {} exhausted", self.id);
            self.leaf_rows.push([fill; 8]);
            self.leaf_stamps.push(self.epoch);
            row
        }
    }

    /// True when a pinned snapshot may still read a row with this stamp.
    #[inline]
    fn pin_reachable(&self, stamp: u32) -> bool {
        self.cow_max_pin != NO_PINS && stamp <= self.cow_max_pin
    }

    /// Returns a node row to the free list — or retires it when a pinned
    /// snapshot still reads it.
    pub fn free_row(&mut self, row: u32) {
        debug_assert!((row as usize) < self.rows.len());
        if self.pin_reachable(self.row_stamps[row as usize]) {
            self.retired.push_back((self.epoch, row));
            self.cow_retired += 1;
        } else {
            self.row_free.push(row);
        }
    }

    /// Returns a leaf row to the free list (retiring it when pinned).
    pub fn free_leaf_row(&mut self, row: u32) {
        debug_assert!((row as usize) < self.leaf_rows.len());
        if self.pin_reachable(self.leaf_stamps[row as usize]) {
            self.leaf_retired.push_back((self.epoch, row));
            self.cow_retired += 1;
        } else {
            self.leaf_free.push(row);
        }
    }

    /// Makes a node row writable in the current epoch. In-place restamp
    /// when no pin reaches it; otherwise copies the row to a fresh slot,
    /// retires the original and returns the new index (the caller
    /// republishes the parent's packed word).
    pub fn make_row_current(&mut self, row: u32) -> u32 {
        let stamp = self.row_stamps[row as usize];
        if stamp == self.epoch {
            return row;
        }
        if !self.pin_reachable(stamp) {
            self.row_stamps[row as usize] = self.epoch;
            return row;
        }
        let contents = *self.rows.get(row as usize);
        let fresh = if let Some(r) = self.row_free.pop() {
            self.row_stamps[r as usize] = self.epoch;
            *self.rows.get_mut(r as usize) = contents;
            r
        } else {
            let r = self.rows.len() as u32;
            assert!(r < MAX_ROW, "node-row shard {} exhausted", self.id);
            self.rows.push(contents);
            self.row_stamps.push(self.epoch);
            r
        };
        self.retired.push_back((self.epoch, row));
        self.cow_copied += 1;
        self.cow_retired += 1;
        fresh
    }

    /// Leaf-tier counterpart of [`Self::make_row_current`].
    pub fn make_leaf_row_current(&mut self, row: u32) -> u32 {
        let stamp = self.leaf_stamps[row as usize];
        if stamp == self.epoch {
            return row;
        }
        if !self.pin_reachable(stamp) {
            self.leaf_stamps[row as usize] = self.epoch;
            return row;
        }
        let contents = *self.leaf_rows.get(row as usize);
        let fresh = if let Some(r) = self.leaf_free.pop() {
            self.leaf_stamps[r as usize] = self.epoch;
            *self.leaf_rows.get_mut(r as usize) = contents;
            r
        } else {
            let r = self.leaf_rows.len() as u32;
            assert!(r < MAX_ROW, "leaf-row shard {} exhausted", self.id);
            self.leaf_rows.push(contents);
            self.leaf_stamps.push(self.epoch);
            r
        };
        self.leaf_retired.push_back((self.epoch, row));
        self.cow_leaf_copied += 1;
        self.cow_retired += 1;
        fresh
    }

    /// Recycles retired rows whose retire epoch every live pin has
    /// caught up to (`floor` = oldest pinned epoch, `None` = no pins).
    /// A pin at epoch `P` was captured after all epoch-`P` writes, so it
    /// can only reference rows retired in epochs *after* `P`.
    pub fn reclaim(&mut self, floor: Option<u32>) {
        while let Some(&(e, row)) = self.retired.front() {
            if floor.is_some_and(|f| f < e) {
                break;
            }
            self.retired.pop_front();
            self.row_free.push(row);
            self.cow_reclaimed += 1;
        }
        while let Some(&(e, row)) = self.leaf_retired.front() {
            if floor.is_some_and(|f| f < e) {
                break;
            }
            self.leaf_retired.pop_front();
            self.leaf_free.push(row);
            self.cow_reclaimed += 1;
        }
    }

    /// Shares the shard's chunk tables for a snapshot (cheap `Arc`
    /// clones).
    pub fn share_tables(&self) -> (SnapTable<NodeRow<V>>, SnapTable<LeafRow<V>>) {
        (self.rows.share(), self.leaf_rows.share())
    }

    /// Live sibling rows `(node rows, leaf rows)` — allocated minus
    /// freed minus retired-awaiting-reclaim.
    pub fn live_rows(&self) -> (usize, usize) {
        (
            self.rows.len() - self.row_free.len() - self.retired.len(),
            self.leaf_rows.len() - self.leaf_free.len() - self.leaf_retired.len(),
        )
    }

    /// Removes every row. With `drop_chunks` the backing chunks are
    /// released — mandatory when a pinned snapshot shares them, since
    /// re-filling a shared chunk would race its readers; the snapshot
    /// keeps the old chunks alive through its own `Arc`s.
    fn clear(&mut self, drop_chunks: bool) {
        self.rows.clear(drop_chunks);
        self.row_stamps.clear();
        self.row_free.clear();
        self.retired.clear();
        self.leaf_rows.clear(drop_chunks);
        self.leaf_stamps.clear();
        self.leaf_free.clear();
        self.leaf_retired.clear();
    }

    fn heap_bytes(&self) -> usize {
        self.rows.heap_bytes()
            + self.leaf_rows.heap_bytes()
            + (self.row_free.capacity() + self.leaf_free.capacity()) * 4
            + (self.row_stamps.capacity() + self.leaf_stamps.capacity()) * 4
            + (self.retired.capacity() + self.leaf_retired.capacity()) * 8
    }

    /// High-water row slots `(node rows, leaf rows)` ever allocated.
    fn high_water(&self) -> (usize, usize) {
        (self.rows.len(), self.leaf_rows.len())
    }
}

/// Arena holding all sibling rows of one octree, as 8 branch shards plus
/// the root spine, with the tree-wide epoch/pin state for snapshots.
#[derive(Debug)]
pub(crate) struct Arena<V> {
    shards: Vec<ArenaShard<V>>,
    /// Pin registry shared with every snapshot of this tree.
    pins: PinHandle,
    /// Last pin summary applied to the shards (change detector).
    pin_cache: u64,
    /// Current write epoch (= number of snapshots ever published).
    epoch: u32,
    snapshots_published: u64,
}

impl<V: Copy> Arena<V> {
    pub fn new() -> Self {
        Arena {
            shards: (0..=SPINE_SHARD).map(ArenaShard::new).collect(),
            pins: PinHandle::fresh(),
            pin_cache: u64::MAX,
            epoch: 0,
            snapshots_published: 0,
        }
    }

    /// Allocates the root node (slot 0 of the spine's row 0) and returns
    /// its handle.
    pub fn alloc_root(&mut self, value: V) -> u32 {
        let row = self.shards[SPINE_SHARD].alloc_row(Node::leaf(value));
        debug_assert_eq!(row, ROOT_ROW, "root row is always the spine's first");
        handle(SPINE_SHARD, ROOT_ROW, 0)
    }

    /// Detaches branch `b`'s shard so a worker thread can own it. The
    /// arena keeps an empty placeholder until [`Self::put_branch`]. The
    /// detached shard carries the epoch/pin state, so workers enforce
    /// the same COW discipline as the routing arena.
    pub fn take_branch(&mut self, b: usize) -> ArenaShard<V> {
        debug_assert!(b < NUM_BRANCHES);
        std::mem::replace(&mut self.shards[b], ArenaShard::new(b))
    }

    /// Reattaches a shard previously detached with [`Self::take_branch`].
    pub fn put_branch(&mut self, b: usize, shard: ArenaShard<V>) {
        debug_assert_eq!(shard.id, b, "shard reattached to the wrong branch");
        self.shards[b] = shard;
    }

    /// Live sibling-row count `(node rows, leaf rows)` across all shards.
    /// Node rows + leaf rows = inner nodes (each inner node owns exactly
    /// one children row); the spine's root row is a node row too.
    pub fn live_rows(&self) -> (usize, usize) {
        self.shards.iter().fold((0, 0), |(n, l), s| {
            let (sn, sl) = s.live_rows();
            (n + sn, l + sl)
        })
    }

    /// High-water row counts `(node rows, leaf rows)` ever allocated.
    pub fn high_water(&self) -> (usize, usize) {
        self.shards.iter().fold((0, 0), |(n, l), s| {
            let (sn, sl) = s.high_water();
            (n + sn, l + sl)
        })
    }

    /// Heap bytes used by the arena backing storage.
    pub fn heap_bytes(&self) -> usize {
        self.shards.iter().map(ArenaShard::heap_bytes).sum()
    }

    /// Removes every row, keeping chunk allocations unless a pinned
    /// snapshot shares them (re-filling shared chunks would race its
    /// readers, so those are released and replaced on the next growth).
    pub fn clear(&mut self) {
        self.sync_pins();
        let pinned = PinRegistry::decode(self.pin_cache).is_some();
        for shard in &mut self.shards {
            shard.clear(pinned);
        }
    }

    /// The current write epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The per-shard storage, for snapshot capture.
    pub fn shards(&self) -> &[ArenaShard<V>] {
        &self.shards
    }

    /// Re-reads the pin summary (one atomic load) and, when it changed,
    /// refreshes every shard's COW threshold and reclaims retired rows
    /// the oldest live pin has caught up to. Called on every write
    /// entry; never blocks on readers.
    pub fn sync_pins(&mut self) {
        let raw = self.pins.0.raw_summary();
        if raw != self.pin_cache {
            self.apply_pin_summary(raw);
        }
    }

    fn apply_pin_summary(&mut self, raw: u64) {
        self.pin_cache = raw;
        let (floor, max_pin) = match PinRegistry::decode(raw) {
            Some((min, max)) => (Some(min), max),
            None => (None, NO_PINS),
        };
        for shard in &mut self.shards {
            shard.cow_max_pin = max_pin;
            shard.reclaim(floor);
        }
    }

    /// Pins the current epoch for a snapshot being published, then
    /// advances the arena to the next epoch. Returns the pin guard the
    /// snapshot holds for its lifetime.
    pub fn publish_pin(&mut self) -> PinGuard {
        let guard = self.pins.0.pin(self.epoch);
        self.snapshots_published += 1;
        self.epoch += 1;
        for shard in &mut self.shards {
            shard.epoch = self.epoch;
        }
        self.apply_pin_summary(self.pins.0.raw_summary());
        guard
    }

    /// Aggregated snapshot/COW bookkeeping across all shards.
    pub fn snapshot_stats(&self) -> SnapshotStats {
        let mut s = SnapshotStats {
            epoch: self.epoch,
            snapshots_published: self.snapshots_published,
            pinned_snapshots: self.pins.0.live_pins(),
            ..SnapshotStats::default()
        };
        for shard in &self.shards {
            s.node_rows_copied += shard.cow_copied;
            s.leaf_rows_copied += shard.cow_leaf_copied;
            s.rows_retired += shard.cow_retired;
            s.rows_reclaimed += shard.cow_reclaimed;
            s.rows_awaiting_reclaim += (shard.retired.len() + shard.leaf_retired.len()) as u64;
        }
        s
    }

    /// Exhaustively validates the sibling-row invariants of the tree
    /// hanging off `root` (test support; panics on violation):
    ///
    /// - a leaf's packed child reference is all-zero (no stale row);
    /// - an inner node's mask is non-empty and its row index is in range;
    /// - no two inner nodes share a row (per shard and tier);
    /// - every allocated row is *exactly one* of: reachable through one
    ///   parent mask, on its shard's free list, or parked on the retire
    ///   queue awaiting reclamation — i.e. each row's `child_mask` is
    ///   the single source of truth for its live children and COW never
    ///   leaks or double-frees a row;
    /// - retire-queue epochs are nondecreasing (the reclaim scan may
    ///   stop at the first too-new entry) and never exceed the current
    ///   epoch.
    pub fn validate_reachable(&self, root: u32) {
        let mut seen_rows: Vec<Vec<bool>> = self
            .shards
            .iter()
            .map(|s| vec![false; s.rows.len()])
            .collect();
        let mut seen_leaf_rows: Vec<Vec<bool>> = self
            .shards
            .iter()
            .map(|s| vec![false; s.leaf_rows.len()])
            .collect();
        if root != NIL {
            // The root's own row.
            assert_eq!(shard_of(root), SPINE_SHARD, "root outside the spine");
            seen_rows[SPINE_SHARD][row_of(root) as usize] = true;
            let mut stack = vec![(root, 0u8)];
            while let Some((h, depth)) = stack.pop() {
                let n = self.node(h);
                if n.is_leaf() {
                    assert_eq!(n.row(), 0, "leaf at depth {depth} keeps a stale row");
                    continue;
                }
                let shard = self.child_shard(h);
                let row = n.row() as usize;
                let leaf_tier = depth + 1 == 16;
                let seen = if leaf_tier {
                    assert!(
                        row < self.shards[shard].leaf_rows.len(),
                        "leaf row out of range"
                    );
                    &mut seen_leaf_rows[shard][row]
                } else {
                    assert!(row < self.shards[shard].rows.len(), "node row out of range");
                    &mut seen_rows[shard][row]
                };
                assert!(!*seen, "row referenced by two parents");
                *seen = true;
                if !leaf_tier {
                    for pos in 0..8 {
                        if n.has_child(pos) {
                            stack.push((self.child_of(h, pos), depth + 1));
                        }
                    }
                }
            }
        }
        // Every allocated row is exactly one of reachable / free /
        // retired.
        for (sid, shard) in self.shards.iter().enumerate() {
            let mark = |flags: &mut Vec<u8>, r: u32, what: &str| {
                assert_eq!(
                    flags[r as usize], 0,
                    "shard {sid} row {r}: {what} but already accounted for"
                );
                flags[r as usize] = 1;
            };
            let mut flags = vec![0u8; shard.rows.len()];
            for &r in &shard.row_free {
                mark(&mut flags, r, "free");
            }
            let mut prev_epoch = 0;
            for &(e, r) in &shard.retired {
                assert!(e >= prev_epoch, "retire epochs must be nondecreasing");
                assert!(e <= shard.epoch, "retire epoch from the future");
                prev_epoch = e;
                mark(&mut flags, r, "retired");
            }
            for (r, &reachable) in seen_rows[sid].iter().enumerate() {
                assert_eq!(
                    reachable,
                    flags[r] == 0,
                    "shard {sid} node row {r}: reachable={reachable} \
                     free-or-retired={}",
                    flags[r] != 0
                );
            }
            let mut lflags = vec![0u8; shard.leaf_rows.len()];
            for &r in &shard.leaf_free {
                mark(&mut lflags, r, "free");
            }
            prev_epoch = 0;
            for &(e, r) in &shard.leaf_retired {
                assert!(e >= prev_epoch, "retire epochs must be nondecreasing");
                assert!(e <= shard.epoch, "retire epoch from the future");
                prev_epoch = e;
                mark(&mut lflags, r, "retired");
            }
            for (r, &reachable) in seen_leaf_rows[sid].iter().enumerate() {
                assert_eq!(
                    reachable,
                    lflags[r] == 0,
                    "shard {sid} leaf row {r}: reachable={reachable} \
                     free-or-retired={}",
                    lflags[r] != 0
                );
            }
        }
    }
}

/// Deep copy sharing no storage with the original: the clone gets a
/// fresh pin registry and treats its (privately copied) retired rows as
/// immediately reclaimable — snapshots pinned on the original cannot
/// reach the clone's rows and must not throttle its writes.
impl<V: Copy> Clone for Arena<V> {
    fn clone(&self) -> Self {
        let mut shards = self.shards.clone();
        for shard in &mut shards {
            shard.cow_max_pin = NO_PINS;
            while let Some((_, r)) = shard.retired.pop_front() {
                shard.row_free.push(r);
                shard.cow_reclaimed += 1;
            }
            while let Some((_, r)) = shard.leaf_retired.pop_front() {
                shard.leaf_free.push(r);
                shard.cow_reclaimed += 1;
            }
        }
        Arena {
            shards,
            pins: PinHandle::fresh(),
            pin_cache: u64::MAX,
            epoch: self.epoch,
            snapshots_published: self.snapshots_published,
        }
    }
}

impl<V: Copy> NodeStore<V> for Arena<V> {
    #[inline]
    fn node(&self, h: u32) -> &Node<V> {
        self.shards[shard_of(h)].node(h)
    }

    #[inline]
    fn node_mut(&mut self, h: u32) -> &mut Node<V> {
        self.shards[shard_of(h)].node_mut(h)
    }

    #[inline]
    fn leaf_value(&self, h: u32) -> V {
        self.shards[shard_of(h)].leaf_value(h)
    }

    #[inline]
    fn leaf_value_mut(&mut self, h: u32) -> &mut V {
        self.shards[shard_of(h)].leaf_value_mut(h)
    }

    #[inline]
    fn child_shard(&self, parent: u32) -> usize {
        child_shard_of(parent)
    }

    #[inline]
    fn alloc_row_for(&mut self, parent: u32, fill: Node<V>) -> u32 {
        let shard = child_shard_of(parent);
        self.shards[shard].alloc_row(fill)
    }

    #[inline]
    fn alloc_leaf_row_for(&mut self, parent: u32, fill: V) -> u32 {
        let shard = child_shard_of(parent);
        self.shards[shard].alloc_leaf_row(fill)
    }

    #[inline]
    fn free_row_of(&mut self, parent: u32) {
        let shard = child_shard_of(parent);
        let row = self.node(parent).row();
        self.shards[shard].free_row(row);
    }

    #[inline]
    fn free_leaf_row_of(&mut self, parent: u32) {
        let shard = child_shard_of(parent);
        let row = self.node(parent).row();
        self.shards[shard].free_leaf_row(row);
    }

    #[inline]
    fn ensure_children_current(&mut self, parent: u32, leaf_tier: bool) -> u32 {
        let shard = child_shard_of(parent);
        let n = *self.node(parent);
        debug_assert!(!n.is_leaf(), "ensure on a childless node");
        let row = n.row();
        let current = if leaf_tier {
            self.shards[shard].make_leaf_row_current(row)
        } else {
            self.shards[shard].make_row_current(row)
        };
        if current != row {
            self.node_mut(parent).set_children(current, n.mask());
        }
        current
    }

    #[inline]
    fn node_row(&self, shard: usize, row: u32) -> &NodeRow<V> {
        self.shards[shard].node_row(row)
    }

    #[inline]
    fn leaf_row(&self, shard: usize, row: u32) -> &LeafRow<V> {
        self.shards[shard].leaf_row(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Allocates + attaches a children node row, mirroring the walk.
    fn attach_row(a: &mut Arena<f32>, parent: u32, fill: Node<f32>, mask: u8) -> u32 {
        let row = a.alloc_row_for(parent, fill);
        a.node_mut(parent).set_children(row, mask);
        row
    }

    #[test]
    fn root_lives_in_the_spine() {
        let mut a: Arena<f32> = Arena::new();
        let root = a.alloc_root(0.5);
        assert_eq!(shard_of(root), SPINE_SHARD);
        assert_eq!(a.node(root).value, 0.5);
        assert!(a.node(root).is_leaf());
        assert_eq!(a.live_rows(), (1, 0));
    }

    #[test]
    fn root_children_share_a_spine_row_and_branch_rows_split() {
        let mut a: Arena<f32> = Arena::new();
        let root = a.alloc_root(0.0);
        attach_row(&mut a, root, Node::leaf(0.0), 0xFF);
        for pos in 0..NUM_BRANCHES {
            let child = a.child_of(root, pos);
            assert_eq!(shard_of(child), SPINE_SHARD, "depth-1 row is spine");
            // A depth-1 node's children land in its branch shard.
            let grand_row = a.alloc_row_for(child, Node::leaf(0.0));
            a.node_mut(child).set_children(grand_row, 1 << (7 - pos));
            let grand = a.child_of(child, 7 - pos);
            assert_eq!(shard_of(grand), pos, "branch subtree in its own shard");
            // And deeper descendants stay in the branch shard.
            assert_eq!(a.child_shard(grand), pos);
        }
    }

    #[test]
    fn child_of_is_mask_gated_arithmetic() {
        let mut a: Arena<f32> = Arena::new();
        let root = a.alloc_root(0.0);
        assert_eq!(a.child_of(root, 3), NIL, "leaf has no children");
        let row = attach_row(&mut a, root, Node::leaf(1.5), 1 << 3);
        let child = a.child_of(root, 3);
        assert_eq!(child, handle(SPINE_SHARD, row, 3));
        assert_eq!(a.node(child).value, 1.5);
        assert_eq!(a.child_of(root, 4), NIL, "unmasked slot is absent");
    }

    #[test]
    fn freed_rows_recycle_lifo_and_reset() {
        let mut a: Arena<f32> = Arena::new();
        let root = a.alloc_root(0.0);
        let row = attach_row(&mut a, root, Node::leaf(2.0), 0xFF);
        a.node_mut(a.child_of(root, 5)).value = 9.0;
        a.free_row_of(root);
        a.node_mut(root).clear_children();
        assert_eq!(a.live_rows(), (1, 0));
        let row2 = attach_row(&mut a, root, Node::leaf(0.0), 0xFF);
        assert_eq!(row2, row, "freed row is recycled LIFO");
        assert_eq!(
            a.node(a.child_of(root, 5)).value,
            0.0,
            "recycled rows reset"
        );
        assert_eq!(a.high_water(), (2, 0), "no growth past high water");
    }

    #[test]
    fn leaf_rows_store_values_only() {
        let mut a: Arena<f32> = Arena::new();
        let root = a.alloc_root(0.0);
        attach_row(&mut a, root, Node::leaf(0.0), 1 << 2);
        let d1 = a.child_of(root, 2);
        // Pretend d1 is a depth-15 node: give it a leaf row.
        let lrow = a.alloc_leaf_row_for(d1, 0.25);
        a.node_mut(d1).set_children(lrow, 0xFF);
        let voxel = a.child_of(d1, 7);
        assert_eq!(shard_of(voxel), 2, "leaf row colocated with the branch");
        assert_eq!(a.leaf_value(voxel), 0.25);
        *a.leaf_value_mut(voxel) = 0.75;
        assert_eq!(a.leaf_value(voxel), 0.75);
        assert_eq!(a.live_rows(), (2, 1));
        a.free_leaf_row_of(d1);
        a.node_mut(d1).clear_children();
        assert_eq!(a.live_rows(), (2, 0));
    }

    #[test]
    fn take_and_put_branch_roundtrips_contents() {
        let mut a: Arena<f32> = Arena::new();
        let root = a.alloc_root(0.0);
        attach_row(&mut a, root, Node::leaf(0.0), 1 << 5);
        let d1 = a.child_of(root, 5);
        let grand_row = a.alloc_row_for(d1, Node::leaf(2.5));
        a.node_mut(d1).set_children(grand_row, 0xFF);
        let grand = a.child_of(d1, 0);

        let shard = a.take_branch(5);
        assert_eq!(a.live_rows(), (2, 0), "spine rows remain attached");
        assert_eq!(shard.node(grand).value, 2.5, "shard handles stay valid");
        a.put_branch(5, shard);
        assert_eq!(a.live_rows(), (3, 0));
        assert_eq!(a.node(grand).value, 2.5);
    }

    #[test]
    fn clear_resets_everything() {
        let mut a: Arena<f32> = Arena::new();
        let root = a.alloc_root(0.0);
        attach_row(&mut a, root, Node::leaf(0.0), 0xFF);
        a.clear();
        assert_eq!(a.live_rows(), (0, 0));
        assert!(a.heap_bytes() > 0, "capacity is kept");
        // The next root allocation lands in row 0 again.
        let root2 = a.alloc_root(1.0);
        assert_eq!(root2, root);
    }

    #[test]
    fn writes_without_pins_restamp_in_place() {
        let mut a: Arena<f32> = Arena::new();
        let root = a.alloc_root(0.0);
        let row = attach_row(&mut a, root, Node::leaf(0.0), 0xFF);
        let _snap_pin = a.publish_pin();
        drop(_snap_pin);
        a.sync_pins();
        // Pin dropped before the write: row stays put, only restamped.
        let current = a.ensure_children_current(root, false);
        assert_eq!(current, row, "no live pin → no copy");
        assert_eq!(a.snapshot_stats().node_rows_copied, 0);
    }

    #[test]
    fn cow_copies_pinned_rows_and_reclaims_after_unpin() {
        let mut a: Arena<f32> = Arena::new();
        let root = a.alloc_root(0.0);
        let row = attach_row(&mut a, root, Node::leaf(3.0), 0xFF);
        let pin = a.publish_pin();

        let current = a.ensure_children_current(root, false);
        assert_ne!(current, row, "pinned row must be copied, not reused");
        assert_eq!(a.node(root).row(), current, "parent word republished");
        a.node_mut(a.child_of(root, 1)).value = 7.0;
        // The original row still holds the snapshot's data.
        assert_eq!(a.shards()[SPINE_SHARD].node_row(row)[1].value, 3.0);
        let stats = a.snapshot_stats();
        assert_eq!(stats.node_rows_copied, 1);
        assert_eq!(stats.rows_awaiting_reclaim, 1);
        a.validate_reachable(root);

        // Same epoch, second touch: already current, no second copy.
        assert_eq!(a.ensure_children_current(root, false), current);
        assert_eq!(a.snapshot_stats().node_rows_copied, 1);

        drop(pin);
        a.sync_pins();
        let stats = a.snapshot_stats();
        assert_eq!(stats.rows_awaiting_reclaim, 0);
        assert_eq!(stats.rows_reclaimed, 1);
        a.validate_reachable(root);
        // The reclaimed row is recycled by the next allocation.
        assert_eq!(a.alloc_row_for(root, Node::leaf(0.0)), row);
    }

    #[test]
    fn retired_rows_wait_for_the_oldest_pin() {
        let mut a: Arena<f32> = Arena::new();
        let root = a.alloc_root(0.0);
        attach_row(&mut a, root, Node::leaf(1.0), 0xFF);
        let old_pin = a.publish_pin();
        a.ensure_children_current(root, false);
        let _new_pin = a.publish_pin();
        // The young pin (epoch 1) postdates the retirement (epoch 1
        // retire entry ≤ pin 1), but the old pin (epoch 0) still reaches
        // the row.
        assert_eq!(a.snapshot_stats().rows_awaiting_reclaim, 1);
        drop(old_pin);
        a.sync_pins();
        assert_eq!(
            a.snapshot_stats().rows_awaiting_reclaim,
            0,
            "dropping the oldest pin releases the row"
        );
        a.validate_reachable(root);
    }

    #[test]
    fn cloned_arena_reclaims_privately_and_shares_no_pins() {
        let mut a: Arena<f32> = Arena::new();
        let root = a.alloc_root(0.0);
        attach_row(&mut a, root, Node::leaf(1.0), 0xFF);
        let _pin = a.publish_pin();
        a.ensure_children_current(root, false);

        let mut b = a.clone();
        assert_eq!(
            b.snapshot_stats().rows_awaiting_reclaim,
            0,
            "clone drains retired rows (no pin can reach its copies)"
        );
        assert_eq!(b.snapshot_stats().pinned_snapshots, 0);
        // Writes to the clone never copy on account of the original's pin.
        let before = b.snapshot_stats().node_rows_copied;
        b.ensure_children_current(root, false);
        assert_eq!(b.snapshot_stats().node_rows_copied, before);
        b.validate_reachable(root);
        a.validate_reachable(root);
    }
}
