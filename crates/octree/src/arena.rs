//! Branch-sharded index arenas with free lists for nodes and child blocks.
//!
//! Storage is partitioned the way the OMU hardware partitions its T-Mem:
//! one independently-ownable [`ArenaShard`] per first-level tree branch
//! (the top-3-bit Morton group that also selects the PE), plus a *spine*
//! shard holding only the root. A node index encodes its shard in the top
//! [`SHARD_BITS`] bits, so the full-tree [`Arena`] can route any access
//! while a branch shard can be split off (`take_branch`) and handed to a
//! worker thread that owns its whole subtree — the software analogue of a
//! PE owning its banked memory.
//!
//! Freed slots are recycled (LIFO) — the analogue of the OMU prune
//! address manager's stack reuse, and the reason long mapping runs do not
//! grow memory monotonically even though pruning constantly deletes and
//! re-creates nodes.
//!
//! Reserving the index's top bits narrows addressing from one global
//! 2³²−1-slot arena to 2²⁸−1 slots *per branch shard* (≈268 M nodes /
//! ≈3 GB per first-level octant, ≈2.1 B nodes total). Exhausting a shard
//! panics, like the old global arena did; maps anywhere near that size
//! exhaust host memory first.

use crate::node::{ChildBlock, Node, NIL};

/// Bits of a node/block index reserved for the shard id.
const SHARD_BITS: u32 = 4;
/// Bits addressing a slot within one shard.
const SLOT_BITS: u32 = 32 - SHARD_BITS;
const SLOT_MASK: u32 = (1 << SLOT_BITS) - 1;

/// Number of branch shards (one per first-level octree branch).
pub(crate) const NUM_BRANCHES: usize = 8;
/// Shard id of the spine (holds only the root node and its child block).
pub(crate) const SPINE_SHARD: usize = NUM_BRANCHES;

#[inline]
fn encode(shard: usize, slot: u32) -> u32 {
    debug_assert!(shard <= SPINE_SHARD);
    ((shard as u32) << SLOT_BITS) | slot
}

/// Shard id of an encoded index.
#[inline]
pub(crate) fn shard_of(idx: u32) -> usize {
    (idx >> SLOT_BITS) as usize
}

#[inline]
fn slot_of(idx: u32) -> usize {
    (idx & SLOT_MASK) as usize
}

/// Uniform storage interface for the update walk: implemented by the
/// routing [`Arena`] (whole tree) and by a single [`ArenaShard`] (one
/// branch subtree owned by a worker thread). Indices are always the
/// encoded form, so child pointers written by a shard remain valid when
/// the shard is reattached to the arena.
pub(crate) trait NodeStore<V> {
    /// Allocates a node as child `pos` of `parent` (placement: the
    /// parent's shard, except children of the spine root which land in
    /// the branch shard selected by `pos`).
    fn alloc_child_node(&mut self, parent: u32, pos: usize, value: V) -> u32;
    /// Allocates an empty child block colocated with `parent`.
    fn alloc_block_for(&mut self, parent: u32) -> u32;
    /// Returns a node slot to its shard's free list.
    fn free_node(&mut self, idx: u32);
    /// Returns a child block to its shard's free list.
    fn free_block(&mut self, idx: u32);
    /// Immutable node access.
    fn node(&self, idx: u32) -> &Node<V>;
    /// Mutable node access.
    fn node_mut(&mut self, idx: u32) -> &mut Node<V>;
    /// Immutable block access.
    fn block(&self, idx: u32) -> &ChildBlock;
    /// Mutable block access.
    fn block_mut(&mut self, idx: u32) -> &mut ChildBlock;

    /// Child index of `node` at `pos`, or [`NIL`].
    #[inline]
    fn child_of(&self, node: u32, pos: usize) -> u32 {
        let b = self.node(node).block;
        if b == NIL {
            NIL
        } else {
            self.block(b).slots[pos]
        }
    }
}

/// One independently-ownable storage shard (one branch subtree, or the
/// spine). All indices it hands out and accepts are the encoded
/// shard-qualified form.
#[derive(Debug, Clone)]
pub(crate) struct ArenaShard<V> {
    id: usize,
    nodes: Vec<Node<V>>,
    node_free: Vec<u32>,
    blocks: Vec<ChildBlock>,
    block_free: Vec<u32>,
}

impl<V: Copy> ArenaShard<V> {
    /// An empty stand-in for a task slot that has not received its real
    /// shard yet (see the sharded batch apply). Never read or written.
    pub fn placeholder() -> Self {
        ArenaShard::new(usize::MAX)
    }

    fn new(id: usize) -> Self {
        ArenaShard {
            id,
            nodes: Vec::new(),
            node_free: Vec::new(),
            blocks: Vec::new(),
            block_free: Vec::new(),
        }
    }

    #[inline]
    fn own_slot(&self, idx: u32) -> usize {
        debug_assert_eq!(shard_of(idx), self.id, "index from a foreign shard");
        slot_of(idx)
    }

    /// Allocates a node in this shard, reusing a freed slot when available.
    pub fn alloc_node(&mut self, value: V) -> u32 {
        if let Some(idx) = self.node_free.pop() {
            self.nodes[slot_of(idx)] = Node::leaf(value);
            idx
        } else {
            let slot = self.nodes.len() as u32;
            assert!(slot < SLOT_MASK, "node shard {} exhausted", self.id);
            self.nodes.push(Node::leaf(value));
            encode(self.id, slot)
        }
    }

    /// Allocates an empty child block in this shard.
    pub fn alloc_block(&mut self) -> u32 {
        if let Some(idx) = self.block_free.pop() {
            self.blocks[slot_of(idx)] = ChildBlock::EMPTY;
            idx
        } else {
            let slot = self.blocks.len() as u32;
            assert!(slot < SLOT_MASK, "block shard {} exhausted", self.id);
            self.blocks.push(ChildBlock::EMPTY);
            encode(self.id, slot)
        }
    }

    /// Live node count (allocated minus freed).
    pub fn live_nodes(&self) -> usize {
        self.nodes.len() - self.node_free.len()
    }

    /// Live child-block count.
    pub fn live_blocks(&self) -> usize {
        self.blocks.len() - self.block_free.len()
    }

    fn clear(&mut self) {
        self.nodes.clear();
        self.node_free.clear();
        self.blocks.clear();
        self.block_free.clear();
    }

    fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node<V>>()
            + self.node_free.capacity() * 4
            + self.blocks.capacity() * std::mem::size_of::<ChildBlock>()
            + self.block_free.capacity() * 4
    }
}

impl<V: Copy> NodeStore<V> for ArenaShard<V> {
    #[inline]
    fn alloc_child_node(&mut self, _parent: u32, _pos: usize, value: V) -> u32 {
        // Inside a shard every descendant stays in the shard.
        self.alloc_node(value)
    }

    #[inline]
    fn alloc_block_for(&mut self, _parent: u32) -> u32 {
        self.alloc_block()
    }

    fn free_node(&mut self, idx: u32) {
        debug_assert!(
            self.nodes[self.own_slot(idx)].is_leaf(),
            "freeing node with children"
        );
        self.node_free.push(idx);
    }

    fn free_block(&mut self, idx: u32) {
        let _ = self.own_slot(idx);
        self.block_free.push(idx);
    }

    #[inline]
    fn node(&self, idx: u32) -> &Node<V> {
        &self.nodes[self.own_slot(idx)]
    }

    #[inline]
    fn node_mut(&mut self, idx: u32) -> &mut Node<V> {
        let slot = self.own_slot(idx);
        &mut self.nodes[slot]
    }

    #[inline]
    fn block(&self, idx: u32) -> &ChildBlock {
        &self.blocks[self.own_slot(idx)]
    }

    #[inline]
    fn block_mut(&mut self, idx: u32) -> &mut ChildBlock {
        let slot = self.own_slot(idx);
        &mut self.blocks[slot]
    }
}

/// Arena holding all nodes and child blocks of one octree, as 8 branch
/// shards plus the root spine.
#[derive(Debug, Clone)]
pub(crate) struct Arena<V> {
    shards: Vec<ArenaShard<V>>,
}

impl<V: Copy> Arena<V> {
    pub fn new() -> Self {
        Arena {
            shards: (0..=SPINE_SHARD).map(ArenaShard::new).collect(),
        }
    }

    /// Allocates the root node (spine shard).
    pub fn alloc_root(&mut self, value: V) -> u32 {
        self.shards[SPINE_SHARD].alloc_node(value)
    }

    /// The shard a child of `parent` at `pos` belongs to: the parent's
    /// shard, except below the spine root where `pos` *is* the branch id.
    #[inline]
    fn child_shard(&self, parent: u32, pos: usize) -> usize {
        let s = shard_of(parent);
        if s == SPINE_SHARD {
            pos
        } else {
            s
        }
    }

    /// Detaches branch `b`'s shard so a worker thread can own it. The
    /// arena keeps an empty placeholder until [`Self::put_branch`].
    pub fn take_branch(&mut self, b: usize) -> ArenaShard<V> {
        debug_assert!(b < NUM_BRANCHES);
        std::mem::replace(&mut self.shards[b], ArenaShard::new(b))
    }

    /// Reattaches a shard previously detached with [`Self::take_branch`].
    pub fn put_branch(&mut self, b: usize, shard: ArenaShard<V>) {
        debug_assert_eq!(shard.id, b, "shard reattached to the wrong branch");
        self.shards[b] = shard;
    }

    /// Live node count (allocated minus freed) across all shards.
    pub fn live_nodes(&self) -> usize {
        self.shards.iter().map(ArenaShard::live_nodes).sum()
    }

    /// Live child-block count across all shards.
    pub fn live_blocks(&self) -> usize {
        self.shards.iter().map(ArenaShard::live_blocks).sum()
    }

    /// High-water slot counts `(nodes, blocks)` ever allocated.
    pub fn high_water(&self) -> (usize, usize) {
        self.shards
            .iter()
            .fold((0, 0), |(n, b), s| (n + s.nodes.len(), b + s.blocks.len()))
    }

    /// Heap bytes used by the arena backing storage.
    pub fn heap_bytes(&self) -> usize {
        self.shards.iter().map(ArenaShard::heap_bytes).sum()
    }

    /// Removes every node and block, keeping allocations.
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
    }
}

impl<V: Copy> NodeStore<V> for Arena<V> {
    #[inline]
    fn alloc_child_node(&mut self, parent: u32, pos: usize, value: V) -> u32 {
        let shard = self.child_shard(parent, pos);
        self.shards[shard].alloc_node(value)
    }

    #[inline]
    fn alloc_block_for(&mut self, parent: u32) -> u32 {
        self.shards[shard_of(parent)].alloc_block()
    }

    #[inline]
    fn free_node(&mut self, idx: u32) {
        self.shards[shard_of(idx)].free_node(idx);
    }

    #[inline]
    fn free_block(&mut self, idx: u32) {
        self.shards[shard_of(idx)].free_block(idx);
    }

    #[inline]
    fn node(&self, idx: u32) -> &Node<V> {
        self.shards[shard_of(idx)].node(idx)
    }

    #[inline]
    fn node_mut(&mut self, idx: u32) -> &mut Node<V> {
        self.shards[shard_of(idx)].node_mut(idx)
    }

    #[inline]
    fn block(&self, idx: u32) -> &ChildBlock {
        self.shards[shard_of(idx)].block(idx)
    }

    #[inline]
    fn block_mut(&mut self, idx: u32) -> &mut ChildBlock {
        self.shards[shard_of(idx)].block_mut(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_reuses_slots_within_a_shard() {
        let mut a: Arena<f32> = Arena::new();
        let root = a.alloc_root(0.0);
        let n0 = a.alloc_child_node(root, 3, 0.5);
        let n1 = a.alloc_child_node(root, 3, 1.0);
        assert_eq!(a.live_nodes(), 3);
        a.free_node(n0);
        assert_eq!(a.live_nodes(), 2);
        let n2 = a.alloc_child_node(root, 3, 2.0);
        assert_eq!(n2, n0, "freed slot is recycled LIFO");
        assert_eq!(a.node(n2).value, 2.0);
        assert_eq!(a.node(n1).value, 1.0);
        assert_eq!(a.high_water().0, 3, "no growth past high water");
    }

    #[test]
    fn children_of_the_root_land_in_their_branch_shard() {
        let mut a: Arena<f32> = Arena::new();
        let root = a.alloc_root(0.0);
        assert_eq!(shard_of(root), SPINE_SHARD);
        for pos in 0..NUM_BRANCHES {
            let child = a.alloc_child_node(root, pos, 0.0);
            assert_eq!(shard_of(child), pos, "branch child in its own shard");
            // Deeper descendants stay in the branch shard regardless of pos.
            let grandchild = a.alloc_child_node(child, 7 - pos, 0.0);
            assert_eq!(shard_of(grandchild), pos);
        }
    }

    #[test]
    fn blocks_alloc_empty_and_recycle_reset() {
        let mut a: Arena<f32> = Arena::new();
        let root = a.alloc_root(0.0);
        let n = a.alloc_child_node(root, 2, 0.0);
        let b = a.alloc_block_for(n);
        assert_eq!(shard_of(b), 2, "block colocated with its parent");
        assert!(a.block(b).is_empty());
        a.block_mut(b).slots[2] = 5;
        a.free_block(b);
        let b2 = a.alloc_block_for(n);
        assert_eq!(b2, b);
        assert!(a.block(b2).is_empty(), "recycled blocks are reset");
    }

    #[test]
    fn child_of_resolves_through_block() {
        let mut a: Arena<f32> = Arena::new();
        let parent = a.alloc_root(0.0);
        assert_eq!(a.child_of(parent, 3), NIL);
        let b = a.alloc_block_for(parent);
        a.node_mut(parent).block = b;
        let child = a.alloc_child_node(parent, 3, 1.5);
        a.block_mut(b).slots[3] = child;
        assert_eq!(a.child_of(parent, 3), child);
        assert_eq!(a.child_of(parent, 4), NIL);
    }

    #[test]
    fn take_and_put_branch_roundtrips_contents() {
        let mut a: Arena<f32> = Arena::new();
        let root = a.alloc_root(0.0);
        let n = a.alloc_child_node(root, 5, 2.5);
        let shard = a.take_branch(5);
        assert_eq!(a.live_nodes(), 1, "only the root remains attached");
        assert_eq!(shard.node(n).value, 2.5, "shard indices stay valid");
        a.put_branch(5, shard);
        assert_eq!(a.live_nodes(), 2);
        assert_eq!(a.node(n).value, 2.5);
    }

    #[test]
    fn clear_resets_everything() {
        let mut a: Arena<f32> = Arena::new();
        let root = a.alloc_root(0.0);
        let n = a.alloc_child_node(root, 0, 0.0);
        a.free_node(n);
        a.alloc_block_for(root);
        a.clear();
        assert_eq!(a.live_nodes(), 0);
        assert_eq!(a.live_blocks(), 0);
    }
}
