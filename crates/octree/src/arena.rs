//! Branch-sharded sibling-row arenas with row free lists.
//!
//! Storage is partitioned the way the OMU hardware partitions its T-Mem:
//! one independently-ownable [`ArenaShard`] per first-level tree branch
//! (the top-3-bit Morton group that also selects the PE), plus a *spine*
//! shard holding the root and the root's children row. A node handle
//! encodes its shard in the top [`SHARD_BITS`] bits, so the full-tree
//! [`Arena`] can route any access while a branch shard can be split off
//! (`take_branch`) and handed to a worker thread that owns its whole
//! subtree — the software analogue of a PE owning its banked memory.
//!
//! Each shard keeps two row arenas:
//!
//! - **node rows** (`[Node<V>; 8]`, 64 B for `f32`): the sibling rows of
//!   inner levels — children of nodes at depths 0‥14;
//! - **leaf rows** (`[V; 8]`, 32 B for `f32`): the children of depth-15
//!   nodes, which are depth-16 voxels and can never have children, so
//!   they carry no pointer word.
//!
//! A node *handle* is `shard:4 | row:25 | octant:3` — the node lives in
//! slot `octant` of sibling row `row`. Whether the row is a node row or
//! a leaf row is decided by tree depth, which every traversal already
//! tracks (depth-16 handles index leaf rows, everything else node rows).
//!
//! Freed rows are recycled (LIFO) — the analogue of the OMU prune
//! address manager's stack reuse, and the reason long mapping runs do
//! not grow memory monotonically even though pruning constantly deletes
//! and re-creates nodes.
//!
//! The packed child reference in [`Node`] caps rows at 2²⁴ − 1 per shard
//! (≈134 M nodes / ≈1 GB per first-level octant, ≈1 B nodes total).
//! Exhausting a shard panics, like the old global arena did; maps
//! anywhere near that size exhaust host memory first.

use crate::node::{LeafRow, Node, NodeRow, MAX_ROW, NIL};

/// Bits of a node handle reserved for the shard id.
const SHARD_BITS: u32 = 4;
/// Bits of a node handle addressing the octant within a sibling row.
const OCT_BITS: u32 = 3;
/// Bits addressing a row within one shard.
const ROW_BITS: u32 = 32 - SHARD_BITS - OCT_BITS;
const ROW_MASK: u32 = (1 << ROW_BITS) - 1;

/// Number of branch shards (one per first-level octree branch).
pub(crate) const NUM_BRANCHES: usize = 8;
/// Shard id of the spine (holds the root node and the root's children).
pub(crate) const SPINE_SHARD: usize = NUM_BRANCHES;
/// Spine row holding the root node (slot 0); the root's children row is
/// whatever the spine allocates next.
const ROOT_ROW: u32 = 0;

/// Builds a node handle from its shard, sibling row and octant.
#[inline]
pub(crate) fn handle(shard: usize, row: u32, oct: usize) -> u32 {
    debug_assert!(shard <= SPINE_SHARD && row <= MAX_ROW && oct < 8);
    ((shard as u32) << (ROW_BITS + OCT_BITS)) | (row << OCT_BITS) | oct as u32
}

/// Shard id of a node handle.
#[inline]
pub(crate) fn shard_of(h: u32) -> usize {
    (h >> (ROW_BITS + OCT_BITS)) as usize
}

/// Sibling-row index of a node handle (within its shard).
#[inline]
fn row_of(h: u32) -> u32 {
    (h >> OCT_BITS) & ROW_MASK
}

/// Octant (slot within the sibling row) of a node handle.
#[inline]
fn oct_of(h: u32) -> usize {
    (h & 7) as usize
}

/// Uniform storage interface for tree walks: implemented by the routing
/// [`Arena`] (whole tree) and by the worker-owned branch store of the
/// sharded parallel apply. Handles are always the encoded form, so child
/// references written by a shard remain valid when it is reattached.
pub(crate) trait NodeStore<V: Copy> {
    /// Immutable node access (depth ≤ 15 handles).
    fn node(&self, h: u32) -> &Node<V>;
    /// Mutable node access.
    fn node_mut(&mut self, h: u32) -> &mut Node<V>;
    /// Reads a depth-16 voxel value (leaf-row handles).
    fn leaf_value(&self, h: u32) -> V;
    /// Mutable depth-16 voxel access.
    fn leaf_value_mut(&mut self, h: u32) -> &mut V;
    /// The shard that holds (or will hold) the children row of `parent`.
    fn child_shard(&self, parent: u32) -> usize;
    /// Allocates a node row for the children of `parent`, every slot set
    /// to `fill`. Returns the raw row index (store it with
    /// [`Node::set_children`]).
    fn alloc_row_for(&mut self, parent: u32, fill: Node<V>) -> u32;
    /// Allocates a leaf row (depth-16 values) for the children of
    /// `parent`, every slot set to `fill`.
    fn alloc_leaf_row_for(&mut self, parent: u32, fill: V) -> u32;
    /// Returns `parent`'s children node row to its shard's free list
    /// (call before [`Node::clear_children`]).
    fn free_row_of(&mut self, parent: u32);
    /// Returns `parent`'s children leaf row to its shard's free list.
    fn free_leaf_row_of(&mut self, parent: u32);
    /// Borrows a whole node row — one bounds check for all 8 siblings
    /// (the parent refresh / prune-check access pattern).
    fn node_row(&self, shard: usize, row: u32) -> &NodeRow<V>;
    /// Borrows a whole leaf row.
    fn leaf_row(&self, shard: usize, row: u32) -> &LeafRow<V>;

    /// Handle of child `pos` of `parent`, or [`NIL`] when absent. Pure
    /// arithmetic on the parent already in hand — no dependent load.
    #[inline]
    fn child_of(&self, parent: u32, pos: usize) -> u32 {
        let n = self.node(parent);
        if n.has_child(pos) {
            handle(self.child_shard(parent), n.row(), pos)
        } else {
            NIL
        }
    }
}

/// One independently-ownable storage shard (one branch subtree, or the
/// spine). Raw row indices are shard-relative; full node handles carry
/// the shard id.
#[derive(Debug, Clone)]
pub(crate) struct ArenaShard<V> {
    id: usize,
    rows: Vec<NodeRow<V>>,
    row_free: Vec<u32>,
    leaf_rows: Vec<LeafRow<V>>,
    leaf_free: Vec<u32>,
}

impl<V: Copy> ArenaShard<V> {
    fn new(id: usize) -> Self {
        ArenaShard {
            id,
            rows: Vec::new(),
            row_free: Vec::new(),
            leaf_rows: Vec::new(),
            leaf_free: Vec::new(),
        }
    }

    /// The branch (or spine) id this shard stores.
    pub fn id(&self) -> usize {
        self.id
    }

    #[inline]
    fn own(&self, h: u32) -> (usize, usize) {
        debug_assert_eq!(shard_of(h), self.id, "handle from a foreign shard");
        (row_of(h) as usize, oct_of(h))
    }

    #[inline]
    pub fn node(&self, h: u32) -> &Node<V> {
        let (row, oct) = self.own(h);
        &self.rows[row][oct]
    }

    #[inline]
    pub fn node_mut(&mut self, h: u32) -> &mut Node<V> {
        let (row, oct) = self.own(h);
        &mut self.rows[row][oct]
    }

    #[inline]
    pub fn leaf_value(&self, h: u32) -> V {
        let (row, oct) = self.own(h);
        self.leaf_rows[row][oct]
    }

    #[inline]
    pub fn leaf_value_mut(&mut self, h: u32) -> &mut V {
        let (row, oct) = self.own(h);
        &mut self.leaf_rows[row][oct]
    }

    #[inline]
    pub fn node_row(&self, row: u32) -> &NodeRow<V> {
        &self.rows[row as usize]
    }

    #[inline]
    pub fn leaf_row(&self, row: u32) -> &LeafRow<V> {
        &self.leaf_rows[row as usize]
    }

    /// Allocates a node row filled with `fill`, reusing a freed row when
    /// available. Returns the raw (shard-relative) row index.
    pub fn alloc_row(&mut self, fill: Node<V>) -> u32 {
        if let Some(row) = self.row_free.pop() {
            self.rows[row as usize] = [fill; 8];
            row
        } else {
            let row = self.rows.len() as u32;
            assert!(row < MAX_ROW, "node-row shard {} exhausted", self.id);
            self.rows.push([fill; 8]);
            row
        }
    }

    /// Allocates a leaf row filled with `fill`.
    pub fn alloc_leaf_row(&mut self, fill: V) -> u32 {
        if let Some(row) = self.leaf_free.pop() {
            self.leaf_rows[row as usize] = [fill; 8];
            row
        } else {
            let row = self.leaf_rows.len() as u32;
            assert!(row < MAX_ROW, "leaf-row shard {} exhausted", self.id);
            self.leaf_rows.push([fill; 8]);
            row
        }
    }

    /// Returns a node row to the free list.
    pub fn free_row(&mut self, row: u32) {
        debug_assert!((row as usize) < self.rows.len());
        self.row_free.push(row);
    }

    /// Returns a leaf row to the free list.
    pub fn free_leaf_row(&mut self, row: u32) {
        debug_assert!((row as usize) < self.leaf_rows.len());
        self.leaf_free.push(row);
    }

    /// Live sibling rows `(node rows, leaf rows)` — allocated minus freed.
    pub fn live_rows(&self) -> (usize, usize) {
        (
            self.rows.len() - self.row_free.len(),
            self.leaf_rows.len() - self.leaf_free.len(),
        )
    }

    fn clear(&mut self) {
        self.rows.clear();
        self.row_free.clear();
        self.leaf_rows.clear();
        self.leaf_free.clear();
    }

    fn heap_bytes(&self) -> usize {
        self.rows.capacity() * std::mem::size_of::<NodeRow<V>>()
            + self.leaf_rows.capacity() * std::mem::size_of::<LeafRow<V>>()
            + (self.row_free.capacity() + self.leaf_free.capacity()) * 4
    }

    /// High-water row slots `(node rows, leaf rows)` ever allocated.
    fn high_water(&self) -> (usize, usize) {
        (self.rows.len(), self.leaf_rows.len())
    }
}

/// Arena holding all sibling rows of one octree, as 8 branch shards plus
/// the root spine.
#[derive(Debug, Clone)]
pub(crate) struct Arena<V> {
    shards: Vec<ArenaShard<V>>,
}

impl<V: Copy> Arena<V> {
    pub fn new() -> Self {
        Arena {
            shards: (0..=SPINE_SHARD).map(ArenaShard::new).collect(),
        }
    }

    /// Allocates the root node (slot 0 of the spine's row 0) and returns
    /// its handle.
    pub fn alloc_root(&mut self, value: V) -> u32 {
        let row = self.shards[SPINE_SHARD].alloc_row(Node::leaf(value));
        debug_assert_eq!(row, ROOT_ROW, "root row is always the spine's first");
        handle(SPINE_SHARD, ROOT_ROW, 0)
    }

    /// Detaches branch `b`'s shard so a worker thread can own it. The
    /// arena keeps an empty placeholder until [`Self::put_branch`].
    pub fn take_branch(&mut self, b: usize) -> ArenaShard<V> {
        debug_assert!(b < NUM_BRANCHES);
        std::mem::replace(&mut self.shards[b], ArenaShard::new(b))
    }

    /// Reattaches a shard previously detached with [`Self::take_branch`].
    pub fn put_branch(&mut self, b: usize, shard: ArenaShard<V>) {
        debug_assert_eq!(shard.id, b, "shard reattached to the wrong branch");
        self.shards[b] = shard;
    }

    /// Live sibling-row count `(node rows, leaf rows)` across all shards.
    /// Node rows + leaf rows = inner nodes (each inner node owns exactly
    /// one children row); the spine's root row is a node row too.
    pub fn live_rows(&self) -> (usize, usize) {
        self.shards.iter().fold((0, 0), |(n, l), s| {
            let (sn, sl) = s.live_rows();
            (n + sn, l + sl)
        })
    }

    /// High-water row counts `(node rows, leaf rows)` ever allocated.
    pub fn high_water(&self) -> (usize, usize) {
        self.shards.iter().fold((0, 0), |(n, l), s| {
            let (sn, sl) = s.high_water();
            (n + sn, l + sl)
        })
    }

    /// Heap bytes used by the arena backing storage.
    pub fn heap_bytes(&self) -> usize {
        self.shards.iter().map(ArenaShard::heap_bytes).sum()
    }

    /// Removes every row, keeping allocations.
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.clear();
        }
    }

    /// Exhaustively validates the sibling-row invariants of the tree
    /// hanging off `root` (test support; panics on violation):
    ///
    /// - a leaf's packed child reference is all-zero (no stale row);
    /// - an inner node's mask is non-empty and its row index is in range;
    /// - no two inner nodes share a row (per shard and tier);
    /// - every allocated row is either reachable through exactly one
    ///   parent mask or sits on its shard's free list — i.e. each row's
    ///   `child_mask` is the single source of truth for its live children.
    pub fn validate_reachable(&self, root: u32) {
        let mut seen_rows: Vec<Vec<bool>> = self
            .shards
            .iter()
            .map(|s| vec![false; s.rows.len()])
            .collect();
        let mut seen_leaf_rows: Vec<Vec<bool>> = self
            .shards
            .iter()
            .map(|s| vec![false; s.leaf_rows.len()])
            .collect();
        if root != NIL {
            // The root's own row.
            assert_eq!(shard_of(root), SPINE_SHARD, "root outside the spine");
            seen_rows[SPINE_SHARD][row_of(root) as usize] = true;
            let mut stack = vec![(root, 0u8)];
            while let Some((h, depth)) = stack.pop() {
                let n = self.node(h);
                if n.is_leaf() {
                    assert_eq!(n.row(), 0, "leaf at depth {depth} keeps a stale row");
                    continue;
                }
                let shard = self.child_shard(h);
                let row = n.row() as usize;
                let leaf_tier = depth + 1 == 16;
                let seen = if leaf_tier {
                    assert!(
                        row < self.shards[shard].leaf_rows.len(),
                        "leaf row out of range"
                    );
                    &mut seen_leaf_rows[shard][row]
                } else {
                    assert!(row < self.shards[shard].rows.len(), "node row out of range");
                    &mut seen_rows[shard][row]
                };
                assert!(!*seen, "row referenced by two parents");
                *seen = true;
                if !leaf_tier {
                    for pos in 0..8 {
                        if n.has_child(pos) {
                            stack.push((self.child_of(h, pos), depth + 1));
                        }
                    }
                }
            }
        }
        // Every unreachable row must be on its shard's free list, and
        // every reachable one must not be.
        for (sid, shard) in self.shards.iter().enumerate() {
            let mut free = vec![false; shard.rows.len()];
            for &r in &shard.row_free {
                assert!(!free[r as usize], "node row double-freed");
                free[r as usize] = true;
            }
            for (r, &reachable) in seen_rows[sid].iter().enumerate() {
                assert_ne!(
                    reachable, free[r],
                    "shard {sid} node row {r}: reachable={reachable} freed={}",
                    free[r]
                );
            }
            let mut lfree = vec![false; shard.leaf_rows.len()];
            for &r in &shard.leaf_free {
                assert!(!lfree[r as usize], "leaf row double-freed");
                lfree[r as usize] = true;
            }
            for (r, &reachable) in seen_leaf_rows[sid].iter().enumerate() {
                assert_ne!(
                    reachable, lfree[r],
                    "shard {sid} leaf row {r}: reachable={reachable} freed={}",
                    lfree[r]
                );
            }
        }
    }
}

impl<V: Copy> NodeStore<V> for Arena<V> {
    #[inline]
    fn node(&self, h: u32) -> &Node<V> {
        self.shards[shard_of(h)].node(h)
    }

    #[inline]
    fn node_mut(&mut self, h: u32) -> &mut Node<V> {
        self.shards[shard_of(h)].node_mut(h)
    }

    #[inline]
    fn leaf_value(&self, h: u32) -> V {
        self.shards[shard_of(h)].leaf_value(h)
    }

    #[inline]
    fn leaf_value_mut(&mut self, h: u32) -> &mut V {
        self.shards[shard_of(h)].leaf_value_mut(h)
    }

    /// Children placement: the parent's shard, except below the spine —
    /// the root's children stay in the spine (they form one sibling row),
    /// and a depth-1 node's children land in the branch shard named by
    /// its octant, which is what makes `take_branch` detach a whole
    /// subtree.
    #[inline]
    fn child_shard(&self, parent: u32) -> usize {
        let s = shard_of(parent);
        if s != SPINE_SHARD {
            s
        } else if row_of(parent) == ROOT_ROW {
            SPINE_SHARD
        } else {
            oct_of(parent)
        }
    }

    #[inline]
    fn alloc_row_for(&mut self, parent: u32, fill: Node<V>) -> u32 {
        let shard = self.child_shard(parent);
        self.shards[shard].alloc_row(fill)
    }

    #[inline]
    fn alloc_leaf_row_for(&mut self, parent: u32, fill: V) -> u32 {
        let shard = self.child_shard(parent);
        self.shards[shard].alloc_leaf_row(fill)
    }

    #[inline]
    fn free_row_of(&mut self, parent: u32) {
        let shard = self.child_shard(parent);
        let row = self.node(parent).row();
        self.shards[shard].free_row(row);
    }

    #[inline]
    fn free_leaf_row_of(&mut self, parent: u32) {
        let shard = self.child_shard(parent);
        let row = self.node(parent).row();
        self.shards[shard].free_leaf_row(row);
    }

    #[inline]
    fn node_row(&self, shard: usize, row: u32) -> &NodeRow<V> {
        self.shards[shard].node_row(row)
    }

    #[inline]
    fn leaf_row(&self, shard: usize, row: u32) -> &LeafRow<V> {
        self.shards[shard].leaf_row(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Allocates + attaches a children node row, mirroring the walk.
    fn attach_row(a: &mut Arena<f32>, parent: u32, fill: Node<f32>, mask: u8) -> u32 {
        let row = a.alloc_row_for(parent, fill);
        a.node_mut(parent).set_children(row, mask);
        row
    }

    #[test]
    fn root_lives_in_the_spine() {
        let mut a: Arena<f32> = Arena::new();
        let root = a.alloc_root(0.5);
        assert_eq!(shard_of(root), SPINE_SHARD);
        assert_eq!(a.node(root).value, 0.5);
        assert!(a.node(root).is_leaf());
        assert_eq!(a.live_rows(), (1, 0));
    }

    #[test]
    fn root_children_share_a_spine_row_and_branch_rows_split() {
        let mut a: Arena<f32> = Arena::new();
        let root = a.alloc_root(0.0);
        attach_row(&mut a, root, Node::leaf(0.0), 0xFF);
        for pos in 0..NUM_BRANCHES {
            let child = a.child_of(root, pos);
            assert_eq!(shard_of(child), SPINE_SHARD, "depth-1 row is spine");
            // A depth-1 node's children land in its branch shard.
            let grand_row = a.alloc_row_for(child, Node::leaf(0.0));
            a.node_mut(child).set_children(grand_row, 1 << (7 - pos));
            let grand = a.child_of(child, 7 - pos);
            assert_eq!(shard_of(grand), pos, "branch subtree in its own shard");
            // And deeper descendants stay in the branch shard.
            assert_eq!(a.child_shard(grand), pos);
        }
    }

    #[test]
    fn child_of_is_mask_gated_arithmetic() {
        let mut a: Arena<f32> = Arena::new();
        let root = a.alloc_root(0.0);
        assert_eq!(a.child_of(root, 3), NIL, "leaf has no children");
        let row = attach_row(&mut a, root, Node::leaf(1.5), 1 << 3);
        let child = a.child_of(root, 3);
        assert_eq!(child, handle(SPINE_SHARD, row, 3));
        assert_eq!(a.node(child).value, 1.5);
        assert_eq!(a.child_of(root, 4), NIL, "unmasked slot is absent");
    }

    #[test]
    fn freed_rows_recycle_lifo_and_reset() {
        let mut a: Arena<f32> = Arena::new();
        let root = a.alloc_root(0.0);
        let row = attach_row(&mut a, root, Node::leaf(2.0), 0xFF);
        a.node_mut(a.child_of(root, 5)).value = 9.0;
        a.free_row_of(root);
        a.node_mut(root).clear_children();
        assert_eq!(a.live_rows(), (1, 0));
        let row2 = attach_row(&mut a, root, Node::leaf(0.0), 0xFF);
        assert_eq!(row2, row, "freed row is recycled LIFO");
        assert_eq!(
            a.node(a.child_of(root, 5)).value,
            0.0,
            "recycled rows reset"
        );
        assert_eq!(a.high_water(), (2, 0), "no growth past high water");
    }

    #[test]
    fn leaf_rows_store_values_only() {
        let mut a: Arena<f32> = Arena::new();
        let root = a.alloc_root(0.0);
        attach_row(&mut a, root, Node::leaf(0.0), 1 << 2);
        let d1 = a.child_of(root, 2);
        // Pretend d1 is a depth-15 node: give it a leaf row.
        let lrow = a.alloc_leaf_row_for(d1, 0.25);
        a.node_mut(d1).set_children(lrow, 0xFF);
        let voxel = a.child_of(d1, 7);
        assert_eq!(shard_of(voxel), 2, "leaf row colocated with the branch");
        assert_eq!(a.leaf_value(voxel), 0.25);
        *a.leaf_value_mut(voxel) = 0.75;
        assert_eq!(a.leaf_value(voxel), 0.75);
        assert_eq!(a.live_rows(), (2, 1));
        a.free_leaf_row_of(d1);
        a.node_mut(d1).clear_children();
        assert_eq!(a.live_rows(), (2, 0));
    }

    #[test]
    fn take_and_put_branch_roundtrips_contents() {
        let mut a: Arena<f32> = Arena::new();
        let root = a.alloc_root(0.0);
        attach_row(&mut a, root, Node::leaf(0.0), 1 << 5);
        let d1 = a.child_of(root, 5);
        let grand_row = a.alloc_row_for(d1, Node::leaf(2.5));
        a.node_mut(d1).set_children(grand_row, 0xFF);
        let grand = a.child_of(d1, 0);

        let shard = a.take_branch(5);
        assert_eq!(a.live_rows(), (2, 0), "spine rows remain attached");
        assert_eq!(shard.node(grand).value, 2.5, "shard handles stay valid");
        a.put_branch(5, shard);
        assert_eq!(a.live_rows(), (3, 0));
        assert_eq!(a.node(grand).value, 2.5);
    }

    #[test]
    fn clear_resets_everything() {
        let mut a: Arena<f32> = Arena::new();
        let root = a.alloc_root(0.0);
        attach_row(&mut a, root, Node::leaf(0.0), 0xFF);
        a.clear();
        assert_eq!(a.live_rows(), (0, 0));
        assert!(a.heap_bytes() > 0, "capacity is kept");
        // The next root allocation lands in row 0 again.
        let root2 = a.alloc_root(1.0);
        assert_eq!(root2, root);
    }
}
