//! A software reimplementation of the probabilistic OctoMap occupancy
//! octree (Hornung et al., 2013) — the CPU baseline that the OMU
//! accelerator paper characterizes and accelerates.
//!
//! The tree follows OctoMap semantics exactly:
//!
//! - Space is discretized into voxels addressed by depth-16
//!   [`VoxelKey`](omu_geometry::VoxelKey)s.
//! - Each node stores an occupancy log-odds value; a measurement update is
//!   one clamped addition (eq. 2 of the paper).
//! - Inner nodes hold the **maximum** of their children (eq. 3), updated
//!   eagerly on the way back up from each leaf update.
//! - When all 8 children of a node exist, are leaves, and hold the same
//!   value, they are **pruned** and the parent becomes a leaf; updating a
//!   voxel inside a pruned leaf **expands** it again.
//!
//! The tree is generic over the log-odds representation
//! ([`LogOdds`](omu_geometry::LogOdds)): [`OctreeF32`] is the
//! floating-point baseline, [`OctreeFixed`] runs the identical algorithm on
//! the accelerator's 16-bit fixed point, which is what makes bit-exact
//! software/accelerator equivalence testable.
//!
//! Storage follows the OMU paper's tree-memory layout: a node is a
//! value plus one packed 32-bit reference (`row << 8 | child_mask`) to
//! a contiguous *sibling row* of its 8 children — 64 B (one cache line)
//! for `f32` inner rows, and value-only 32 B leaf rows for depth-16
//! voxels. A descent step is a single dependent load, child presence is
//! a mask test, and parent refresh / prune checks sweep one row (see
//! the `arena` module docs and the README's "Memory layout" section).
//!
//! Every operation increments [`OpCounters`]; the CPU timing models in
//! `omu-cpumodel` convert those counts to seconds.
//!
//! Besides the scalar per-update path, the tree offers a **batched
//! update engine** (`apply_update_batch`, `insert_scan_batched`):
//! updates are Morton-sorted so the tree walk reuses the shared
//! root-path prefix between consecutive keys, repeated updates of one
//! voxel coalesce, and parent refresh + pruning are deferred to one
//! bottom-up pass per touched subtree — the software analogue of the
//! work amortization the OMU hardware gets from its PE × bank layout.
//!
//! On top of that sits the **subtree-sharded parallel engine**
//! (`apply_update_batch_parallel`, `insert_scan_parallel`,
//! `insert_points_parallel`): the arena is partitioned into one
//! independently-ownable shard per first-level branch (like the paper's
//! per-PE T-Mem banks), a Morton-sorted batch splits into ≤ 8 contiguous
//! per-branch runs over disjoint subtrees, and each run is queued on the
//! tree's persistent [`WorkerPool`] (no per-call thread spawns) before
//! the shards reattach and the root spine is finished once —
//! bit-identical to the scalar path, including operation counters. A
//! worker panic surfaces as a typed [`TaskPanic`] through the `try_*`
//! entry points, with every shard reattached first.
//!
//! # Examples
//!
//! ```
//! use omu_geometry::{Occupancy, Point3};
//! use omu_octree::OctreeF32;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut tree = OctreeF32::new(0.1)?;
//! let p = Point3::new(1.0, 0.5, 0.25);
//! tree.update_point(p, true)?;
//! assert_eq!(tree.occupancy_at(p)?, omu_geometry::Occupancy::Occupied);
//! assert_eq!(tree.occupancy_at(Point3::new(-1.0, 0.0, 0.0))?, Occupancy::Unknown);
//! # Ok(())
//! # }
//! ```

mod arena;
mod batch;
mod checksum;
mod counters;
mod insert;
mod io;
mod iter;
mod node;
mod query;
mod query_batch;
mod region;
mod serialize;
mod shard;
mod snapshot;
mod stats;
mod tree;
mod update;
mod walk;

pub use batch::{BatchStats, UpdateSink};
pub use checksum::crc32;
pub use counters::{OpCounters, QueryCounters};
pub use insert::ParallelInsertError;
pub use io::ReadError;
pub use iter::{LeafInfo, LeafIter};
pub use omu_pool::{PoolStats, TaskPanic, WorkerPool};
pub use query::{cast_ray_resuming, cast_ray_with, collides_sphere_with, RayCastResult};
pub use query_batch::{serve_morton_coalesced, DescentCursor};
pub use region::LeafInBoxIter;
pub use serialize::DeserializeError;
#[doc(hidden)]
pub use shard::ParallelDispatch;
pub use snapshot::{SnapLeafIter, Snapshot, SnapshotReader, SnapshotStats};
pub use stats::{MemoryStats, TreeStats};
pub use tree::{OccupancyOctree, OctreeF32, OctreeFixed};
