//! Epoch-pinned snapshots: lock-free concurrent reads under live writes.
//!
//! Every engine in the crate is thread-confined: parallel reads borrow
//! `&self`, parallel writes take `&mut self`. A serving deployment —
//! many clients querying while scans stream in — needs a third shape: a
//! **snapshot** that pins the map at a publish instant and stays
//! readable, bit-identically, from any number of threads while the
//! writer keeps mutating the live tree at full speed.
//!
//! The sibling-row arena makes this cheap. Rows are allocated and freed
//! whole, so the unit of sharing is the row, and the scheme is:
//!
//! - **Stable storage** ([`ChunkedVec`]): each shard's row arena becomes
//!   a list of shared chunks (`Arc<Chunk<_>>`) with power-of-two ladder
//!   growth. Rows never move on growth, so a snapshot can hold the chunk
//!   list and dereference rows long after the writer has grown the
//!   arena.
//! - **Epochs**: the tree carries an epoch counter, bumped on every
//!   [`publish`](crate::OccupancyOctree::publish_snapshot). Each row
//!   remembers the epoch it was last made writable in (its *stamp*).
//! - **Row copy-on-write**: the first mutation of a row in an epoch —
//!   when the row is still reachable by some pinned snapshot — clones
//!   the row into a fresh slot and republishes the parent's packed
//!   `row << 8 | mask` word. The handle bit layout is untouched; the
//!   snapshot keeps reading the original row through its own copy of
//!   the parent word.
//! - **Epoch-based reclamation**: superseded rows are *retired* with the
//!   epoch of their replacement and return to the shard free list only
//!   once no pinned snapshot is old enough to reach them
//!   (`min live pin ≥ retire epoch`).
//!
//! The writer never blocks on readers: its only interaction with them is
//! one atomic load of the [`PinRegistry`] summary per write entry.
//! Readers never block the writer or each other: a [`Snapshot`] is an
//! `Arc` over immutable chunk tables.
//!
//! This module is the crate's single home for `unsafe` and atomics
//! (alongside `omu-pool`); the arena stays safe by construction and the
//! lint gate enforces the confinement.

use std::cell::UnsafeCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use omu_geometry::{
    Aabb, KeyConverter, KeyError, LogOdds, Occupancy, OccupancyParams, Point3, ResolvedParams,
    VoxelKey, TREE_DEPTH,
};
use omu_raycast::RayWalk;
use serde::{Deserialize, Serialize};

use crate::arena::{child_shard_of, handle, oct_of, row_of, Arena, NodeStore};
use crate::counters::QueryCounters;
use crate::iter::LeafInfo;
use crate::node::{LeafRow, Node, NodeRow, NIL};
use crate::query::{cast_ray_resuming, collides_sphere_with, RayCastResult};
use crate::query_batch::serve_morton_coalesced;

/// `cow_max_pin` value meaning "no snapshot is pinned": every row may be
/// mutated in place.
pub(crate) const NO_PINS: u32 = u32::MAX;

/// log2 of the first chunk's row capacity. Subsequent chunks double
/// (64, 64, 128, 256, …), so total slack stays within the ~2× envelope
/// a doubling `Vec` already paid before this module existed.
const FIRST_CHUNK_POW: u32 = 6;
const FIRST_CHUNK: usize = 1 << FIRST_CHUNK_POW;

/// One fixed-size block of rows, shared between the live arena and any
/// number of pinned snapshots.
pub(crate) struct Chunk<T> {
    cells: Box<[UnsafeCell<T>]>,
}

// SAFETY: a `Chunk` is shared (via `Arc`) between exactly one writer —
// the thread holding `&mut` on the owning tree — and any number of
// snapshot readers. The epoch/COW discipline guarantees the writer only
// mutates cells no pinned snapshot can reach (rows stamped after every
// live pin, or beyond every snapshot's captured length), so no cell is
// ever written while another thread may read it.
unsafe impl<T: Send> Send for Chunk<T> {}
// SAFETY: same argument as `Send` above — the writer/reader exclusion
// the epoch/COW discipline enforces is exactly what makes shared
// `&Chunk` access from multiple threads sound.
unsafe impl<T: Send + Sync> Sync for Chunk<T> {}

impl<T: Copy> Chunk<T> {
    fn filled(len: usize, fill: T) -> Arc<Self> {
        Chunk {
            cells: (0..len).map(|_| UnsafeCell::new(fill)).collect(),
        }
        .into()
    }
}

/// Grow-only chunked row storage with stable addresses.
///
/// Indexing uses the classic ladder layout: virtual index
/// `v = i + FIRST_CHUNK`, chunk `⌊log2 v⌋ - FIRST_CHUNK_POW`, offset
/// `v` minus its top bit — one add, one `leading_zeros` and one mask
/// away from a flat `Vec` index.
pub(crate) struct ChunkedVec<T> {
    chunks: Vec<Arc<Chunk<T>>>,
    len: usize,
}

impl<T: Copy> ChunkedVec<T> {
    pub fn new() -> Self {
        ChunkedVec {
            chunks: Vec::new(),
            len: 0,
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Total row slots currently backed by chunks.
    #[inline]
    fn capacity(&self) -> usize {
        (FIRST_CHUNK << self.chunks.len()) - FIRST_CHUNK
    }

    #[inline]
    fn locate(i: usize) -> (usize, usize) {
        let v = i + FIRST_CHUNK;
        let k = usize::BITS - 1 - v.leading_zeros();
        ((k - FIRST_CHUNK_POW) as usize, v ^ (1usize << k))
    }

    #[inline]
    pub fn get(&self, i: usize) -> &T {
        debug_assert!(i < self.len);
        let (c, o) = Self::locate(i);
        // SAFETY: the borrow of `self` keeps the writer from handing out
        // `&mut` aliases on this thread; cross-thread, see the `Chunk`
        // Sync justification (readers only ever touch immutable cells).
        unsafe { &*self.chunks[c].cells[o].get() }
    }

    #[inline]
    pub fn get_mut(&mut self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        let (c, o) = Self::locate(i);
        // SAFETY: `&mut self` confines this to the single writer thread,
        // and the COW discipline guarantees the cell is not reachable
        // from any pinned snapshot (callers route through
        // `make_row_current` first).
        unsafe { &mut *self.chunks[c].cells[o].get() }
    }

    pub fn push(&mut self, value: T) {
        if self.len == self.capacity() {
            self.chunks
                .push(Chunk::filled(FIRST_CHUNK << self.chunks.len(), value));
        }
        let (c, o) = Self::locate(self.len);
        // SAFETY: the slot at `self.len` is beyond every snapshot's
        // captured length (lengths only grow, and a snapshot records the
        // length at publish), so no reader can reach it.
        unsafe {
            *self.chunks[c].cells[o].get() = value;
        }
        self.len += 1;
    }

    /// Empties the vector. With `drop_chunks` the backing chunks are
    /// released (pinned snapshots keep them alive through their own
    /// `Arc`s and future pushes allocate fresh ones); without it the
    /// chunks are kept for reuse, preserving capacity like `Vec::clear`.
    pub fn clear(&mut self, drop_chunks: bool) {
        if drop_chunks {
            self.chunks.clear();
        }
        self.len = 0;
    }

    pub fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
    }

    /// Shares the current chunk table for a snapshot (cheap: one `Arc`
    /// clone per chunk).
    pub fn share(&self) -> SnapTable<T> {
        SnapTable {
            chunks: self.chunks.clone(),
            len: self.len,
        }
    }
}

/// Deep copy: a cloned tree must own private storage, so its mutations
/// can never reach snapshots pinned on the original (and vice versa).
impl<T: Copy> Clone for ChunkedVec<T> {
    fn clone(&self) -> Self {
        let mut out = ChunkedVec::new();
        for i in 0..self.len {
            out.push(*self.get(i));
        }
        out
    }
}

impl<T> fmt::Debug for ChunkedVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChunkedVec")
            .field("len", &self.len)
            .field("chunks", &self.chunks.len())
            .finish()
    }
}

/// A snapshot's immutable view of one shard-tier's rows: the chunk table
/// and length captured at publish time.
pub(crate) struct SnapTable<T> {
    chunks: Vec<Arc<Chunk<T>>>,
    len: usize,
}

impl<T: Copy> SnapTable<T> {
    #[inline]
    fn get(&self, i: usize) -> T {
        assert!(i < self.len, "snapshot row out of range");
        let (c, o) = ChunkedVec::<T>::locate(i);
        // SAFETY: rows reachable from a pinned snapshot are never
        // mutated while the pin is alive — the writer copies them out
        // (COW) instead — so this read cannot race a write.
        unsafe { *self.chunks[c].cells[o].get() }
    }
}

/// Registry of pinned snapshot epochs, shared between one writer and all
/// snapshots of a tree.
///
/// Pin/unpin mutate a mutex-guarded multiset (cold: once per snapshot
/// lifetime). The writer reads only the packed atomic summary — its
/// write path stays lock-free and never waits on readers.
pub(crate) struct PinRegistry {
    /// epoch → live pin count.
    pins: Mutex<BTreeMap<u32, u32>>,
    /// `(min << 32) | max` over pinned epochs; `u64::MAX` when empty.
    summary: AtomicU64,
}

impl PinRegistry {
    pub fn new() -> Self {
        PinRegistry {
            pins: Mutex::new(BTreeMap::new()),
            summary: AtomicU64::new(u64::MAX),
        }
    }

    /// Pins `epoch`; the pin lives until the returned guard drops.
    pub fn pin(self: &Arc<Self>, epoch: u32) -> PinGuard {
        // An epoch of `u32::MAX` would collide with the empty sentinel;
        // it is unreachable (one publish per epoch, ~136 years at 1 kHz).
        debug_assert_ne!(epoch, u32::MAX);
        let mut pins = lock_unpoisoned(&self.pins);
        *pins.entry(epoch).or_insert(0) += 1;
        self.store_summary(&pins);
        PinGuard {
            registry: Arc::clone(self),
            epoch,
        }
    }

    fn store_summary(&self, pins: &BTreeMap<u32, u32>) {
        let packed = match (pins.keys().next(), pins.keys().next_back()) {
            (Some(&min), Some(&max)) => ((min as u64) << 32) | max as u64,
            _ => u64::MAX,
        };
        // Release pairs with the writer's Acquire load: once the writer
        // observes a pin gone, the reader's last access happened-before.
        self.summary.store(packed, Ordering::Release);
    }

    /// The packed summary word (for cheap change detection).
    pub fn raw_summary(&self) -> u64 {
        self.summary.load(Ordering::Acquire)
    }

    /// Unpacks a summary into `(min_pin, max_pin)`, `None` when no pin
    /// is live.
    pub fn decode(raw: u64) -> Option<(u32, u32)> {
        (raw != u64::MAX).then_some(((raw >> 32) as u32, raw as u32))
    }

    /// Number of live pinned snapshots (cold path, takes the lock).
    pub fn live_pins(&self) -> u64 {
        let pins = lock_unpoisoned(&self.pins);
        pins.values().map(|&c| c as u64).sum()
    }
}

/// Lock the pin map, recovering from poisoning: every critical section
/// over it updates the counts in single statements that cannot unwind
/// mid-mutation, so a poison flag carries no information — and a pin
/// registry that panics on drop would turn one reader crash into a
/// writer crash.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl fmt::Debug for PinRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PinRegistry")
            .field("summary", &PinRegistry::decode(self.raw_summary()))
            .finish()
    }
}

/// Keeps one epoch pinned for the lifetime of a snapshot.
pub(crate) struct PinGuard {
    registry: Arc<PinRegistry>,
    epoch: u32,
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        let mut pins = lock_unpoisoned(&self.registry.pins);
        if let Some(count) = pins.get_mut(&self.epoch) {
            *count -= 1;
            if *count == 0 {
                pins.remove(&self.epoch);
            }
        }
        self.registry.store_summary(&pins);
    }
}

/// The arena's handle on its pin registry. `Clone` deliberately creates
/// a **fresh** registry: a cloned tree deep-copies its storage, so
/// snapshots pinned on the original cannot reach the clone's rows and
/// must not throttle its writes.
pub(crate) struct PinHandle(pub(crate) Arc<PinRegistry>);

impl PinHandle {
    pub fn fresh() -> Self {
        PinHandle(Arc::new(PinRegistry::new()))
    }
}

impl Clone for PinHandle {
    fn clone(&self) -> Self {
        PinHandle::fresh()
    }
}

impl fmt::Debug for PinHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Snapshot/COW bookkeeping for one tree — the serving-mode counterpart
/// of [`OpCounters`](crate::OpCounters). Kept separate so engine
/// bit-equality tests (which compare `OpCounters` exactly) are
/// unaffected by how much COW traffic each engine happened to cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotStats {
    /// Current write epoch (number of publishes so far).
    pub epoch: u32,
    /// Snapshots ever published.
    pub snapshots_published: u64,
    /// Live pinned snapshots right now.
    pub pinned_snapshots: u64,
    /// Node rows copied by the write path because a pinned snapshot
    /// still read the original.
    pub node_rows_copied: u64,
    /// Leaf rows copied likewise.
    pub leaf_rows_copied: u64,
    /// Rows retired (superseded or freed while still snapshot-reachable).
    pub rows_retired: u64,
    /// Retired rows recycled onto a free list after their last pin died.
    pub rows_reclaimed: u64,
    /// Rows still parked on retire queues awaiting reclamation.
    pub rows_awaiting_reclaim: u64,
}

/// An immutable, epoch-pinned view of an [`OccupancyOctree`], readable
/// from any number of threads while the live tree keeps mutating.
///
/// Created by [`OccupancyOctree::publish_snapshot`]; cloning is one
/// `Arc` bump. Every read — [`occupancy`](Self::occupancy), batched
/// queries and ray casts through a [`reader`](Self::reader), leaf
/// iteration — returns exactly what the live tree would have returned
/// at the publish instant. Dropping the last clone unpins the epoch,
/// letting the writer reclaim rows it copied out while the snapshot
/// was alive.
///
/// [`OccupancyOctree`]: crate::OccupancyOctree
/// [`OccupancyOctree::publish_snapshot`]: crate::OccupancyOctree::publish_snapshot
pub struct Snapshot<V: LogOdds> {
    inner: Arc<SnapInner<V>>,
}

impl<V: LogOdds> Clone for Snapshot<V> {
    fn clone(&self) -> Self {
        Snapshot {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<V: LogOdds> fmt::Debug for Snapshot<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Snapshot")
            .field("epoch", &self.inner.epoch)
            .field("empty", &(self.inner.root == NIL))
            .finish()
    }
}

struct SnapInner<V: LogOdds> {
    /// Per-shard chunk tables, indexed by shard id (8 branches + spine).
    node_tables: Vec<SnapTable<NodeRow<V>>>,
    leaf_tables: Vec<SnapTable<LeafRow<V>>>,
    root: u32,
    /// The root node by value. The root's spine cell is the one location
    /// the writer mutates in place (its row is COW-exempt so the root
    /// handle stays stable), so snapshots must never dereference it.
    root_node: Node<V>,
    conv: KeyConverter,
    resolved: ResolvedParams<V>,
    /// The raw occupancy parameters, carried so a snapshot can be
    /// serialized with the same header the live tree would write.
    params: OccupancyParams,
    epoch: u32,
    _pin: PinGuard,
}

impl<V: LogOdds> SnapInner<V> {
    #[inline]
    fn node(&self, h: u32) -> Node<V> {
        if h == self.root {
            return self.root_node;
        }
        self.node_tables[crate::arena::shard_of(h)].get(row_of(h) as usize)[oct_of(h)]
    }

    #[inline]
    fn leaf_value(&self, h: u32) -> V {
        self.leaf_tables[crate::arena::shard_of(h)].get(row_of(h) as usize)[oct_of(h)]
    }

    fn search(&self, key: VoxelKey) -> Option<(V, u8)> {
        if self.root == NIL {
            return None;
        }
        let mut node = self.root;
        for d in 0..TREE_DEPTH {
            let n = self.node(node);
            if n.is_leaf() {
                return Some((n.value, d));
            }
            let pos = key.child_index_at(d).index();
            if !n.has_child(pos) {
                return None;
            }
            node = handle(child_shard_of(node), n.row(), pos);
        }
        Some((self.leaf_value(node), TREE_DEPTH))
    }
}

impl<V: LogOdds> Snapshot<V> {
    /// Captures the current state of `arena` and pins its epoch; the
    /// arena advances to the next epoch before this returns.
    pub(crate) fn capture(
        arena: &mut Arena<V>,
        root: u32,
        conv: KeyConverter,
        resolved: ResolvedParams<V>,
        params: OccupancyParams,
    ) -> Self {
        let epoch = arena.epoch();
        let root_node = if root == NIL {
            Node::leaf(V::ZERO)
        } else {
            *arena.node(root)
        };
        let (node_tables, leaf_tables) = arena
            .shards()
            .iter()
            .map(|s| s.share_tables())
            .unzip::<_, _, Vec<_>, Vec<_>>();
        let pin = arena.publish_pin();
        Snapshot {
            inner: Arc::new(SnapInner {
                node_tables,
                leaf_tables,
                root,
                root_node,
                conv,
                resolved,
                params,
                epoch,
                _pin: pin,
            }),
        }
    }

    /// The epoch this snapshot pins (the tree's publish count at
    /// capture).
    pub fn epoch(&self) -> u32 {
        self.inner.epoch
    }

    /// True when the snapshot holds no observation.
    pub fn is_empty(&self) -> bool {
        self.inner.root == NIL
    }

    /// The key/coordinate converter of the snapshotted map.
    pub fn converter(&self) -> &KeyConverter {
        &self.inner.conv
    }

    /// The map resolution in metres.
    pub fn resolution(&self) -> f64 {
        self.inner.conv.resolution()
    }

    /// The occupancy parameters of the snapshotted map.
    pub fn params(&self) -> &OccupancyParams {
        &self.inner.params
    }

    /// Root handle for the serializer's pre-order walk.
    pub(crate) fn root_handle(&self) -> u32 {
        self.inner.root
    }

    /// The node at `h`, read from the frozen rows (root served by
    /// value, since its live spine cell is COW-exempt).
    pub(crate) fn node_at(&self, h: u32) -> Node<V> {
        self.inner.node(h)
    }

    /// The depth-16 leaf value at `h`.
    pub(crate) fn leaf_at(&self, h: u32) -> V {
        self.inner.leaf_value(h)
    }

    /// Handle of `parent`'s child at octant `pos` (`n` is `parent`'s
    /// node, passed in so callers walking the tree read each row once).
    /// Lives here rather than in the serializer because composing
    /// handles is confined to the arena-layer modules.
    pub(crate) fn child_handle(&self, parent: u32, n: &Node<V>, pos: usize) -> u32 {
        handle(child_shard_of(parent), n.row(), pos)
    }

    /// Searches for the node covering `key` — same contract and result
    /// as [`OccupancyOctree::search`](crate::OccupancyOctree::search)
    /// on the live tree at publish time.
    pub fn search(&self, key: VoxelKey) -> Option<(V, u8)> {
        self.inner.search(key)
    }

    /// The log-odds value covering `key` as `f32`, if observed.
    pub fn logodds(&self, key: VoxelKey) -> Option<f32> {
        self.search(key).map(|(v, _)| v.to_f32())
    }

    /// Occupancy classification of the voxel at `key`.
    pub fn occupancy(&self, key: VoxelKey) -> Occupancy {
        match self.search(key) {
            Some((v, _)) => self.inner.resolved.classify(v),
            None => Occupancy::Unknown,
        }
    }

    /// Occupancy classification of the voxel containing `point`.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] when the point is outside the addressable
    /// map.
    pub fn occupancy_at(&self, point: Point3) -> Result<Occupancy, KeyError> {
        Ok(self.occupancy(self.inner.conv.coord_to_key(point)?))
    }

    /// Borrows the snapshot as a cached-descent [`SnapshotReader`] —
    /// the read-surface workhorse for coherent probe streams (batched
    /// queries, ray casts, collision sweeps).
    pub fn reader(&self) -> SnapshotReader<'_, V> {
        let mut path = [NIL; TREE_DEPTH as usize + 1];
        path[0] = self.inner.root;
        SnapshotReader {
            inner: &self.inner,
            path,
            depth: 0,
            prev: None,
            walk: None,
            order: Vec::new(),
            counters: QueryCounters::default(),
        }
    }

    /// Casts one query ray (convenience over [`Self::reader`]).
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] when the origin is outside the map or the
    /// direction is degenerate.
    pub fn cast_ray(
        &self,
        origin: Point3,
        direction: Point3,
        max_range: f64,
        ignore_unknown: bool,
    ) -> Result<RayCastResult, KeyError> {
        self.reader()
            .cast_ray(origin, direction, max_range, ignore_unknown)
    }

    /// Casts a batch of query rays through one cached-descent reader.
    pub fn cast_rays(
        &self,
        rays: &[(Point3, Point3)],
        max_range: f64,
        ignore_unknown: bool,
    ) -> Vec<Result<RayCastResult, KeyError>> {
        let mut reader = self.reader();
        rays.iter()
            .map(|&(origin, dir)| reader.cast_ray(origin, dir, max_range, ignore_unknown))
            .collect()
    }

    /// True when any occupied voxel intersects the sphere (convenience
    /// over [`Self::reader`]).
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] when the probe region leaves the map.
    pub fn collides_sphere(&self, center: Point3, radius: f64) -> Result<bool, KeyError> {
        self.reader().collides_sphere(center, radius)
    }

    /// Classifies a key batch (convenience over [`Self::reader`]).
    pub fn query_batch(&self, keys: &[VoxelKey]) -> Vec<Occupancy> {
        let mut results = Vec::new();
        self.reader().query_batch(keys, &mut results);
        results
    }

    /// Iterates over all leaves of the pinned map.
    pub fn iter_leaves(&self) -> SnapLeafIter<'_, V> {
        let mut stack = Vec::new();
        if self.inner.root != NIL {
            stack.push((self.inner.root, VoxelKey::new(0, 0, 0), 0u8));
        }
        SnapLeafIter {
            inner: &self.inner,
            bounds: None,
            stack,
        }
    }

    /// Iterates the leaves whose regions intersect the key box
    /// `[min, max]` (inclusive, per axis).
    pub fn iter_leaves_in_box(&self, min: VoxelKey, max: VoxelKey) -> SnapLeafIter<'_, V> {
        let mut stack = Vec::new();
        if self.inner.root != NIL {
            stack.push((self.inner.root, VoxelKey::new(0, 0, 0), 0u8));
        }
        SnapLeafIter {
            inner: &self.inner,
            bounds: Some((min, max)),
            stack,
        }
    }

    /// Iterates the leaves intersecting a metric box.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] when a corner of the box is outside the map.
    pub fn iter_leaves_in_aabb(&self, aabb: &Aabb) -> Result<SnapLeafIter<'_, V>, KeyError> {
        let min = self.inner.conv.coord_to_key(aabb.min())?;
        let max = self.inner.conv.coord_to_key(aabb.max())?;
        Ok(self.iter_leaves_in_box(min, max))
    }

    /// The canonical sorted `(key, depth, logodds)` leaf list — directly
    /// comparable to [`OccupancyOctree::snapshot`] on the live tree,
    /// which is how the stress suite asserts bit-identity with a serial
    /// replay at the pinned epoch.
    ///
    /// [`OccupancyOctree::snapshot`]: crate::OccupancyOctree::snapshot
    pub fn canonical_leaves(&self) -> Vec<(VoxelKey, u8, f32)> {
        let mut v: Vec<_> = self
            .iter_leaves()
            .map(|l| (l.key, l.depth, l.logodds))
            .collect();
        v.sort_by_key(|&(key, depth, _)| (key, depth));
        v
    }
}

/// A cached-descent cursor over a [`Snapshot`] — the snapshot mirror of
/// [`DescentCursor`](crate::DescentCursor), with the same amortized-O(1)
/// probe cost on coherent streams and the same bit-identical results.
/// Each reader thread owns one; readers never synchronize with each
/// other or the writer.
pub struct SnapshotReader<'s, V: LogOdds> {
    inner: &'s SnapInner<V>,
    path: [u32; TREE_DEPTH as usize + 1],
    depth: u8,
    prev: Option<VoxelKey>,
    walk: Option<RayWalk>,
    /// Morton scratch for [`Self::query_batch`].
    order: Vec<(u64, u32)>,
    counters: QueryCounters,
}

impl<V: LogOdds> fmt::Debug for SnapshotReader<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotReader")
            .field("epoch", &self.inner.epoch)
            .field("depth", &self.depth)
            .field("prev", &self.prev)
            .finish_non_exhaustive()
    }
}

impl<V: LogOdds> SnapshotReader<'_, V> {
    /// Searches for the node covering `key`, resuming from the deepest
    /// level shared with the previously probed key.
    pub fn search(&mut self, key: VoxelKey) -> Option<(V, u8)> {
        self.counters.probes += 1;
        if self.inner.root == NIL {
            return None;
        }
        let resume = match self.prev {
            Some(p) => p.common_prefix_depth(key).min(self.depth),
            None => 0,
        } as usize;
        self.counters.reused_levels += resume as u64;
        self.prev = Some(key);

        let mut node = self.path[resume];
        for d in resume..TREE_DEPTH as usize {
            let n = self.inner.node(node);
            if n.is_leaf() {
                self.depth = d as u8;
                return Some((n.value, d as u8));
            }
            self.counters.node_visits += 1;
            let pos = key.child_index_at(d as u8).index();
            if !n.has_child(pos) {
                self.depth = d as u8;
                return None;
            }
            node = handle(child_shard_of(node), n.row(), pos);
            self.path[d + 1] = node;
        }
        self.depth = TREE_DEPTH;
        Some((self.inner.leaf_value(node), TREE_DEPTH))
    }

    /// Occupancy classification of the voxel at `key`.
    pub fn occupancy(&mut self, key: VoxelKey) -> Occupancy {
        match self.search(key) {
            Some((v, _)) => self.inner.resolved.classify(v),
            None => Occupancy::Unknown,
        }
    }

    #[inline]
    fn probe(&mut self, key: VoxelKey) -> (Occupancy, f32) {
        match self.search(key) {
            Some((v, _)) => (self.inner.resolved.classify(v), v.to_f32()),
            None => (Occupancy::Unknown, 0.0),
        }
    }

    /// Casts a query ray — same contract and result as
    /// [`OccupancyOctree::cast_ray`](crate::OccupancyOctree::cast_ray)
    /// on the live tree at publish time.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] when the origin is outside the map or the
    /// direction is degenerate.
    pub fn cast_ray(
        &mut self,
        origin: Point3,
        direction: Point3,
        max_range: f64,
        ignore_unknown: bool,
    ) -> Result<RayCastResult, KeyError> {
        self.counters.rays += 1;
        let conv = self.inner.conv;
        let mut walk = self.walk.take().unwrap_or_else(RayWalk::idle);
        let res = cast_ray_resuming(
            &conv,
            &mut walk,
            origin,
            direction,
            max_range,
            ignore_unknown,
            |key| self.probe(key),
        );
        self.walk = Some(walk);
        res
    }

    /// Sphere collision probe.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] when the probe region leaves the map.
    pub fn collides_sphere(&mut self, center: Point3, radius: f64) -> Result<bool, KeyError> {
        let conv = self.inner.conv;
        collides_sphere_with(&conv, center, radius, |key| self.occupancy(key))
    }

    /// Classifies `keys` into `results` through the Morton-coalesced
    /// batch engine — same results as
    /// [`OccupancyOctree::query_batch`](crate::OccupancyOctree::query_batch)
    /// at publish time.
    pub fn query_batch(&mut self, keys: &[VoxelKey], results: &mut Vec<Occupancy>) {
        results.clear();
        results.resize(keys.len(), Occupancy::Unknown);
        self.counters.batch_queries += keys.len() as u64;
        let mut order = std::mem::take(&mut self.order);
        let mut coalesced = 0u64;
        serve_morton_coalesced(
            keys,
            &mut order,
            results,
            |key| self.occupancy(key),
            || coalesced += 1,
        );
        self.counters.batch_coalesced += coalesced;
        self.order = order;
    }

    /// The read-side counters this reader accumulated.
    pub fn counters(&self) -> &QueryCounters {
        &self.counters
    }
}

/// Depth-first leaf iterator over a [`Snapshot`], optionally bounded to
/// a key box — the snapshot mirror of [`LeafIter`](crate::LeafIter) /
/// [`LeafInBoxIter`](crate::LeafInBoxIter).
pub struct SnapLeafIter<'s, V: LogOdds> {
    inner: &'s SnapInner<V>,
    bounds: Option<(VoxelKey, VoxelKey)>,
    stack: Vec<(u32, VoxelKey, u8)>,
}

impl<V: LogOdds> fmt::Debug for SnapLeafIter<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapLeafIter")
            .field("epoch", &self.inner.epoch)
            .field("bounds", &self.bounds)
            .field("pending", &self.stack.len())
            .finish_non_exhaustive()
    }
}

impl<V: LogOdds> Iterator for SnapLeafIter<'_, V> {
    type Item = LeafInfo;

    fn next(&mut self) -> Option<LeafInfo> {
        while let Some((node, key, depth)) = self.stack.pop() {
            if let Some((min, max)) = self.bounds {
                let span = 1u32 << (TREE_DEPTH - depth);
                let overlaps = |anchor: u16, lo: u16, hi: u16| {
                    let a = anchor as u32;
                    a <= hi as u32 && a + span > lo as u32
                };
                if !(overlaps(key.x, min.x, max.x)
                    && overlaps(key.y, min.y, max.y)
                    && overlaps(key.z, min.z, max.z))
                {
                    continue;
                }
            }
            if depth == TREE_DEPTH {
                let v = self.inner.leaf_value(node);
                return Some(LeafInfo {
                    key,
                    depth,
                    logodds: v.to_f32(),
                    occupancy: self.inner.resolved.classify(v),
                });
            }
            let n = self.inner.node(node);
            if n.is_leaf() {
                return Some(LeafInfo {
                    key,
                    depth,
                    logodds: n.value.to_f32(),
                    occupancy: self.inner.resolved.classify(n.value),
                });
            }
            let bit = TREE_DEPTH - 1 - depth;
            let shard = child_shard_of(node);
            let row = n.row();
            for pos in (0..8usize).rev() {
                if n.has_child(pos) {
                    let child_key = VoxelKey::new(
                        key.x | (((pos & 1) as u16) << bit),
                        key.y | ((((pos >> 1) & 1) as u16) << bit),
                        key.z | ((((pos >> 2) & 1) as u16) << bit),
                    );
                    self.stack
                        .push((handle(shard, row, pos), child_key, depth + 1));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::OctreeF32;
    use omu_geometry::{Point3, PointCloud, Scan};
    use omu_pool::WorkerPool;

    fn scan(origin: Point3, n: usize, phase: f64) -> Scan {
        let cloud: PointCloud = (0..n)
            .map(|i| {
                let a = i as f64 * 0.17 + phase;
                Point3::new(2.2 * a.cos(), 2.2 * a.sin(), ((i % 5) as f64 - 2.0) * 0.15)
            })
            .collect();
        Scan::new(origin, cloud)
    }

    #[test]
    fn chunked_vec_addresses_are_stable_across_growth() {
        let mut v: ChunkedVec<u64> = ChunkedVec::new();
        v.push(7);
        let p = v.get(0) as *const u64;
        for i in 1..1000u64 {
            v.push(i);
        }
        assert_eq!(v.len(), 1000);
        assert_eq!(p, v.get(0) as *const u64, "growth must not move rows");
        for i in 0..1000usize {
            let want = if i == 0 { 7 } else { i as u64 };
            assert_eq!(*v.get(i), want);
        }
    }

    #[test]
    fn chunked_vec_clear_keeps_or_drops_chunks() {
        let mut v: ChunkedVec<u32> = ChunkedVec::new();
        for i in 0..200 {
            v.push(i);
        }
        let cap = v.capacity();
        v.clear(false);
        assert_eq!(v.len(), 0);
        assert_eq!(v.capacity(), cap, "capacity kept without pins");
        v.clear(true);
        assert_eq!(v.capacity(), 0, "chunks released when shared");
        v.push(9);
        assert_eq!(*v.get(0), 9);
    }

    #[test]
    fn pin_registry_summary_tracks_min_and_max() {
        let reg = Arc::new(PinRegistry::new());
        assert_eq!(PinRegistry::decode(reg.raw_summary()), None);
        let a = reg.pin(3);
        let b = reg.pin(7);
        let c = reg.pin(3);
        assert_eq!(PinRegistry::decode(reg.raw_summary()), Some((3, 7)));
        assert_eq!(reg.live_pins(), 3);
        drop(a);
        assert_eq!(
            PinRegistry::decode(reg.raw_summary()),
            Some((3, 7)),
            "duplicate pin keeps the epoch alive"
        );
        drop(c);
        assert_eq!(PinRegistry::decode(reg.raw_summary()), Some((7, 7)));
        drop(b);
        assert_eq!(PinRegistry::decode(reg.raw_summary()), None);
    }

    #[test]
    fn snapshot_matches_live_tree_at_publish_and_stays_frozen() {
        let mut t = OctreeF32::new(0.1).unwrap();
        t.insert_scan_batched(&scan(Point3::ZERO, 60, 0.0)).unwrap();
        let at_publish = t.snapshot();
        let snap = t.publish_snapshot();
        assert_eq!(snap.canonical_leaves(), at_publish);

        // Keep writing: the pinned view must not move.
        for k in 1..4 {
            t.insert_scan_batched(&scan(Point3::new(0.05, 0.0, 0.0), 60, k as f64))
                .unwrap();
        }
        t.debug_validate();
        assert_eq!(snap.canonical_leaves(), at_publish, "snapshot is frozen");
        assert_ne!(t.snapshot(), at_publish, "live tree moved on");

        // A fresh publish sees the new state.
        let snap2 = t.publish_snapshot();
        assert_eq!(snap2.canonical_leaves(), t.snapshot());
        assert!(snap2.epoch() > snap.epoch());
    }

    #[test]
    fn snapshot_reads_mirror_every_query_surface() {
        let mut t = OctreeF32::new(0.1).unwrap();
        t.insert_scan(&scan(Point3::ZERO, 80, 0.3)).unwrap();
        let reference = t.clone();
        let snap = t.publish_snapshot();
        // Mutate the live tree so any accidental live read would differ.
        t.insert_scan(&scan(Point3::new(0.1, 0.1, 0.0), 80, 1.1))
            .unwrap();

        let keys: Vec<VoxelKey> = (0..500u16)
            .map(|i| VoxelKey::new(32700 + i % 70, 32740 + (i * 3) % 60, 32760 + i % 9))
            .collect();
        let mut reader = snap.reader();
        let mut got = Vec::new();
        reader.query_batch(&keys, &mut got);
        for (i, &key) in keys.iter().enumerate() {
            assert_eq!(got[i], reference.occupancy(key), "key {key:?}");
            assert_eq!(snap.search(key), reference.search(key));
        }
        assert!(reader.counters().probes > 0);

        let origin = Point3::new(0.05, 0.05, 0.05);
        for i in 0..24 {
            let a = i as f64 * 0.26;
            let dir = Point3::new(a.cos(), a.sin(), 0.1);
            let live = reference.cast_ray(origin, dir, 8.0, false).unwrap();
            let pinned = snap.cast_ray(origin, dir, 8.0, false).unwrap();
            assert_eq!(live, pinned, "ray {i}");
        }
        for i in 0..12 {
            let c = Point3::new(1.8 + 0.05 * i as f64, 0.2, 0.0);
            assert_eq!(
                snap.collides_sphere(c, 0.4).unwrap(),
                reference.collides_sphere(c, 0.4).unwrap()
            );
        }
        let aabb = Aabb::new(Point3::new(1.0, -1.0, -0.4), Point3::new(2.5, 1.0, 0.4));
        let live_box: Vec<_> = reference
            .iter_leaves_in_aabb(&aabb)
            .unwrap()
            .map(|l| (l.key, l.depth))
            .collect();
        let snap_box: Vec<_> = snap
            .iter_leaves_in_aabb(&aabb)
            .unwrap()
            .map(|l| (l.key, l.depth))
            .collect();
        assert_eq!(live_box, snap_box);
    }

    #[test]
    fn concurrent_readers_see_their_pinned_epochs() {
        let mut t = OctreeF32::new(0.1).unwrap();
        let pool = WorkerPool::new(4);
        type PinnedEpoch = (Snapshot<f32>, Vec<(VoxelKey, u8, f32)>);
        let mut pinned: Vec<PinnedEpoch> = Vec::new();
        for k in 0..4 {
            t.insert_scan_batched(&scan(Point3::ZERO, 50, 0.4 * k as f64))
                .unwrap();
            pinned.push((t.publish_snapshot(), t.snapshot()));
        }
        pool.scope(|s| {
            for (snap, want) in &pinned {
                for _ in 0..2 {
                    let snap = snap.clone();
                    s.spawn(move || {
                        assert_eq!(snap.canonical_leaves(), *want);
                    });
                }
            }
        });
        t.debug_validate();
    }

    #[test]
    fn reclamation_recycles_rows_only_after_pins_drop() {
        let mut t = OctreeF32::new(0.1).unwrap();
        t.insert_scan_batched(&scan(Point3::ZERO, 60, 0.0)).unwrap();
        let snap = t.publish_snapshot();
        // Writing under a live pin copies rows instead of mutating them.
        t.insert_scan_batched(&scan(Point3::ZERO, 60, 0.5)).unwrap();
        let mid = t.snapshot_stats();
        assert!(
            mid.node_rows_copied + mid.leaf_rows_copied > 0,
            "writes under a pin must COW"
        );
        assert!(mid.rows_awaiting_reclaim > 0);
        t.debug_validate();

        drop(snap);
        // The next write entry syncs pins and drains the retire queues.
        t.insert_scan_batched(&scan(Point3::ZERO, 60, 1.0)).unwrap();
        let end = t.snapshot_stats();
        assert_eq!(end.rows_awaiting_reclaim, 0, "no pins → fully reclaimed");
        assert!(end.rows_reclaimed >= mid.rows_awaiting_reclaim);
        assert_eq!(end.pinned_snapshots, 0);
        t.debug_validate();
    }

    #[test]
    fn unpinned_writes_pay_no_cow() {
        let mut t = OctreeF32::new(0.1).unwrap();
        for k in 0..3 {
            t.insert_scan_batched(&scan(Point3::ZERO, 60, 0.3 * k as f64))
                .unwrap();
        }
        let s = t.snapshot_stats();
        assert_eq!(s.node_rows_copied, 0);
        assert_eq!(s.leaf_rows_copied, 0);
        assert_eq!(s.rows_retired, 0);
    }

    #[test]
    fn cloned_tree_does_not_share_pins_or_storage() {
        let mut t = OctreeF32::new(0.1).unwrap();
        t.insert_scan_batched(&scan(Point3::ZERO, 40, 0.0)).unwrap();
        let snap = t.publish_snapshot();
        let frozen = snap.canonical_leaves();

        let mut clone = t.clone();
        clone
            .insert_scan_batched(&scan(Point3::ZERO, 40, 0.7))
            .unwrap();
        assert_eq!(
            clone.snapshot_stats().node_rows_copied,
            0,
            "the original's pin must not throttle the clone"
        );
        assert_eq!(snap.canonical_leaves(), frozen);
        clone.debug_validate();
        t.debug_validate();
    }

    #[test]
    fn snapshot_of_empty_tree_is_empty() {
        let mut t = OctreeF32::new(0.1).unwrap();
        let snap = t.publish_snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.canonical_leaves(), Vec::new());
        assert_eq!(snap.occupancy(VoxelKey::ORIGIN), Occupancy::Unknown);
        assert_eq!(
            snap.cast_ray(Point3::ZERO, Point3::new(1.0, 0.0, 0.0), 2.0, false)
                .unwrap(),
            t.cast_ray(Point3::ZERO, Point3::new(1.0, 0.0, 0.0), 2.0, false)
                .unwrap()
        );
    }

    #[test]
    fn snapshot_survives_clear_of_the_live_tree() {
        let mut t = OctreeF32::new(0.1).unwrap();
        t.insert_scan_batched(&scan(Point3::ZERO, 50, 0.0)).unwrap();
        let snap = t.publish_snapshot();
        let frozen = snap.canonical_leaves();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(snap.canonical_leaves(), frozen);
        // And the cleared tree is fully usable again.
        t.insert_scan_batched(&scan(Point3::ZERO, 50, 0.9)).unwrap();
        t.debug_validate();
        assert_eq!(snap.canonical_leaves(), frozen);
    }

    #[test]
    fn snapshot_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Snapshot<f32>>();
        assert_send_sync::<Snapshot<omu_geometry::FixedLogOdds>>();
        assert_send_sync::<SnapshotStats>();
    }
}
