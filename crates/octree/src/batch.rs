//! Batched Morton-ordered updates with deferred parent refresh — the
//! software analogue of how the OMU accelerator amortizes tree
//! maintenance across many voxel updates.
//!
//! The scalar path ([`update_key`](OccupancyOctree::update_key)) pays a
//! full 16-level descent *and* a full 16-level bottom-up parent
//! refresh/prune pass per update. This module instead:
//!
//! 1. **coalesces** the batch by voxel key in one hashed group-by pass
//!    (scan workloads revisit the same cells constantly — on the
//!    corridor dataset over 99 % of updates join an existing group),
//!    preserving each voxel's update order, which matters because
//!    clamped log-odds additions do not commute once saturated;
//! 2. sorts only the *unique* keys by Morton code — orders of magnitude
//!    fewer elements than sorting the raw update stream;
//! 3. walks the tree with a **cached descent**: consecutive sorted keys
//!    share a root-path prefix, so only the changed suffix is descended,
//!    and each group's whole delta sequence replays on the leaf in hand;
//! 4. **defers parent refresh and pruning**: a subtree's inner nodes are
//!    finished exactly once, when the sorted walk exits the subtree,
//!    instead of once per update.
//!
//! Because pruning canonicalizes the tree (a node is pruned exactly when
//! its 8 children are equal-valued leaves) and per-voxel log-odds
//! evolution is independent of other voxels, the batch produces a tree
//! **bit-identical** to applying the same updates through `update_key` in
//! arrival order — the property `tests/equivalence.rs` checks
//! exhaustively.
//!
//! On top of the sequential walk, the Morton order hands out parallelism
//! for free: the top 3 code bits are the first-level branch, so the
//! sorted groups split into at most 8 contiguous runs over *disjoint*
//! subtrees. The subtree-sharded apply in the `shard` module exploits
//! exactly that (one arena shard per branch, like the paper's PEs).

use omu_geometry::{LogOdds, VoxelKey, TREE_DEPTH};
use omu_pool::TaskPanic;
use omu_raycast::VoxelUpdate;
use serde::{Deserialize, Serialize};

use crate::node::NIL;
use crate::tree::OccupancyOctree;

/// A voxel key packed into one word — the form the group-by table
/// hashes with a single multiply.
#[inline]
fn packed_key(key: VoxelKey) -> u64 {
    ((key.x as u64) << 32) | ((key.y as u64) << 16) | key.z as u64
}

/// Sentinel id marking an empty [`GroupTable`] slot (batches are capped
/// at `u32::MAX` updates, so no real group reaches it).
const EMPTY_SLOT: u32 = u32::MAX;

/// The hottest structure of the batch engine: a packed-key → group-id
/// map probed once per update. A purpose-built open-addressed table with
/// Fibonacci (multiply, top-bits) hashing and linear probing beats the
/// general-purpose hash map here: no per-slot control bytes, no entry
/// API machinery, and clearing is one `fill` over the id array while the
/// key array and capacity persist across batches.
#[derive(Debug, Clone)]
pub(crate) struct GroupTable {
    keys: Vec<u64>,
    ids: Vec<u32>,
    /// Power-of-two capacity minus one.
    mask: usize,
    /// Occupied slots.
    len: usize,
}

impl Default for GroupTable {
    fn default() -> Self {
        GroupTable::with_capacity_pow2(1 << 10)
    }
}

impl GroupTable {
    fn with_capacity_pow2(cap: usize) -> Self {
        debug_assert!(cap.is_power_of_two());
        GroupTable {
            keys: vec![0; cap],
            ids: vec![EMPTY_SLOT; cap],
            mask: cap - 1,
            len: 0,
        }
    }

    /// Multiply-shift hash: the high product bits are the well-mixed
    /// ones, so the slot index comes from the top (Fibonacci hashing).
    #[inline]
    fn slot_of(&self, w: u64) -> usize {
        const K: u64 = 0x9E37_79B9_7F4A_7C15;
        let h = w.wrapping_mul(K);
        (h >> (64 - (self.mask + 1).trailing_zeros())) as usize & self.mask
    }

    /// Looks up `w`, inserting it with id `new_id` when absent. Returns
    /// the existing id, or `None` when the key was newly inserted.
    #[inline]
    fn get_or_insert(&mut self, w: u64, new_id: u32) -> Option<u32> {
        // Grow at ~7/8 load to keep probe chains short.
        if (self.len + 1) * 8 > (self.mask + 1) * 7 {
            self.grow();
        }
        let mut i = self.slot_of(w);
        loop {
            let id = self.ids[i];
            if id == EMPTY_SLOT {
                self.keys[i] = w;
                self.ids[i] = new_id;
                self.len += 1;
                return None;
            }
            if self.keys[i] == w {
                return Some(id);
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let mut bigger = GroupTable::with_capacity_pow2((self.mask + 1) * 2);
        for (i, &id) in self.ids.iter().enumerate() {
            if id != EMPTY_SLOT {
                let got = bigger.get_or_insert(self.keys[i], id);
                debug_assert!(got.is_none());
            }
        }
        *self = bigger;
    }

    /// Empties the table, keeping its capacity (one linear fill).
    fn clear(&mut self) {
        self.ids.fill(EMPTY_SLOT);
        self.len = 0;
    }
}

/// Reusable group-by buffers, owned by the tree so steady-state batches
/// allocate nothing.
#[derive(Debug, Clone)]
pub(crate) struct BatchScratch<V> {
    /// Packed voxel key → group id.
    pub(crate) group_of: GroupTable,
    /// Per group: `(morton, key)`.
    pub(crate) keys: Vec<(u64, VoxelKey)>,
    /// Per group: delta range start in `deltas` (built from counts).
    pub(crate) starts: Vec<u32>,
    /// Per group: scatter cursor during grouping, then range end.
    pub(crate) cursors: Vec<u32>,
    /// All deltas, grouped by key, per-key arrival order preserved
    /// (raw log-odds batches only; hit/miss batches use `bits`).
    pub(crate) deltas: Vec<V>,
    /// Bit-encoded hit/miss sequences, grouped like `deltas`. One byte
    /// per update instead of a log-odds value: the scatter pass is the
    /// batch engine's main cache-miss producer, so shrinking its element
    /// 4× is a measurable engine-row win.
    pub(crate) bits: Vec<u8>,
    /// Per update: its group id (avoids a second hash lookup in the
    /// scatter pass).
    pub(crate) ids: Vec<u32>,
    /// Group ids sorted by Morton code.
    pub(crate) order: Vec<u32>,
}

// Manual impl: the derived one would needlessly require `V: Default`.
impl<V> Default for BatchScratch<V> {
    fn default() -> Self {
        BatchScratch {
            group_of: GroupTable::default(),
            keys: Vec::new(),
            starts: Vec::new(),
            cursors: Vec::new(),
            deltas: Vec::new(),
            bits: Vec::new(),
            ids: Vec::new(),
            order: Vec::new(),
        }
    }
}

/// The receiving end of
/// [`apply_update_stream`](OccupancyOctree::apply_update_stream): a
/// concrete (monomorphizable) sink, so the streaming group-by inlines
/// into the emitter's hot loop — a `dyn FnMut` here would cost an
/// indirect call per update.
#[derive(Debug)]
pub struct UpdateSink<'a, V> {
    scratch: &'a mut BatchScratch<V>,
}

impl<V> UpdateSink<'_, V> {
    /// Feeds one hit/miss update into the streaming batch.
    ///
    /// # Panics
    ///
    /// Panics when the stream exceeds `u32::MAX / 2` updates.
    #[inline]
    pub fn push(&mut self, u: VoxelUpdate) {
        let scratch = &mut *self.scratch;
        assert!(
            scratch.ids.len() < (u32::MAX >> 1) as usize,
            "batch too large to index with u32"
        );
        let new_id = scratch.keys.len() as u32;
        let id = match scratch.group_of.get_or_insert(packed_key(u.key), new_id) {
            Some(existing) => existing,
            None => {
                scratch.keys.push((u.key.morton_code(), u.key));
                scratch.cursors.push(0);
                new_id
            }
        };
        scratch.cursors[id as usize] += 1;
        scratch.ids.push((id << 1) | u32::from(u.hit));
    }
}

/// How a batch's per-voxel sequences are stored and replayed.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DeltaMode<V> {
    /// Hit/miss observations, scattered as one byte per update and
    /// decoded against the resolved deltas at replay time.
    HitMiss {
        /// Log-odds delta of a hit.
        hit: V,
        /// Log-odds delta of a miss.
        miss: V,
    },
    /// Arbitrary log-odds deltas, scattered verbatim.
    Raw,
}

/// What one batch application did, beyond the shared
/// [`OpCounters`](crate::OpCounters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchStats {
    /// Updates in the batch.
    pub updates: u64,
    /// Distinct leaves located by descent (each may absorb many updates).
    pub unique_leaves: u64,
    /// Updates applied to an already-located leaf with no tree walk.
    pub coalesced: u64,
    /// Descent levels skipped thanks to the shared root-path prefix
    /// between consecutive Morton-sorted keys.
    pub reused_levels: u64,
    /// Descent levels actually walked.
    pub descended_levels: u64,
    /// Inner nodes finished (refreshed or pruned) by the deferred pass.
    /// The scalar path would have performed `updates × 16` finishes.
    pub deferred_finishes: u64,
}

impl BatchStats {
    /// Accumulates another batch's stats.
    pub fn merge(&mut self, other: &BatchStats) {
        self.updates += other.updates;
        self.unique_leaves += other.unique_leaves;
        self.coalesced += other.coalesced;
        self.reused_levels += other.reused_levels;
        self.descended_levels += other.descended_levels;
        self.deferred_finishes += other.deferred_finishes;
    }
}

impl<V: LogOdds> OccupancyOctree<V> {
    /// Applies a batch of hit/miss observations, producing the tree
    /// `update_key(key, hit)` would produce if called once per update in
    /// slice order — but with descent and parent maintenance amortized
    /// across the batch.
    ///
    /// # Examples
    ///
    /// ```
    /// use omu_geometry::VoxelKey;
    /// use omu_octree::OctreeF32;
    /// use omu_raycast::VoxelUpdate;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut tree = OctreeF32::new(0.1)?;
    /// let updates = vec![
    ///     VoxelUpdate { key: VoxelKey::ORIGIN, hit: true },
    ///     VoxelUpdate { key: VoxelKey::new(40000, 40000, 40000), hit: false },
    /// ];
    /// let stats = tree.apply_update_batch(&updates);
    /// assert_eq!(stats.updates, 2);
    /// assert!(tree.logodds(VoxelKey::ORIGIN).unwrap() > 0.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn apply_update_batch(&mut self, updates: &[VoxelUpdate]) -> BatchStats {
        let hit = self.resolved.hit;
        let miss = self.resolved.miss;
        self.apply_batch_with(
            updates,
            |u| u.key,
            |u| u8::from(u.hit),
            |_| V::ZERO,
            DeltaMode::HitMiss { hit, miss },
            None,
        )
        // omu-lint: allow(no-panic) — infallible: `shards: None` selects
        // the sequential walk, which spawns no workers and so cannot
        // report a `TaskPanic`.
        .expect("the sequential walk spawns no workers")
    }

    /// [`apply_update_batch`](Self::apply_update_batch) with the tree walk
    /// fanned out over up to `shards` pool workers, one first-level branch
    /// subtree (arena shard) owned per task — the software mirror of the
    /// paper's per-PE T-Mem banks. `0` resolves to one shard per
    /// available CPU. The resulting tree is bit-identical to the scalar
    /// and sequential-batched paths.
    ///
    /// # Panics
    ///
    /// Panics if a pool worker panics while applying a branch (the tree
    /// stays structurally valid; see
    /// [`try_apply_update_batch_parallel`](Self::try_apply_update_batch_parallel)
    /// for the non-panicking form).
    pub fn apply_update_batch_parallel(
        &mut self,
        updates: &[VoxelUpdate],
        shards: usize,
    ) -> BatchStats {
        self.try_apply_update_batch_parallel(updates, shards)
            // omu-lint: allow(no-panic) — documented `# Panics`
            // contract: this wrapper re-raises worker panics; the `try_`
            // form returns the typed `TaskPanic` instead.
            .unwrap_or_else(|p| panic!("{p}"))
    }

    /// [`apply_update_batch_parallel`](Self::apply_update_batch_parallel)
    /// reporting worker panics as a typed [`TaskPanic`] instead of
    /// unwinding.
    ///
    /// # Errors
    ///
    /// Returns [`TaskPanic`] when a branch task panicked. Every branch
    /// shard has been reattached and the root spine finished — the tree
    /// remains structurally valid (`debug_validate`-clean) and usable,
    /// though the failed batch may be partially applied.
    pub fn try_apply_update_batch_parallel(
        &mut self,
        updates: &[VoxelUpdate],
        shards: usize,
    ) -> Result<BatchStats, TaskPanic> {
        let hit = self.resolved.hit;
        let miss = self.resolved.miss;
        self.apply_batch_with(
            updates,
            |u| u.key,
            |u| u8::from(u.hit),
            |_| V::ZERO,
            DeltaMode::HitMiss { hit, miss },
            Some(shards),
        )
    }

    /// Applies a batch of raw log-odds deltas (the generic form of
    /// [`apply_update_batch`](Self::apply_update_batch)).
    pub fn apply_logodds_batch(&mut self, updates: &[(VoxelKey, V)]) -> BatchStats {
        self.apply_batch_with(
            updates,
            |&(key, _)| key,
            |_| 0,
            |&(_, delta)| delta,
            DeltaMode::Raw,
            None,
        )
        // omu-lint: allow(no-panic) — infallible: `shards: None` selects
        // the sequential walk, which spawns no workers and so cannot
        // report a `TaskPanic`.
        .expect("the sequential walk spawns no workers")
    }

    /// [`apply_logodds_batch`](Self::apply_logodds_batch) through the
    /// subtree-sharded parallel walk (see
    /// [`apply_update_batch_parallel`](Self::apply_update_batch_parallel)).
    ///
    /// # Panics
    ///
    /// Panics if a pool worker panics while applying a branch (see
    /// [`try_apply_logodds_batch_parallel`](Self::try_apply_logodds_batch_parallel)).
    pub fn apply_logodds_batch_parallel(
        &mut self,
        updates: &[(VoxelKey, V)],
        shards: usize,
    ) -> BatchStats {
        self.try_apply_logodds_batch_parallel(updates, shards)
            // omu-lint: allow(no-panic) — documented `# Panics`
            // contract: this wrapper re-raises worker panics; the `try_`
            // form returns the typed `TaskPanic` instead.
            .unwrap_or_else(|p| panic!("{p}"))
    }

    /// [`apply_logodds_batch_parallel`](Self::apply_logodds_batch_parallel)
    /// reporting worker panics as a typed [`TaskPanic`] instead of
    /// unwinding (same contract as
    /// [`try_apply_update_batch_parallel`](Self::try_apply_update_batch_parallel)).
    ///
    /// # Errors
    ///
    /// Returns [`TaskPanic`] when a branch task panicked; the tree stays
    /// structurally valid.
    pub fn try_apply_logodds_batch_parallel(
        &mut self,
        updates: &[(VoxelKey, V)],
        shards: usize,
    ) -> Result<BatchStats, TaskPanic> {
        self.apply_batch_with(
            updates,
            |&(key, _)| key,
            |_| 0,
            |&(_, delta)| delta,
            DeltaMode::Raw,
            Some(shards),
        )
    }

    /// The batch engine core: hashed group-by-key, Morton sort of the
    /// unique keys, then one cached-descent walk replaying each group's
    /// delta sequence with deferred finishing — sequential
    /// (`parallel_shards: None`) or subtree-sharded across threads.
    ///
    /// The accessors are split so each pass extracts exactly what it
    /// needs from the update stream: `key_of` feeds the group-by,
    /// `bit_of`/`delta_of` feed the mode's scatter (hit/miss batches
    /// scatter one byte per update without ever materializing a log-odds
    /// delta — on an 11M-update scan stream that is a full pass of
    /// avoided float selects and compares).
    fn apply_batch_with<T, K, B, D>(
        &mut self,
        updates: &[T],
        key_of: K,
        bit_of: B,
        delta_of: D,
        mode: DeltaMode<V>,
        parallel_shards: Option<usize>,
    ) -> Result<BatchStats, TaskPanic>
    where
        K: Fn(&T) -> VoxelKey,
        B: Fn(&T) -> u8,
        D: Fn(&T) -> V,
    {
        let mut stats = BatchStats {
            updates: updates.len() as u64,
            ..BatchStats::default()
        };
        if updates.is_empty() {
            return Ok(stats);
        }
        assert!(
            updates.len() <= u32::MAX as usize,
            "batch too large to index with u32"
        );

        // The scratch moves out of `self` for the duration of the walk so
        // tree mutation and scratch reads can borrow independently.
        let mut scratch = std::mem::take(&mut self.batch_scratch);
        scratch.group_of.clear();
        scratch.keys.clear();
        scratch.starts.clear();
        scratch.cursors.clear();
        scratch.order.clear();

        // Pass 1: group updates by key (insertion order numbers the
        // groups) and remember each update's group id.
        scratch.ids.clear();
        scratch.ids.reserve(updates.len());
        for u in updates {
            let key = key_of(u);
            let new_id = scratch.keys.len() as u32;
            let id = match scratch.group_of.get_or_insert(packed_key(key), new_id) {
                Some(existing) => existing,
                None => {
                    scratch.keys.push((key.morton_code(), key));
                    scratch.cursors.push(0);
                    new_id
                }
            };
            scratch.cursors[id as usize] += 1;
            scratch.ids.push(id);
        }

        // Turn counts into ranges: starts[g]..cursors[g] will delimit
        // group g's deltas once the scatter pass is done.
        let mut offset = 0u32;
        scratch.starts.reserve(scratch.keys.len());
        for cursor in &mut scratch.cursors {
            let count = *cursor;
            scratch.starts.push(offset);
            *cursor = offset;
            offset += count;
        }

        // Pass 2: scatter deltas into their group's range. Scan order is
        // preserved within each group, which keeps clamped additions
        // bit-identical to the scalar replay. Hit/miss batches scatter a
        // single byte per update (decoded at replay time), which is the
        // difference between a 4× larger and a 1× working set on the
        // engine's main cache-miss producer.
        match mode {
            DeltaMode::HitMiss { .. } => {
                scratch.bits.clear();
                scratch.bits.resize(updates.len(), 0);
                for (u, &id) in updates.iter().zip(&scratch.ids) {
                    let cursor = &mut scratch.cursors[id as usize];
                    scratch.bits[*cursor as usize] = bit_of(u);
                    *cursor += 1;
                }
            }
            DeltaMode::Raw => {
                scratch.deltas.clear();
                scratch.deltas.resize(updates.len(), V::ZERO);
                for (u, &id) in updates.iter().zip(&scratch.ids) {
                    let cursor = &mut scratch.cursors[id as usize];
                    scratch.deltas[*cursor as usize] = delta_of(u);
                    *cursor += 1;
                }
            }
        }

        self.finish_grouped_batch(scratch, mode, &mut stats, parallel_shards)?;
        Ok(stats)
    }

    /// The streaming form of [`apply_update_batch`](Self::apply_update_batch):
    /// `fill` is handed an [`UpdateSink`] and pushes hit/miss updates
    /// through it one at a time; the group-by pass runs as the stream
    /// arrives, so the update stream is never materialized. The per-update
    /// observation bit travels packed into the low bit of the group-id
    /// word, which is also what lets the scatter pass run without a
    /// second look at the stream. The resulting tree is bit-identical to
    /// collecting the same stream into a slice and calling
    /// `apply_update_batch`.
    ///
    /// Returns `fill`'s result alongside the batch statistics (an empty
    /// stream touches nothing and reports zero updates).
    ///
    /// # Panics
    ///
    /// Panics if a pool worker panics while applying a sharded batch (see
    /// [`try_apply_update_stream`](Self::try_apply_update_stream)).
    pub fn apply_update_stream<R>(
        &mut self,
        parallel_shards: Option<usize>,
        fill: impl FnOnce(&mut UpdateSink<'_, V>) -> R,
    ) -> (R, BatchStats) {
        self.try_apply_update_stream(parallel_shards, fill)
            // omu-lint: allow(no-panic) — documented `# Panics`
            // contract: this wrapper re-raises worker panics; the `try_`
            // form returns the typed `TaskPanic` instead.
            .unwrap_or_else(|p| panic!("{p}"))
    }

    /// [`apply_update_stream`](Self::apply_update_stream) reporting worker
    /// panics as a typed [`TaskPanic`] instead of unwinding.
    ///
    /// # Errors
    ///
    /// Returns [`TaskPanic`] when a pool task panicked during the sharded
    /// walk; the tree stays structurally valid (all shards reattached),
    /// though the batch may be partially applied and `fill`'s result is
    /// lost.
    pub fn try_apply_update_stream<R>(
        &mut self,
        parallel_shards: Option<usize>,
        fill: impl FnOnce(&mut UpdateSink<'_, V>) -> R,
    ) -> Result<(R, BatchStats), TaskPanic> {
        let hit = self.resolved.hit;
        let miss = self.resolved.miss;

        let mut scratch = std::mem::take(&mut self.batch_scratch);
        scratch.group_of.clear();
        scratch.keys.clear();
        scratch.starts.clear();
        scratch.cursors.clear();
        scratch.order.clear();
        scratch.ids.clear();

        // Pass 1, online: group updates by key as they stream in.
        let result = fill(&mut UpdateSink {
            scratch: &mut scratch,
        });

        let mut stats = BatchStats {
            updates: scratch.ids.len() as u64,
            ..BatchStats::default()
        };
        if scratch.ids.is_empty() {
            self.batch_scratch = scratch;
            return Ok((result, stats));
        }

        // Turn counts into ranges (see `apply_batch_with`).
        let mut offset = 0u32;
        scratch.starts.reserve(scratch.keys.len());
        for cursor in &mut scratch.cursors {
            let count = *cursor;
            scratch.starts.push(offset);
            *cursor = offset;
            offset += count;
        }

        // Scatter straight from the packed id words.
        scratch.bits.clear();
        scratch.bits.resize(scratch.ids.len(), 0);
        {
            let ids = &scratch.ids;
            let cursors = &mut scratch.cursors;
            let bits = &mut scratch.bits;
            for &packed in ids {
                let cursor = &mut cursors[(packed >> 1) as usize];
                bits[*cursor as usize] = (packed & 1) as u8;
                *cursor += 1;
            }
        }

        self.finish_grouped_batch(
            scratch,
            DeltaMode::HitMiss { hit, miss },
            &mut stats,
            parallel_shards,
        )?;
        Ok((result, stats))
    }

    /// Shared tail of the batched paths, from grouped-and-scattered
    /// scratch to finished tree: Morton sort of the unique keys, the
    /// cached-descent walk, and counter accounting.
    fn finish_grouped_batch(
        &mut self,
        mut scratch: BatchScratch<V>,
        mode: DeltaMode<V>,
        stats: &mut BatchStats,
        parallel_shards: Option<usize>,
    ) -> Result<(), TaskPanic> {
        // One atomic load: refresh the snapshot-pin state so this batch
        // copies rows only for snapshots still alive, and retired rows
        // whose pins died return to the free lists.
        self.arena.sync_pins();
        // Morton order over unique keys only (all distinct, so an
        // unstable sort is fine).
        scratch.order.extend(0..scratch.keys.len() as u32);
        scratch
            .order
            .sort_unstable_by_key(|&id| scratch.keys[id as usize].0);

        stats.unique_leaves = scratch.keys.len() as u64;
        stats.coalesced = stats.updates - stats.unique_leaves;

        let mut root_just_created = false;
        if self.root == NIL {
            self.root = self.arena.alloc_root(V::ZERO);
            self.counters.node_creations += 1;
            root_just_created = true;
        }

        let walked = match parallel_shards {
            None => {
                self.walk_sequential(&scratch, mode, stats, root_just_created);
                Ok(())
            }
            Some(shards) => self.walk_sharded(&scratch, mode, stats, root_just_created, shards),
        };

        // Scratch restore and counter accounting run even when a worker
        // panicked — the tree is structurally finished either way.
        self.batch_scratch = scratch;
        self.counters.batch_updates += stats.updates;
        self.counters.batch_coalesced += stats.coalesced;
        self.counters.batch_reused_levels += stats.reused_levels;
        self.counters.batch_deferred_finishes += stats.deferred_finishes;
        walked
    }

    /// The sequential cached-descent walk over the grouped, Morton-sorted
    /// batch.
    fn walk_sequential(
        &mut self,
        scratch: &BatchScratch<V>,
        mode: DeltaMode<V>,
        stats: &mut BatchStats,
        mut root_just_created: bool,
    ) {
        let root = self.root;
        let mut ctx = self.walk_ctx();

        // path[d] = node at depth d along the current key's root path.
        let mut path = [NIL; TREE_DEPTH as usize + 1];
        path[0] = root;
        let mut prev: Option<VoxelKey> = None;

        for &id in &scratch.order {
            let (_, key) = scratch.keys[id as usize];
            let resume_depth = match prev {
                None => 0,
                Some(prev_key) => {
                    let shared = prev_key.common_prefix_depth(key) as usize;
                    // The previous path's nodes below the shared prefix are
                    // finished for good: no later Morton-sorted key can
                    // re-enter those subtrees. Prune/refresh them now,
                    // bottom-up.
                    for d in ((shared + 1)..TREE_DEPTH as usize).rev() {
                        ctx.finish_node(path[d], d as u8);
                        stats.deferred_finishes += 1;
                    }
                    stats.reused_levels += shared as u64;
                    shared
                }
            };

            let mut node = path[resume_depth];
            let mut just_created = resume_depth == 0 && root_just_created;
            for depth in resume_depth..TREE_DEPTH as usize {
                let (child, created) = ctx.step_down(node, key, depth as u8, just_created);
                just_created = created;
                node = child;
                path[depth + 1] = node;
                stats.descended_levels += 1;
            }
            root_just_created = false;

            // Replay the group's whole delta sequence on the leaf in hand
            // (one leaf-row load and store for the whole sequence).
            let range = scratch.starts[id as usize] as usize..scratch.cursors[id as usize] as usize;
            match mode {
                DeltaMode::HitMiss { hit, miss } => {
                    ctx.apply_leaf_bits(node, key, &scratch.bits[range], hit, miss, just_created)
                }
                DeltaMode::Raw => {
                    ctx.apply_leaf_deltas(node, key, &scratch.deltas[range], just_created)
                }
            };
            prev = Some(key);
        }

        // Flush: finish the last path all the way to the root.
        for d in (0..TREE_DEPTH as usize).rev() {
            ctx.finish_node(path[d], d as u8);
            stats.deferred_finishes += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{OctreeF32, OctreeFixed};
    use omu_geometry::Occupancy;

    fn updates_cluster() -> Vec<VoxelUpdate> {
        // A mix of repeats, near neighbours and far jumps.
        let mut u = Vec::new();
        for i in 0..40u16 {
            u.push(VoxelUpdate {
                key: VoxelKey::new(33000 + i % 5, 33000 + (i * 3) % 7, 33000 + (i * 5) % 3),
                hit: i % 3 != 0,
            });
        }
        for i in 0..10u16 {
            u.push(VoxelUpdate {
                key: VoxelKey::new(100 + i, 60000, 20000 + i),
                hit: true,
            });
        }
        u
    }

    fn assert_batch_matches_scalar(updates: &[VoxelUpdate], pruning: bool) {
        let mut scalar = OctreeF32::new(0.1).unwrap();
        scalar.set_pruning_enabled(pruning);
        for u in updates {
            scalar.update_key(u.key, u.hit);
        }
        let mut batched = OctreeF32::new(0.1).unwrap();
        batched.set_pruning_enabled(pruning);
        batched.apply_update_batch(updates);
        assert_eq!(scalar.snapshot(), batched.snapshot(), "pruning={pruning}");
        assert_eq!(scalar.num_nodes(), batched.num_nodes());
    }

    #[test]
    fn batch_matches_scalar_with_and_without_pruning() {
        let u = updates_cluster();
        assert_batch_matches_scalar(&u, true);
        assert_batch_matches_scalar(&u, false);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut t = OctreeF32::new(0.1).unwrap();
        let stats = t.apply_update_batch(&[]);
        assert_eq!(stats, BatchStats::default());
        assert!(t.is_empty());
    }

    #[test]
    fn repeated_key_coalesces() {
        let mut t = OctreeF32::new(0.1).unwrap();
        let u = vec![
            VoxelUpdate {
                key: VoxelKey::ORIGIN,
                hit: true
            };
            8
        ];
        let stats = t.apply_update_batch(&u);
        assert_eq!(stats.updates, 8);
        assert_eq!(stats.unique_leaves, 1);
        assert_eq!(stats.coalesced, 7);
        assert_eq!(stats.descended_levels, 16, "one full descent only");
        // Saturation still clamps exactly like the scalar path.
        let mut s = OctreeF32::new(0.1).unwrap();
        for _ in 0..8 {
            s.update_key(VoxelKey::ORIGIN, true);
        }
        assert_eq!(s.snapshot(), t.snapshot());
    }

    #[test]
    fn neighbours_reuse_path_prefix() {
        let mut t = OctreeF32::new(0.1).unwrap();
        let u = vec![
            VoxelUpdate {
                key: VoxelKey::new(33000, 33000, 33000),
                hit: true,
            },
            VoxelUpdate {
                key: VoxelKey::new(33001, 33000, 33000),
                hit: true,
            },
        ];
        let stats = t.apply_update_batch(&u);
        // The siblings share 15 levels: 16 + 1 descent steps in total.
        assert_eq!(stats.reused_levels, 15);
        assert_eq!(stats.descended_levels, 17);
        // Deferred finishing touched the exited leaf-parent path once at
        // the swap (nothing: depth-15 parent is shared) plus the final
        // flush of 16 levels.
        assert_eq!(stats.deferred_finishes, 16);
    }

    #[test]
    fn deferred_pruning_collapses_saturated_octants() {
        // Saturate one whole finest octant within a single batch.
        let base = VoxelKey::new(33000, 33000, 33000);
        let mut u = Vec::new();
        for _round in 0..10 {
            for i in 0..8u16 {
                u.push(VoxelUpdate {
                    key: VoxelKey::new(
                        base.x + (i & 1),
                        base.y + ((i >> 1) & 1),
                        base.z + ((i >> 2) & 1),
                    ),
                    hit: true,
                });
            }
        }
        let mut t = OctreeF32::new(0.1).unwrap();
        t.apply_update_batch(&u);
        assert!(t.counters().prunes > 0);
        let (v, d) = t.search(base).unwrap();
        assert_eq!(d, TREE_DEPTH - 1, "octant pruned to depth 15");
        assert_eq!(v, t.params().clamp_max);
        // And the scalar path agrees bit-for-bit.
        let mut s = OctreeF32::new(0.1).unwrap();
        for up in &u {
            s.update_key(up.key, up.hit);
        }
        assert_eq!(s.snapshot(), t.snapshot());
    }

    #[test]
    fn batch_updates_inside_previously_pruned_leaf() {
        let base = VoxelKey::new(33000, 33000, 33000);
        let saturate: Vec<VoxelUpdate> = (0..80u16)
            .map(|i| VoxelUpdate {
                key: VoxelKey::new(
                    base.x + (i & 1),
                    base.y + ((i >> 1) & 1),
                    base.z + ((i >> 2) & 1),
                ),
                hit: true,
            })
            .collect();
        let mut t = OctreeF32::new(0.1).unwrap();
        t.apply_update_batch(&saturate);
        assert!(t.counters().prunes > 0);
        // A miss inside the pruned region must expand it again.
        let stats = t.apply_update_batch(&[VoxelUpdate {
            key: base,
            hit: false,
        }]);
        assert_eq!(stats.unique_leaves, 1);
        assert!(t.counters().expands > 0);
        let (_, d) = t.search(base).unwrap();
        assert_eq!(d, TREE_DEPTH);
        // Siblings keep the saturated value.
        let sib = VoxelKey::new(base.x + 1, base.y, base.z);
        assert_eq!(t.search(sib).unwrap().0, t.params().clamp_max);
    }

    #[test]
    fn logodds_batch_applies_raw_deltas() {
        let mut t = OctreeF32::new(0.1).unwrap();
        t.apply_logodds_batch(&[(VoxelKey::ORIGIN, 1.5f32), (VoxelKey::ORIGIN, -0.25)]);
        let (v, _) = t.search(VoxelKey::ORIGIN).unwrap();
        assert!((v - 1.25).abs() < 1e-6);
    }

    #[test]
    fn change_detection_matches_scalar() {
        let u = updates_cluster();
        let mut scalar = OctreeF32::new(0.1).unwrap();
        scalar.set_change_detection(true);
        for up in &u {
            scalar.update_key(up.key, up.hit);
        }
        let mut batched = OctreeF32::new(0.1).unwrap();
        batched.set_change_detection(true);
        batched.apply_update_batch(&u);
        let mut a: Vec<VoxelKey> = scalar.changed_keys().copied().collect();
        let mut b: Vec<VoxelKey> = batched.changed_keys().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn fixed_point_batch_matches_scalar() {
        let u = updates_cluster();
        let mut scalar = OctreeFixed::new(0.1).unwrap();
        for up in &u {
            scalar.update_key(up.key, up.hit);
        }
        let mut batched = OctreeFixed::new(0.1).unwrap();
        batched.apply_update_batch(&u);
        assert_eq!(scalar.snapshot(), batched.snapshot());
        assert_eq!(batched.occupancy(u[0].key), scalar.occupancy(u[0].key));
        assert_ne!(batched.occupancy(u[0].key), Occupancy::Unknown);
    }

    #[test]
    fn batch_counters_accumulate() {
        let mut t = OctreeF32::new(0.1).unwrap();
        t.apply_update_batch(&updates_cluster());
        let c = t.counters();
        assert_eq!(c.batch_updates, 50);
        assert!(c.batch_reused_levels > 0);
        assert!(c.batch_deferred_finishes > 0);
        // Deferring beats the scalar path's 16 finishes per update.
        assert!(c.batch_deferred_finishes < c.batch_updates * TREE_DEPTH as u64);
    }
}
