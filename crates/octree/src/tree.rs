//! The occupancy octree type, construction and basic accessors.

use std::sync::Arc;

use omu_geometry::{
    KeyConverter, KeyError, LogOdds, Occupancy, OccupancyParams, Point3, ResolutionError,
    ResolvedParams, VoxelKey, TREE_DEPTH,
};
use omu_pool::{PoolStats, WorkerPool};
use omu_raycast::{FrontEnd, IntegrationMode, ScanIntegrator, ScanPipeline, VoxelUpdate};
use rustc_hash::FxHashSet;

use crate::arena::{handle, Arena, NodeStore};
use crate::batch::BatchScratch;
use crate::counters::{OpCounters, QueryCounters};
use crate::node::NIL;
use crate::query_batch::QueryScratch;
use crate::snapshot::{Snapshot, SnapshotStats};
use crate::walk::WalkCtx;

/// A probabilistic occupancy octree with OctoMap semantics, generic over
/// the log-odds representation.
///
/// See the [crate-level documentation](crate) for the algorithm, and
/// [`OctreeF32`] / [`OctreeFixed`] for the two concrete instantiations.
#[derive(Debug, Clone)]
pub struct OccupancyOctree<V: LogOdds> {
    pub(crate) conv: KeyConverter,
    pub(crate) params: OccupancyParams,
    pub(crate) resolved: ResolvedParams<V>,
    pub(crate) arena: Arena<V>,
    pub(crate) root: u32,
    pub(crate) counters: OpCounters,
    pub(crate) early_abort_saturated: bool,
    pub(crate) pruning_enabled: bool,
    pub(crate) integration_mode: IntegrationMode,
    pub(crate) front_end: FrontEnd,
    pub(crate) max_range: Option<f64>,
    pub(crate) scratch_integrator: Option<ScanIntegrator>,
    pub(crate) scratch_pipeline: Option<ScanPipeline>,
    pub(crate) scratch_updates: Vec<VoxelUpdate>,
    pub(crate) batch_scratch: BatchScratch<V>,
    pub(crate) query_counters: QueryCounters,
    pub(crate) query_scratch: QueryScratch,
    // Fx instead of SipHash: change tracking inserts a structured key per
    // classification flip on the hottest path; see `rustc_hash`.
    pub(crate) changed: Option<FxHashSet<VoxelKey>>,
    /// Persistent workers behind every parallel engine path; created
    /// lazily on first parallel call, or injected (shared) by the map
    /// facade. Clones of the tree share the pool.
    pub(crate) worker_pool: Option<Arc<WorkerPool>>,
    /// How the sharded write path dispatches branch tasks (pooled by
    /// default; the legacy scoped-spawn form survives for benchmarks).
    pub(crate) parallel_dispatch: crate::shard::ParallelDispatch,
    /// Test hook: branch whose task panics inside the pooled fan-out.
    pub(crate) debug_panic_branch: Option<usize>,
}

/// The floating-point baseline tree (OctoMap's native representation).
pub type OctreeF32 = OccupancyOctree<f32>;

/// The tree running on the accelerator's 16-bit fixed-point log-odds.
///
/// Running the identical algorithm on [`FixedLogOdds`] produces maps that
/// are bit-identical to the OMU accelerator model, which is how the
/// reproduction verifies the hardware datapath.
///
/// [`FixedLogOdds`]: omu_geometry::FixedLogOdds
pub type OctreeFixed = OccupancyOctree<omu_geometry::FixedLogOdds>;

impl<V: LogOdds> OccupancyOctree<V> {
    /// Creates an empty tree with OctoMap's default sensor model.
    ///
    /// # Errors
    ///
    /// Returns [`ResolutionError`] if `resolution` is not positive and
    /// finite.
    pub fn new(resolution: f64) -> Result<Self, ResolutionError> {
        Self::with_params(resolution, OccupancyParams::default())
    }

    /// Creates an empty tree with explicit sensor-model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ResolutionError`] if `resolution` is not positive and
    /// finite.
    pub fn with_params(resolution: f64, params: OccupancyParams) -> Result<Self, ResolutionError> {
        let conv = KeyConverter::new(resolution)?;
        Ok(OccupancyOctree {
            conv,
            params,
            resolved: params.resolve::<V>(),
            arena: Arena::new(),
            root: NIL,
            counters: OpCounters::default(),
            early_abort_saturated: true,
            pruning_enabled: true,
            integration_mode: IntegrationMode::default(),
            front_end: FrontEnd::default(),
            max_range: None,
            scratch_integrator: None,
            scratch_pipeline: None,
            scratch_updates: Vec::new(),
            batch_scratch: BatchScratch::default(),
            query_counters: QueryCounters::default(),
            query_scratch: QueryScratch::default(),
            changed: None,
            worker_pool: None,
            parallel_dispatch: crate::shard::ParallelDispatch::default(),
            debug_panic_branch: None,
        })
    }

    /// Installs a shared [`WorkerPool`] for every parallel path on this
    /// tree (sharded batch apply, parallel queries, the scan front end).
    /// Without this, the tree creates its own pool on the first parallel
    /// call. The map facade uses it so read and write paths — and both
    /// backends of a mixed deployment — reuse one set of warmed workers.
    pub fn set_worker_pool(&mut self, pool: Arc<WorkerPool>) {
        // The cached pipeline holds a handle to the previous pool; drop
        // it so the next parallel insert picks up the shared one.
        self.scratch_pipeline = None;
        self.worker_pool = Some(pool);
    }

    /// The worker pool behind this tree's parallel paths, if one exists
    /// yet (none is created until the first parallel call).
    pub fn worker_pool(&self) -> Option<&Arc<WorkerPool>> {
        self.worker_pool.as_ref()
    }

    /// Pool counters for this tree's parallel paths ([`PoolStats`]), or
    /// `None` if no parallel path has run yet. `threads_spawned` staying
    /// flat across calls is the observable "zero per-call spawns"
    /// guarantee.
    pub fn pool_stats(&self) -> Option<PoolStats> {
        self.worker_pool.as_ref().map(|p| p.stats())
    }

    /// Get-or-create the tree's pool. Capacity covers both the 8 branch
    /// shards of the write path and a full-width ray-casting fan-out on
    /// hosts with more cores; workers spawn lazily, so the headroom is
    /// free until used.
    pub(crate) fn worker_pool_handle(&mut self) -> Arc<WorkerPool> {
        Arc::clone(self.worker_pool.get_or_insert_with(|| {
            let threads = crate::arena::NUM_BRANCHES
                .max(std::thread::available_parallelism().map_or(1, |n| n.get()));
            Arc::new(WorkerPool::new(threads))
        }))
    }

    /// Engages (or disarms, with `None`) the pool's deterministic
    /// task-order shuffle on this tree's parallel paths, creating the
    /// pool if none exists yet. A stress knob for the equivalence suite:
    /// the engines must produce bit-identical maps under *every*
    /// execution order, and a seeded shuffle flushes order-dependent
    /// bugs the default round-robin schedule would mask. See
    /// [`WorkerPool::set_shuffle_seed`].
    pub fn set_task_shuffle_seed(&mut self, seed: Option<u64>) {
        self.worker_pool_handle().set_shuffle_seed(seed);
    }

    /// Selects the dispatch mechanism for the sharded write path. Only
    /// the benches use the legacy scoped form, to keep an honest
    /// scoped-vs-pooled comparison in the recorded JSONs.
    #[doc(hidden)]
    pub fn set_parallel_dispatch(&mut self, dispatch: crate::shard::ParallelDispatch) {
        self.parallel_dispatch = dispatch;
    }

    /// Test hook: make the pooled branch task for `branch` panic, to
    /// exercise worker-panic propagation. `None` disarms it. Only fires
    /// on the pooled fan-out path (batches large enough to fan out).
    #[doc(hidden)]
    pub fn debug_inject_worker_panic(&mut self, branch: Option<usize>) {
        self.debug_panic_branch = branch;
    }

    /// The map resolution in metres.
    pub fn resolution(&self) -> f64 {
        self.conv.resolution()
    }

    /// The key/coordinate converter.
    pub fn converter(&self) -> &KeyConverter {
        &self.conv
    }

    /// The sensor-model parameters (as configured, in `f32` log-odds).
    pub fn params(&self) -> &OccupancyParams {
        &self.params
    }

    /// The parameters resolved into this tree's value representation.
    pub fn resolved_params(&self) -> &ResolvedParams<V> {
        &self.resolved
    }

    /// Cumulative operation counters (never reset implicitly).
    pub fn counters(&self) -> &OpCounters {
        &self.counters
    }

    /// Resets the operation counters to zero.
    pub fn reset_counters(&mut self) {
        self.counters.reset();
    }

    /// Cumulative read-side counters, fed by the cached-descent cursor
    /// and the batched query engine (see the `query_batch` module; the
    /// scalar [`Self::search`] path is uncounted, like OctoMap's).
    pub fn query_counters(&self) -> &QueryCounters {
        &self.query_counters
    }

    /// Resets the query counters to zero.
    pub fn reset_query_counters(&mut self) {
        self.query_counters.reset();
    }

    /// Removes and returns the accumulated query counters (the drain
    /// form used by the `omu-map` facade and the benches).
    pub fn take_query_counters(&mut self) -> QueryCounters {
        std::mem::take(&mut self.query_counters)
    }

    /// Enables or disables OctoMap's early-abort optimization, which skips
    /// updates to voxels whose covering leaf is already saturated in the
    /// update direction. Enabled by default. Map contents are identical
    /// either way; only the operation counts differ.
    pub fn set_early_abort_saturated(&mut self, enabled: bool) {
        self.early_abort_saturated = enabled;
    }

    /// Enables or disables pruning (enabled by default). Disabling is used
    /// by the memory experiments to quantify how much storage pruning
    /// saves (the paper cites up to 44 %).
    pub fn set_pruning_enabled(&mut self, enabled: bool) {
        self.pruning_enabled = enabled;
    }

    /// True when pruning is enabled.
    pub fn pruning_enabled(&self) -> bool {
        self.pruning_enabled
    }

    /// Sets the scan-integration overlap mode (default:
    /// [`IntegrationMode::Raywise`], the workload the paper counts).
    pub fn set_integration_mode(&mut self, mode: IntegrationMode) {
        self.integration_mode = mode;
        self.scratch_integrator = None;
        self.scratch_pipeline = None;
    }

    /// The scan-integration mode.
    pub fn integration_mode(&self) -> IntegrationMode {
        self.integration_mode
    }

    /// Sets the DDA front end scan integration runs through (default:
    /// [`FrontEnd::Packet`], the 8-lane lockstep walk). Both front ends
    /// produce bit-identical trees and counters; [`FrontEnd::Scalar`] is
    /// the reference implementation.
    pub fn set_front_end(&mut self, front_end: FrontEnd) {
        self.front_end = front_end;
        self.scratch_integrator = None;
        self.scratch_pipeline = None;
    }

    /// The DDA front end in use.
    pub fn front_end(&self) -> FrontEnd {
        self.front_end
    }

    /// Sets the maximum sensor range in metres (`None` = unlimited).
    pub fn set_max_range(&mut self, max_range: Option<f64>) {
        self.max_range = max_range;
        self.scratch_integrator = None;
        self.scratch_pipeline = None;
    }

    /// The configured maximum sensor range.
    pub fn max_range(&self) -> Option<f64> {
        self.max_range
    }

    /// Borrows the tree's mutable update state as a walk context over the
    /// whole-tree arena — the single place the scalar and batched paths
    /// get their descent/prune machinery from.
    pub(crate) fn walk_ctx(&mut self) -> WalkCtx<'_, Arena<V>, V, FxHashSet<VoxelKey>> {
        WalkCtx {
            store: &mut self.arena,
            resolved: self.resolved,
            pruning_enabled: self.pruning_enabled,
            counters: &mut self.counters,
            changed: self.changed.as_mut(),
        }
    }

    /// True when the tree contains no observation at all.
    pub fn is_empty(&self) -> bool {
        self.root == NIL
    }

    /// Number of live tree nodes (inner + leaf), counted in one sweep
    /// over the inner sibling rows (every node below the root is a
    /// mask-present slot of exactly one row, so the count is
    /// `1 + Σ popcount(child_mask)`).
    pub fn num_nodes(&self) -> usize {
        if self.root == NIL {
            return 0;
        }
        let mut count = 1usize;
        let mut stack = vec![(self.root, 0u8)];
        while let Some((node, depth)) = stack.pop() {
            let n = self.arena.node(node);
            if n.is_leaf() {
                continue;
            }
            count += n.child_count() as usize;
            if depth + 1 < TREE_DEPTH {
                let shard = self.arena.child_shard(node);
                let row = n.row();
                for pos in 0..8 {
                    if n.has_child(pos) {
                        stack.push((handle(shard, row, pos), depth + 1));
                    }
                }
            }
        }
        count
    }

    /// Exhaustively checks the sibling-row arena invariants (each inner
    /// node's `child_mask` is the single source of truth for its live
    /// children; rows are singly-referenced; free lists exactly
    /// complement reachable rows). Test support — panics on violation.
    #[doc(hidden)]
    pub fn debug_validate(&self) {
        self.arena.validate_reachable(self.root);
    }

    /// Searches for the node covering `key`, returning its log-odds value
    /// and the depth at which it was found (≤ 16; less than 16 for pruned
    /// leaves covering the key).
    ///
    /// Returns `None` when the voxel has never been observed.
    pub fn search(&self, key: VoxelKey) -> Option<(V, u8)> {
        self.search_at_depth(key, TREE_DEPTH)
    }

    /// Multi-resolution search: descends at most to `depth`.
    ///
    /// # Panics
    ///
    /// Panics if `depth > TREE_DEPTH`.
    pub fn search_at_depth(&self, key: VoxelKey, depth: u8) -> Option<(V, u8)> {
        assert!(depth <= TREE_DEPTH, "depth {depth} exceeds {TREE_DEPTH}");
        if self.root == NIL {
            return None;
        }
        let mut node = self.root;
        for d in 0..depth {
            let n = *self.arena.node(node);
            if n.is_leaf() {
                // A pruned (or coarse) leaf covers the whole subtree.
                return Some((n.value, d));
            }
            let pos = key.child_index_at(d).index();
            if !n.has_child(pos) {
                // The node has children, just not on this path: unobserved.
                return None;
            }
            // One dependent load per level: the child handle is pure
            // arithmetic on the node already in hand.
            node = handle(self.arena.child_shard(node), n.row(), pos);
        }
        // Reaching full depth means the walk stepped into a leaf row.
        let value = if depth == TREE_DEPTH {
            self.arena.leaf_value(node)
        } else {
            self.arena.node(node).value
        };
        Some((value, depth))
    }

    /// The log-odds value covering `key` as `f32`, if observed.
    pub fn logodds(&self, key: VoxelKey) -> Option<f32> {
        self.search(key).map(|(v, _)| v.to_f32())
    }

    /// Occupancy classification of the voxel at `key`.
    pub fn occupancy(&self, key: VoxelKey) -> Occupancy {
        match self.search(key) {
            Some((v, _)) => self.resolved.classify(v),
            None => Occupancy::Unknown,
        }
    }

    /// Occupancy classification of the voxel containing `point`.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] when the point is outside the addressable map.
    pub fn occupancy_at(&self, point: Point3) -> Result<Occupancy, KeyError> {
        Ok(self.occupancy(self.conv.coord_to_key(point)?))
    }

    /// Updates the voxel containing `point` with a hit (`true`) or miss
    /// (`false`) observation, returning the new log-odds as `f32`.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] when the point is outside the addressable map.
    pub fn update_point(&mut self, point: Point3, hit: bool) -> Result<f32, KeyError> {
        let key = self.conv.coord_to_key(point)?;
        Ok(self.update_key(key, hit).to_f32())
    }

    /// Removes all observations, keeping configuration and allocations.
    /// Pinned snapshots are unaffected: they keep their captured storage
    /// alive and continue serving the pre-clear map.
    pub fn clear(&mut self) {
        self.arena.clear();
        self.root = NIL;
        if let Some(changed) = &mut self.changed {
            changed.clear();
        }
    }

    /// Publishes an immutable, epoch-pinned [`Snapshot`] of the current
    /// map and advances the write epoch.
    ///
    /// The snapshot exposes the whole read surface — occupancy lookups,
    /// batched queries, ray casts, collision probes, leaf iteration —
    /// bit-identical to reading this tree at the publish instant, and it
    /// stays valid (and lock-free to read, from any number of threads)
    /// while this tree keeps mutating: the write path copies on first
    /// write any sibling row the snapshot still reads (see the `arena`
    /// module docs). Publishing is O(shards): it shares chunk tables by
    /// `Arc` and copies no rows itself.
    ///
    /// Dropping the last clone of the snapshot unpins its epoch; the
    /// next write entry then recycles whatever rows were copied out on
    /// its behalf.
    pub fn publish_snapshot(&mut self) -> Snapshot<V> {
        Snapshot::capture(
            &mut self.arena,
            self.root,
            self.conv,
            self.resolved,
            self.params,
        )
    }

    /// Snapshot/COW bookkeeping: current epoch, publish and pin counts,
    /// rows copied / retired / reclaimed by the copy-on-write machinery.
    pub fn snapshot_stats(&self) -> SnapshotStats {
        self.arena.snapshot_stats()
    }

    /// Re-reads the snapshot-pin state (one atomic load) and reclaims
    /// retired rows whose pins have died. Every write entry does this
    /// implicitly; exposed for deployments that want reclamation to run
    /// eagerly during write-idle stretches.
    pub fn sync_cow_state(&mut self) {
        self.arena.sync_pins();
    }

    /// Enables or disables change detection (disabled by default, like
    /// OctoMap's `enableChangeDetection`).
    ///
    /// While enabled, the tree records every voxel whose occupancy
    /// *classification* changed — newly observed voxels and
    /// occupied↔free flips — so incremental consumers (planners,
    /// renderers) can process only what moved since the last
    /// [`Self::reset_changed_keys`].
    pub fn set_change_detection(&mut self, enabled: bool) {
        if enabled {
            if self.changed.is_none() {
                self.changed = Some(FxHashSet::default());
            }
        } else {
            self.changed = None;
        }
    }

    /// True when change detection is enabled.
    pub fn change_detection_enabled(&self) -> bool {
        self.changed.is_some()
    }

    /// The voxels whose classification changed since tracking was enabled
    /// or last reset (empty when tracking is disabled).
    pub fn changed_keys(&self) -> impl Iterator<Item = &VoxelKey> {
        self.changed.iter().flatten()
    }

    /// Number of changed voxels currently recorded.
    pub fn num_changed_keys(&self) -> usize {
        self.changed.as_ref().map_or(0, |c| c.len())
    }

    /// Clears the changed-key set (OctoMap's `resetChangeDetection`).
    pub fn reset_changed_keys(&mut self) {
        if let Some(changed) = &mut self.changed {
            changed.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_tree_is_empty_and_unknown() {
        let t = OctreeF32::new(0.1).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.num_nodes(), 0);
        assert_eq!(t.occupancy(VoxelKey::ORIGIN), Occupancy::Unknown);
        assert!(t.search(VoxelKey::ORIGIN).is_none());
    }

    #[test]
    fn invalid_resolution_rejected() {
        assert!(OctreeF32::new(-1.0).is_err());
        assert!(OctreeF32::new(f64::NAN).is_err());
    }

    #[test]
    fn update_point_then_query() {
        let mut t = OctreeF32::new(0.1).unwrap();
        let p = Point3::new(0.5, 0.5, 0.5);
        let l = t.update_point(p, true).unwrap();
        assert!(l > 0.0);
        assert_eq!(t.occupancy_at(p).unwrap(), Occupancy::Occupied);
        assert!(!t.is_empty());
    }

    #[test]
    fn clear_resets_observations() {
        let mut t = OctreeF32::new(0.1).unwrap();
        t.update_point(Point3::ZERO, true).unwrap();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.occupancy(VoxelKey::ORIGIN), Occupancy::Unknown);
    }

    #[test]
    fn out_of_map_point_errors() {
        let mut t = OctreeF32::new(0.1).unwrap();
        let far = t.converter().map_half_extent() + 1.0;
        assert!(t.update_point(Point3::new(far, 0.0, 0.0), true).is_err());
        assert!(t.occupancy_at(Point3::new(far, 0.0, 0.0)).is_err());
    }

    #[test]
    fn search_at_depth_zero_returns_root() {
        let mut t = OctreeF32::new(0.1).unwrap();
        t.update_point(Point3::ZERO, true).unwrap();
        let (v, d) = t.search_at_depth(VoxelKey::ORIGIN, 0).unwrap();
        assert_eq!(d, 0);
        // Root holds the max over the tree: positive after a hit.
        assert!(v > 0.0);
    }
}
