//! Stream and file I/O for serialized octrees.
//!
//! Thin wrappers over the byte format of [`OccupancyOctree::to_bytes`] /
//! [`from_bytes`](OccupancyOctree::from_bytes) for `std::io` readers,
//! writers and paths — the map-persistence layer a robot stack needs
//! (save on shutdown, reload on boot, ship over a socket).

use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

use omu_geometry::LogOdds;

use crate::serialize::DeserializeError;
use crate::tree::OccupancyOctree;

/// An error from reading a serialized octree: I/O failure or malformed
/// content.
#[derive(Debug)]
pub enum ReadError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The bytes did not decode to a valid octree.
    Decode(DeserializeError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "i/o error reading octree: {e}"),
            ReadError::Decode(e) => write!(f, "invalid octree data: {e}"),
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Decode(e) => Some(e),
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

impl From<DeserializeError> for ReadError {
    fn from(e: DeserializeError) -> Self {
        ReadError::Decode(e)
    }
}

impl<V: LogOdds> OccupancyOctree<V> {
    /// Writes the serialized tree to `writer` (which may be a `&mut`
    /// reference, per the usual `io::Write` blanket impl).
    ///
    /// # Errors
    ///
    /// Returns any error of the underlying writer.
    pub fn write_to<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writer.write_all(&self.to_bytes())
    }

    /// Reads a serialized tree from `reader` (consumes to EOF).
    ///
    /// # Errors
    ///
    /// Returns [`ReadError`] on I/O failure or malformed content.
    pub fn read_from<R: Read>(mut reader: R) -> Result<Self, ReadError> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        Ok(Self::from_bytes(&bytes)?)
    }

    /// Saves the tree to a file, creating or truncating it.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error.
    pub fn save_to_file<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        fs::write(path, self.to_bytes())
    }

    /// Loads a tree from a file produced by [`Self::save_to_file`].
    ///
    /// # Errors
    ///
    /// Returns [`ReadError`] on I/O failure or malformed content.
    pub fn load_from_file<P: AsRef<Path>>(path: P) -> Result<Self, ReadError> {
        Ok(Self::from_bytes(&fs::read(path)?)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::OctreeF32;
    use omu_geometry::{Point3, PointCloud, Scan};

    fn mapped_tree() -> OctreeF32 {
        let mut t = OctreeF32::new(0.1).unwrap();
        let cloud: PointCloud = (0..60)
            .map(|i| {
                let a = i as f64 * 0.105;
                Point3::new(3.0 * a.cos(), 3.0 * a.sin(), 0.2)
            })
            .collect();
        t.insert_scan(&Scan::new(Point3::ZERO, cloud)).unwrap();
        t
    }

    #[test]
    fn roundtrip_through_io_cursor() {
        let t = mapped_tree();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let r = OctreeF32::read_from(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(r.snapshot(), t.snapshot());
    }

    #[test]
    fn roundtrip_through_file() {
        let t = mapped_tree();
        let path = std::env::temp_dir().join("omu_octree_io_test.omut");
        t.save_to_file(&path).unwrap();
        let r = OctreeF32::load_from_file(&path).unwrap();
        assert_eq!(r.snapshot(), t.snapshot());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_error() {
        let e = OctreeF32::load_from_file("/definitely/not/here.omut").unwrap_err();
        assert!(matches!(e, ReadError::Io(_)));
        assert!(e.to_string().contains("i/o error"));
    }

    #[test]
    fn garbage_stream_is_decode_error() {
        let e = OctreeF32::read_from(&b"not an octree"[..]).unwrap_err();
        assert!(matches!(e, ReadError::Decode(DeserializeError::BadMagic)));
    }
}
