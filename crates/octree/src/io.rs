//! Stream and file I/O for serialized octrees.
//!
//! Thin wrappers over the byte format of [`OccupancyOctree::to_bytes`] /
//! [`from_bytes`](OccupancyOctree::from_bytes) for `std::io` readers,
//! writers and paths — the map-persistence layer a robot stack needs
//! (save on shutdown, reload on boot, ship over a socket).

use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use omu_geometry::LogOdds;

use crate::serialize::DeserializeError;
use crate::tree::OccupancyOctree;

/// An error from reading a serialized octree: I/O failure or malformed
/// content.
///
/// When the read came from a file, the offending path is carried along
/// and printed in the `Display` output, so a failed map recovery names
/// the exact file that broke.
#[derive(Debug)]
pub enum ReadError {
    /// The underlying reader failed.
    Io {
        /// The file being read, when known (`None` for plain readers).
        path: Option<PathBuf>,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// The bytes did not decode to a valid octree.
    Decode {
        /// The file being read, when known (`None` for plain readers).
        path: Option<PathBuf>,
        /// The decode failure.
        source: DeserializeError,
    },
}

impl ReadError {
    /// Attaches `path` to a pathless error (used by the file loaders).
    fn with_path(self, path: &Path) -> Self {
        match self {
            ReadError::Io { source, .. } => ReadError::Io {
                path: Some(path.to_path_buf()),
                source,
            },
            ReadError::Decode { source, .. } => ReadError::Decode {
                path: Some(path.to_path_buf()),
                source,
            },
        }
    }

    /// The file the failed read came from, when known.
    pub fn path(&self) -> Option<&Path> {
        match self {
            ReadError::Io { path, .. } | ReadError::Decode { path, .. } => path.as_deref(),
        }
    }
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io {
                path: Some(p),
                source,
            } => write!(f, "i/o error reading octree from {}: {source}", p.display()),
            ReadError::Io { path: None, source } => {
                write!(f, "i/o error reading octree: {source}")
            }
            ReadError::Decode {
                path: Some(p),
                source,
            } => write!(f, "invalid octree data in {}: {source}", p.display()),
            ReadError::Decode { path: None, source } => {
                write!(f, "invalid octree data: {source}")
            }
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io { source, .. } => Some(source),
            ReadError::Decode { source, .. } => Some(source),
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(source: io::Error) -> Self {
        ReadError::Io { path: None, source }
    }
}

impl From<DeserializeError> for ReadError {
    fn from(source: DeserializeError) -> Self {
        ReadError::Decode { path: None, source }
    }
}

impl<V: LogOdds> OccupancyOctree<V> {
    /// Writes the serialized tree to `writer` (which may be a `&mut`
    /// reference, per the usual `io::Write` blanket impl).
    ///
    /// # Errors
    ///
    /// Returns any error of the underlying writer.
    pub fn write_to<W: Write>(&self, mut writer: W) -> io::Result<()> {
        writer.write_all(&self.to_bytes())
    }

    /// Reads a serialized tree from `reader` (consumes to EOF).
    ///
    /// # Errors
    ///
    /// Returns [`ReadError`] on I/O failure or malformed content.
    pub fn read_from<R: Read>(mut reader: R) -> Result<Self, ReadError> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        Ok(Self::from_bytes(&bytes)?)
    }

    /// Saves the tree to a file, creating or truncating it.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error.
    pub fn save_to_file<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        // omu-lint: allow(fs-confinement) — documented convenience export
        // with no crash-safety promise; checkpoints go through DurableDir.
        fs::write(path, self.to_bytes())
    }

    /// Loads a tree from a file produced by [`Self::save_to_file`].
    ///
    /// # Errors
    ///
    /// Returns [`ReadError`] on I/O failure or malformed content; the
    /// error names the offending path.
    pub fn load_from_file<P: AsRef<Path>>(path: P) -> Result<Self, ReadError> {
        let path = path.as_ref();
        let bytes = fs::read(path).map_err(|e| ReadError::from(e).with_path(path))?;
        Self::from_bytes(&bytes).map_err(|e| ReadError::from(e).with_path(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::OctreeF32;
    use omu_geometry::{Point3, PointCloud, Scan};

    fn mapped_tree() -> OctreeF32 {
        let mut t = OctreeF32::new(0.1).unwrap();
        let cloud: PointCloud = (0..60)
            .map(|i| {
                let a = i as f64 * 0.105;
                Point3::new(3.0 * a.cos(), 3.0 * a.sin(), 0.2)
            })
            .collect();
        t.insert_scan(&Scan::new(Point3::ZERO, cloud)).unwrap();
        t
    }

    #[test]
    fn roundtrip_through_io_cursor() {
        let t = mapped_tree();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let r = OctreeF32::read_from(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(r.snapshot(), t.snapshot());
    }

    #[test]
    fn roundtrip_through_file() {
        let t = mapped_tree();
        let path = std::env::temp_dir().join("omu_octree_io_test.omut");
        t.save_to_file(&path).unwrap();
        let r = OctreeF32::load_from_file(&path).unwrap();
        assert_eq!(r.snapshot(), t.snapshot());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_io_error_naming_the_path() {
        let e = OctreeF32::load_from_file("/definitely/not/here.omut").unwrap_err();
        assert!(matches!(e, ReadError::Io { .. }));
        assert_eq!(e.path(), Some(Path::new("/definitely/not/here.omut")));
        let msg = e.to_string();
        assert!(msg.contains("i/o error"), "{msg}");
        assert!(msg.contains("/definitely/not/here.omut"), "{msg}");
    }

    #[test]
    fn corrupt_file_is_decode_error_naming_the_path() {
        let path = std::env::temp_dir().join("omu_octree_io_corrupt_test.omut");
        std::fs::write(&path, b"not an octree").unwrap();
        let e = OctreeF32::load_from_file(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            e,
            ReadError::Decode {
                source: DeserializeError::BadMagic,
                ..
            }
        ));
        let msg = e.to_string();
        assert!(msg.contains("omu_octree_io_corrupt_test.omut"), "{msg}");
    }

    #[test]
    fn garbage_stream_is_decode_error() {
        let e = OctreeF32::read_from(&b"not an octree"[..]).unwrap_err();
        assert!(matches!(
            e,
            ReadError::Decode {
                path: None,
                source: DeserializeError::BadMagic,
            }
        ));
    }
}
