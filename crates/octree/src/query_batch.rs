//! The batched query engine: cached-descent cursors, Morton-coalesced
//! key batches and a sharded parallel read path — the read-side mirror
//! of the `batch` update module.
//!
//! The scalar query path ([`search`](OccupancyOctree::search)) pays a
//! full root-to-leaf descent per probe. Planner workloads probe in
//! streams whose consecutive keys are spatially adjacent — every DDA
//! step of a query ray, every voxel of a collision ball — and adjacent
//! keys share long root-path prefixes. A [`DescentCursor`] keeps the
//! node path of the previous probe and re-descends only from the deepest
//! common ancestor, so a ray's per-step probe cost drops from O(depth)
//! to amortized O(1):
//!
//! 1. [`DescentCursor`] — a read-only cursor over the tree holding the
//!    current root-to-leaf node path; [`DescentCursor::search`] resumes
//!    from the deepest level shared with the previous key (computed in
//!    one XOR via
//!    [`common_prefix_depth`](omu_geometry::VoxelKey::common_prefix_depth)).
//! 2. [`query_batch`](OccupancyOctree::query_batch) — sorts a key batch
//!    by Morton code (subtrees become contiguous runs, maximizing prefix
//!    reuse), coalesces duplicate keys, serves the sorted order through
//!    one cursor and permutes results back to input order.
//! 3. [`cast_rays`](OccupancyOctree::cast_rays) /
//!    [`query_batch_parallel`](OccupancyOctree::query_batch_parallel) —
//!    the parallel read path: `&self` queries are embarrassingly
//!    parallel, so batches are chunked across scoped threads, each with
//!    its own cursor, and per-thread [`QueryCounters`] merge after the
//!    join.
//!
//! Every path returns results **bit-identical** to probing the same keys
//! through the scalar [`search`](OccupancyOctree::search) — the cursor
//! reads the same arena nodes, it just skips re-reading the shared
//! prefix — which `tests/query_surface.rs` property-tests across
//! backends, pruning modes and shuffled input orders.

use omu_geometry::{KeyError, LogOdds, Occupancy, Point3, VoxelKey, TREE_DEPTH};
use omu_raycast::RayWalk;

use crate::arena::{handle, NodeStore};
use crate::counters::QueryCounters;
use crate::node::NIL;
use crate::query::{cast_ray_resuming, collides_sphere_with, RayCastResult};
use crate::shard::resolve_apply_shards;
use crate::tree::OccupancyOctree;

/// `path[d]` = node at depth `d`; the root lives at index 0 and a finest
/// leaf at index [`TREE_DEPTH`].
const PATH_LEN: usize = TREE_DEPTH as usize + 1;

/// Minimum batch size before [`OccupancyOctree::query_batch_parallel`]
/// spawns worker threads: below this, `thread::scope` spawn/join costs
/// more than serving the probes sequentially (point probes are ~100 ns
/// amortized), so the batch takes the sequential cursor sweep instead —
/// bit-identical results either way.
pub(crate) const PARALLEL_QUERY_MIN_KEYS: usize = 1024;

/// Minimum ray count before [`OccupancyOctree::cast_rays`] spawns worker
/// threads (rays are ~three orders of magnitude heavier than point
/// probes, so the spawn cost amortizes much sooner).
pub(crate) const PARALLEL_CAST_MIN_RAYS: usize = 32;

/// A read-only descent cursor that amortizes root-to-leaf walks across
/// consecutive probes.
///
/// The cursor caches the node path of the last probed key. A new probe
/// resumes from the deepest tree level its key shares with the previous
/// one, so spatially coherent probe streams (query-ray DDA steps,
/// collision-ball sweeps, Morton-sorted batches) descend O(1) levels per
/// probe instead of O([`TREE_DEPTH`]).
///
/// Results are bit-identical to [`OccupancyOctree::search`]: the cursor
/// reads the same arena, it only skips re-reading levels the previous
/// descent already resolved. The borrow of the tree guarantees the map
/// cannot change underneath the cached path.
///
/// # Examples
///
/// ```
/// use omu_geometry::{Point3, PointCloud, Scan, VoxelKey};
/// use omu_octree::OctreeF32;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut tree = OctreeF32::new(0.1)?;
/// tree.insert_scan(&Scan::new(
///     Point3::ZERO,
///     [Point3::new(1.0, 0.0, 0.0)].into_iter().collect::<PointCloud>(),
/// ))?;
/// let mut cursor = tree.query_cursor();
/// let a = cursor.search(VoxelKey::ORIGIN);
/// let b = cursor.search(VoxelKey::new(32769, 32768, 32768));
/// assert_eq!(a, tree.search(VoxelKey::ORIGIN));
/// assert_eq!(b, tree.search(VoxelKey::new(32769, 32768, 32768)));
/// assert!(cursor.counters().reused_levels > 0, "siblings share a prefix");
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DescentCursor<'t, V: LogOdds> {
    tree: &'t OccupancyOctree<V>,
    /// Cached node path of the previous key; entries `0..=depth` valid.
    path: [u32; PATH_LEN],
    /// Depth at which the previous descent stopped (deepest valid entry).
    depth: u8,
    prev: Option<VoxelKey>,
    /// Reusable DDA iterator: consecutive [`Self::cast_ray`] calls
    /// re-aim it ([`RayWalk::restart`]) instead of constructing per-ray
    /// iterator state.
    walk: Option<RayWalk>,
    counters: QueryCounters,
}

impl<'t, V: LogOdds> DescentCursor<'t, V> {
    pub(crate) fn new(tree: &'t OccupancyOctree<V>) -> Self {
        let mut path = [NIL; PATH_LEN];
        path[0] = tree.root;
        DescentCursor {
            tree,
            path,
            depth: 0,
            prev: None,
            walk: None,
            counters: QueryCounters::default(),
        }
    }

    /// Searches for the node covering `key` — same contract and result
    /// as [`OccupancyOctree::search`], with the descent resumed from the
    /// deepest level shared with the previously probed key.
    ///
    /// Each resumed level is one dependent load: the child's handle is
    /// arithmetic on the parent node already in hand (sibling-row
    /// layout), and presence is a mask test.
    pub fn search(&mut self, key: VoxelKey) -> Option<(V, u8)> {
        self.counters.probes += 1;
        if self.tree.root == NIL {
            return None;
        }
        let resume = match self.prev {
            Some(p) => p.common_prefix_depth(key).min(self.depth),
            None => 0,
        } as usize;
        self.counters.reused_levels += resume as u64;
        self.prev = Some(key);

        let mut node = self.path[resume];
        for d in resume..TREE_DEPTH as usize {
            let n = *self.tree.arena.node(node);
            if n.is_leaf() {
                // A pruned (or coarse) leaf covers the whole subtree.
                self.depth = d as u8;
                return Some((n.value, d as u8));
            }
            self.counters.node_visits += 1;
            let pos = key.child_index_at(d as u8).index();
            if !n.has_child(pos) {
                // The node has children, just not on this path.
                self.depth = d as u8;
                return None;
            }
            // One dependent load per level: the child handle is
            // arithmetic on the node already in hand.
            node = handle(self.tree.arena.child_shard(node), n.row(), pos);
            self.path[d + 1] = node;
        }
        // Completing the loop (or resuming at full depth) means `node`
        // is a depth-16 voxel living in a value-only leaf row.
        self.depth = TREE_DEPTH;
        Some((self.tree.arena.leaf_value(node), TREE_DEPTH))
    }

    /// Occupancy classification of the voxel at `key` (the cursor form
    /// of [`OccupancyOctree::occupancy`]).
    pub fn occupancy(&mut self, key: VoxelKey) -> Occupancy {
        match self.search(key) {
            Some((v, _)) => self.tree.resolved.classify(v),
            None => Occupancy::Unknown,
        }
    }

    /// Classification plus `f32` log-odds — the probe shape
    /// [`cast_ray_with`] consumes (the log-odds is only meaningful for
    /// occupied voxels).
    #[inline]
    fn probe(&mut self, key: VoxelKey) -> (Occupancy, f32) {
        match self.search(key) {
            Some((v, _)) => (self.tree.resolved.classify(v), v.to_f32()),
            None => (Occupancy::Unknown, 0.0),
        }
    }

    /// Casts a query ray through the cursor: every DDA step's probe
    /// resumes from the previous step's path, so adjacent steps (which
    /// share almost their whole root path) cost O(1) levels. Same
    /// contract and result as [`OccupancyOctree::cast_ray`].
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] when the origin is outside the map or the
    /// direction is degenerate.
    pub fn cast_ray(
        &mut self,
        origin: Point3,
        direction: Point3,
        max_range: f64,
        ignore_unknown: bool,
    ) -> Result<RayCastResult, KeyError> {
        self.counters.rays += 1;
        let conv = self.tree.conv;
        let mut walk = self.walk.take().unwrap_or_else(RayWalk::idle);
        let res = cast_ray_resuming(
            &conv,
            &mut walk,
            origin,
            direction,
            max_range,
            ignore_unknown,
            |key| self.probe(key),
        );
        self.walk = Some(walk);
        res
    }

    /// Sphere collision probe through the cursor (the grid sweep inside
    /// the ball probes adjacent voxels, which share long prefixes). Same
    /// contract and result as [`OccupancyOctree::collides_sphere`].
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] when the probe region leaves the map.
    pub fn collides_sphere(&mut self, center: Point3, radius: f64) -> Result<bool, KeyError> {
        let conv = self.tree.conv;
        collides_sphere_with(&conv, center, radius, |key| self.occupancy(key))
    }

    /// The read-side operation counters this cursor accumulated.
    pub fn counters(&self) -> &QueryCounters {
        &self.counters
    }

    /// Consumes the cursor, returning its counters (callers holding the
    /// tree mutably merge them into
    /// [`OccupancyOctree::query_counters`]).
    pub fn into_counters(self) -> QueryCounters {
        self.counters
    }
}

/// Reusable buffers for the batched query engine, owned by the tree so
/// steady-state batches allocate nothing.
#[derive(Debug, Clone, Default)]
pub(crate) struct QueryScratch {
    /// `(morton code, input index)`, sorted for the coalesced walk.
    order: Vec<(u64, u32)>,
    /// Results permuted back to input order.
    results: Vec<Occupancy>,
}

/// Serves `keys` through `probe` in Morton-sorted order with duplicate
/// coalescing — the batch scaffolding shared by the software engine
/// ([`OccupancyOctree::query_batch`]) and the accelerator's voxel query
/// unit (`OmuAccelerator::query_batch` in `omu-core`).
///
/// `order` is caller-owned scratch (cleared and refilled with sorted
/// `(morton code, input index)` pairs); `results[i]` receives the
/// classification of `keys[i]`. Identical Morton codes are identical
/// keys, so the sort makes duplicates adjacent and they coalesce onto
/// the previous result without probing — `on_duplicate` runs once per
/// coalesced key so callers can account the skipped work.
///
/// # Panics
///
/// Panics when `keys` holds more than `u32::MAX` entries (the scratch
/// indexes with `u32`) or `results` is shorter than `keys`.
pub fn serve_morton_coalesced(
    keys: &[VoxelKey],
    order: &mut Vec<(u64, u32)>,
    results: &mut [Occupancy],
    mut probe: impl FnMut(VoxelKey) -> Occupancy,
    mut on_duplicate: impl FnMut(),
) {
    assert!(
        keys.len() <= u32::MAX as usize,
        "batch too large to index with u32"
    );
    order.clear();
    order.extend(
        keys.iter()
            .enumerate()
            .map(|(i, k)| (k.morton_code(), i as u32)),
    );
    order.sort_unstable();
    let mut prev: Option<(u64, Occupancy)> = None;
    for &(code, idx) in order.iter() {
        let occ = match prev {
            Some((prev_code, occ)) if prev_code == code => {
                on_duplicate();
                occ
            }
            _ => probe(keys[idx as usize]),
        };
        prev = Some((code, occ));
        results[idx as usize] = occ;
    }
}

/// One cursor sweep of [`serve_morton_coalesced`] over a key chunk.
/// Returns the cursor's counters and the number of coalesced
/// duplicates.
fn serve_chunk<V: LogOdds>(
    tree: &OccupancyOctree<V>,
    keys: &[VoxelKey],
    order: &mut Vec<(u64, u32)>,
    results: &mut [Occupancy],
) -> (QueryCounters, u64) {
    let mut cursor = DescentCursor::new(tree);
    let mut coalesced = 0u64;
    serve_morton_coalesced(
        keys,
        order,
        results,
        |key| cursor.occupancy(key),
        || coalesced += 1,
    );
    (cursor.into_counters(), coalesced)
}

impl<V: LogOdds> OccupancyOctree<V> {
    /// Borrows the tree as a [`DescentCursor`] for a coherent probe
    /// stream. The cursor accumulates its own [`QueryCounters`]; the
    /// `&mut self` entry points ([`Self::query_batch`],
    /// [`Self::cast_ray_cached`], …) merge them into
    /// [`Self::query_counters`] automatically.
    pub fn query_cursor(&self) -> DescentCursor<'_, V> {
        DescentCursor::new(self)
    }

    /// Classifies a batch of voxel keys, returning the occupancies in
    /// input order (the slice lives in tree-owned scratch and is valid
    /// until the next batched query).
    ///
    /// The batch is sorted by Morton code so one [`DescentCursor`] walk
    /// serves it with maximal prefix reuse, duplicate keys coalesce onto
    /// a single descent, and the results are permuted back to input
    /// order. Output is bit-identical to calling
    /// [`occupancy`](Self::occupancy) per key, in any input order.
    ///
    /// # Examples
    ///
    /// ```
    /// use omu_geometry::{Occupancy, Point3, PointCloud, Scan, VoxelKey};
    /// use omu_octree::OctreeF32;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut tree = OctreeF32::new(0.1)?;
    /// tree.insert_scan(&Scan::new(
    ///     Point3::ZERO,
    ///     [Point3::new(1.0, 0.0, 0.0)].into_iter().collect::<PointCloud>(),
    /// ))?;
    /// let keys = [tree.converter().coord_to_key(Point3::new(1.0, 0.0, 0.0))?,
    ///             VoxelKey::new(100, 100, 100)];
    /// assert_eq!(tree.query_batch(&keys),
    ///            &[Occupancy::Occupied, Occupancy::Unknown]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn query_batch(&mut self, keys: &[VoxelKey]) -> &[Occupancy] {
        let mut scratch = std::mem::take(&mut self.query_scratch);
        scratch.results.clear();
        scratch.results.resize(keys.len(), Occupancy::Unknown);

        let (counters, coalesced) =
            serve_chunk(self, keys, &mut scratch.order, &mut scratch.results);
        self.query_counters.merge(&counters);
        self.query_counters.batch_queries += keys.len() as u64;
        self.query_counters.batch_coalesced += coalesced;
        self.query_scratch = scratch;
        &self.query_scratch.results
    }

    /// [`query_batch`](Self::query_batch) with the batch chunked across
    /// up to `shards` tasks on the tree's persistent
    /// [`WorkerPool`](omu_pool::WorkerPool) (`0` = one per available CPU,
    /// capped at 8, the same policy as the write-side engines). Each task
    /// Morton-sorts and serves its chunk through its own cursor —
    /// `&self` queries touch no shared mutable state, so the read path
    /// needs no arena changes at all. Results are bit-identical to the
    /// sequential path; per-task counters merge in chunk order.
    pub fn query_batch_parallel(&mut self, keys: &[VoxelKey], shards: usize) -> &[Occupancy] {
        let workers = resolve_apply_shards(shards).min(keys.len().max(1));
        if workers <= 1 || keys.len() < PARALLEL_QUERY_MIN_KEYS {
            return self.query_batch(keys);
        }
        let mut scratch = std::mem::take(&mut self.query_scratch);
        scratch.results.clear();
        scratch.results.resize(keys.len(), Occupancy::Unknown);

        let chunk = keys.len().div_ceil(workers);

        // Legacy spawn-per-call dispatch, kept behind the doc(hidden)
        // knob so the benches can record scoped-vs-pooled rows.
        if self.parallel_dispatch == crate::shard::ParallelDispatch::ScopedThreads {
            let tree = &*self;
            let mut merged = QueryCounters::default();
            // omu-lint: allow(thread-confinement) — the doc(hidden)
            // `ParallelDispatch::ScopedThreads` legacy path, kept so the
            // benches can measure scoped-vs-pooled dispatch.
            std::thread::scope(|s| {
                let handles: Vec<_> = keys
                    .chunks(chunk)
                    .zip(scratch.results.chunks_mut(chunk))
                    .map(|(keys_chunk, out_chunk)| {
                        s.spawn(move || {
                            let mut order = Vec::new();
                            let (mut c, coalesced) =
                                serve_chunk(tree, keys_chunk, &mut order, out_chunk);
                            c.batch_queries = keys_chunk.len() as u64;
                            c.batch_coalesced = coalesced;
                            c
                        })
                    })
                    .collect();
                for h in handles {
                    // omu-lint: allow(no-panic) — legacy bench-only
                    // path; re-raising a worker panic here matches the
                    // pooled path's `scope` contract.
                    merged.merge(&h.join().expect("query worker panicked"));
                }
            });
            self.query_counters.merge(&merged);
            self.query_scratch = scratch;
            return &self.query_scratch.results;
        }

        let pool = self.worker_pool_handle();
        let tree = &*self;
        let nchunks = keys.len().div_ceil(chunk);
        let mut slots: Vec<Option<QueryCounters>> = (0..nchunks).map(|_| None).collect();
        pool.scope(|s| {
            for (i, ((keys_chunk, out_chunk), slot)) in keys
                .chunks(chunk)
                .zip(scratch.results.chunks_mut(chunk))
                .zip(slots.iter_mut())
                .enumerate()
            {
                s.spawn_on(i, move || {
                    let mut order = Vec::new();
                    let (mut c, coalesced) = serve_chunk(tree, keys_chunk, &mut order, out_chunk);
                    c.batch_queries = keys_chunk.len() as u64;
                    c.batch_coalesced = coalesced;
                    *slot = Some(c);
                });
            }
        });
        let mut merged = QueryCounters::default();
        for slot in slots {
            // omu-lint: allow(no-panic) — invariant: `scope` returns only
            // after every spawned task ran, and each task fills its slot.
            merged.merge(&slot.expect("query chunk task completed"));
        }
        self.query_counters.merge(&merged);
        self.query_scratch = scratch;
        &self.query_scratch.results
    }

    /// [`cast_ray`](Self::cast_ray) through a [`DescentCursor`]:
    /// consecutive DDA steps re-descend only below the deepest common
    /// ancestor of adjacent voxels, making the per-step probe amortized
    /// O(1). The result is bit-identical to the per-probe path.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] when the origin is outside the map or the
    /// direction is degenerate.
    pub fn cast_ray_cached(
        &mut self,
        origin: Point3,
        direction: Point3,
        max_range: f64,
        ignore_unknown: bool,
    ) -> Result<RayCastResult, KeyError> {
        let (res, counters) = {
            let mut cursor = self.query_cursor();
            let res = cursor.cast_ray(origin, direction, max_range, ignore_unknown);
            (res, cursor.into_counters())
        };
        self.query_counters.merge(&counters);
        res
    }

    /// Casts a batch of query rays (`(origin, direction)` pairs), each
    /// through a cached-descent cursor, chunked across up to `shards`
    /// threads (`0` = one per available CPU, capped at 8;
    /// `1` = sequential). Results are in input order and bit-identical
    /// to casting each ray through [`cast_ray`](Self::cast_ray).
    ///
    /// # Errors
    ///
    /// Returns the first [`KeyError`] (in input order) when a ray's
    /// origin is outside the map or its direction is degenerate.
    pub fn cast_rays(
        &mut self,
        rays: &[(Point3, Point3)],
        max_range: f64,
        ignore_unknown: bool,
        shards: usize,
    ) -> Result<Vec<RayCastResult>, KeyError> {
        let workers = resolve_apply_shards(shards).min(rays.len().max(1));
        if workers <= 1 || rays.len() < PARALLEL_CAST_MIN_RAYS {
            let (res, counters) = {
                let mut cursor = self.query_cursor();
                let res = rays
                    .iter()
                    .map(|&(o, d)| cursor.cast_ray(o, d, max_range, ignore_unknown))
                    .collect::<Result<Vec<_>, _>>();
                (res, cursor.into_counters())
            };
            self.query_counters.merge(&counters);
            return res;
        }

        let chunk = rays.len().div_ceil(workers);

        // Legacy spawn-per-call dispatch (see `query_batch_parallel`).
        if self.parallel_dispatch == crate::shard::ParallelDispatch::ScopedThreads {
            let tree = &*self;
            let mut merged = QueryCounters::default();
            let mut chunks_out: Vec<Result<Vec<RayCastResult>, KeyError>> = Vec::new();
            // omu-lint: allow(thread-confinement) — the doc(hidden)
            // `ParallelDispatch::ScopedThreads` legacy path, kept so the
            // benches can measure scoped-vs-pooled dispatch.
            std::thread::scope(|s| {
                let handles: Vec<_> = rays
                    .chunks(chunk)
                    .map(|rays_chunk| {
                        s.spawn(move || {
                            let mut cursor = DescentCursor::new(tree);
                            let res = rays_chunk
                                .iter()
                                .map(|&(o, d)| cursor.cast_ray(o, d, max_range, ignore_unknown))
                                .collect::<Result<Vec<_>, _>>();
                            (res, cursor.into_counters())
                        })
                    })
                    .collect();
                for h in handles {
                    // omu-lint: allow(no-panic) — legacy bench-only
                    // path; re-raising a worker panic here matches the
                    // pooled path's `scope` contract.
                    let (res, counters) = h.join().expect("cast_rays worker panicked");
                    merged.merge(&counters);
                    chunks_out.push(res);
                }
            });
            self.query_counters.merge(&merged);
            let mut out = Vec::with_capacity(rays.len());
            for chunk_res in chunks_out {
                out.extend(chunk_res?);
            }
            return Ok(out);
        }

        let pool = self.worker_pool_handle();
        let tree = &*self;
        let nchunks = rays.len().div_ceil(chunk);
        type CastSlot = Option<(Result<Vec<RayCastResult>, KeyError>, QueryCounters)>;
        let mut slots: Vec<CastSlot> = (0..nchunks).map(|_| None).collect();
        pool.scope(|s| {
            for (i, (rays_chunk, slot)) in rays.chunks(chunk).zip(slots.iter_mut()).enumerate() {
                s.spawn_on(i, move || {
                    let mut cursor = DescentCursor::new(tree);
                    let res = rays_chunk
                        .iter()
                        .map(|&(o, d)| cursor.cast_ray(o, d, max_range, ignore_unknown))
                        .collect::<Result<Vec<_>, _>>();
                    *slot = Some((res, cursor.into_counters()));
                });
            }
        });
        let mut merged = QueryCounters::default();
        let mut out = Vec::with_capacity(rays.len());
        let mut first_err = None;
        for slot in slots {
            // omu-lint: allow(no-panic) — invariant: `scope` returns only
            // after every spawned task ran, and each task fills its slot.
            let (res, counters) = slot.expect("cast_rays chunk task completed");
            merged.merge(&counters);
            match res {
                Ok(results) if first_err.is_none() => out.extend(results),
                Ok(_) => {}
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        self.query_counters.merge(&merged);
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// [`collides_sphere`](Self::collides_sphere) through a cursor: the
    /// grid sweep inside the ball probes adjacent voxels, so the cursor
    /// amortizes their shared prefixes. Bit-identical result.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] when the probe region leaves the map.
    pub fn collides_sphere_cached(
        &mut self,
        center: Point3,
        radius: f64,
    ) -> Result<bool, KeyError> {
        let (res, counters) = {
            let mut cursor = self.query_cursor();
            let res = cursor.collides_sphere(center, radius);
            (res, cursor.into_counters())
        };
        self.query_counters.merge(&counters);
        res
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::OctreeF32;
    use omu_geometry::{PointCloud, Scan};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn mapped_tree(pruning: bool) -> OctreeF32 {
        let mut t = OctreeF32::new(0.1).unwrap();
        t.set_pruning_enabled(pruning);
        let mut cloud = PointCloud::new();
        for i in 0..64 {
            let a = i as f64 * 0.098;
            cloud.push(Point3::new(
                2.0 * a.cos(),
                2.0 * a.sin(),
                ((i % 8) as f64 - 4.0) * 0.2,
            ));
        }
        t.insert_scan(&Scan::new(Point3::new(0.01, 0.01, 0.01), cloud))
            .unwrap();
        t
    }

    fn random_keys(n: usize, seed: u64) -> Vec<VoxelKey> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                VoxelKey::new(
                    rng.random_range(32700..32850),
                    rng.random_range(32700..32850),
                    rng.random_range(32700..32850),
                )
            })
            .collect()
    }

    #[test]
    fn cursor_matches_scalar_search_on_probe_streams() {
        for pruning in [true, false] {
            let t = mapped_tree(pruning);
            let keys = random_keys(500, 7);
            let mut cursor = t.query_cursor();
            for &k in &keys {
                assert_eq!(cursor.search(k), t.search(k), "pruning={pruning} key={k}");
            }
            let c = cursor.counters();
            assert_eq!(c.probes, 500);
            assert!(c.reused_levels > 0, "random nearby keys share prefixes");
        }
    }

    #[test]
    fn cursor_on_empty_tree_is_unknown() {
        let t = OctreeF32::new(0.1).unwrap();
        let mut cursor = t.query_cursor();
        assert_eq!(cursor.search(VoxelKey::ORIGIN), None);
        assert_eq!(cursor.occupancy(VoxelKey::ORIGIN), Occupancy::Unknown);
        assert_eq!(cursor.counters().node_visits, 0);
    }

    #[test]
    fn query_batch_matches_per_key_in_input_order() {
        let mut t = mapped_tree(true);
        let mut keys = random_keys(300, 11);
        // Include exact duplicates to exercise coalescing.
        keys.extend_from_slice(&random_keys(50, 11));
        let expected: Vec<Occupancy> = keys.iter().map(|&k| t.occupancy(k)).collect();
        let got = t.query_batch(&keys).to_vec();
        assert_eq!(got, expected);
        let c = *t.query_counters();
        assert_eq!(c.batch_queries, 350);
        assert!(c.batch_coalesced >= 50, "duplicates must coalesce");
        assert!(c.prefix_reuse_rate() > 0.3, "Morton order reuses prefixes");
    }

    #[test]
    fn parallel_query_batch_is_bit_identical() {
        let mut t = mapped_tree(true);
        let keys = random_keys(400, 13);
        let sequential = t.query_batch(&keys).to_vec();
        for shards in [2, 4, 8] {
            let parallel = t.query_batch_parallel(&keys, shards).to_vec();
            assert_eq!(parallel, sequential, "shards={shards}");
        }
        // The parallel path still counts every probe.
        assert!(t.query_counters().batch_queries >= 400 * 4);
    }

    #[test]
    fn cached_cast_ray_matches_per_probe() {
        let mut t = mapped_tree(true);
        for i in 0..16 {
            let a = i as f64 * 0.39;
            let dir = Point3::new(a.cos(), a.sin(), 0.05);
            let origin = Point3::new(0.01, 0.01, 0.01);
            for ignore in [true, false] {
                let scalar = t.cast_ray(origin, dir, 5.0, ignore).unwrap();
                let cached = t.cast_ray_cached(origin, dir, 5.0, ignore).unwrap();
                assert_eq!(scalar, cached, "ray {i} ignore={ignore}");
            }
        }
        let c = *t.query_counters();
        assert_eq!(c.rays, 32);
        assert!(
            c.prefix_reuse_rate() > 0.7,
            "DDA steps share long prefixes: reuse = {:.2}",
            c.prefix_reuse_rate()
        );
    }

    #[test]
    fn cast_rays_matches_sequential_and_errors_in_order() {
        let mut t = mapped_tree(true);
        let rays: Vec<(Point3, Point3)> = (0..24)
            .map(|i| {
                let a = i as f64 * 0.26;
                (
                    Point3::new(0.01, 0.01, 0.01),
                    Point3::new(a.cos(), a.sin(), 0.1),
                )
            })
            .collect();
        let one_by_one: Vec<RayCastResult> = rays
            .iter()
            .map(|&(o, d)| t.cast_ray(o, d, 5.0, true).unwrap())
            .collect();
        for shards in [1, 2, 8] {
            let batch = t.cast_rays(&rays, 5.0, true, shards).unwrap();
            assert_eq!(batch, one_by_one, "shards={shards}");
        }
        // A degenerate direction errors on every path.
        let bad = vec![(Point3::ZERO, Point3::ZERO)];
        assert!(t.cast_rays(&bad, 5.0, true, 1).is_err());
        assert!(t.cast_rays(&bad, 5.0, true, 4).is_err());
    }

    #[test]
    fn cached_sphere_probe_matches_per_probe() {
        let mut t = mapped_tree(true);
        for (center, radius) in [
            (Point3::new(2.0, 0.0, 0.2), 0.3),
            (Point3::new(0.5, 0.5, 0.0), 0.2),
            (Point3::new(-1.4, 1.4, -0.4), 0.5),
        ] {
            let scalar = t.collides_sphere(center, radius).unwrap();
            let cached = t.collides_sphere_cached(center, radius).unwrap();
            assert_eq!(scalar, cached, "sphere at {center} r={radius}");
        }
        assert!(t.query_counters().probes > 0);
    }

    #[test]
    fn take_query_counters_drains() {
        let mut t = mapped_tree(true);
        t.query_batch(&random_keys(10, 3));
        let c = t.take_query_counters();
        assert_eq!(c.batch_queries, 10);
        assert_eq!(*t.query_counters(), QueryCounters::default());
    }

    #[test]
    fn empty_batches_are_noops() {
        let mut t = mapped_tree(true);
        assert!(t.query_batch(&[]).is_empty());
        assert!(t.query_batch_parallel(&[], 4).is_empty());
        assert!(t.cast_rays(&[], 5.0, true, 4).unwrap().is_empty());
        assert_eq!(t.query_counters().probes, 0);
    }
}
