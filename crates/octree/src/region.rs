//! Region queries: iterating the leaves inside an axis-aligned box.
//!
//! Collision detection and local planners only care about the map near the
//! robot; OctoMap serves this with `begin_leafs_bbx`. The iterator prunes
//! whole subtrees whose key range falls outside the query box, so the cost
//! scales with the region, not the map.

use omu_geometry::{Aabb, KeyError, LogOdds, Occupancy, VoxelKey, TREE_DEPTH};

use crate::arena::{handle, NodeStore};
use crate::iter::LeafInfo;
use crate::node::NIL;
use crate::tree::OccupancyOctree;

/// Depth-first iterator over leaves intersecting a key box. Created by
/// [`OccupancyOctree::iter_leaves_in_box`].
#[derive(Debug)]
pub struct LeafInBoxIter<'a, V: LogOdds> {
    tree: &'a OccupancyOctree<V>,
    min: VoxelKey,
    max: VoxelKey,
    stack: Vec<(u32, VoxelKey, u8)>,
}

impl<V: LogOdds> Iterator for LeafInBoxIter<'_, V> {
    type Item = LeafInfo;

    fn next(&mut self) -> Option<LeafInfo> {
        while let Some((node, key, depth)) = self.stack.pop() {
            // The node at `depth` spans `span` finest voxels per axis from
            // its anchor key.
            let span = 1u32 << (TREE_DEPTH - depth);
            let overlaps = |anchor: u16, lo: u16, hi: u16| {
                let a = anchor as u32;
                a <= hi as u32 && a + span > lo as u32
            };
            if !(overlaps(key.x, self.min.x, self.max.x)
                && overlaps(key.y, self.min.y, self.max.y)
                && overlaps(key.z, self.min.z, self.max.z))
            {
                continue;
            }
            // Depth-16 handles index value-only leaf rows.
            if depth == TREE_DEPTH {
                let v = self.tree.arena.leaf_value(node);
                return Some(LeafInfo {
                    key,
                    depth,
                    logodds: v.to_f32(),
                    occupancy: self.tree.resolved.classify(v),
                });
            }
            let n = self.tree.arena.node(node);
            if n.is_leaf() {
                return Some(LeafInfo {
                    key,
                    depth,
                    logodds: n.value.to_f32(),
                    occupancy: self.tree.resolved.classify(n.value),
                });
            }
            let bit = TREE_DEPTH - 1 - depth;
            // Child handles are arithmetic on the node in hand: resolve
            // the children's shard and row once for all 8.
            let shard = self.tree.arena.child_shard(node);
            let row = n.row();
            for pos in (0..8usize).rev() {
                if n.has_child(pos) {
                    let child_key = VoxelKey::new(
                        key.x | (((pos & 1) as u16) << bit),
                        key.y | ((((pos >> 1) & 1) as u16) << bit),
                        key.z | ((((pos >> 2) & 1) as u16) << bit),
                    );
                    self.stack
                        .push((handle(shard, row, pos), child_key, depth + 1));
                }
            }
        }
        None
    }
}

impl<V: LogOdds> OccupancyOctree<V> {
    /// Iterates the leaves whose regions intersect the key box
    /// `[min, max]` (inclusive, per axis).
    pub fn iter_leaves_in_box(&self, min: VoxelKey, max: VoxelKey) -> LeafInBoxIter<'_, V> {
        let mut stack = Vec::new();
        if self.root != NIL {
            stack.push((self.root, VoxelKey::new(0, 0, 0), 0u8));
        }
        LeafInBoxIter {
            tree: self,
            min,
            max,
            stack,
        }
    }

    /// Iterates the leaves intersecting a metric box.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] when a corner of the box is outside the map.
    pub fn iter_leaves_in_aabb(&self, aabb: &Aabb) -> Result<LeafInBoxIter<'_, V>, KeyError> {
        let min = self.conv.coord_to_key(aabb.min())?;
        let max = self.conv.coord_to_key(aabb.max())?;
        Ok(self.iter_leaves_in_box(min, max))
    }

    /// True when any voxel intersecting the metric box is occupied — the
    /// cheap axis-aligned collision primitive planners build on.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] when a corner of the box is outside the map.
    pub fn any_occupied_in_aabb(&self, aabb: &Aabb) -> Result<bool, KeyError> {
        Ok(self
            .iter_leaves_in_aabb(aabb)?
            .any(|l| l.occupancy == Occupancy::Occupied))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::OctreeF32;
    use omu_geometry::{Point3, PointCloud, Scan};

    fn mapped_tree() -> OctreeF32 {
        let mut t = OctreeF32::new(0.1).unwrap();
        let mut cloud = PointCloud::new();
        // A wall of points at x = 2.
        for y in -10..=10 {
            for z in -5..=5 {
                cloud.push(Point3::new(2.0, y as f64 * 0.1, z as f64 * 0.1));
            }
        }
        t.insert_scan(&Scan::new(Point3::ZERO, cloud)).unwrap();
        t
    }

    #[test]
    fn box_iteration_matches_filtered_full_iteration() {
        let t = mapped_tree();
        let aabb = Aabb::new(Point3::new(1.5, -0.5, -0.3), Point3::new(2.5, 0.5, 0.3));
        let in_box: Vec<_> = t
            .iter_leaves_in_aabb(&aabb)
            .unwrap()
            .map(|l| l.key)
            .collect();
        // Reference: filter the full iteration by geometric overlap.
        let min = t.converter().coord_to_key(aabb.min()).unwrap();
        let max = t.converter().coord_to_key(aabb.max()).unwrap();
        let expected: Vec<_> = t
            .iter_leaves()
            .filter(|l| {
                let span = 1u32 << (TREE_DEPTH - l.depth);
                let inside = |a: u16, lo: u16, hi: u16| {
                    (a as u32) <= hi as u32 && a as u32 + span > lo as u32
                };
                inside(l.key.x, min.x, max.x)
                    && inside(l.key.y, min.y, max.y)
                    && inside(l.key.z, min.z, max.z)
            })
            .map(|l| l.key)
            .collect();
        let mut got = in_box.clone();
        let mut want = expected.clone();
        got.sort();
        want.sort();
        assert_eq!(got, want);
        assert!(!got.is_empty(), "query box overlaps the wall");
    }

    #[test]
    fn collision_primitive_detects_wall() {
        let t = mapped_tree();
        let hit = Aabb::new(Point3::new(1.9, -0.2, -0.2), Point3::new(2.3, 0.2, 0.2));
        let miss = Aabb::new(Point3::new(0.5, -0.2, -0.2), Point3::new(1.0, 0.2, 0.2));
        assert!(t.any_occupied_in_aabb(&hit).unwrap());
        assert!(!t.any_occupied_in_aabb(&miss).unwrap());
    }

    #[test]
    fn empty_tree_yields_nothing() {
        let t = OctreeF32::new(0.1).unwrap();
        let aabb = Aabb::new(Point3::ZERO, Point3::splat(1.0));
        assert_eq!(t.iter_leaves_in_aabb(&aabb).unwrap().count(), 0);
    }

    #[test]
    fn out_of_map_box_is_an_error() {
        let t = mapped_tree();
        let far = t.converter().map_half_extent() + 5.0;
        let aabb = Aabb::new(Point3::ZERO, Point3::splat(far));
        assert!(t.iter_leaves_in_aabb(&aabb).is_err());
    }

    #[test]
    fn whole_map_box_equals_full_iteration() {
        let t = mapped_tree();
        let all = t.iter_leaves().count();
        let boxed = t
            .iter_leaves_in_box(
                VoxelKey::new(0, 0, 0),
                VoxelKey::new(u16::MAX, u16::MAX, u16::MAX),
            )
            .count();
        assert_eq!(all, boxed);
    }
}
