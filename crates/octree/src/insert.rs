//! Point-cloud insertion: OctoMap's `insertPointCloud` on top of the
//! ray-casting integrator, in scalar, batched and parallel-batched
//! flavours.

use omu_geometry::{KeyError, LogOdds, Point3, Scan};
use omu_pool::TaskPanic;
use omu_raycast::{IntegrationStats, ScanIntegrator, ScanPipeline};

use crate::tree::OccupancyOctree;

/// Why a `try_*` parallel insertion failed: either the scan itself was
/// unusable (bad origin), or a pool worker panicked while applying the
/// sharded batch.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParallelInsertError {
    /// The scan origin was outside the addressable map; nothing was
    /// applied.
    Key(KeyError),
    /// A worker panicked during the sharded batch apply. The tree stays
    /// structurally valid (every shard reattached), but the scan may be
    /// partially applied.
    WorkerPanic(TaskPanic),
}

impl std::fmt::Display for ParallelInsertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Key(e) => e.fmt(f),
            Self::WorkerPanic(p) => p.fmt(f),
        }
    }
}

impl std::error::Error for ParallelInsertError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Key(e) => Some(e),
            Self::WorkerPanic(p) => Some(p),
        }
    }
}

impl From<KeyError> for ParallelInsertError {
    fn from(e: KeyError) -> Self {
        Self::Key(e)
    }
}

impl From<TaskPanic> for ParallelInsertError {
    fn from(p: TaskPanic) -> Self {
        Self::WorkerPanic(p)
    }
}

impl<V: LogOdds> OccupancyOctree<V> {
    /// Integrates a full scan: every ray marks the cells it traverses as
    /// free and its endpoint as occupied, honouring the configured
    /// [`IntegrationMode`](omu_raycast::IntegrationMode) and maximum range.
    ///
    /// Returns the integration statistics for this scan; DDA steps are also
    /// accumulated into the tree's [`OpCounters`](crate::OpCounters).
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] when the scan origin is outside the addressable
    /// map. Out-of-map endpoints are skipped and counted in the returned
    /// statistics.
    ///
    /// # Examples
    ///
    /// ```
    /// use omu_geometry::{Occupancy, Point3, PointCloud, Scan};
    /// use omu_octree::OctreeF32;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut tree = OctreeF32::new(0.1)?;
    /// let scan = Scan::new(
    ///     Point3::ZERO,
    ///     [Point3::new(1.0, 0.0, 0.0)].into_iter().collect::<PointCloud>(),
    /// );
    /// tree.insert_scan(&scan)?;
    /// assert_eq!(tree.occupancy_at(Point3::new(1.0, 0.0, 0.0))?, Occupancy::Occupied);
    /// assert_eq!(tree.occupancy_at(Point3::new(0.5, 0.0, 0.0))?, Occupancy::Free);
    /// # Ok(())
    /// # }
    /// ```
    pub fn insert_scan(&mut self, scan: &Scan) -> Result<IntegrationStats, KeyError> {
        // The integrator is kept outside `self` during the closure so the
        // tree can be mutated per update.
        let mut integrator = self.take_scratch_integrator();

        let result = integrator.integrate(scan, |u| {
            self.update_key(u.key, u.hit);
        });
        self.scratch_integrator = Some(integrator);

        let stats = result?;
        self.counters.dda_steps += stats.dda_steps;
        Ok(stats)
    }

    /// Reuses the cached sequential integrator when its configuration
    /// still matches the tree's, building a fresh one otherwise — the
    /// single place the cache-validity condition lives.
    fn take_scratch_integrator(&mut self) -> ScanIntegrator {
        match self.scratch_integrator.take() {
            Some(i)
                if i.mode() == self.integration_mode
                    && i.max_range() == self.max_range
                    && i.front_end() == self.front_end =>
            {
                i
            }
            _ => ScanIntegrator::with_front_end(
                self.conv,
                self.max_range,
                self.integration_mode,
                self.front_end,
            ),
        }
    }

    /// Shared tail of the batched insertion paths: apply the collected
    /// updates through the batch engine (sequential, or subtree-sharded
    /// over `apply_shards` threads), hand the scratch buffer back, and
    /// account DDA steps.
    fn finish_batched_insert(
        &mut self,
        result: Result<IntegrationStats, KeyError>,
        updates: Vec<omu_raycast::VoxelUpdate>,
        apply_shards: Option<usize>,
    ) -> Result<IntegrationStats, ParallelInsertError> {
        match result {
            Ok(stats) => {
                let applied = match apply_shards {
                    None => {
                        self.apply_update_batch(&updates);
                        Ok(())
                    }
                    Some(shards) => self
                        .try_apply_update_batch_parallel(&updates, shards)
                        .map(|_| ()),
                };
                self.scratch_updates = updates;
                applied?;
                self.counters.dda_steps += stats.dda_steps;
                Ok(stats)
            }
            Err(e) => {
                // Keep the buffer's capacity even on a bad-origin scan.
                self.scratch_updates = updates;
                Err(e.into())
            }
        }
    }

    /// Integrates a full scan through the batched update engine: ray
    /// casting emits one update batch which is applied Morton-sorted with
    /// cached descent and deferred parent refresh (see the batch module).
    ///
    /// The resulting map is bit-identical to [`Self::insert_scan`]; only
    /// the amount of tree-maintenance work differs.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::insert_scan`].
    pub fn insert_scan_batched(&mut self, scan: &Scan) -> Result<IntegrationStats, KeyError> {
        let mut integrator = self.take_scratch_integrator();

        // Stream the front end's emission straight into the batch
        // engine's group-by pass: the scan's update stream is never
        // materialized (a full write+read of ~8 bytes per update saved).
        let (result, _) =
            self.apply_update_stream(None, |sink| integrator.integrate(scan, |u| sink.push(u)));
        self.scratch_integrator = Some(integrator);

        let stats = result?;
        self.counters.dda_steps += stats.dda_steps;
        Ok(stats)
    }

    /// Integrates a full scan with ray casting fanned out over `threads`
    /// shards (`0` = one per available CPU) through the tree's persistent
    /// [`ScanPipeline`], and the merged update stream applied through the
    /// subtree-sharded parallel batch engine — the software mirror of the
    /// paper's PE × bank parallelism, end to end.
    ///
    /// In [`Raywise`](omu_raycast::IntegrationMode::Raywise) mode the
    /// resulting map is bit-identical to [`Self::insert_scan`]; in dedup
    /// mode it is identical up to the (semantically irrelevant) emission
    /// order of the per-scan key sets.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::insert_scan`].
    ///
    /// # Panics
    ///
    /// Panics if a pool worker panics during the sharded batch apply (see
    /// [`Self::try_insert_scan_parallel`] for the non-panicking form).
    pub fn insert_scan_parallel(
        &mut self,
        scan: &Scan,
        threads: usize,
    ) -> Result<IntegrationStats, KeyError> {
        self.insert_points_parallel(scan.origin, scan.cloud.points(), threads)
    }

    /// [`Self::insert_scan_parallel`] reporting pool-worker panics as a
    /// typed [`ParallelInsertError::WorkerPanic`] instead of unwinding.
    ///
    /// # Errors
    ///
    /// [`ParallelInsertError::Key`] when the scan origin is outside the
    /// map (nothing applied), [`ParallelInsertError::WorkerPanic`] when a
    /// worker panicked mid-apply (tree structurally valid, scan possibly
    /// partially applied).
    pub fn try_insert_scan_parallel(
        &mut self,
        scan: &Scan,
        threads: usize,
    ) -> Result<IntegrationStats, ParallelInsertError> {
        self.try_insert_points_parallel(scan.origin, scan.cloud.points(), threads)
    }

    /// The borrow-based form of [`Self::insert_scan_parallel`]: integrates
    /// one scan straight from its origin and point slice, with zero
    /// per-call point-cloud copies (the persistent pipeline owns every
    /// reusable buffer).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::insert_scan`].
    ///
    /// # Panics
    ///
    /// Panics if a pool worker panics during the sharded batch apply (see
    /// [`Self::try_insert_points_parallel`]).
    pub fn insert_points_parallel(
        &mut self,
        origin: Point3,
        points: &[Point3],
        threads: usize,
    ) -> Result<IntegrationStats, KeyError> {
        match self.try_insert_points_parallel(origin, points, threads) {
            Ok(stats) => Ok(stats),
            Err(ParallelInsertError::Key(e)) => Err(e),
            // omu-lint: allow(no-panic) — documented `# Panics` contract:
            // re-raises worker panics; `try_insert_points_parallel` is
            // the typed-error form.
            Err(ParallelInsertError::WorkerPanic(p)) => panic!("{p}"),
        }
    }

    /// [`Self::insert_points_parallel`] reporting pool-worker panics as a
    /// typed [`ParallelInsertError::WorkerPanic`] instead of unwinding
    /// (same contract as [`Self::try_insert_scan_parallel`]).
    ///
    /// # Errors
    ///
    /// See [`Self::try_insert_scan_parallel`].
    pub fn try_insert_points_parallel(
        &mut self,
        origin: Point3,
        points: &[Point3],
        threads: usize,
    ) -> Result<IntegrationStats, ParallelInsertError> {
        // Resolve `0 = per-CPU` before the cache check, so a cached
        // pipeline built with an explicit shard count is not silently
        // reused for an auto-sharded call (or vice versa).
        let shards = ScanPipeline::resolve_shards(threads);
        let mut pipeline = match self.scratch_pipeline.take() {
            Some(p)
                if p.mode() == self.integration_mode
                    && p.max_range() == self.max_range
                    && p.shards() == shards
                    && p.front_end() == self.front_end =>
            {
                p
            }
            _ => ScanPipeline::with_front_end(
                self.conv,
                self.max_range,
                self.integration_mode,
                shards,
                self.front_end,
            ),
        };

        // On the inline path (one shard, or a scan below the fan-out
        // threshold) there is no merge step, so the worker's emission can
        // stream straight into the batch engine like the sequential
        // batched path — the parallel engine then pays zero buffering
        // when parallelism would not help.
        if pipeline.mode() == omu_raycast::IntegrationMode::Raywise
            && pipeline.would_run_inline(points.len())
        {
            let (result, _) = self.apply_update_stream(None, |sink| {
                pipeline.integrate_inline(origin, points, |u| sink.push(u))
            });
            self.scratch_pipeline = Some(pipeline);
            let stats = result?;
            self.counters.dda_steps += stats.dda_steps;
            return Ok(stats);
        }

        // The fan-out path runs on the tree's persistent pool: share it
        // with the pipeline so ray casting and the sharded apply reuse
        // one set of workers.
        if pipeline.worker_pool().is_none() {
            pipeline.set_pool(self.worker_pool_handle());
        }

        let mut updates = std::mem::take(&mut self.scratch_updates);
        updates.clear();
        let result = pipeline.integrate_into(origin, points, &mut updates);
        self.scratch_pipeline = Some(pipeline);

        self.finish_batched_insert(result, updates, Some(threads))
    }
}

#[cfg(test)]
mod tests {
    use omu_geometry::{Occupancy, Point3, PointCloud, Scan};
    use omu_raycast::IntegrationMode;

    use crate::tree::OctreeF32;

    fn scan(origin: Point3, points: &[Point3]) -> Scan {
        Scan::new(origin, points.iter().copied().collect::<PointCloud>())
    }

    #[test]
    fn scan_marks_free_along_ray_and_occupied_at_end() {
        let mut t = OctreeF32::new(0.1).unwrap();
        let s = scan(Point3::ZERO, &[Point3::new(1.0, 0.0, 0.0)]);
        let stats = t.insert_scan(&s).unwrap();
        assert_eq!(stats.rays, 1);
        assert_eq!(stats.occupied_updates, 1);
        assert_eq!(
            t.occupancy_at(Point3::new(1.0, 0.0, 0.0)).unwrap(),
            Occupancy::Occupied
        );
        for i in 0..10 {
            let p = Point3::new(0.05 + 0.1 * i as f64, 0.0, 0.0);
            assert_eq!(
                t.occupancy_at(p).unwrap(),
                Occupancy::Free,
                "cell {i} on ray"
            );
        }
        // Beyond the endpoint stays unknown.
        assert_eq!(
            t.occupancy_at(Point3::new(1.5, 0.0, 0.0)).unwrap(),
            Occupancy::Unknown
        );
        assert_eq!(t.counters().dda_steps, stats.dda_steps);
    }

    #[test]
    fn dedup_and_raywise_agree_on_classification_for_disjoint_rays() {
        let points = [
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
            Point3::new(0.0, 0.0, 1.0),
        ];
        let mut a = OctreeF32::new(0.1).unwrap();
        a.set_integration_mode(IntegrationMode::Raywise);
        a.insert_scan(&scan(Point3::ZERO, &points)).unwrap();

        let mut b = OctreeF32::new(0.1).unwrap();
        b.set_integration_mode(IntegrationMode::DedupPerScan);
        b.insert_scan(&scan(Point3::ZERO, &points)).unwrap();

        for &p in &points {
            assert_eq!(a.occupancy_at(p).unwrap(), Occupancy::Occupied);
            assert_eq!(b.occupancy_at(p).unwrap(), Occupancy::Occupied);
        }
    }

    #[test]
    fn max_range_limits_observed_space() {
        let mut t = OctreeF32::new(0.1).unwrap();
        t.set_max_range(Some(1.0));
        let s = scan(Point3::ZERO, &[Point3::new(3.0, 0.0, 0.0)]);
        let stats = t.insert_scan(&s).unwrap();
        assert_eq!(stats.truncated_rays, 1);
        // The endpoint is beyond range: not occupied, not even observed.
        assert_eq!(
            t.occupancy_at(Point3::new(3.0, 0.0, 0.0)).unwrap(),
            Occupancy::Unknown
        );
        // Cells within range are free.
        assert_eq!(
            t.occupancy_at(Point3::new(0.5, 0.0, 0.0)).unwrap(),
            Occupancy::Free
        );
    }

    #[test]
    fn integrator_scratch_survives_reconfiguration() {
        let mut t = OctreeF32::new(0.1).unwrap();
        let s = scan(Point3::ZERO, &[Point3::new(0.5, 0.0, 0.0)]);
        t.insert_scan(&s).unwrap();
        t.set_max_range(Some(2.0));
        t.insert_scan(&s).unwrap();
        t.set_integration_mode(IntegrationMode::DedupPerScan);
        t.insert_scan(&s).unwrap();
        assert_eq!(
            t.occupancy_at(Point3::new(0.5, 0.0, 0.0)).unwrap(),
            Occupancy::Occupied
        );
    }

    #[test]
    fn batched_and_parallel_insertion_match_scalar_bitwise() {
        let points: Vec<Point3> = (0..48)
            .map(|i| {
                let a = i as f64 * 0.131;
                Point3::new(2.5 * a.cos(), 2.5 * a.sin(), ((i % 7) as f64 - 3.0) * 0.2)
            })
            .collect();
        let scans: Vec<Scan> = (0..3)
            .map(|i| scan(Point3::new(0.01 * i as f64, 0.02, 0.01), &points))
            .collect();

        let mut scalar = OctreeF32::new(0.1).unwrap();
        let mut batched = OctreeF32::new(0.1).unwrap();
        let mut parallel = OctreeF32::new(0.1).unwrap();
        for s in &scans {
            let a = scalar.insert_scan(s).unwrap();
            let b = batched.insert_scan_batched(s).unwrap();
            let c = parallel.insert_scan_parallel(s, 3).unwrap();
            assert_eq!(a, b);
            assert_eq!(a, c);
        }
        assert_eq!(scalar.snapshot(), batched.snapshot());
        assert_eq!(scalar.snapshot(), parallel.snapshot());
        assert_eq!(scalar.counters().dda_steps, batched.counters().dda_steps);
        assert_eq!(scalar.counters().dda_steps, parallel.counters().dda_steps);
        assert!(batched.counters().batch_updates > 0);
    }

    #[test]
    fn batched_insertion_matches_scalar_in_dedup_mode() {
        let points = [
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(1.0, 0.1, 0.0),
            Point3::new(0.35, 0.0, 0.0),
        ];
        let mut scalar = OctreeF32::new(0.1).unwrap();
        scalar.set_integration_mode(IntegrationMode::DedupPerScan);
        scalar.insert_scan(&scan(Point3::ZERO, &points)).unwrap();

        let mut batched = OctreeF32::new(0.1).unwrap();
        batched.set_integration_mode(IntegrationMode::DedupPerScan);
        batched
            .insert_scan_batched(&scan(Point3::ZERO, &points))
            .unwrap();

        let mut parallel = OctreeF32::new(0.1).unwrap();
        parallel.set_integration_mode(IntegrationMode::DedupPerScan);
        parallel
            .insert_scan_parallel(&scan(Point3::ZERO, &points), 2)
            .unwrap();

        assert_eq!(scalar.snapshot(), batched.snapshot());
        assert_eq!(scalar.snapshot(), parallel.snapshot());
    }

    #[test]
    fn front_end_switch_is_not_cached_stale() {
        use omu_raycast::FrontEnd;
        let mut t = OctreeF32::new(0.1).unwrap();
        let s = scan(Point3::ZERO, &[Point3::new(0.5, 0.0, 0.0)]);
        t.insert_scan_batched(&s).unwrap();
        assert_eq!(
            t.scratch_integrator.as_ref().unwrap().front_end(),
            FrontEnd::Packet
        );
        t.set_front_end(FrontEnd::Scalar);
        t.insert_scan_batched(&s).unwrap();
        assert_eq!(
            t.scratch_integrator.as_ref().unwrap().front_end(),
            FrontEnd::Scalar
        );
        t.insert_scan_parallel(&s, 2).unwrap();
        assert_eq!(
            t.scratch_pipeline.as_ref().unwrap().front_end(),
            FrontEnd::Scalar
        );
    }

    #[test]
    fn front_end_choice_is_bit_identical() {
        use omu_raycast::FrontEnd;
        let scans: Vec<Scan> = (0..4)
            .map(|i| {
                let a = i as f64 * 0.9;
                scan(
                    Point3::new(0.05, 0.05, 0.05),
                    &[
                        Point3::new(2.0 * a.cos(), 2.0 * a.sin(), 0.3),
                        Point3::new(-1.2, 0.7 + a * 0.1, -0.4),
                        Point3::new(0.8, -1.5, a * 0.2),
                    ],
                )
            })
            .collect();
        let mut packet = OctreeF32::new(0.1).unwrap();
        let mut scalar = OctreeF32::new(0.1).unwrap();
        scalar.set_front_end(FrontEnd::Scalar);
        for s in &scans {
            let a = packet.insert_scan_batched(s).unwrap();
            let b = scalar.insert_scan_batched(s).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(packet.snapshot(), scalar.snapshot());
        assert_eq!(packet.counters(), scalar.counters());
    }

    #[test]
    fn parallel_shard_count_is_not_cached_stale() {
        use omu_raycast::ScanPipeline;
        let mut t = OctreeF32::new(0.1).unwrap();
        let s = scan(Point3::ZERO, &[Point3::new(0.5, 0.0, 0.0)]);
        t.insert_scan_parallel(&s, 2).unwrap();
        assert_eq!(t.scratch_pipeline.as_ref().unwrap().shards(), 2);
        // `0 = per-CPU` must not silently reuse the 2-shard pipeline.
        t.insert_scan_parallel(&s, 0).unwrap();
        assert_eq!(
            t.scratch_pipeline.as_ref().unwrap().shards(),
            ScanPipeline::resolve_shards(0)
        );
        t.insert_scan_parallel(&s, 3).unwrap();
        assert_eq!(t.scratch_pipeline.as_ref().unwrap().shards(), 3);
    }

    #[test]
    fn borrowed_points_insertion_matches_scan_insertion() {
        let points: Vec<Point3> = (0..24)
            .map(|i| {
                let a = i as f64 * 0.26;
                Point3::new(2.0 * a.cos(), 2.0 * a.sin(), 0.2)
            })
            .collect();
        let origin = Point3::new(0.01, 0.02, 0.01);
        let mut by_scan = OctreeF32::new(0.1).unwrap();
        let a = by_scan
            .insert_scan_parallel(&scan(origin, &points), 2)
            .unwrap();
        let mut by_points = OctreeF32::new(0.1).unwrap();
        let b = by_points
            .insert_points_parallel(origin, &points, 2)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(by_scan.snapshot(), by_points.snapshot());
    }

    #[test]
    fn bad_origin_propagates_error() {
        let mut t = OctreeF32::new(0.1).unwrap();
        let far = t.converter().map_half_extent() + 5.0;
        let s = scan(Point3::new(far, 0.0, 0.0), &[Point3::ZERO]);
        assert!(t.insert_scan(&s).is_err());
        // The tree is still usable afterwards.
        assert!(t
            .insert_scan(&scan(Point3::ZERO, &[Point3::new(0.5, 0.0, 0.0)]))
            .is_ok());
    }
}
