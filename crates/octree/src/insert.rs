//! Point-cloud insertion: OctoMap's `insertPointCloud` on top of the
//! ray-casting integrator.

use omu_geometry::{KeyError, LogOdds, Scan};
use omu_raycast::{IntegrationStats, ScanIntegrator};

use crate::tree::OccupancyOctree;

impl<V: LogOdds> OccupancyOctree<V> {
    /// Integrates a full scan: every ray marks the cells it traverses as
    /// free and its endpoint as occupied, honouring the configured
    /// [`IntegrationMode`](omu_raycast::IntegrationMode) and maximum range.
    ///
    /// Returns the integration statistics for this scan; DDA steps are also
    /// accumulated into the tree's [`OpCounters`](crate::OpCounters).
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] when the scan origin is outside the addressable
    /// map. Out-of-map endpoints are skipped and counted in the returned
    /// statistics.
    ///
    /// # Examples
    ///
    /// ```
    /// use omu_geometry::{Occupancy, Point3, PointCloud, Scan};
    /// use omu_octree::OctreeF32;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut tree = OctreeF32::new(0.1)?;
    /// let scan = Scan::new(
    ///     Point3::ZERO,
    ///     [Point3::new(1.0, 0.0, 0.0)].into_iter().collect::<PointCloud>(),
    /// );
    /// tree.insert_scan(&scan)?;
    /// assert_eq!(tree.occupancy_at(Point3::new(1.0, 0.0, 0.0))?, Occupancy::Occupied);
    /// assert_eq!(tree.occupancy_at(Point3::new(0.5, 0.0, 0.0))?, Occupancy::Free);
    /// # Ok(())
    /// # }
    /// ```
    pub fn insert_scan(&mut self, scan: &Scan) -> Result<IntegrationStats, KeyError> {
        // Reuse the scratch integrator's buffers when its configuration
        // still matches; it is kept outside `self` during the closure so the
        // tree can be mutated per update.
        let mut integrator = match self.scratch_integrator.take() {
            Some(i)
                if i.mode() == self.integration_mode && i.max_range() == self.max_range =>
            {
                i
            }
            _ => ScanIntegrator::new(self.conv, self.max_range, self.integration_mode),
        };

        let result = integrator.integrate(scan, |u| {
            self.update_key(u.key, u.hit);
        });
        self.scratch_integrator = Some(integrator);

        let stats = result?;
        self.counters.dda_steps += stats.dda_steps;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use omu_geometry::{Occupancy, Point3, PointCloud, Scan};
    use omu_raycast::IntegrationMode;

    use crate::tree::OctreeF32;

    fn scan(origin: Point3, points: &[Point3]) -> Scan {
        Scan::new(origin, points.iter().copied().collect::<PointCloud>())
    }

    #[test]
    fn scan_marks_free_along_ray_and_occupied_at_end() {
        let mut t = OctreeF32::new(0.1).unwrap();
        let s = scan(Point3::ZERO, &[Point3::new(1.0, 0.0, 0.0)]);
        let stats = t.insert_scan(&s).unwrap();
        assert_eq!(stats.rays, 1);
        assert_eq!(stats.occupied_updates, 1);
        assert_eq!(t.occupancy_at(Point3::new(1.0, 0.0, 0.0)).unwrap(), Occupancy::Occupied);
        for i in 0..10 {
            let p = Point3::new(0.05 + 0.1 * i as f64, 0.0, 0.0);
            assert_eq!(t.occupancy_at(p).unwrap(), Occupancy::Free, "cell {i} on ray");
        }
        // Beyond the endpoint stays unknown.
        assert_eq!(t.occupancy_at(Point3::new(1.5, 0.0, 0.0)).unwrap(), Occupancy::Unknown);
        assert_eq!(t.counters().dda_steps, stats.dda_steps);
    }

    #[test]
    fn dedup_and_raywise_agree_on_classification_for_disjoint_rays() {
        let points = [
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
            Point3::new(0.0, 0.0, 1.0),
        ];
        let mut a = OctreeF32::new(0.1).unwrap();
        a.set_integration_mode(IntegrationMode::Raywise);
        a.insert_scan(&scan(Point3::ZERO, &points)).unwrap();

        let mut b = OctreeF32::new(0.1).unwrap();
        b.set_integration_mode(IntegrationMode::DedupPerScan);
        b.insert_scan(&scan(Point3::ZERO, &points)).unwrap();

        for &p in &points {
            assert_eq!(a.occupancy_at(p).unwrap(), Occupancy::Occupied);
            assert_eq!(b.occupancy_at(p).unwrap(), Occupancy::Occupied);
        }
    }

    #[test]
    fn max_range_limits_observed_space() {
        let mut t = OctreeF32::new(0.1).unwrap();
        t.set_max_range(Some(1.0));
        let s = scan(Point3::ZERO, &[Point3::new(3.0, 0.0, 0.0)]);
        let stats = t.insert_scan(&s).unwrap();
        assert_eq!(stats.truncated_rays, 1);
        // The endpoint is beyond range: not occupied, not even observed.
        assert_eq!(t.occupancy_at(Point3::new(3.0, 0.0, 0.0)).unwrap(), Occupancy::Unknown);
        // Cells within range are free.
        assert_eq!(t.occupancy_at(Point3::new(0.5, 0.0, 0.0)).unwrap(), Occupancy::Free);
    }

    #[test]
    fn integrator_scratch_survives_reconfiguration() {
        let mut t = OctreeF32::new(0.1).unwrap();
        let s = scan(Point3::ZERO, &[Point3::new(0.5, 0.0, 0.0)]);
        t.insert_scan(&s).unwrap();
        t.set_max_range(Some(2.0));
        t.insert_scan(&s).unwrap();
        t.set_integration_mode(IntegrationMode::DedupPerScan);
        t.insert_scan(&s).unwrap();
        assert_eq!(t.occupancy_at(Point3::new(0.5, 0.0, 0.0)).unwrap(), Occupancy::Occupied);
    }

    #[test]
    fn bad_origin_propagates_error() {
        let mut t = OctreeF32::new(0.1).unwrap();
        let far = t.converter().map_half_extent() + 5.0;
        let s = scan(Point3::new(far, 0.0, 0.0), &[Point3::ZERO]);
        assert!(t.insert_scan(&s).is_err());
        // The tree is still usable afterwards.
        assert!(t.insert_scan(&scan(Point3::ZERO, &[Point3::new(0.5, 0.0, 0.0)])).is_ok());
    }
}
