//! Leaf iteration and map snapshots.

use omu_geometry::{LogOdds, Occupancy, Point3, VoxelKey, TREE_DEPTH};

use crate::arena::{handle, NodeStore};
use crate::node::NIL;
use crate::tree::OccupancyOctree;

/// One leaf of the tree: a voxel (depth 16) or a pruned region
/// (depth < 16).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafInfo {
    /// Finest-depth key of the region's minimum corner.
    pub key: VoxelKey,
    /// Tree depth of the leaf (16 = single voxel).
    pub depth: u8,
    /// Occupancy log-odds of the leaf.
    pub logodds: f32,
    /// Classification of the leaf under the tree's thresholds.
    pub occupancy: Occupancy,
}

/// Depth-first iterator over the leaves of an [`OccupancyOctree`].
///
/// Yields leaves in deterministic (child index) order. Created by
/// [`OccupancyOctree::iter_leaves`].
#[derive(Debug)]
pub struct LeafIter<'a, V: LogOdds> {
    tree: &'a OccupancyOctree<V>,
    stack: Vec<(u32, VoxelKey, u8)>,
}

impl<V: LogOdds> Iterator for LeafIter<'_, V> {
    type Item = LeafInfo;

    fn next(&mut self) -> Option<LeafInfo> {
        while let Some((node, key, depth)) = self.stack.pop() {
            // Depth-16 handles index value-only leaf rows.
            if depth == TREE_DEPTH {
                let v = self.tree.arena.leaf_value(node);
                return Some(LeafInfo {
                    key,
                    depth,
                    logodds: v.to_f32(),
                    occupancy: self.tree.resolved.classify(v),
                });
            }
            let n = self.tree.arena.node(node);
            if n.is_leaf() {
                return Some(LeafInfo {
                    key,
                    depth,
                    logodds: n.value.to_f32(),
                    occupancy: self.tree.resolved.classify(n.value),
                });
            }
            let bit = TREE_DEPTH - 1 - depth;
            // Child handles are arithmetic on the node in hand: resolve
            // the children's shard and row once for all 8.
            let shard = self.tree.arena.child_shard(node);
            let row = n.row();
            // Push in reverse so children pop in ascending index order.
            for pos in (0..8usize).rev() {
                if n.has_child(pos) {
                    let child_key = VoxelKey::new(
                        key.x | (((pos & 1) as u16) << bit),
                        key.y | ((((pos >> 1) & 1) as u16) << bit),
                        key.z | ((((pos >> 2) & 1) as u16) << bit),
                    );
                    self.stack
                        .push((handle(shard, row, pos), child_key, depth + 1));
                }
            }
        }
        None
    }
}

impl<V: LogOdds> OccupancyOctree<V> {
    /// Iterates over all leaves (finest voxels and pruned regions).
    ///
    /// # Examples
    ///
    /// ```
    /// use omu_geometry::{Point3, PointCloud, Scan};
    /// use omu_octree::OctreeF32;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut tree = OctreeF32::new(0.1)?;
    /// tree.update_point(Point3::ZERO, true)?;
    /// let occupied: Vec<_> = tree
    ///     .iter_leaves()
    ///     .filter(|l| l.occupancy == omu_geometry::Occupancy::Occupied)
    ///     .collect();
    /// assert_eq!(occupied.len(), 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn iter_leaves(&self) -> LeafIter<'_, V> {
        let mut stack = Vec::new();
        if self.root != NIL {
            stack.push((self.root, VoxelKey::new(0, 0, 0), 0u8));
        }
        LeafIter { tree: self, stack }
    }

    /// Centre coordinate of a leaf region.
    pub fn leaf_center(&self, leaf: &LeafInfo) -> Point3 {
        self.conv.key_to_coord_at_depth(leaf.key, leaf.depth)
    }

    /// A canonical, sorted snapshot of the map contents:
    /// `(key, depth, logodds)` per leaf. Two maps with equal snapshots are
    /// observationally identical — used to verify accelerator/baseline
    /// equivalence.
    pub fn snapshot(&self) -> Vec<(VoxelKey, u8, f32)> {
        let mut v: Vec<_> = self
            .iter_leaves()
            .map(|l| (l.key, l.depth, l.logodds))
            .collect();
        v.sort_by_key(|&(key, depth, _)| (key, depth));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::OctreeF32;

    #[test]
    fn empty_tree_yields_no_leaves() {
        let t = OctreeF32::new(0.1).unwrap();
        assert_eq!(t.iter_leaves().count(), 0);
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn single_update_yields_one_meaningful_leaf() {
        let mut t = OctreeF32::new(0.1).unwrap();
        t.update_key(VoxelKey::ORIGIN, true);
        let leaves: Vec<_> = t.iter_leaves().collect();
        // One depth-16 leaf holds the hit; no other leaf exists because the
        // path nodes are inner nodes with a single child each.
        assert_eq!(leaves.len(), 1);
        assert_eq!(leaves[0].depth, TREE_DEPTH);
        assert_eq!(leaves[0].key, VoxelKey::ORIGIN);
        assert_eq!(leaves[0].occupancy, Occupancy::Occupied);
    }

    #[test]
    fn leaf_keys_reconstruct_paths() {
        let mut t = OctreeF32::new(0.1).unwrap();
        let keys = [
            VoxelKey::new(33000, 41000, 29000),
            VoxelKey::new(12345, 54321, 33333),
            VoxelKey::new(32768, 32768, 32768),
        ];
        for &k in &keys {
            t.update_key(k, true);
        }
        let mut found: Vec<VoxelKey> = t.iter_leaves().map(|l| l.key).collect();
        found.sort();
        let mut expect = keys.to_vec();
        expect.sort();
        assert_eq!(found, expect);
    }

    #[test]
    fn pruned_leaf_reports_coarse_depth() {
        let mut t = OctreeF32::new(0.1).unwrap();
        t.set_early_abort_saturated(false);
        let base = VoxelKey::new(33000, 33000, 33000);
        for _ in 0..10 {
            for i in 0..8u16 {
                t.update_key(
                    VoxelKey::new(
                        base.x + (i & 1),
                        base.y + ((i >> 1) & 1),
                        base.z + ((i >> 2) & 1),
                    ),
                    true,
                );
            }
        }
        let leaf = t
            .iter_leaves()
            .find(|l| l.key == base)
            .expect("pruned leaf present");
        assert_eq!(leaf.depth, TREE_DEPTH - 1);
        let c = t.leaf_center(&leaf);
        let fine = t.converter().key_to_coord(base);
        assert!(c.distance(fine) < t.converter().node_size(TREE_DEPTH - 1));
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let mut t = OctreeF32::new(0.1).unwrap();
        for i in 0..50u16 {
            t.update_key(
                VoxelKey::new(32768 + i * 3 % 17, 32768 + i % 5, 32768),
                i % 2 == 0,
            );
        }
        let s1 = t.snapshot();
        let s2 = t.snapshot();
        assert_eq!(s1, s2);
        assert!(s1.windows(2).all(|w| (w[0].0, w[0].1) <= (w[1].0, w[1].1)));
    }
}
