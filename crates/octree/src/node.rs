//! Node storage types for the cache-compact sibling-row arena.
//!
//! An inner node references a *sibling row* — its 8 children stored
//! contiguously — through one packed `u32`: the high 24 bits index the
//! row inside the owning arena shard, the low 8 bits are the
//! child-presence mask. This is the OMU paper's tree-memory entry (a
//! value plus a single 32-bit pointer to a row of 8 children), and it
//! makes a descent step a single dependent load: the child's address is
//! pure arithmetic on the parent already in hand, and presence is one
//! mask test instead of a NIL scan over 8 slots.
//!
//! An `f32` sibling row is `8 × 8 B = 64 B` — exactly one cache line
//! shared by all 8 siblings, which is what makes Morton-ordered batches
//! (whose consecutive updates hit the same row) cheap. Children of
//! depth-15 nodes are always depth-16 voxels and can never have children
//! of their own, so they are stored in value-only *leaf rows* (`[V; 8]`,
//! 32 B for `f32`) with no pointer word at all; see the
//! [`arena`](crate::arena) module for the two-tier layout.

/// Sentinel index for "no node".
pub(crate) const NIL: u32 = u32::MAX;

/// Bits of the packed child reference holding the presence mask.
const MASK_BITS: u32 = 8;

/// Maximum row index storable in the packed child reference.
pub(crate) const MAX_ROW: u32 = (1 << (32 - MASK_BITS)) - 1;

/// One octree node: a log-odds value plus a packed sibling-row reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Node<V> {
    /// Occupancy log-odds of this node (for inner nodes: max of children).
    pub value: V,
    /// Packed child reference: `row << 8 | child_mask`. The row indexes
    /// the children's sibling row inside the shard that
    /// [`child_shard`](crate::arena::NodeStore::child_shard) resolves for
    /// this node; bit `i` of the mask is set iff child `i` exists.
    /// `0` (empty mask) means the node is a leaf.
    children: u32,
}

impl<V> Node<V> {
    /// Creates a childless node with the given value.
    pub fn leaf(value: V) -> Self {
        Node { value, children: 0 }
    }

    /// True when this node has no children.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.children & 0xFF == 0
    }

    /// The child-presence mask (bit `i` = child `i` exists).
    #[inline]
    pub fn mask(&self) -> u8 {
        self.children as u8
    }

    /// True when child `pos` exists.
    #[inline]
    pub fn has_child(&self, pos: usize) -> bool {
        self.children & (1 << pos) != 0
    }

    /// The sibling-row index of this node's children (meaningless for
    /// leaves).
    #[inline]
    pub fn row(&self) -> u32 {
        self.children >> MASK_BITS
    }

    /// Points this node at children row `row` with presence `mask`.
    #[inline]
    pub fn set_children(&mut self, row: u32, mask: u8) {
        debug_assert!(row <= MAX_ROW, "row index overflows the packed ref");
        self.children = (row << MASK_BITS) | mask as u32;
    }

    /// Marks child `pos` present (the row must already be attached).
    #[inline]
    pub fn add_child(&mut self, pos: usize) {
        self.children |= 1 << pos;
    }

    /// Turns this node back into a leaf (detaches the children row).
    #[inline]
    pub fn clear_children(&mut self) {
        self.children = 0;
    }

    /// Number of present children.
    #[inline]
    pub fn child_count(&self) -> u32 {
        (self.children & 0xFF).count_ones()
    }
}

/// A sibling row of 8 nodes, the unit of arena storage for inner levels.
pub(crate) type NodeRow<V> = [Node<V>; 8];

/// A value-only sibling row holding 8 depth-16 voxels.
pub(crate) type LeafRow<V> = [V; 8];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_has_no_children() {
        let n = Node::leaf(0.5f32);
        assert!(n.is_leaf());
        assert_eq!(n.value, 0.5);
        assert_eq!(n.mask(), 0);
        assert_eq!(n.child_count(), 0);
    }

    #[test]
    fn packed_row_and_mask_roundtrip() {
        let mut n = Node::leaf(0.0f32);
        n.set_children(123_456, 0b0100_1001);
        assert!(!n.is_leaf());
        assert_eq!(n.row(), 123_456);
        assert_eq!(n.mask(), 0b0100_1001);
        assert!(n.has_child(0));
        assert!(n.has_child(3));
        assert!(!n.has_child(1));
        assert_eq!(n.child_count(), 3);
        n.add_child(1);
        assert_eq!(n.mask(), 0b0100_1011);
        assert_eq!(n.row(), 123_456, "adding a child keeps the row");
        n.clear_children();
        assert!(n.is_leaf());
    }

    #[test]
    fn f32_row_is_one_cache_line() {
        assert_eq!(std::mem::size_of::<Node<f32>>(), 8);
        assert_eq!(std::mem::size_of::<NodeRow<f32>>(), 64);
        assert_eq!(std::mem::size_of::<LeafRow<f32>>(), 32);
    }
}
