//! Node and child-block storage types.
//!
//! Nodes are stored in an index-based arena. An inner node owns a *child
//! block* — a group of 8 child slots — referenced by index. This mirrors
//! both OctoMap (lazy children array per inner node) and the OMU node entry
//! (one 32-bit pointer to a row of 8 children).

/// Sentinel index for "no node" / "no block".
pub(crate) const NIL: u32 = u32::MAX;

/// One octree node: a log-odds value plus an optional child block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Node<V> {
    /// Occupancy log-odds of this node (for inner nodes: max of children).
    pub value: V,
    /// Index of the child block in the block arena, or [`NIL`] for leaves.
    pub block: u32,
}

impl<V> Node<V> {
    /// Creates a childless node with the given value.
    pub fn leaf(value: V) -> Self {
        Node { value, block: NIL }
    }

    /// True when this node has no child block.
    pub fn is_leaf(&self) -> bool {
        self.block == NIL
    }
}

/// A block of 8 child-node indices; [`NIL`] marks an absent child.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ChildBlock {
    pub slots: [u32; 8],
}

impl ChildBlock {
    /// A block with all children absent.
    pub const EMPTY: ChildBlock = ChildBlock { slots: [NIL; 8] };

    /// Number of present children.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn count(&self) -> usize {
        self.slots.iter().filter(|&&s| s != NIL).count()
    }

    /// True when no child is present.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|&s| s == NIL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_has_no_block() {
        let n = Node::leaf(0.5f32);
        assert!(n.is_leaf());
        assert_eq!(n.value, 0.5);
    }

    #[test]
    fn child_block_counting() {
        let mut b = ChildBlock::EMPTY;
        assert!(b.is_empty());
        assert_eq!(b.count(), 0);
        b.slots[3] = 7;
        b.slots[0] = 1;
        assert_eq!(b.count(), 2);
        assert!(!b.is_empty());
    }
}
