//! Tree structure and memory statistics.

use omu_geometry::{Aabb, LogOdds, Occupancy, TREE_DEPTH};
use serde::{Deserialize, Serialize};

use crate::tree::OccupancyOctree;

/// Structural statistics of an occupancy octree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeStats {
    /// Total live nodes (inner + leaf).
    pub num_nodes: usize,
    /// Leaf nodes (finest voxels and pruned regions).
    pub num_leaves: usize,
    /// Inner nodes.
    pub num_inner: usize,
    /// Leaves per depth (`histogram[d]` = leaves at depth `d`).
    pub leaf_depth_histogram: Vec<usize>,
    /// Volume of space classified occupied, in m³.
    pub occupied_volume: f64,
    /// Volume of space classified free, in m³.
    pub free_volume: f64,
    /// Bounding box of the observed region (leaf centres).
    pub observed_bounds: Aabb,
}

impl TreeStats {
    /// Total observed volume (occupied + free) in m³.
    pub fn known_volume(&self) -> f64 {
        self.occupied_volume + self.free_volume
    }
}

/// Memory-footprint statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Live tree nodes.
    pub live_nodes: usize,
    /// Live sibling rows (one per inner node: a 64 B node row below
    /// depth 15, a 32 B value-only leaf row for depth-15 parents).
    pub live_rows: usize,
    /// Heap bytes used by this implementation's row arenas (including
    /// vector capacity slack and free lists).
    pub arena_bytes: usize,
    /// Estimated bytes the same tree would occupy in the OctoMap C++
    /// implementation (24 B per node plus a 64 B child-pointer array per
    /// inner node) — used for the paper's memory-saving comparisons.
    pub octomap_equivalent_bytes: usize,
}

impl MemoryStats {
    /// Arena heap bytes per live node — the cache-compactness figure the
    /// sibling-row refactor targets (the block-arena layout measured
    /// ≈19 B/node on the corridor map; see `BENCH_batch_update.json`).
    pub fn bytes_per_node(&self) -> f64 {
        if self.live_nodes == 0 {
            0.0
        } else {
            self.arena_bytes as f64 / self.live_nodes as f64
        }
    }
}

impl<V: LogOdds> OccupancyOctree<V> {
    /// Computes structural statistics with one pass over the tree.
    pub fn tree_stats(&self) -> TreeStats {
        let mut histogram = vec![0usize; TREE_DEPTH as usize + 1];
        let mut occupied_volume = 0.0;
        let mut free_volume = 0.0;
        let mut bounds = Aabb::empty();
        let mut num_leaves = 0;

        for leaf in self.iter_leaves() {
            num_leaves += 1;
            histogram[leaf.depth as usize] += 1;
            let size = self.converter().node_size(leaf.depth);
            let volume = size * size * size;
            match leaf.occupancy {
                Occupancy::Occupied => occupied_volume += volume,
                Occupancy::Free => free_volume += volume,
                Occupancy::Unknown => {}
            }
            bounds = bounds.union_point(self.leaf_center(&leaf));
        }

        let num_nodes = self.num_nodes();
        TreeStats {
            num_nodes,
            num_leaves,
            num_inner: num_nodes - num_leaves,
            leaf_depth_histogram: histogram,
            occupied_volume,
            free_volume,
            observed_bounds: bounds,
        }
    }

    /// Computes memory-footprint statistics.
    pub fn memory_stats(&self) -> MemoryStats {
        let live_nodes = self.num_nodes();
        let (node_rows, leaf_rows) = self.arena.live_rows();
        let live_rows = node_rows + leaf_rows;
        MemoryStats {
            live_nodes,
            live_rows,
            arena_bytes: self.arena.heap_bytes(),
            octomap_equivalent_bytes: live_nodes * 24 + live_rows * 64,
        }
    }

    /// Heap bytes held by the arena backing storage (the numerator of
    /// [`MemoryStats::bytes_per_node`], without the O(n) node count).
    pub fn heap_bytes(&self) -> usize {
        self.arena.heap_bytes()
    }

    /// High-water `(node slots, sibling rows)` allocated over the tree's
    /// lifetime — measures peak memory with and without pruning/address
    /// reuse. Node slots count 8 per row ever allocated (row granularity
    /// is the unit of allocation in this layout).
    pub fn high_water(&self) -> (usize, usize) {
        let (node_rows, leaf_rows) = self.arena.high_water();
        ((node_rows + leaf_rows) * 8, node_rows + leaf_rows)
    }
}

#[cfg(test)]
mod tests {
    use crate::tree::OctreeF32;
    use omu_geometry::{Point3, PointCloud, Scan, VoxelKey};

    fn mapped_tree() -> OctreeF32 {
        let mut t = OctreeF32::new(0.1).unwrap();
        let mut cloud = PointCloud::new();
        for i in -10..=10 {
            cloud.push(Point3::new(1.0, i as f64 * 0.1, 0.0));
        }
        t.insert_scan(&Scan::new(Point3::ZERO, cloud)).unwrap();
        t
    }

    #[test]
    fn stats_consistent_with_iteration() {
        let t = mapped_tree();
        let s = t.tree_stats();
        assert_eq!(s.num_leaves, t.iter_leaves().count());
        assert_eq!(s.num_nodes, t.num_nodes());
        assert_eq!(s.num_inner + s.num_leaves, s.num_nodes);
        assert_eq!(s.leaf_depth_histogram.iter().sum::<usize>(), s.num_leaves);
    }

    #[test]
    fn volumes_positive_after_mapping() {
        let t = mapped_tree();
        let s = t.tree_stats();
        assert!(s.occupied_volume > 0.0);
        assert!(s.free_volume > 0.0);
        assert!(s.known_volume() > s.occupied_volume);
        assert!(!s.observed_bounds.is_empty());
        // Bounds are built from voxel centres; the wall sits in voxels
        // centred at x = 1.05, z = 0.05.
        assert!(s.observed_bounds.contains(Point3::new(1.0, 0.0, 0.05)));
    }

    #[test]
    fn memory_stats_track_nodes() {
        let t = mapped_tree();
        let m = t.memory_stats();
        assert_eq!(m.live_nodes, t.num_nodes());
        assert!(m.arena_bytes > 0);
        assert!(m.octomap_equivalent_bytes >= m.live_nodes * 24);
    }

    #[test]
    fn empty_tree_stats() {
        let t = OctreeF32::new(0.1).unwrap();
        let s = t.tree_stats();
        assert_eq!(s.num_nodes, 0);
        assert_eq!(s.known_volume(), 0.0);
        assert!(s.observed_bounds.is_empty());
    }

    #[test]
    fn high_water_does_not_decrease_after_prune() {
        let mut t = OctreeF32::new(0.1).unwrap();
        t.set_early_abort_saturated(false);
        let base = VoxelKey::new(33000, 33000, 33000);
        for _ in 0..10 {
            for i in 0..8u16 {
                t.update_key(
                    VoxelKey::new(
                        base.x + (i & 1),
                        base.y + ((i >> 1) & 1),
                        base.z + ((i >> 2) & 1),
                    ),
                    true,
                );
            }
        }
        let (hw_nodes, _) = t.high_water();
        assert!(hw_nodes >= t.num_nodes(), "high water covers pruned peak");
    }
}
