//! Operation counters feeding the CPU timing models.
//!
//! Each counter corresponds to one of the runtime-breakdown categories in
//! Fig. 3 / Fig. 10 of the OMU paper:
//!
//! | Paper category      | Counters |
//! | ------------------- | -------- |
//! | Ray casting         | `dda_steps` |
//! | Update leaf         | `leaf_updates`, `traverse_steps`, `saturation_probes` |
//! | Update parents      | `parent_updates`, `parent_child_reads` |
//! | Node prune / expand | `prune_checks`, `prune_child_reads`, `prunes`, `expands` |

use serde::{Deserialize, Serialize};

/// Cumulative operation counts for one octree (or one accelerator run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounters {
    /// DDA steps performed during ray casting.
    pub dda_steps: u64,
    /// Leaf log-odds additions (one per voxel update reaching depth 16).
    pub leaf_updates: u64,
    /// Levels descended while locating leaves (root → leaf traversal steps).
    pub traverse_steps: u64,
    /// Saturation pre-checks (OctoMap's early-abort `search` before an
    /// update), counted as full traversals.
    pub saturation_probes: u64,
    /// Voxel updates skipped because the covering leaf was already
    /// saturated in the update direction.
    pub saturated_skips: u64,
    /// Inner-node occupancy recomputations (max over children).
    pub parent_updates: u64,
    /// Child values read during parent updates.
    pub parent_child_reads: u64,
    /// Prune attempts (collapsibility checks on the way up).
    pub prune_checks: u64,
    /// Child values read during prune checks.
    pub prune_child_reads: u64,
    /// Successful prunes (8 children deleted, parent became a leaf).
    pub prunes: u64,
    /// Node expansions (pruned leaf re-split into 8 children).
    pub expands: u64,
    /// Nodes newly created during descent.
    pub node_creations: u64,
    /// Voxel updates applied through the batch engine
    /// (see the `batch` module).
    pub batch_updates: u64,
    /// Batch updates coalesced onto an already-located leaf (no descent).
    pub batch_coalesced: u64,
    /// Descent levels skipped by the batch engine's cached root-path
    /// prefix.
    pub batch_reused_levels: u64,
    /// Inner-node finishes (refresh or prune) performed by the batch
    /// engine's deferred bottom-up pass. The scalar path performs
    /// 16 finishes per update; the saving is
    /// `batch_updates * 16 - batch_deferred_finishes`.
    pub batch_deferred_finishes: u64,
}

/// Cumulative read-side operation counts — the query mirror of
/// [`OpCounters`], fed by the cached-descent cursor and the batched
/// query engine (see the `query_batch` module).
///
/// The interesting ratio is `reused_levels` against
/// `reused_levels + node_visits`: the fraction of descent work the
/// cursor's cached root path saved relative to probing every key from
/// the root.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryCounters {
    /// Voxel classifications served (one per probed key).
    pub probes: u64,
    /// Child links followed while descending (nodes stepped into below
    /// the cursor's resume point).
    pub node_visits: u64,
    /// Descent levels skipped because consecutive keys shared a root-path
    /// prefix the cursor still held.
    pub reused_levels: u64,
    /// Query rays cast through the cursor path.
    pub rays: u64,
    /// Probes served through the batched query engine
    /// (`query_batch` and the sharded read path).
    pub batch_queries: u64,
    /// Batched probes answered from the previous key's result because the
    /// Morton sort made duplicates adjacent (no descent at all).
    pub batch_coalesced: u64,
}

impl QueryCounters {
    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = QueryCounters::default();
    }

    /// Adds another counter record to this one.
    pub fn merge(&mut self, other: &QueryCounters) {
        self.probes += other.probes;
        self.node_visits += other.node_visits;
        self.reused_levels += other.reused_levels;
        self.rays += other.rays;
        self.batch_queries += other.batch_queries;
        self.batch_coalesced += other.batch_coalesced;
    }

    /// Fraction of descent levels served from the cached root path
    /// instead of being walked (0 when nothing was probed).
    pub fn prefix_reuse_rate(&self) -> f64 {
        let total = self.reused_levels + self.node_visits;
        if total == 0 {
            0.0
        } else {
            self.reused_levels as f64 / total as f64
        }
    }
}

impl OpCounters {
    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = OpCounters::default();
    }

    /// Adds another counter record to this one.
    pub fn merge(&mut self, other: &OpCounters) {
        self.dda_steps += other.dda_steps;
        self.leaf_updates += other.leaf_updates;
        self.traverse_steps += other.traverse_steps;
        self.saturation_probes += other.saturation_probes;
        self.saturated_skips += other.saturated_skips;
        self.parent_updates += other.parent_updates;
        self.parent_child_reads += other.parent_child_reads;
        self.prune_checks += other.prune_checks;
        self.prune_child_reads += other.prune_child_reads;
        self.prunes += other.prunes;
        self.expands += other.expands;
        self.node_creations += other.node_creations;
        self.batch_updates += other.batch_updates;
        self.batch_coalesced += other.batch_coalesced;
        self.batch_reused_levels += other.batch_reused_levels;
        self.batch_deferred_finishes += other.batch_deferred_finishes;
    }

    /// Difference `self - earlier`, for windowed measurements.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not component-wise ≤ `self`.
    #[must_use]
    pub fn since(&self, earlier: &OpCounters) -> OpCounters {
        let d = |a: u64, b: u64| {
            debug_assert!(a >= b, "counter went backwards");
            a - b
        };
        OpCounters {
            dda_steps: d(self.dda_steps, earlier.dda_steps),
            leaf_updates: d(self.leaf_updates, earlier.leaf_updates),
            traverse_steps: d(self.traverse_steps, earlier.traverse_steps),
            saturation_probes: d(self.saturation_probes, earlier.saturation_probes),
            saturated_skips: d(self.saturated_skips, earlier.saturated_skips),
            parent_updates: d(self.parent_updates, earlier.parent_updates),
            parent_child_reads: d(self.parent_child_reads, earlier.parent_child_reads),
            prune_checks: d(self.prune_checks, earlier.prune_checks),
            prune_child_reads: d(self.prune_child_reads, earlier.prune_child_reads),
            prunes: d(self.prunes, earlier.prunes),
            expands: d(self.expands, earlier.expands),
            node_creations: d(self.node_creations, earlier.node_creations),
            batch_updates: d(self.batch_updates, earlier.batch_updates),
            batch_coalesced: d(self.batch_coalesced, earlier.batch_coalesced),
            batch_reused_levels: d(self.batch_reused_levels, earlier.batch_reused_levels),
            batch_deferred_finishes: d(
                self.batch_deferred_finishes,
                earlier.batch_deferred_finishes,
            ),
        }
    }

    /// Total voxel updates that reached the tree (leaf updates plus
    /// saturated skips) — comparable to the paper's "Voxel Update" counts.
    pub fn voxel_updates(&self) -> u64 {
        self.leaf_updates + self.saturated_skips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_componentwise() {
        let mut a = OpCounters {
            dda_steps: 1,
            prunes: 2,
            ..Default::default()
        };
        let b = OpCounters {
            dda_steps: 10,
            expands: 5,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.dda_steps, 11);
        assert_eq!(a.prunes, 2);
        assert_eq!(a.expands, 5);
    }

    #[test]
    fn since_subtracts() {
        let early = OpCounters {
            leaf_updates: 5,
            ..Default::default()
        };
        let late = OpCounters {
            leaf_updates: 12,
            prunes: 3,
            ..Default::default()
        };
        let d = late.since(&early);
        assert_eq!(d.leaf_updates, 7);
        assert_eq!(d.prunes, 3);
    }

    #[test]
    fn reset_zeroes() {
        let mut c = OpCounters {
            parent_updates: 9,
            ..Default::default()
        };
        c.reset();
        assert_eq!(c, OpCounters::default());
    }

    #[test]
    fn query_counters_merge_and_reuse_rate() {
        let mut a = QueryCounters {
            probes: 4,
            node_visits: 6,
            reused_levels: 18,
            ..Default::default()
        };
        a.merge(&QueryCounters {
            probes: 1,
            node_visits: 2,
            batch_coalesced: 3,
            ..Default::default()
        });
        assert_eq!(a.probes, 5);
        assert_eq!(a.node_visits, 8);
        assert_eq!(a.batch_coalesced, 3);
        assert!((a.prefix_reuse_rate() - 18.0 / 26.0).abs() < 1e-12);
        assert_eq!(QueryCounters::default().prefix_reuse_rate(), 0.0);
        a.reset();
        assert_eq!(a, QueryCounters::default());
    }

    #[test]
    fn voxel_updates_includes_skips() {
        let c = OpCounters {
            leaf_updates: 7,
            saturated_skips: 3,
            ..Default::default()
        };
        assert_eq!(c.voxel_updates(), 10);
    }
}
