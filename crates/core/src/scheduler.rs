//! The voxel scheduler: branch-ID routing plus a queueing model of the
//! voxel queues.
//!
//! The paper partitions the octree across PEs by the first-level tree
//! branch (Section IV-A): the scheduler extracts the branch ID from the
//! voxel coordinates and issues the update to that PE. Upstream, the
//! shared free/occupied voxel queues (Fig. 7) buffer the ray-casting
//! unit's output; the scheduler issues from them with lookahead, so a
//! voxel whose target PE is busy does not block voxels destined for other
//! PEs — reordering across PEs is safe because PEs own disjoint subtrees,
//! while per-PE order is preserved.
//!
//! The timing model tracks, in absolute cycles:
//!
//! - the production stream (ray casting emits one voxel per cycle);
//! - a bounded per-PE in-flight window
//!   ([`OmuConfig::voxel_queue_capacity`]): a voxel whose target PE
//!   already holds that many unfinished updates waits in the shared
//!   queue until the PE's head-of-line update completes — *without*
//!   blocking voxels bound for other PEs;
//! - each PE's busy horizon; end-to-end latency is the maximum horizon,
//!   so branch load imbalance shows up directly (the busiest PE bounds
//!   the run).
//!
//! Batched front ends issue each PE's work as contiguous *runs*
//! ([`VoxelScheduler::dispatch_run`]); updates after a run's head get a
//! configurable service discount — the row-buffer-hit analogue, since
//! Morton-sorted runs revisit the same T-Mem row neighbourhood — which is
//! how the model shows the batching win in cycles, not just run counts.
//!
//! The shared queues themselves are modeled as deep enough that
//! production never blocks. This is the idealization the paper's numbers
//! imply: with a *finite* shared queue, sustained branch imbalance
//! eventually fills it with hot-PE work and collapses system throughput
//! to one PE's pace — a regime the paper's ≈13 cycles/update results on
//! all three datasets clearly never enter. The residual imbalance cost
//! (max-PE vs mean-PE work) is still charged in full.
//!
//! [`OmuConfig::voxel_queue_capacity`]: crate::OmuConfig

use std::collections::VecDeque;

use omu_geometry::VoxelKey;

/// Routing + queue-timing model for voxel dispatch.
#[derive(Debug, Clone)]
pub struct VoxelScheduler {
    num_pes: usize,
    window: usize,
    burst_discount_pct: u32,
    issue_overhead_cycles: u64,
    issue_time: u64,
    busy_until: Vec<u64>,
    inflight: Vec<VecDeque<u64>>,
    stall_cycles: u64,
    dispatched: u64,
    runs: u64,
    burst_saved_cycles: u64,
    issue_overhead_charged: u64,
}

impl VoxelScheduler {
    /// Creates a scheduler for `num_pes` PEs with a per-PE in-flight
    /// window of `window` updates and no burst discount.
    ///
    /// # Panics
    ///
    /// Panics if `num_pes` is not 1, 2, 4 or 8, or `window` is zero.
    pub fn new(num_pes: usize, window: usize) -> Self {
        Self::with_burst_discount(num_pes, window, 0)
    }

    /// [`Self::new`] with a burst model: updates after the first in a
    /// contiguous same-PE run ([`Self::dispatch_run`]) have their service
    /// time discounted by `burst_discount_pct` percent — the row-buffer-hit
    /// analogue for Morton-sorted batches, whose runs keep hitting the
    /// same T-Mem row neighbourhood.
    ///
    /// # Panics
    ///
    /// Panics if `num_pes` is not 1, 2, 4 or 8, `window` is zero, or the
    /// discount exceeds 100 %.
    pub fn with_burst_discount(num_pes: usize, window: usize, burst_discount_pct: u32) -> Self {
        assert!(
            [1, 2, 4, 8].contains(&num_pes),
            "unsupported PE count {num_pes}"
        );
        assert!(window > 0, "voxel queue capacity must be positive");
        assert!(
            burst_discount_pct <= 100,
            "burst discount must be at most 100 %, got {burst_discount_pct}"
        );
        VoxelScheduler {
            num_pes,
            window,
            burst_discount_pct,
            issue_overhead_cycles: 0,
            issue_time: 0,
            busy_until: vec![0; num_pes],
            inflight: (0..num_pes).map(|_| VecDeque::new()).collect(),
            stall_cycles: 0,
            dispatched: 0,
            runs: 0,
            burst_saved_cycles: 0,
            issue_overhead_charged: 0,
        }
    }

    /// Sets the per-run issue overhead: every run head dispatched through
    /// [`Self::dispatch_run`] is charged this many extra cycles before
    /// its service time — the hardware analogue of the software pool's
    /// per-task dispatch cost (enqueue on the PE's issue queue, wake the
    /// PE). Defaults to 0, which is the paper's idealization: the
    /// scheduler issues one voxel per cycle with no queue-management
    /// cost. Non-zero values let the CPU-vs-accelerator reports price
    /// dispatch symmetrically on both sides.
    pub fn set_issue_overhead(&mut self, cycles: u64) {
        self.issue_overhead_cycles = cycles;
    }

    /// The PE hosting a key: first-level branch ID modulo the PE count
    /// (with 8 PEs this is exactly the paper's branch partitioning).
    pub fn pe_for(&self, key: VoxelKey) -> usize {
        key.first_level_branch().index() % self.num_pes
    }

    /// Number of PEs.
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// Starts a new scan at absolute cycle `at` (production cannot begin
    /// before the previous scan's).
    pub fn begin_scan(&mut self, at: u64) {
        self.issue_time = self.issue_time.max(at);
    }

    /// Issues one update of `service_cycles` to `pe`, advancing the
    /// timing model. Returns the update's completion cycle.
    pub fn dispatch(&mut self, pe: usize, service_cycles: u64) -> u64 {
        // Ray casting produces one voxel per cycle into the shared queues.
        let produced = self.issue_time;
        self.issue_time = produced + 1;

        let q = &mut self.inflight[pe];
        let mut arrival = produced;
        while q.front().is_some_and(|&c| c <= arrival) {
            q.pop_front();
        }
        // Full per-PE window: this voxel waits in the shared queue until
        // the PE's head-of-line update completes. Voxels bound for other
        // PEs are unaffected (disjoint subtrees, so reordering is safe).
        if q.len() >= self.window {
            // omu-lint: allow(no-panic) — guarded: `len() >= window` with
            // `window >= 1` means the queue is non-empty here.
            let head = *q.front().expect("non-empty at capacity");
            self.stall_cycles += head - arrival;
            arrival = head;
            while q.front().is_some_and(|&c| c <= arrival) {
                q.pop_front();
            }
        }

        let start = self.busy_until[pe].max(arrival);
        let completion = start + service_cycles;
        self.busy_until[pe] = completion;
        q.push_back(completion);
        self.dispatched += 1;
        completion
    }

    /// Issues a contiguous run of same-PE updates (the shape a
    /// Morton-sorted batch produces: the top 3 Morton bits are the branch
    /// ID, so each PE's work arrives as one run). Returns the completion
    /// cycle of the run's last update.
    ///
    /// The run's head update pays full service; every subsequent update
    /// is discounted by the configured burst percentage (the row-buffer
    /// hit: consecutive Morton-sorted updates revisit the same T-Mem row
    /// neighbourhood, so address generation and row activation amortize).
    /// With a zero discount this is timing-equivalent to calling
    /// [`Self::dispatch`] per element; either way the run form counts how
    /// many runs the batch path issued, which [`Self::runs_dispatched`]
    /// exposes for the locality reports.
    pub fn dispatch_run(&mut self, pe: usize, service_cycles: &[u64]) -> u64 {
        let mut completion = self.issue_time;
        for (i, &cycles) in service_cycles.iter().enumerate() {
            let charged = if i == 0 {
                self.issue_overhead_charged += self.issue_overhead_cycles;
                cycles + self.issue_overhead_cycles
            } else {
                let c = cycles - cycles * self.burst_discount_pct as u64 / 100;
                self.burst_saved_cycles += cycles - c;
                c
            };
            completion = self.dispatch(pe, charged);
        }
        if !service_cycles.is_empty() {
            self.runs += 1;
        }
        completion
    }

    /// Number of contiguous same-PE runs issued through
    /// [`Self::dispatch_run`].
    pub fn runs_dispatched(&self) -> u64 {
        self.runs
    }

    /// Service cycles saved by the burst discount across all runs.
    pub fn burst_saved_cycles(&self) -> u64 {
        self.burst_saved_cycles
    }

    /// Total issue-overhead cycles charged to run heads (see
    /// [`Self::set_issue_overhead`]).
    pub fn issue_overhead_charged(&self) -> u64 {
        self.issue_overhead_charged
    }

    /// The configured per-run issue overhead in cycles.
    pub fn issue_overhead_cycles(&self) -> u64 {
        self.issue_overhead_cycles
    }

    /// The configured burst discount in percent.
    pub fn burst_discount_pct(&self) -> u32 {
        self.burst_discount_pct
    }

    /// Absolute cycle by which every dispatched update has completed.
    pub fn drain_time(&self) -> u64 {
        self.busy_until.iter().copied().max().unwrap_or(0)
    }

    /// Total cycles voxels waited in the shared queue because their PE's
    /// in-flight window was full.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Updates dispatched in total.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Per-PE busy horizon (absolute cycles).
    pub fn busy_until(&self) -> &[u64] {
        &self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_for_branch(b: u16) -> VoxelKey {
        VoxelKey::new((b & 1) << 15, ((b >> 1) & 1) << 15, ((b >> 2) & 1) << 15)
    }

    #[test]
    fn branch_routing_with_8_pes() {
        let s = VoxelScheduler::new(8, 512);
        for b in 0..8 {
            assert_eq!(s.pe_for(key_for_branch(b)), b as usize);
        }
    }

    #[test]
    fn branch_folding_with_fewer_pes() {
        let s = VoxelScheduler::new(2, 512);
        assert_eq!(s.pe_for(key_for_branch(0)), 0);
        assert_eq!(s.pe_for(key_for_branch(1)), 1);
        assert_eq!(s.pe_for(key_for_branch(2)), 0);
        assert_eq!(s.pe_for(key_for_branch(7)), 1);
    }

    #[test]
    fn parallel_pes_overlap_service() {
        let mut s = VoxelScheduler::new(8, 512);
        s.begin_scan(0);
        // 8 updates of 100 cycles to 8 different PEs: issue 1/cycle,
        // drain ≈ 107, not 800.
        for pe in 0..8 {
            s.dispatch(pe, 100);
        }
        assert!(s.drain_time() <= 108, "drain = {}", s.drain_time());
        assert_eq!(s.stall_cycles(), 0);
    }

    #[test]
    fn single_pe_serializes() {
        let mut s = VoxelScheduler::new(1, 512);
        s.begin_scan(0);
        for _ in 0..8 {
            s.dispatch(0, 100);
        }
        assert!(s.drain_time() >= 800, "drain = {}", s.drain_time());
    }

    #[test]
    fn full_pe_window_delays_that_pe_only() {
        // Per-PE window of 2: the third update to PE 0 waits for PE 0's
        // head-of-line, but a dispatch to PE 1 right after is unaffected.
        let mut s = VoxelScheduler::new(8, 2);
        s.begin_scan(0);
        s.dispatch(0, 1000);
        s.dispatch(0, 1000);
        s.dispatch(0, 1000);
        assert!(s.stall_cycles() > 900, "stalls = {}", s.stall_cycles());
        let c = s.dispatch(1, 50);
        assert!(c < 100, "an idle PE serves immediately: completion {c}");
    }

    #[test]
    fn window_size_does_not_change_drain() {
        // The window delays arrivals, but a busy PE is bound by its total
        // service either way — latency is imbalance-bound, not queue-bound.
        let mut small = VoxelScheduler::new(8, 4);
        let mut large = VoxelScheduler::new(8, 4096);
        for s in [&mut small, &mut large] {
            s.begin_scan(0);
            for _ in 0..64 {
                s.dispatch(0, 100);
            }
        }
        assert_eq!(small.drain_time(), large.drain_time());
        assert!(small.stall_cycles() > large.stall_cycles());
    }

    #[test]
    fn dispatch_run_without_discount_matches_per_update_dispatch() {
        let mut one_by_one = VoxelScheduler::new(8, 16);
        let mut run = VoxelScheduler::new(8, 16);
        let service = [12u64, 13, 11, 12, 13, 11, 12, 13];
        one_by_one.begin_scan(0);
        run.begin_scan(0);
        let mut last = 0;
        for &s in &service {
            last = one_by_one.dispatch(3, s);
        }
        let run_last = run.dispatch_run(3, &service);
        assert_eq!(last, run_last);
        assert_eq!(one_by_one.drain_time(), run.drain_time());
        assert_eq!(one_by_one.stall_cycles(), run.stall_cycles());
        assert_eq!(run.runs_dispatched(), 1);
        assert_eq!(one_by_one.runs_dispatched(), 0);
        assert_eq!(run.burst_saved_cycles(), 0);
    }

    #[test]
    fn burst_discount_shortens_runs_but_not_their_head() {
        let service = [100u64; 8];
        let mut flat = VoxelScheduler::new(1, 512);
        flat.begin_scan(0);
        flat.dispatch_run(0, &service);

        let mut burst = VoxelScheduler::with_burst_discount(1, 512, 25);
        burst.begin_scan(0);
        burst.dispatch_run(0, &service);

        // 7 discounted updates at 75 cycles instead of 100.
        assert_eq!(burst.burst_saved_cycles(), 7 * 25);
        assert_eq!(
            burst.drain_time() + burst.burst_saved_cycles(),
            flat.drain_time()
        );

        // A second run starts with a full-cost head again.
        let before = burst.burst_saved_cycles();
        burst.dispatch_run(0, &[100]);
        assert_eq!(burst.burst_saved_cycles(), before, "run head pays full");
        assert_eq!(burst.runs_dispatched(), 2);
    }

    #[test]
    fn issue_overhead_charges_run_heads_only() {
        let service = [10u64; 4];
        let mut free = VoxelScheduler::new(1, 512);
        free.begin_scan(0);
        free.dispatch_run(0, &service);

        let mut priced = VoxelScheduler::new(1, 512);
        priced.set_issue_overhead(5);
        priced.begin_scan(0);
        priced.dispatch_run(0, &service);
        priced.dispatch_run(0, &service);

        // One 5-cycle charge per run, regardless of run length.
        assert_eq!(priced.issue_overhead_charged(), 10);
        assert_eq!(free.issue_overhead_charged(), 0);
        assert_eq!(
            priced.drain_time(),
            2 * free.drain_time() + 2 * 5,
            "each run head pays the overhead once"
        );
    }

    #[test]
    #[should_panic(expected = "burst discount")]
    fn overlarge_burst_discount_rejected() {
        let _ = VoxelScheduler::with_burst_discount(8, 16, 101);
    }

    #[test]
    fn begin_scan_never_rewinds_time() {
        let mut s = VoxelScheduler::new(8, 512);
        s.begin_scan(100);
        s.dispatch(0, 10);
        s.begin_scan(50); // earlier start must not rewind
        let c = s.dispatch(1, 10);
        assert!(c > 100);
    }

    #[test]
    #[should_panic(expected = "unsupported PE count")]
    fn bad_pe_count_rejected() {
        let _ = VoxelScheduler::new(3, 512);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_window_rejected() {
        let _ = VoxelScheduler::new(8, 0);
    }
}
