//! The OMU accelerator model — the primary contribution of *"OMU: A
//! Probabilistic 3D Occupancy Mapping Accelerator for Real-time OctoMap at
//! the Edge"* (Jia et al., DATE 2022), reproduced as a transaction-level
//! simulator with exact cycle, SRAM-access, energy and area accounting.
//!
//! # Architecture (paper Figs. 4–7)
//!
//! ```text
//!  3D point cloud ──► RayCastUnit ──► free/occupied voxel queues
//!                                          │
//!                                   VoxelScheduler (branch ID → PE)
//!                    ┌────────┬────────┬───┴────┬────────┐
//!                    ▼        ▼        ▼        ▼        ▼
//!                  PE-0     PE-1     ...      PE-7    (8 PEs)
//!                 8×32 kB  8×32 kB           8×32 kB
//!                 T-Mem    T-Mem             T-Mem
//!                    │ PruneAddrManager (stack) per PE │
//!                    └────────────── VoxelQueryUnit ◄──┘
//! ```
//!
//! - [`NodeEntry`] — the 64-bit packed node format:
//!   `pointer[63:32] | child tags[31:16] | fixed-point log-odds[15:0]`.
//! - [`TreeMem`] — 8 parallel single-port SRAM banks per PE; the 8
//!   children of a node share one row (child *i* in bank *i*), so a parent
//!   update or prune check reads all children in **one cycle**.
//! - [`PruneAddrManager`] — a stack of pruned row pointers, recycled on
//!   expansion, keeping SRAM utilization high.
//! - [`PeUnit`] — the update datapath: descend (create/expand as needed),
//!   leaf update, bottom-up parent update + prune, with per-stage cycle
//!   accounting.
//! - [`VoxelScheduler`] — routes updates to PEs by first-level branch ID
//!   and models the bounded per-PE input queues.
//! - [`OmuAccelerator`] — the full device: scan integration pipeline
//!   (ray casting overlapped with updates, AXI DMA model), queries, and
//!   reporting (energy/power/area).
//!
//! The accelerator's map is **bit-identical** to the software baseline
//! running on the same 16-bit fixed point
//! ([`OctreeFixed`](omu_octree::OctreeFixed)); [`verify`] provides the
//! equivalence checker used by the test suite.
//!
//! # Examples
//!
//! ```
//! use omu_core::{OmuAccelerator, OmuConfig};
//! use omu_geometry::{Occupancy, Point3, PointCloud, Scan};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut omu = OmuAccelerator::new(OmuConfig::default())?;
//! let scan = Scan::new(
//!     Point3::ZERO,
//!     [Point3::new(1.5, 0.2, 0.1)].into_iter().collect::<PointCloud>(),
//! );
//! omu.integrate_scan(&scan)?;
//! assert_eq!(omu.query_point(Point3::new(1.5, 0.2, 0.1))?, Occupancy::Occupied);
//! assert!(omu.stats().wall_cycles > 0);
//! # Ok(())
//! # }
//! ```

mod accel;
mod config;
mod entry;
mod error;
mod pe;
mod pipeline;
mod prune_mgr;
mod query_unit;
mod raycast_unit;
mod report;
mod scheduler;
mod stats;
mod treemem;
pub mod verify;

pub use accel::OmuAccelerator;
pub use config::{OmuConfig, OmuConfigBuilder, PeTiming};
pub use entry::{ChildStatus, NodeEntry, NULL_PTR};
pub use error::{AccelError, CapacityError, ConfigError};
pub use pe::{PeQueryCursor, PeQueryOutcome, PeUnit, PeUpdateOutcome};
pub use pipeline::{
    run_accelerator, run_accelerator_with_engine, summarize, AccelRunSummary, UpdateEngine,
};
pub use prune_mgr::{PruneAddrManager, PruneMgrStats};
pub use query_unit::QueryUnitStats;
pub use raycast_unit::RayCastUnit;
pub use report::{area_model, floorplan_ascii};
pub use scheduler::VoxelScheduler;
pub use stats::{AccelStats, PeStageCycles, PeStats};
pub use treemem::{RowBufferStats, TreeMem, COW_COPY_CYCLES};
