//! The top-level OMU accelerator (paper Fig. 7).

use omu_geometry::{FixedLogOdds, KeyConverter, Occupancy, Point3, ResolvedParams, Scan, VoxelKey};
use omu_octree::{cast_ray_resuming, collides_sphere_with, serve_morton_coalesced, RayCastResult};
use omu_raycast::{IntegrationStats, PacketStats, RayWalk, VoxelUpdate};
use omu_simhw::{tech12nm, AxiStreamModel, EnergyLedger, PowerReport};

use crate::config::OmuConfig;
use crate::error::AccelError;
use crate::pe::{PeQueryCursor, PeUnit};
use crate::pipeline::UpdateEngine;
use crate::query_unit::QueryUnitStats;
use crate::raycast_unit::RayCastUnit;
use crate::scheduler::VoxelScheduler;
use crate::stats::AccelStats;

/// The OMU accelerator: ray-casting unit, voxel scheduler, PE array,
/// prune address managers and voxel query unit, with full cycle/energy
/// accounting.
///
/// See the [crate-level documentation](crate) for an architecture tour
/// and a usage example.
#[derive(Debug, Clone)]
pub struct OmuAccelerator {
    config: OmuConfig,
    conv: KeyConverter,
    pes: Vec<PeUnit>,
    raycast: RayCastUnit,
    scheduler: VoxelScheduler,
    axi: AxiStreamModel,
    query_stats: QueryUnitStats,
    stats: AccelStats,
    // Reusable buffers for the batched front end.
    scratch_batch: Vec<(u64, VoxelUpdate)>,
    scratch_run: Vec<u64>,
    // The voxel query unit's cached-descent register files (one per PE)
    // and reusable buffers for the batched query entry points.
    query_cursors: Vec<PeQueryCursor>,
    scratch_qorder: Vec<(u64, u32)>,
    scratch_walk: RayWalk,
}

impl OmuAccelerator {
    /// Builds an accelerator from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Config`] when the configuration is invalid.
    pub fn new(config: OmuConfig) -> Result<Self, AccelError> {
        config.validate()?;
        let conv = KeyConverter::new(config.resolution)
            // omu-lint: allow(no-panic) — unreachable: `validate()` just
            // rejected non-positive resolutions on the line above.
            .expect("validate() guarantees a positive resolution");
        let resolved: ResolvedParams<FixedLogOdds> = config.params.resolve();
        let pes = (0..config.num_pes)
            .map(|id| {
                PeUnit::new(
                    id,
                    config.rows_per_bank,
                    config.prune_stack_capacity,
                    resolved,
                    config.timing,
                    config.pruning_enabled,
                )
            })
            .collect();
        let raycast = RayCastUnit::with_front_end(
            conv,
            config.max_range,
            config.integration_mode,
            config.front_end,
        );
        let scheduler = VoxelScheduler::with_burst_discount(
            config.num_pes,
            config.voxel_queue_capacity,
            config.burst_discount_pct,
        );
        let axi = AxiStreamModel::new(config.axi_bus_bits, config.clock_ghz);
        let query_cursors = vec![PeQueryCursor::new(); config.num_pes];
        Ok(OmuAccelerator {
            config,
            conv,
            pes,
            raycast,
            scheduler,
            axi,
            query_stats: QueryUnitStats::default(),
            stats: AccelStats::default(),
            scratch_batch: Vec::new(),
            scratch_run: Vec::new(),
            query_cursors,
            scratch_qorder: Vec::new(),
            scratch_walk: RayWalk::idle(),
        })
    }

    /// The configuration this device was built with.
    pub fn config(&self) -> &OmuConfig {
        &self.config
    }

    /// The key/coordinate converter.
    pub fn converter(&self) -> &KeyConverter {
        &self.conv
    }

    /// Integrates one scan: DMA transfer, ray casting, and voxel updates
    /// across the PE array, all overlapped; wall time advances by the
    /// slowest of the three pipelines. Returns the front-end integration
    /// statistics (rays, DDA steps, emitted updates), mirroring the
    /// software tree's `insert_scan` contract.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Key`] for an out-of-map scan origin and
    /// [`AccelError::Capacity`] when a PE exhausts its T-Mem (the scan is
    /// then partially applied, as it would be in hardware before the
    /// interrupt).
    pub fn integrate_scan(&mut self, scan: &Scan) -> Result<IntegrationStats, AccelError> {
        let scan_start = self.stats.wall_cycles;
        self.scheduler.begin_scan(scan_start);

        // Host DMA: 3 × f32 per point over the AXI stream.
        let dma_bytes = scan.len() as u64 * 12;
        let dma_cycles = self.axi.cycles_for_bytes(dma_bytes);

        let pes = &mut self.pes;
        let scheduler = &mut self.scheduler;
        let mut capacity_error = None;
        let mut dispatched_free = 0u64;
        let mut dispatched_occ = 0u64;

        let packet_before = self.raycast.packet_stats();
        let (istats, rc_cycles) = self.raycast.cast_scan(scan, |u| {
            if capacity_error.is_some() {
                return;
            }
            let pe = scheduler.pe_for(u.key);
            match pes[pe].update_voxel(u.key, u.hit) {
                Ok(out) => {
                    scheduler.dispatch(pe, out.service_cycles);
                    if u.hit {
                        dispatched_occ += 1;
                    } else {
                        dispatched_free += 1;
                    }
                }
                Err(e) => capacity_error = Some(e),
            }
        })?;

        self.record_scan_stats(
            scan_start,
            scan.len() as u64,
            istats.dda_steps,
            rc_cycles,
            dma_cycles,
            dma_bytes,
            dispatched_free,
            dispatched_occ,
            self.raycast.packet_stats().since(&packet_before),
        );

        if let Some(e) = capacity_error {
            return Err(e.into());
        }
        Ok(istats)
    }

    /// The per-scan bookkeeping both integration engines share.
    ///
    /// Ray casting and DMA overlap with the PE pipelines; PE work is
    /// allowed to flow across scan boundaries (the voxel queues never
    /// drain between frames), so the wall clock here only advances past
    /// the front-end; stats()/elapsed_seconds() account the PE drain.
    #[allow(clippy::too_many_arguments)]
    fn record_scan_stats(
        &mut self,
        scan_start: u64,
        points: u64,
        dda_steps: u64,
        rc_cycles: u64,
        dma_cycles: u64,
        dma_bytes: u64,
        dispatched_free: u64,
        dispatched_occ: u64,
        packet_delta: PacketStats,
    ) {
        self.stats.scans += 1;
        self.stats.points += points;
        self.stats.free_updates += dispatched_free;
        self.stats.occupied_updates += dispatched_occ;
        self.stats.voxel_updates += dispatched_free + dispatched_occ;
        self.stats.raycast_steps += dda_steps;
        self.stats.raycast_cycles += rc_cycles;
        self.stats.raycast_packets += packet_delta.packets;
        self.stats.raycast_supersteps += packet_delta.supersteps;
        self.stats.dma_cycles += dma_cycles;
        self.stats.dma_bytes += dma_bytes;
        self.stats.stall_cycles = self.scheduler.stall_cycles();
        self.stats.wall_cycles = (scan_start + rc_cycles).max(scan_start + dma_cycles);
    }

    /// Integrates one scan through the batched front end: ray casting
    /// first emits the scan's full update batch, the batch is sorted by
    /// Morton code, and updates are dispatched to the PE array in sorted
    /// order — each PE's work arriving as one contiguous run (the top
    /// three Morton bits are the branch ID that selects the PE).
    ///
    /// The resulting map is bit-identical to [`Self::integrate_scan`]
    /// (per-voxel update order is preserved by the stable sort, and the
    /// PEs prune canonically), which `tests/equivalence.rs` verifies; the
    /// run structure is what the batched software path exploits, and
    /// [`VoxelScheduler::runs_dispatched`](crate::VoxelScheduler)
    /// exposes it for locality reports.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::integrate_scan`].
    pub fn integrate_scan_batched(&mut self, scan: &Scan) -> Result<IntegrationStats, AccelError> {
        self.integrate_scan_sorted(scan, false)
    }

    /// Integrates one scan through the subtree-sharded front end: like
    /// [`Self::integrate_scan_batched`], but the batch is sorted by
    /// `(PE, Morton code)` so that *each PE's whole scan workload arrives
    /// as one contiguous run* — the branch-shard → PE mapping of the
    /// software engine (`apply_update_batch_parallel`) expressed in the
    /// accelerator model. With 8 PEs the branch and the PE coincide and
    /// this equals the batched path; with fewer PEs it merges a PE's
    /// folded branches into a single run, maximizing the burst discount.
    ///
    /// Bit-identical to the other engines: per-voxel update order is
    /// preserved by the stable sort, and PEs own disjoint subtrees, so
    /// reordering whole branch runs cannot change the map.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::integrate_scan`].
    pub fn integrate_scan_sharded(&mut self, scan: &Scan) -> Result<IntegrationStats, AccelError> {
        self.integrate_scan_sorted(scan, true)
    }

    /// Integrates one scan through the front end selected by `engine` —
    /// the single dispatch point every higher layer (the mapping pipeline,
    /// the `omu-map` facade, the bench harness) routes through, so engine
    /// selection is a value rather than a method name.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::integrate_scan`].
    pub fn integrate_scan_with(
        &mut self,
        scan: &Scan,
        engine: UpdateEngine,
    ) -> Result<IntegrationStats, AccelError> {
        match engine {
            UpdateEngine::Scalar => self.integrate_scan(scan),
            UpdateEngine::MortonBatched => self.integrate_scan_batched(scan),
            UpdateEngine::ShardedParallel => self.integrate_scan_sharded(scan),
        }
    }

    /// Shared body of the batched/sharded front ends: collect, sort (by
    /// Morton code, optionally grouped by PE first), dispatch as runs.
    fn integrate_scan_sorted(
        &mut self,
        scan: &Scan,
        group_by_pe: bool,
    ) -> Result<IntegrationStats, AccelError> {
        let scan_start = self.stats.wall_cycles;
        self.scheduler.begin_scan(scan_start);

        let dma_bytes = scan.len() as u64 * 12;
        let dma_cycles = self.axi.cycles_for_bytes(dma_bytes);

        // Front end: collect the whole scan's updates, then sort (stable,
        // so per-voxel update order is preserved). The Morton code is 48
        // bits, leaving the top 16 free for the PE id when grouping by
        // PE. The buffers are accelerator-owned scratch, so steady-state
        // scans allocate nothing.
        let scheduler = &self.scheduler;
        let mut batch = std::mem::take(&mut self.scratch_batch);
        batch.clear();
        let packet_before = self.raycast.packet_stats();
        let cast_result = self.raycast.cast_scan(scan, |u| {
            let mut sort_key = u.key.morton_code();
            if group_by_pe {
                sort_key |= (scheduler.pe_for(u.key) as u64) << 48;
            }
            batch.push((sort_key, u));
        });
        let (istats, rc_cycles) = match cast_result {
            Ok(r) => r,
            Err(e) => {
                self.scratch_batch = batch;
                return Err(e.into());
            }
        };
        batch.sort_by_key(|e| e.0);

        let mut capacity_error = None;
        let mut dispatched_free = 0u64;
        let mut dispatched_occ = 0u64;
        let mut run = std::mem::take(&mut self.scratch_run);
        run.clear();
        let mut run_pe = usize::MAX;
        for &(_, u) in &batch {
            let pe = self.scheduler.pe_for(u.key);
            if pe != run_pe && !run.is_empty() {
                self.scheduler.dispatch_run(run_pe, &run);
                run.clear();
            }
            run_pe = pe;
            match self.pes[pe].update_voxel(u.key, u.hit) {
                Ok(out) => {
                    run.push(out.service_cycles);
                    if u.hit {
                        dispatched_occ += 1;
                    } else {
                        dispatched_free += 1;
                    }
                }
                Err(e) => {
                    capacity_error = Some(e);
                    break;
                }
            }
        }
        if !run.is_empty() {
            self.scheduler.dispatch_run(run_pe, &run);
        }
        self.scratch_batch = batch;
        self.scratch_run = run;

        self.record_scan_stats(
            scan_start,
            scan.len() as u64,
            istats.dda_steps,
            rc_cycles,
            dma_cycles,
            dma_bytes,
            dispatched_free,
            dispatched_occ,
            self.raycast.packet_stats().since(&packet_before),
        );

        if let Some(e) = capacity_error {
            return Err(e.into());
        }
        Ok(istats)
    }

    /// Applies a single voxel update directly (bypassing ray casting) —
    /// the interface used by tests and microbenchmarks.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Capacity`] when the hosting PE is full.
    pub fn update_voxel(&mut self, key: VoxelKey, hit: bool) -> Result<(), AccelError> {
        let scan_start = self.stats.wall_cycles;
        self.scheduler.begin_scan(scan_start);
        let pe = self.scheduler.pe_for(key);
        let out = self.pes[pe].update_voxel(key, hit)?;
        self.scheduler.dispatch(pe, out.service_cycles);
        self.stats.voxel_updates += 1;
        if hit {
            self.stats.occupied_updates += 1;
        } else {
            self.stats.free_updates += 1;
        }
        self.stats.wall_cycles = scan_start.max(self.stats.wall_cycles);
        Ok(())
    }

    /// Queries the occupancy of the voxel at `key` through the voxel
    /// query unit.
    pub fn query_key(&mut self, key: VoxelKey) -> Occupancy {
        let pe = self.scheduler.pe_for(key);
        let (occ, cycles) = self.pes[pe].query(key);
        self.query_stats.record(cycles);
        self.stats.queries = self.query_stats.queries;
        self.stats.query_cycles = self.query_stats.cycles;
        occ
    }

    /// Queries the occupancy of the voxel containing `point`.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Key`] for out-of-map points.
    pub fn query_point(&mut self, point: Point3) -> Result<Occupancy, AccelError> {
        let key = self.conv.coord_to_key(point)?;
        Ok(self.query_key(key))
    }

    /// Multi-resolution query: classifies the node at `max_depth` covering
    /// `key`. Because inner nodes hold the max over their children
    /// (eq. 3), a coarse query answers "is anything occupied in this
    /// region?" in proportionally fewer cycles — the planner-facing fast
    /// path of the voxel query unit.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth` is 0 or exceeds
    /// [`TREE_DEPTH`](omu_geometry::TREE_DEPTH).
    pub fn query_key_at_depth(&mut self, key: VoxelKey, max_depth: u8) -> Occupancy {
        let pe = self.scheduler.pe_for(key);
        let (occ, cycles) = self.pes[pe].query_at_depth(key, max_depth);
        self.query_stats.record(cycles);
        self.stats.queries = self.query_stats.queries;
        self.stats.query_cycles = self.query_stats.cycles;
        occ
    }

    /// Reads the stored log-odds covering `key` without touching any
    /// hardware counter (map export / debugging aid, like
    /// [`Self::snapshot`] but for one voxel). Returns `None` for
    /// unobserved voxels.
    pub fn peek_logodds(&self, key: VoxelKey) -> Option<f32> {
        self.pes[self.scheduler.pe_for(key)].peek_logodds(key)
    }

    /// True when no PE holds any observation (O(1), no map walk).
    pub fn is_empty(&self) -> bool {
        self.pes.iter().all(PeUnit::is_empty)
    }

    /// The sorted leaves whose extents intersect the key box
    /// `[min, max]` (inclusive per axis), in the canonical
    /// `(key, depth, logodds)` snapshot form. Each PE prunes subtrees
    /// outside the box, so the cost scales with the region, not the map.
    pub fn snapshot_in_box(&self, min: VoxelKey, max: VoxelKey) -> Vec<(VoxelKey, u8, f32)> {
        let mut out = Vec::new();
        for pe in &self.pes {
            pe.snapshot_box_into(min, max, &mut out);
        }
        out.sort_by_key(|&(key, depth, _)| (key, depth));
        out
    }

    /// Number of leaves across all PEs, without materializing a
    /// snapshot.
    pub fn num_leaves(&self) -> usize {
        self.pes.iter().map(PeUnit::num_leaves).sum()
    }

    /// Multi-resolution query by point and region edge length: picks the
    /// deepest tree level whose nodes are at least `region_m` across.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Key`] for out-of-map points.
    pub fn query_region(&mut self, point: Point3, region_m: f64) -> Result<Occupancy, AccelError> {
        let key = self.conv.coord_to_key(point)?;
        let mut depth = omu_geometry::TREE_DEPTH;
        while depth > 1 && self.conv.node_size(depth) < region_m {
            depth -= 1;
        }
        Ok(self.query_key_at_depth(key, depth))
    }

    /// Invalidates the query unit's per-PE cached-descent registers.
    /// Every batched query entry point starts from cold cursors — the
    /// registers cache raw T-Mem contents, so a path cached before an
    /// update would be stale.
    fn reset_query_cursors(&mut self) {
        for c in &mut self.query_cursors {
            c.reset();
        }
    }

    /// Mirrors the query unit's totals into the device-level stats
    /// record.
    fn sync_query_stats(&mut self) {
        self.stats.queries = self.query_stats.queries;
        self.stats.query_cycles = self.query_stats.cycles;
    }

    /// Classifies a batch of voxel keys through the voxel query unit's
    /// cached-descent path, returning occupancies in input order.
    ///
    /// The batch is sorted by Morton code so each PE's probes arrive as
    /// contiguous runs: a probe sharing a root-path prefix with its PE's
    /// previous probe replays the shared levels from the unit's path
    /// registers at the scheduler's burst discount
    /// ([`OmuConfig::burst_discount_pct`]); duplicate keys are served
    /// from the result latch without any descent. Classifications are
    /// identical to calling [`Self::query_key`] per key.
    pub fn query_batch(&mut self, keys: &[VoxelKey]) -> Vec<Occupancy> {
        self.reset_query_cursors();
        let discount = self.config.burst_discount_pct;
        let overhead = self.config.timing.query_overhead;
        let mut order = std::mem::take(&mut self.scratch_qorder);
        let mut results = vec![Occupancy::Unknown; keys.len()];
        let pes = &mut self.pes;
        let scheduler = &self.scheduler;
        let cursors = &mut self.query_cursors;
        let qs = &mut self.query_stats;
        let mut duplicates = 0u64;
        serve_morton_coalesced(
            keys,
            &mut order,
            &mut results,
            |key| {
                let pe = scheduler.pe_for(key);
                let out = pes[pe].query_cached(key, &mut cursors[pe], discount);
                qs.record(out.cycles);
                qs.record_reuse(out.reused_levels, out.saved_cycles);
                out.occupancy
            },
            || duplicates += 1,
        );
        // Coalesced duplicates are served from the result latch at
        // overhead cost only.
        self.query_stats.queries += duplicates;
        self.query_stats.cycles += overhead * duplicates;
        self.query_stats.coalesced += duplicates;
        self.query_stats.batch_queries += keys.len() as u64;
        self.scratch_qorder = order;
        self.sync_query_stats();
        results
    }

    /// Casts a query ray through the voxel query unit: every DDA step's
    /// probe goes through the per-PE cached-descent registers, and
    /// adjacent steps share almost their whole root path, so the per-step
    /// descent is amortized O(1) T-Mem reads. The result is identical to
    /// probing every step with [`Self::query_key`].
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Key`] when the origin is outside the map or
    /// the direction is degenerate.
    pub fn cast_ray(
        &mut self,
        origin: Point3,
        direction: Point3,
        max_range: f64,
        ignore_unknown: bool,
    ) -> Result<RayCastResult, AccelError> {
        self.reset_query_cursors();
        self.cast_ray_warm(origin, direction, max_range, ignore_unknown)
    }

    /// Casts a batch of query rays (`(origin, direction)` pairs) through
    /// the query unit, reusing one DDA walk and keeping the descent
    /// registers warm across rays (no update can run in between). Results
    /// are in input order and identical to casting each ray through
    /// [`Self::cast_ray`].
    ///
    /// # Errors
    ///
    /// Returns the first [`AccelError::Key`] (in input order) for a bad
    /// origin or degenerate direction.
    pub fn cast_rays(
        &mut self,
        rays: &[(Point3, Point3)],
        max_range: f64,
        ignore_unknown: bool,
    ) -> Result<Vec<RayCastResult>, AccelError> {
        self.reset_query_cursors();
        rays.iter()
            .map(|&(o, d)| self.cast_ray_warm(o, d, max_range, ignore_unknown))
            .collect()
    }

    /// One ray through the query unit with whatever register state the
    /// cursors currently hold (valid because queries never update T-Mem).
    fn cast_ray_warm(
        &mut self,
        origin: Point3,
        direction: Point3,
        max_range: f64,
        ignore_unknown: bool,
    ) -> Result<RayCastResult, AccelError> {
        let conv = self.conv;
        let discount = self.config.burst_discount_pct;
        let mut walk = std::mem::replace(&mut self.scratch_walk, RayWalk::idle());
        let pes = &mut self.pes;
        let scheduler = &self.scheduler;
        let cursors = &mut self.query_cursors;
        let qs = &mut self.query_stats;
        let mut steps = 0u64;
        let res = cast_ray_resuming(
            &conv,
            &mut walk,
            origin,
            direction,
            max_range,
            ignore_unknown,
            |key| {
                steps += 1;
                let pe = scheduler.pe_for(key);
                let out = pes[pe].query_cached(key, &mut cursors[pe], discount);
                qs.record(out.cycles);
                qs.record_reuse(out.reused_levels, out.saved_cycles);
                match out.occupancy {
                    Occupancy::Occupied => (
                        Occupancy::Occupied,
                        pes[pe]
                            .peek_logodds(key)
                            // omu-lint: allow(no-panic) — the PE just
                            // classified this voxel Occupied, so its bank
                            // row necessarily holds a value.
                            .expect("occupied voxel must hold a value"),
                    ),
                    other => (other, 0.0),
                }
            },
        );
        self.scratch_walk = walk;
        self.query_stats.rays += 1;
        self.query_stats.ray_steps += steps;
        self.sync_query_stats();
        Ok(res?)
    }

    /// Sphere collision probe through the query unit: does a sphere of
    /// radius `radius` at `center` intersect any occupied voxel? The grid
    /// sweep inside the ball probes adjacent voxels, so the cached
    /// descent amortizes their shared prefixes. Classifications are
    /// identical to probing each voxel with [`Self::query_key`].
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::Key`] when the probe region leaves the map.
    pub fn collides_sphere(&mut self, center: Point3, radius: f64) -> Result<bool, AccelError> {
        self.reset_query_cursors();
        let conv = self.conv;
        let discount = self.config.burst_discount_pct;
        let pes = &mut self.pes;
        let scheduler = &self.scheduler;
        let cursors = &mut self.query_cursors;
        let qs = &mut self.query_stats;
        let res = collides_sphere_with(&conv, center, radius, |key| {
            let pe = scheduler.pe_for(key);
            let out = pes[pe].query_cached(key, &mut cursors[pe], discount);
            qs.record(out.cycles);
            qs.record_reuse(out.reused_levels, out.saved_cycles);
            out.occupancy
        });
        self.sync_query_stats();
        Ok(res?)
    }

    /// The voxel query unit's counters (queries, cycles, cached-descent
    /// reuse) — the read-side mirror of [`Self::stats`].
    pub fn query_unit_stats(&self) -> QueryUnitStats {
        self.query_stats
    }

    /// Publishes a serving snapshot: broadcasts an epoch pin to every
    /// PE's T-Mem and returns the pinned epoch. This is the hardware
    /// mirror of the software tree's `publish_snapshot` — until
    /// [`Self::release_snapshot`], the first write to any row stamped at
    /// or before the pinned epoch streams the row through the copy
    /// engine (priced SRAM traffic plus
    /// [`COW_COPY_CYCLES`](crate::treemem::COW_COPY_CYCLES) folded into
    /// that update's service time). The broadcast itself costs one cycle
    /// per PE plus a root latch on the wall clock.
    pub fn publish_snapshot(&mut self) -> u32 {
        let mut epoch = 0;
        for pe in &mut self.pes {
            epoch = pe.publish_epoch();
        }
        self.stats.snapshot_publishes += 1;
        self.stats.wall_cycles += self.pes.len() as u64 + 1;
        epoch
    }

    /// Releases every serving pin: writes land in place again and row
    /// copies stop being charged.
    pub fn release_snapshot(&mut self) {
        for pe in &mut self.pes {
            pe.release_pins();
        }
    }

    /// Whether a published snapshot is currently pinned (serving mode).
    pub fn serving(&self) -> bool {
        self.pes.iter().any(PeUnit::serving)
    }

    /// Device statistics, with per-PE counters sampled live. The wall
    /// clock includes draining all in-flight PE work.
    pub fn stats(&self) -> AccelStats {
        let mut s = self.stats.clone();
        s.wall_cycles = s.wall_cycles.max(self.scheduler.drain_time());
        s.per_pe = self.pes.iter().map(PeUnit::stats).collect();
        s
    }

    /// Wall-clock runtime so far, in seconds at the configured clock
    /// (including the drain of in-flight PE work).
    pub fn elapsed_seconds(&self) -> f64 {
        let cycles = self.stats.wall_cycles.max(self.scheduler.drain_time());
        omu_simhw::cycles_to_seconds(cycles, self.config.clock_ghz)
    }

    /// Contiguous same-PE runs dispatched by the batched front end
    /// ([`Self::integrate_scan_batched`]); 0 when only the scalar path
    /// ran.
    pub fn morton_runs(&self) -> u64 {
        self.scheduler.runs_dispatched()
    }

    /// Mean T-Mem utilization across PEs (live rows / usable rows).
    pub fn sram_utilization(&self) -> f64 {
        self.pes.iter().map(PeUnit::utilization).sum::<f64>() / self.pes.len() as f64
    }

    /// The canonical sorted map snapshot `(key, depth, logodds)`,
    /// comparable against
    /// [`OccupancyOctree::snapshot`](omu_octree::OccupancyOctree::snapshot).
    pub fn snapshot(&self) -> Vec<(VoxelKey, u8, f32)> {
        let mut out = Vec::new();
        for pe in &self.pes {
            pe.snapshot_into(&mut out);
        }
        out.sort_by_key(|&(key, depth, _)| (key, depth));
        out
    }

    /// Builds the energy ledger for everything executed so far, using the
    /// calibrated 12 nm constants.
    pub fn energy_ledger(&self) -> EnergyLedger {
        let stats = self.stats();
        let mut e = EnergyLedger::new();
        let sram = stats.sram_total();
        e.add(
            "sram.dynamic",
            sram.reads as f64 * tech12nm::SRAM_READ_PJ
                + sram.writes as f64 * tech12nm::SRAM_WRITE_PJ,
        );
        let runtime_s = stats.wall_seconds(self.config.clock_ghz);
        let banks = (self.config.num_pes * 8) as f64;
        e.add(
            "sram.leakage",
            tech12nm::SRAM_LEAKAGE_MW_PER_BANK * banks * runtime_s * 1e9,
        );
        e.add(
            "pe.logic",
            stats.pe_busy_total() as f64 * tech12nm::PE_LOGIC_PJ_PER_CYCLE,
        );
        e.add(
            "scheduler",
            stats.voxel_updates as f64 * tech12nm::SCHEDULER_PJ_PER_VOXEL,
        );
        e.add(
            "raycast",
            stats.raycast_steps as f64 * tech12nm::RAYCAST_PJ_PER_STEP,
        );
        e.add("query", stats.queries as f64 * tech12nm::QUERY_PJ_PER_QUERY);
        e.add("axi", stats.dma_bytes as f64 * tech12nm::AXI_PJ_PER_BYTE);
        e
    }

    /// Total modeled energy in joules.
    pub fn energy_joules(&self) -> f64 {
        self.energy_ledger().total_joules()
    }

    /// Average-power report over the elapsed runtime.
    ///
    /// # Panics
    ///
    /// Panics if nothing has been executed yet (zero runtime).
    pub fn power_report(&self) -> PowerReport {
        PowerReport::from_energy(&self.energy_ledger(), self.elapsed_seconds())
    }

    /// Flips one stored bit in a PE's T-Mem — soft-error fault injection
    /// for resilience experiments (see [`verify`](crate::verify)).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn inject_bit_flip(&mut self, pe: usize, row: u32, bank: usize, bit: u32) {
        self.pes[pe].inject_bit_flip(row, bank, bit);
    }

    /// Resets all activity statistics (map contents are kept).
    pub fn reset_stats(&mut self) {
        self.stats = AccelStats::default();
        self.query_stats = QueryUnitStats::default();
        for pe in &mut self.pes {
            pe.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omu_geometry::PointCloud;

    fn accel() -> OmuAccelerator {
        OmuAccelerator::new(OmuConfig::default()).unwrap()
    }

    fn scan(points: &[Point3]) -> Scan {
        Scan::new(Point3::ZERO, points.iter().copied().collect::<PointCloud>())
    }

    #[test]
    fn scan_integration_builds_queryable_map() {
        let mut omu = accel();
        omu.integrate_scan(&scan(&[
            Point3::new(2.0, 0.5, 0.5),
            Point3::new(-1.0, -0.5, 0.1),
        ]))
        .unwrap();
        assert_eq!(
            omu.query_point(Point3::new(2.0, 0.5, 0.5)).unwrap(),
            Occupancy::Occupied
        );
        assert_eq!(
            omu.query_point(Point3::new(1.0, 0.25, 0.25)).unwrap(),
            Occupancy::Free
        );
        assert_eq!(
            omu.query_point(Point3::new(5.0, 5.0, 5.0)).unwrap(),
            Occupancy::Unknown
        );
        let s = omu.stats();
        assert_eq!(s.scans, 1);
        assert_eq!(s.points, 2);
        assert_eq!(s.occupied_updates, 2);
        assert!(s.voxel_updates > 10);
        assert!(s.wall_cycles > 0);
        assert!(s.queries == 3);
    }

    #[test]
    fn serving_mode_prices_snapshot_publication_and_row_cow() {
        let pts: Vec<Point3> = (0..48)
            .map(|i| {
                let a = i as f64 * 0.13;
                Point3::new(3.0 * a.cos(), 3.0 * a.sin(), 0.4)
            })
            .collect();
        let s = Scan::new(
            Point3::new(0.01, 0.01, 0.21),
            pts.into_iter().collect::<PointCloud>(),
        );

        // Baseline: the same two scans with no snapshot pinned.
        let mut plain = accel();
        plain.integrate_scan(&s).unwrap();
        plain.integrate_scan(&s).unwrap();
        let base = plain.stats();
        assert_eq!(base.snapshot_publishes, 0);
        assert_eq!(base.cow_rows_copied(), 0);
        assert_eq!(base.cow_cycles(), 0);

        // Serving: publish between the scans, so the second scan's first
        // write to each pinned row streams it through the copy engine.
        let mut serving = accel();
        serving.integrate_scan(&s).unwrap();
        let epoch = serving.publish_snapshot();
        assert!(epoch >= 1);
        assert!(serving.serving());
        serving.integrate_scan(&s).unwrap();
        let st = serving.stats();
        assert_eq!(st.snapshot_publishes, 1);
        assert!(st.cow_rows_copied() > 0, "revisited rows must copy out");
        assert_eq!(
            st.cow_cycles(),
            st.cow_rows_copied() * crate::treemem::COW_COPY_CYCLES
        );
        // The copy traffic is priced: more SRAM accesses, more busy
        // cycles, more energy than the unpinned run — and the map itself
        // is unchanged by serving.
        assert!(st.sram_total().accesses() > base.sram_total().accesses());
        assert!(st.pe_busy_total() > base.pe_busy_total());
        assert!(serving.energy_joules() > plain.energy_joules());
        assert_eq!(serving.snapshot(), plain.snapshot());

        // Releasing the pin stops the charging.
        serving.release_snapshot();
        assert!(!serving.serving());
        let before = serving.stats().cow_rows_copied();
        serving.integrate_scan(&s).unwrap();
        assert_eq!(serving.stats().cow_rows_copied(), before);
    }

    #[test]
    fn updates_fan_out_across_pes() {
        let mut omu = accel();
        // One point per octant.
        let pts: Vec<Point3> = (0..8)
            .map(|b| {
                Point3::new(
                    if b & 1 != 0 { 2.0 } else { -2.0 },
                    if b & 2 != 0 { 2.0 } else { -2.0 },
                    if b & 4 != 0 { 2.0 } else { -2.0 },
                )
            })
            .collect();
        omu.integrate_scan(&Scan::new(
            Point3::new(0.01, 0.01, 0.01),
            pts.into_iter().collect::<PointCloud>(),
        ))
        .unwrap();
        let s = omu.stats();
        let active = s.per_pe.iter().filter(|p| p.updates > 0).count();
        assert_eq!(active, 8, "all 8 PEs must receive work");
    }

    #[test]
    fn wall_clock_reflects_parallelism() {
        // The same workload on 1 PE vs 8 PEs: the 8-PE device finishes
        // several times sooner (paper's 8× compute-parallelism claim).
        let pts: Vec<Point3> = (0..64)
            .map(|i| {
                let a = i as f64 * 0.098;
                Point3::new(3.0 * a.cos(), 3.0 * a.sin(), ((i % 8) as f64 - 4.0) * 0.4)
            })
            .collect();
        let s = Scan::new(
            Point3::new(0.01, 0.01, 0.21),
            pts.into_iter().collect::<PointCloud>(),
        );

        let mut omu8 = accel();
        omu8.integrate_scan(&s).unwrap();
        let mut omu1 =
            OmuAccelerator::new(OmuConfig::builder().num_pes(1).build().unwrap()).unwrap();
        omu1.integrate_scan(&s).unwrap();

        let speedup = omu1.stats().wall_cycles as f64 / omu8.stats().wall_cycles as f64;
        assert!(speedup > 3.0, "8-PE speedup over 1 PE = {speedup:.2}");
        // Same map either way.
        assert_eq!(omu1.snapshot(), omu8.snapshot());
    }

    #[test]
    fn batched_integration_matches_scalar_bitwise() {
        let pts: Vec<Point3> = (0..72)
            .map(|i| {
                let a = i as f64 * 0.087;
                Point3::new(4.0 * a.cos(), 4.0 * a.sin(), ((i % 6) as f64 - 3.0) * 0.3)
            })
            .collect();
        let s = Scan::new(
            Point3::new(0.01, 0.01, 0.11),
            pts.into_iter().collect::<PointCloud>(),
        );

        let mut scalar = accel();
        scalar.integrate_scan(&s).unwrap();
        let mut batched = accel();
        batched.integrate_scan_batched(&s).unwrap();

        assert_eq!(scalar.snapshot(), batched.snapshot());
        assert_eq!(scalar.stats().voxel_updates, batched.stats().voxel_updates);
        // Morton order groups each PE's work into a handful of runs —
        // far fewer than one dispatch per update.
        assert!(batched.morton_runs() > 0);
        assert!(batched.morton_runs() < batched.stats().voxel_updates / 4);
        assert_eq!(scalar.morton_runs(), 0);
    }

    #[test]
    fn sharded_integration_matches_scalar_bitwise_with_one_run_per_pe() {
        let pts: Vec<Point3> = (0..72)
            .map(|i| {
                let a = i as f64 * 0.087;
                Point3::new(4.0 * a.cos(), 4.0 * a.sin(), ((i % 6) as f64 - 3.0) * 0.3)
            })
            .collect();
        let s = Scan::new(
            Point3::new(0.01, 0.01, 0.11),
            pts.into_iter().collect::<PointCloud>(),
        );

        for num_pes in [2, 8] {
            let config = OmuConfig::builder().num_pes(num_pes).build().unwrap();
            let mut scalar = OmuAccelerator::new(config.clone()).unwrap();
            scalar.integrate_scan(&s).unwrap();
            let mut sharded = OmuAccelerator::new(config).unwrap();
            sharded.integrate_scan_sharded(&s).unwrap();

            assert_eq!(scalar.snapshot(), sharded.snapshot(), "num_pes={num_pes}");
            assert_eq!(scalar.stats().voxel_updates, sharded.stats().voxel_updates);
            // Grouping by PE compresses the scan to at most one run per PE.
            assert!(sharded.morton_runs() >= 1);
            assert!(
                sharded.morton_runs() <= num_pes as u64,
                "num_pes={num_pes}: {} runs",
                sharded.morton_runs()
            );
        }
    }

    #[test]
    fn burst_discount_makes_batched_engines_faster_in_cycles() {
        let pts: Vec<Point3> = (0..64)
            .map(|i| {
                let a = i as f64 * 0.098;
                Point3::new(3.0 * a.cos(), 3.0 * a.sin(), ((i % 8) as f64 - 4.0) * 0.4)
            })
            .collect();
        let s = Scan::new(
            Point3::new(0.01, 0.01, 0.21),
            pts.into_iter().collect::<PointCloud>(),
        );

        let mut scalar = accel();
        scalar.integrate_scan(&s).unwrap();
        let mut batched = accel();
        batched.integrate_scan_batched(&s).unwrap();

        // Same map, fewer cycles: contiguous runs earn the burst discount.
        assert_eq!(scalar.snapshot(), batched.snapshot());
        let scalar_drain = scalar.stats().wall_cycles;
        let batched_drain = batched.stats().wall_cycles;
        assert!(
            batched_drain < scalar_drain,
            "batched {batched_drain} vs scalar {scalar_drain} cycles"
        );

        // Disabling the discount removes exactly that win: the same
        // batched run structure costs more cycles at 0 % discount.
        let flat_config = OmuConfig::builder().burst_discount_pct(0).build().unwrap();
        let mut flat_batched = OmuAccelerator::new(flat_config).unwrap();
        flat_batched.integrate_scan_batched(&s).unwrap();
        assert_eq!(flat_batched.snapshot(), batched.snapshot());
        assert!(
            flat_batched.stats().wall_cycles > batched_drain,
            "0 % discount {} vs 25 % discount {batched_drain} cycles",
            flat_batched.stats().wall_cycles
        );
    }

    #[test]
    fn energy_ledger_is_sram_dominated() {
        let mut omu = accel();
        for i in 0..20 {
            let a = i as f64 * 0.3;
            omu.integrate_scan(&scan(&[Point3::new(4.0 * a.cos(), 4.0 * a.sin(), 0.5)]))
                .unwrap();
        }
        let ledger = omu.energy_ledger();
        assert!(ledger.total_pj() > 0.0);
        let sram_share = ledger.share_prefix("sram");
        assert!(
            sram_share > 0.75,
            "SRAM should dominate accelerator energy (paper: 91 %), got {sram_share:.2}"
        );
        let p = omu.power_report();
        assert!(p.total_mw() > 0.0);
    }

    #[test]
    fn capacity_error_surfaces_from_integration() {
        let mut tiny =
            OmuAccelerator::new(OmuConfig::builder().rows_per_bank(4).build().unwrap()).unwrap();
        let e = tiny
            .integrate_scan(&scan(&[Point3::new(2.0, 0.5, 0.5)]))
            .unwrap_err();
        assert!(matches!(e, AccelError::Capacity(_)));
    }

    #[test]
    fn bad_origin_is_key_error() {
        let mut omu = accel();
        let far = omu.converter().map_half_extent() + 10.0;
        let e = omu
            .integrate_scan(&Scan::new(
                Point3::new(far, 0.0, 0.0),
                [Point3::ZERO].into_iter().collect::<PointCloud>(),
            ))
            .unwrap_err();
        assert!(matches!(e, AccelError::Key(_)));
    }

    #[test]
    fn region_query_uses_coarse_levels() {
        let mut omu = accel();
        omu.integrate_scan(&scan(&[Point3::new(3.0, 1.0, 0.5)]))
            .unwrap();
        // Fine query on the endpoint voxel.
        assert_eq!(
            omu.query_point(Point3::new(3.0, 1.0, 0.5)).unwrap(),
            Occupancy::Occupied
        );
        // A 2 m region around the endpoint is occupied (max policy).
        assert_eq!(
            omu.query_region(Point3::new(3.0, 1.0, 0.5), 2.0).unwrap(),
            Occupancy::Occupied
        );
        // Coarse queries cost fewer cycles than fine ones on average.
        let before = omu.stats().query_cycles;
        omu.query_key_at_depth(
            omu.converter()
                .coord_to_key(Point3::new(3.0, 1.0, 0.5))
                .unwrap(),
            4,
        );
        let coarse_cost = omu.stats().query_cycles - before;
        let before = omu.stats().query_cycles;
        omu.query_point(Point3::new(3.0, 1.0, 0.5)).unwrap();
        let fine_cost = omu.stats().query_cycles - before;
        assert!(
            coarse_cost <= fine_cost,
            "coarse {coarse_cost} vs fine {fine_cost}"
        );
    }

    #[test]
    fn reset_stats_keeps_map() {
        let mut omu = accel();
        omu.integrate_scan(&scan(&[Point3::new(1.0, 0.0, 0.0)]))
            .unwrap();
        omu.reset_stats();
        assert_eq!(omu.stats().voxel_updates, 0);
        assert_eq!(
            omu.query_point(Point3::new(1.0, 0.0, 0.0)).unwrap(),
            Occupancy::Occupied
        );
    }

    #[test]
    fn query_batch_matches_scalar_queries_and_discounts() {
        let pts: Vec<Point3> = (0..48)
            .map(|i| {
                let a = i as f64 * 0.131;
                Point3::new(2.0 * a.cos(), 2.0 * a.sin(), 0.2)
            })
            .collect();
        let mut omu = accel();
        omu.integrate_scan(&Scan::new(
            Point3::new(0.01, 0.01, 0.01),
            pts.into_iter().collect::<PointCloud>(),
        ))
        .unwrap();

        // A probe stream with spatial coherence plus exact duplicates.
        let mut keys: Vec<VoxelKey> = (0..200u16)
            .map(|i| VoxelKey::new(32700 + i % 60, 32760 + i / 4, 32770 + i % 3))
            .collect();
        keys.extend_from_slice(&keys.clone()[..40]);

        let expected: Vec<Occupancy> = keys.iter().map(|&k| omu.query_key(k)).collect();
        let scalar_cycles = omu.query_unit_stats().cycles;
        let got = omu.query_batch(&keys);
        assert_eq!(got, expected);

        let q = omu.query_unit_stats();
        assert_eq!(q.batch_queries, 240);
        assert!(q.coalesced >= 40, "duplicates must coalesce");
        assert!(q.reused_levels > 0, "Morton order must replay registers");
        assert!(q.saved_cycles > 0);
        // The cached path serves the same stream in fewer cycles than the
        // scalar unit did.
        assert!(q.cycles - scalar_cycles < scalar_cycles);
        // Device stats mirror the unit.
        assert_eq!(omu.stats().queries, q.queries);
        assert_eq!(omu.stats().query_cycles, q.cycles);
    }

    #[test]
    fn accel_cast_ray_and_sphere_probe_count_reuse() {
        let pts: Vec<Point3> = (0..48)
            .map(|i| {
                let a = i as f64 * 0.131;
                Point3::new(2.0 * a.cos(), 2.0 * a.sin(), 0.2)
            })
            .collect();
        let mut omu = accel();
        omu.integrate_scan(&Scan::new(
            Point3::new(0.01, 0.01, 0.01),
            pts.into_iter().collect::<PointCloud>(),
        ))
        .unwrap();

        let hit = omu
            .cast_ray(
                Point3::new(0.01, 0.01, 0.2),
                Point3::new(1.0, 0.0, 0.0),
                5.0,
                true,
            )
            .unwrap();
        match hit {
            RayCastResult::Hit { point, logodds, .. } => {
                assert!((point.x - 2.0).abs() < 0.2, "wall sits at r = 2: {point}");
                assert!(logodds > 0.0);
            }
            other => panic!("expected a hit, got {other:?}"),
        }
        let q = omu.query_unit_stats();
        assert_eq!(q.rays, 1);
        assert!(q.ray_steps > 10, "2 m at 0.1 m voxels is ≥ 20 steps");
        assert!(
            q.reused_levels as f64 / q.ray_steps as f64 > 8.0,
            "adjacent DDA steps replay most of the 16-level path"
        );

        // Batch form agrees with per-ray casting.
        let rays: Vec<(Point3, Point3)> = (0..8)
            .map(|i| {
                let a = i as f64 * 0.7;
                (
                    Point3::new(0.01, 0.01, 0.2),
                    Point3::new(a.cos(), a.sin(), 0.0),
                )
            })
            .collect();
        let batch = omu.cast_rays(&rays, 5.0, true).unwrap();
        for (i, &(o, d)) in rays.iter().enumerate() {
            assert_eq!(batch[i], omu.cast_ray(o, d, 5.0, true).unwrap(), "ray {i}");
        }
        assert!(omu
            .cast_rays(&[(Point3::ZERO, Point3::ZERO)], 5.0, true)
            .is_err());

        // Sphere probes classify like scalar queries.
        assert!(omu
            .collides_sphere(Point3::new(2.0, 0.0, 0.2), 0.3)
            .unwrap());
        assert!(!omu
            .collides_sphere(Point3::new(0.5, 0.5, 0.2), 0.2)
            .unwrap());
    }

    #[test]
    fn direct_update_path_works() {
        let mut omu = accel();
        let key = omu
            .converter()
            .coord_to_key(Point3::new(0.5, 0.5, 0.5))
            .unwrap();
        omu.update_voxel(key, true).unwrap();
        assert_eq!(omu.query_key(key), Occupancy::Occupied);
        assert_eq!(omu.stats().voxel_updates, 1);
        assert!(omu.elapsed_seconds() > 0.0);
    }
}
