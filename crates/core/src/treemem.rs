//! The per-PE tree memory: 8 parallel single-port SRAM banks with an
//! open-row (row-buffer) model.
//!
//! The 8 children of any node share one row address; child `i` lives in
//! bank `i` (`T-Mem i`). A parent update or prune check therefore reads
//! all 8 children in a single cycle — the 8× memory-bandwidth improvement
//! of Section IV-B.
//!
//! Each bank additionally keeps an *open-row register*: the row address
//! of its most recent access. Accesses that hit the open row are counted
//! separately ([`RowBufferStats`]) — the hardware analogue of the
//! software arena's sibling-row cache line staying hot while
//! Morton-adjacent updates descend the same rows. The PE's descent
//! pricing can charge row-buffer hits at a cheaper rate
//! (`PeTiming::traverse_row_hit`); with the default timing both rates are
//! equal, preserving the paper's calibrated ≈100 cycles per update while
//! still *measuring* the row locality that a row-aware design exploits.

use omu_simhw::{SramBank, SramSpec, SramStats};
use serde::{Deserialize, Serialize};

use crate::entry::NodeEntry;

/// Sentinel for "no row open yet".
const NO_ROW: u32 = u32::MAX;

/// Cycles to stream one row through the copy engine (row read + row
/// write, each one cycle across the 8 parallel banks).
pub const COW_COPY_CYCLES: u64 = 2;

/// Open-row (row-buffer) hit/miss counters across a tree memory's banks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowBufferStats {
    /// Counted accesses that hit the bank's open row.
    pub hits: u64,
    /// Counted accesses that opened a different row.
    pub misses: u64,
}

impl RowBufferStats {
    /// Fraction of accesses served from the open row (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates another record.
    pub fn merge(&mut self, other: &RowBufferStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// One PE's tree memory: 8 banks of 64-bit node entries.
#[derive(Debug, Clone)]
pub struct TreeMem {
    banks: Vec<SramBank>,
    rows: usize,
    open_row: [u32; Self::BANKS],
    row_stats: RowBufferStats,
    /// Epoch each row was last made current in (serving mode).
    row_stamps: Vec<u32>,
    /// Current write epoch; rows written now are stamped with it.
    epoch: u32,
    /// Newest pinned (published) epoch, if a snapshot is being served.
    /// Pins are monotone, so the newest one is reachability-conservative
    /// for every older one still alive on the host.
    pinned: Option<u32>,
    cow_rows_copied: u64,
    cow_cycles_pending: u64,
}

impl TreeMem {
    /// Number of banks (fixed at 8: one per child).
    pub const BANKS: usize = 8;

    /// Creates a zeroed tree memory with `rows` rows per bank.
    pub fn new(rows: usize) -> Self {
        let spec = SramSpec::new(rows, 64);
        TreeMem {
            banks: (0..Self::BANKS).map(|_| SramBank::new(spec)).collect(),
            rows,
            open_row: [NO_ROW; Self::BANKS],
            row_stats: RowBufferStats::default(),
            row_stamps: vec![0; rows],
            epoch: 1,
            pinned: None,
            cow_rows_copied: 0,
            cow_cycles_pending: 0,
        }
    }

    /// Rows per bank.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Records an access to (`row`, `bank`) against the bank's open-row
    /// register, returning whether it hit.
    #[inline]
    fn touch(&mut self, row: u32, bank: usize) -> bool {
        let hit = self.open_row[bank] == row;
        if hit {
            self.row_stats.hits += 1;
        } else {
            self.row_stats.misses += 1;
            self.open_row[bank] = row;
        }
        hit
    }

    /// Row-COW hook on the write path: while a published epoch is
    /// pinned, the first write to a row still stamped at (or before)
    /// that epoch first streams the whole row out through the copy
    /// engine — 8 bank reads plus 8 bank writes of priced traffic, so
    /// the energy ledger sees serving-mode copies — and restamps the
    /// row with the current epoch. Later writes in the same epoch hit
    /// the restamped row and pay nothing. A strict no-op when no
    /// snapshot is pinned, keeping every non-serving access count
    /// bit-identical to the pre-serving model.
    #[inline]
    fn make_row_current(&mut self, row: u32) {
        let Some(pinned) = self.pinned else { return };
        if self.row_stamps[row as usize] > pinned {
            return;
        }
        for bank in 0..Self::BANKS {
            self.touch(row, bank);
            let word = self.banks[bank].read(row as usize);
            self.touch(row, bank);
            self.banks[bank].write(row as usize, word);
        }
        self.cow_rows_copied += 1;
        self.cow_cycles_pending += COW_COPY_CYCLES;
        self.row_stamps[row as usize] = self.epoch;
    }

    /// Pins the current epoch for serving (snapshot publish) and opens
    /// the next one, returning the pinned epoch. Mirrors the software
    /// arena's `publish_pin`: every row stamped at or before the pinned
    /// epoch is copy-on-write until restamped.
    pub fn publish_epoch(&mut self) -> u32 {
        let pinned = self.epoch;
        self.pinned = Some(pinned);
        self.epoch += 1;
        pinned
    }

    /// Drops all pins: subsequent writes land in place again.
    pub fn release_pins(&mut self) {
        self.pinned = None;
    }

    /// Whether a published epoch is currently pinned.
    pub fn serving(&self) -> bool {
        self.pinned.is_some()
    }

    /// Rows streamed through the copy engine since the last stats reset.
    pub fn cow_rows_copied(&self) -> u64 {
        self.cow_rows_copied
    }

    /// Takes the copy-engine cycles accrued since the last take — the PE
    /// folds these into the service time of the update that triggered
    /// the copies, so serving-mode overhead flows through the scheduler's
    /// busy/stall/drain accounting like any other datapath stage.
    pub fn take_cow_cycles(&mut self) -> u64 {
        std::mem::take(&mut self.cow_cycles_pending)
    }

    /// Reads the entry at (`row`, `bank`) — one bank access.
    #[inline]
    pub fn read_entry(&mut self, row: u32, bank: usize) -> NodeEntry {
        self.read_entry_hit(row, bank).0
    }

    /// [`Self::read_entry`] plus whether the access hit the bank's open
    /// row — the signal the PE's row-aware descent pricing consumes.
    #[inline]
    pub fn read_entry_hit(&mut self, row: u32, bank: usize) -> (NodeEntry, bool) {
        let hit = self.touch(row, bank);
        (NodeEntry::unpack(self.banks[bank].read(row as usize)), hit)
    }

    /// Writes the entry at (`row`, `bank`) — one bank access.
    #[inline]
    pub fn write_entry(&mut self, row: u32, bank: usize, entry: NodeEntry) {
        self.make_row_current(row);
        self.touch(row, bank);
        self.banks[bank].write(row as usize, entry.pack());
    }

    /// Reads a whole row — 8 parallel bank accesses, one cycle in
    /// hardware.
    #[inline]
    pub fn read_row(&mut self, row: u32) -> [NodeEntry; 8] {
        std::array::from_fn(|bank| {
            self.touch(row, bank);
            NodeEntry::unpack(self.banks[bank].read(row as usize))
        })
    }

    /// Writes a whole row — 8 parallel bank accesses, one cycle.
    #[inline]
    pub fn write_row(&mut self, row: u32, entries: [NodeEntry; 8]) {
        self.make_row_current(row);
        for (bank, e) in entries.iter().enumerate() {
            self.touch(row, bank);
            self.banks[bank].write(row as usize, e.pack());
        }
    }

    /// Reads an entry without counting an access (map export only).
    #[inline]
    pub fn peek_entry(&self, row: u32, bank: usize) -> NodeEntry {
        NodeEntry::unpack(self.banks[bank].peek(row as usize))
    }

    /// Combined access counters over all 8 banks.
    pub fn stats(&self) -> SramStats {
        let mut s = SramStats::default();
        for b in &self.banks {
            s.merge(&b.stats());
        }
        s
    }

    /// Open-row hit/miss counters over all 8 banks.
    pub fn row_stats(&self) -> RowBufferStats {
        self.row_stats
    }

    /// Resets the access counters and open-row registers (contents kept).
    pub fn reset_stats(&mut self) {
        for b in &mut self.banks {
            b.reset_stats();
        }
        self.open_row = [NO_ROW; Self::BANKS];
        self.row_stats = RowBufferStats::default();
        self.cow_rows_copied = 0;
        self.cow_cycles_pending = 0;
    }

    /// Flips one bit of the entry at (`row`, `bank`) — soft-error fault
    /// injection for resilience experiments.
    ///
    /// # Panics
    ///
    /// Panics if `row`, `bank` or `bit` is out of range.
    pub fn inject_bit_flip(&mut self, row: u32, bank: usize, bit: u32) {
        self.banks[bank].inject_bit_flip(row as usize, bit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omu_geometry::FixedLogOdds;

    #[test]
    fn entries_land_in_their_bank() {
        let mut m = TreeMem::new(16);
        let e = NodeEntry {
            ptr: 5,
            tags: 0x00FF,
            prob: FixedLogOdds::from_f32(1.0),
        };
        m.write_entry(3, 2, e);
        assert_eq!(m.read_entry(3, 2), e);
        assert_eq!(m.read_entry(3, 1), NodeEntry::EMPTY);
    }

    #[test]
    fn row_operations_touch_all_banks() {
        let mut m = TreeMem::new(8);
        let row: [NodeEntry; 8] = std::array::from_fn(|i| NodeEntry {
            ptr: i as u32,
            tags: 0,
            prob: FixedLogOdds::from_bits(i as i16),
        });
        m.write_row(2, row);
        assert_eq!(m.read_row(2), row);
        // 8 writes + 8 reads counted.
        assert_eq!(m.stats().writes, 8);
        assert_eq!(m.stats().reads, 8);
    }

    #[test]
    fn peek_does_not_count() {
        let mut m = TreeMem::new(4);
        m.write_entry(1, 0, NodeEntry::EMPTY);
        let before = m.stats();
        let row_before = m.row_stats();
        let _ = m.peek_entry(1, 0);
        assert_eq!(m.stats(), before);
        assert_eq!(m.row_stats(), row_before);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut m = TreeMem::new(4);
        let e = NodeEntry {
            ptr: 9,
            tags: 1,
            prob: FixedLogOdds::ZERO,
        };
        m.write_entry(0, 7, e);
        m.reset_stats();
        assert_eq!(m.stats().accesses(), 0);
        assert_eq!(m.row_stats(), RowBufferStats::default());
        assert_eq!(m.peek_entry(0, 7), e);
    }

    #[test]
    fn open_row_tracks_hits_per_bank() {
        let mut m = TreeMem::new(8);
        // First access to a bank always misses (opens the row).
        let (_, hit) = m.read_entry_hit(3, 0);
        assert!(!hit);
        // Same row, same bank: hit.
        let (_, hit) = m.read_entry_hit(3, 0);
        assert!(hit);
        // Same row, different bank: that bank's register is still closed.
        let (_, hit) = m.read_entry_hit(3, 1);
        assert!(!hit);
        // Different row evicts the open row.
        let (_, hit) = m.read_entry_hit(5, 0);
        assert!(!hit);
        let (_, hit) = m.read_entry_hit(3, 0);
        assert!(!hit, "row 3 was evicted by row 5");
        assert_eq!(m.row_stats().hits, 1);
        assert_eq!(m.row_stats().misses, 4);
        assert!(m.row_stats().hit_rate() > 0.0);
    }

    #[test]
    fn cow_is_inert_until_published() {
        let mut m = TreeMem::new(8);
        m.write_row(2, [NodeEntry::EMPTY; 8]);
        m.write_entry(2, 0, NodeEntry::EMPTY);
        assert!(!m.serving());
        assert_eq!(m.cow_rows_copied(), 0);
        assert_eq!(m.take_cow_cycles(), 0);
        // Non-serving access counts are bit-identical to the pre-serving
        // model: exactly the writes issued above, no copy traffic.
        assert_eq!(m.stats().writes, 9);
        assert_eq!(m.stats().reads, 0);
    }

    #[test]
    fn first_write_after_publish_copies_the_row_once() {
        let mut m = TreeMem::new(8);
        let e = NodeEntry {
            ptr: 1,
            tags: 2,
            prob: FixedLogOdds::from_bits(3),
        };
        m.write_entry(4, 0, e);
        m.reset_stats();
        assert_eq!(m.publish_epoch(), 1);
        assert!(m.serving());
        // First write streams the row out: 8 reads + 8 copy writes on
        // top of the write itself.
        m.write_entry(4, 1, e);
        assert_eq!(m.cow_rows_copied(), 1);
        assert_eq!(m.stats().reads, 8);
        assert_eq!(m.stats().writes, 9);
        assert_eq!(m.take_cow_cycles(), COW_COPY_CYCLES);
        // The restamped row is current: later writes pay nothing extra.
        m.write_entry(4, 2, e);
        assert_eq!(m.cow_rows_copied(), 1);
        assert_eq!(m.take_cow_cycles(), 0);
        // Logical contents survive the copy.
        assert_eq!(m.peek_entry(4, 0), e);
        // Released pins end the charging.
        m.release_pins();
        m.write_entry(5, 0, e);
        assert_eq!(m.cow_rows_copied(), 1);
    }

    #[test]
    fn each_publish_reopens_cow_protection() {
        let mut m = TreeMem::new(8);
        m.publish_epoch();
        m.write_entry(0, 0, NodeEntry::EMPTY); // copy 1
        m.publish_epoch();
        m.write_entry(0, 0, NodeEntry::EMPTY); // copy 2: restamped row re-pinned
        m.write_entry(0, 0, NodeEntry::EMPTY); // current — no copy
        assert_eq!(m.cow_rows_copied(), 2);
        // Resetting stats clears the counters but keeps serving state.
        m.reset_stats();
        assert_eq!(m.cow_rows_copied(), 0);
        assert!(m.serving());
    }

    #[test]
    fn row_sweeps_keep_rows_open() {
        let mut m = TreeMem::new(8);
        m.write_row(2, [NodeEntry::EMPTY; 8]); // 8 misses, opens row 2 everywhere
        let _ = m.read_row(2); // 8 hits
        assert_eq!(m.row_stats().misses, 8);
        assert_eq!(m.row_stats().hits, 8);
    }
}
