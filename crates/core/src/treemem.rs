//! The per-PE tree memory: 8 parallel single-port SRAM banks.
//!
//! The 8 children of any node share one row address; child `i` lives in
//! bank `i` (`T-Mem i`). A parent update or prune check therefore reads
//! all 8 children in a single cycle — the 8× memory-bandwidth improvement
//! of Section IV-B.

use omu_simhw::{SramBank, SramSpec, SramStats};

use crate::entry::NodeEntry;

/// One PE's tree memory: 8 banks of 64-bit node entries.
#[derive(Debug, Clone)]
pub struct TreeMem {
    banks: Vec<SramBank>,
    rows: usize,
}

impl TreeMem {
    /// Number of banks (fixed at 8: one per child).
    pub const BANKS: usize = 8;

    /// Creates a zeroed tree memory with `rows` rows per bank.
    pub fn new(rows: usize) -> Self {
        let spec = SramSpec::new(rows, 64);
        TreeMem {
            banks: (0..Self::BANKS).map(|_| SramBank::new(spec)).collect(),
            rows,
        }
    }

    /// Rows per bank.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Reads the entry at (`row`, `bank`) — one bank access.
    #[inline]
    pub fn read_entry(&mut self, row: u32, bank: usize) -> NodeEntry {
        NodeEntry::unpack(self.banks[bank].read(row as usize))
    }

    /// Writes the entry at (`row`, `bank`) — one bank access.
    #[inline]
    pub fn write_entry(&mut self, row: u32, bank: usize, entry: NodeEntry) {
        self.banks[bank].write(row as usize, entry.pack());
    }

    /// Reads a whole row — 8 parallel bank accesses, one cycle in
    /// hardware.
    #[inline]
    pub fn read_row(&mut self, row: u32) -> [NodeEntry; 8] {
        std::array::from_fn(|bank| NodeEntry::unpack(self.banks[bank].read(row as usize)))
    }

    /// Writes a whole row — 8 parallel bank accesses, one cycle.
    #[inline]
    pub fn write_row(&mut self, row: u32, entries: [NodeEntry; 8]) {
        for (bank, e) in entries.iter().enumerate() {
            self.banks[bank].write(row as usize, e.pack());
        }
    }

    /// Reads an entry without counting an access (map export only).
    #[inline]
    pub fn peek_entry(&self, row: u32, bank: usize) -> NodeEntry {
        NodeEntry::unpack(self.banks[bank].peek(row as usize))
    }

    /// Combined access counters over all 8 banks.
    pub fn stats(&self) -> SramStats {
        let mut s = SramStats::default();
        for b in &self.banks {
            s.merge(&b.stats());
        }
        s
    }

    /// Resets the access counters (contents kept).
    pub fn reset_stats(&mut self) {
        for b in &mut self.banks {
            b.reset_stats();
        }
    }

    /// Flips one bit of the entry at (`row`, `bank`) — soft-error fault
    /// injection for resilience experiments.
    ///
    /// # Panics
    ///
    /// Panics if `row`, `bank` or `bit` is out of range.
    pub fn inject_bit_flip(&mut self, row: u32, bank: usize, bit: u32) {
        self.banks[bank].inject_bit_flip(row as usize, bit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omu_geometry::FixedLogOdds;

    #[test]
    fn entries_land_in_their_bank() {
        let mut m = TreeMem::new(16);
        let e = NodeEntry {
            ptr: 5,
            tags: 0x00FF,
            prob: FixedLogOdds::from_f32(1.0),
        };
        m.write_entry(3, 2, e);
        assert_eq!(m.read_entry(3, 2), e);
        assert_eq!(m.read_entry(3, 1), NodeEntry::EMPTY);
    }

    #[test]
    fn row_operations_touch_all_banks() {
        let mut m = TreeMem::new(8);
        let row: [NodeEntry; 8] = std::array::from_fn(|i| NodeEntry {
            ptr: i as u32,
            tags: 0,
            prob: FixedLogOdds::from_bits(i as i16),
        });
        m.write_row(2, row);
        assert_eq!(m.read_row(2), row);
        // 8 writes + 8 reads counted.
        assert_eq!(m.stats().writes, 8);
        assert_eq!(m.stats().reads, 8);
    }

    #[test]
    fn peek_does_not_count() {
        let mut m = TreeMem::new(4);
        m.write_entry(1, 0, NodeEntry::EMPTY);
        let before = m.stats();
        let _ = m.peek_entry(1, 0);
        assert_eq!(m.stats(), before);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut m = TreeMem::new(4);
        let e = NodeEntry {
            ptr: 9,
            tags: 1,
            prob: FixedLogOdds::ZERO,
        };
        m.write_entry(0, 7, e);
        m.reset_stats();
        assert_eq!(m.stats().accesses(), 0);
        assert_eq!(m.peek_entry(0, 7), e);
    }
}
