//! The dynamic prune address manager (paper Fig. 6).
//!
//! Each PE owns one: a stack buffer records the row pointers freed by tree
//! pruning, and tree expansion pops them for reuse before falling back to
//! fresh rows. This keeps T-Mem utilization high during long mapping runs
//! where the tree constantly prunes and re-expands.

use omu_simhw::StackBuffer;
use serde::{Deserialize, Serialize};

/// Allocation statistics of one prune address manager.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneMgrStats {
    /// Rows served from the recycled-pointer stack.
    pub reuse_hits: u64,
    /// Rows served from the fresh-row bump allocator.
    pub fresh_allocs: u64,
    /// Rows freed by pruning.
    pub frees: u64,
    /// Freed rows dropped because the stack was full (leaked until rebuild).
    pub stack_drops: u64,
}

/// Per-PE allocator for T-Mem child rows: a pruned-pointer stack plus a
/// fresh-row pointer.
#[derive(Debug, Clone)]
pub struct PruneAddrManager {
    stack: StackBuffer<u32>,
    next_fresh: u32,
    rows: u32,
    live_rows: u64,
    high_water_live: u64,
    stats: PruneMgrStats,
}

impl PruneAddrManager {
    /// Creates an allocator over `rows` rows per bank (row 0 reserved for
    /// the PE roots) with the given stack capacity.
    ///
    /// # Panics
    ///
    /// Panics if `rows < 2` or `stack_capacity == 0`.
    pub fn new(rows: usize, stack_capacity: usize) -> Self {
        assert!(rows >= 2, "need at least 2 rows (row 0 is the root row)");
        PruneAddrManager {
            stack: StackBuffer::new(stack_capacity),
            next_fresh: 1,
            rows: rows as u32,
            live_rows: 0,
            high_water_live: 0,
            stats: PruneMgrStats::default(),
        }
    }

    /// Allocates a children row: recycled pointers first, then fresh rows.
    ///
    /// Returns `None` when the memory is exhausted.
    pub fn alloc(&mut self) -> Option<u32> {
        let row = if let Some(row) = self.stack.pop() {
            self.stats.reuse_hits += 1;
            row
        } else if self.next_fresh < self.rows {
            let row = self.next_fresh;
            self.next_fresh += 1;
            self.stats.fresh_allocs += 1;
            row
        } else {
            return None;
        };
        self.live_rows += 1;
        self.high_water_live = self.high_water_live.max(self.live_rows);
        Some(row)
    }

    /// Returns a pruned row to the stack. If the stack is full the pointer
    /// is dropped (the row leaks until the map is rebuilt) — counted in
    /// [`PruneMgrStats::stack_drops`].
    pub fn free(&mut self, row: u32) {
        debug_assert!(row != 0 && row < self.rows, "freeing invalid row {row}");
        self.stats.frees += 1;
        self.live_rows = self.live_rows.saturating_sub(1);
        if !self.stack.push(row) {
            self.stats.stack_drops += 1;
        }
    }

    /// Rows currently holding live children.
    pub fn live_rows(&self) -> u64 {
        self.live_rows
    }

    /// Peak live rows over the allocator's lifetime.
    pub fn high_water_live(&self) -> u64 {
        self.high_water_live
    }

    /// Rows ever touched by the bump allocator (the no-reuse footprint).
    pub fn fresh_rows_used(&self) -> u64 {
        (self.next_fresh - 1) as u64
    }

    /// Fraction of usable rows currently live (0..=1).
    pub fn utilization(&self) -> f64 {
        self.live_rows as f64 / (self.rows - 1) as f64
    }

    /// Allocation statistics.
    pub fn stats(&self) -> PruneMgrStats {
        self.stats
    }

    /// Current occupancy of the pointer stack.
    pub fn stack_len(&self) -> usize {
        self.stack.len()
    }

    /// Peak occupancy of the pointer stack.
    pub fn stack_high_water(&self) -> usize {
        self.stack.high_water()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_rows_start_at_one() {
        let mut m = PruneAddrManager::new(8, 4);
        assert_eq!(m.alloc(), Some(1));
        assert_eq!(m.alloc(), Some(2));
        assert_eq!(m.stats().fresh_allocs, 2);
        assert_eq!(m.live_rows(), 2);
    }

    #[test]
    fn freed_rows_are_reused_lifo() {
        let mut m = PruneAddrManager::new(8, 4);
        let a = m.alloc().unwrap();
        let b = m.alloc().unwrap();
        m.free(a);
        m.free(b);
        assert_eq!(m.alloc(), Some(b), "stack is LIFO");
        assert_eq!(m.alloc(), Some(a));
        assert_eq!(m.stats().reuse_hits, 2);
        assert_eq!(m.stats().frees, 2);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut m = PruneAddrManager::new(3, 4); // rows 1 and 2 usable
        assert!(m.alloc().is_some());
        assert!(m.alloc().is_some());
        assert_eq!(m.alloc(), None);
        // Freeing one makes allocation possible again.
        m.free(1);
        assert_eq!(m.alloc(), Some(1));
    }

    #[test]
    fn stack_overflow_leaks_rows() {
        let mut m = PruneAddrManager::new(16, 2);
        let rows: Vec<u32> = (0..4).map(|_| m.alloc().unwrap()).collect();
        for &r in &rows {
            m.free(r);
        }
        assert_eq!(m.stats().stack_drops, 2, "capacity-2 stack drops 2 of 4");
        // Only the 2 stacked rows return, then fresh allocation resumes.
        assert!(m.alloc().is_some());
        assert!(m.alloc().is_some());
        assert_eq!(m.stats().reuse_hits, 2);
    }

    #[test]
    fn utilization_and_high_water() {
        let mut m = PruneAddrManager::new(11, 8); // 10 usable rows
        for _ in 0..5 {
            m.alloc().unwrap();
        }
        assert!((m.utilization() - 0.5).abs() < 1e-12);
        m.free(1);
        m.free(2);
        assert_eq!(m.high_water_live(), 5);
        assert_eq!(m.live_rows(), 3);
        assert_eq!(m.fresh_rows_used(), 5);
    }
}
