//! The 64-bit packed node entry (paper Fig. 5).
//!
//! ```text
//!  63            32 31            16 15             0
//! ┌────────────────┬────────────────┬────────────────┐
//! │ children ptr   │ 2-bit tag × 8  │ Q5.10 log-odds │
//! └────────────────┴────────────────┴────────────────┘
//! ```
//!
//! The pointer is the T-Mem row where the node's 8 children live (child
//! `i` in bank `i`); `NULL_PTR` (0) means leaf. Each 2-bit tag encodes one
//! child's status: `00` unknown, `01` occupied, `10` free, `11` inner.

use omu_geometry::{FixedLogOdds, Occupancy};
use serde::{Deserialize, Serialize};

/// Row pointer value meaning "no children" (row 0 is reserved for the PE
/// root entries, so 0 is never a valid children row).
pub const NULL_PTR: u32 = 0;

/// The 2-bit child status tag of the OMU node entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum ChildStatus {
    /// `00` — the child slot is unobserved (does not exist).
    Unknown = 0b00,
    /// `01` — the child is a leaf classified occupied.
    Occupied = 0b01,
    /// `10` — the child is a leaf classified free.
    Free = 0b10,
    /// `11` — the child is an inner node.
    Inner = 0b11,
}

impl ChildStatus {
    /// Decodes a 2-bit tag.
    #[inline]
    pub fn from_bits(bits: u8) -> ChildStatus {
        match bits & 0b11 {
            0b00 => ChildStatus::Unknown,
            0b01 => ChildStatus::Occupied,
            0b10 => ChildStatus::Free,
            _ => ChildStatus::Inner,
        }
    }

    /// The 2-bit encoding.
    #[inline]
    pub fn bits(self) -> u8 {
        self as u8
    }

    /// True when the child exists (any status except unknown).
    #[inline]
    pub fn exists(self) -> bool {
        self != ChildStatus::Unknown
    }

    /// True when the child exists and is a leaf.
    #[inline]
    pub fn is_leaf(self) -> bool {
        matches!(self, ChildStatus::Occupied | ChildStatus::Free)
    }

    /// The occupancy a query reports for a leaf with this tag.
    #[inline]
    pub fn occupancy(self) -> Occupancy {
        match self {
            ChildStatus::Occupied | ChildStatus::Inner => Occupancy::Occupied,
            ChildStatus::Free => Occupancy::Free,
            ChildStatus::Unknown => Occupancy::Unknown,
        }
    }
}

/// One unpacked 64-bit node entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NodeEntry {
    /// T-Mem row of the node's children ([`NULL_PTR`] for leaves).
    pub ptr: u32,
    /// Packed 2-bit status tags of the 8 children (child `i` in bits
    /// `2i+1..2i`).
    pub tags: u16,
    /// The node's occupancy log-odds in Q5.10 fixed point.
    pub prob: FixedLogOdds,
}

impl NodeEntry {
    /// An empty (unobserved leaf, log-odds 0) entry.
    pub const EMPTY: NodeEntry = NodeEntry {
        ptr: NULL_PTR,
        tags: 0,
        prob: FixedLogOdds::ZERO,
    };

    /// Packs into the 64-bit memory word.
    #[inline]
    pub fn pack(&self) -> u64 {
        ((self.ptr as u64) << 32) | ((self.tags as u64) << 16) | (self.prob.to_bits() as u16 as u64)
    }

    /// Unpacks from the 64-bit memory word.
    #[inline]
    pub fn unpack(word: u64) -> NodeEntry {
        NodeEntry {
            ptr: (word >> 32) as u32,
            tags: ((word >> 16) & 0xFFFF) as u16,
            prob: FixedLogOdds::from_bits((word & 0xFFFF) as u16 as i16),
        }
    }

    /// The status tag of child `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos > 7`.
    #[inline]
    pub fn child_status(&self, pos: usize) -> ChildStatus {
        assert!(pos < 8, "child position out of range: {pos}");
        ChildStatus::from_bits((self.tags >> (2 * pos)) as u8)
    }

    /// Returns a copy with child `pos`'s tag replaced.
    ///
    /// # Panics
    ///
    /// Panics if `pos > 7`.
    #[inline]
    #[must_use]
    pub fn with_child_status(&self, pos: usize, status: ChildStatus) -> NodeEntry {
        assert!(pos < 8, "child position out of range: {pos}");
        let mut e = *self;
        e.tags = (e.tags & !(0b11 << (2 * pos))) | ((status.bits() as u16) << (2 * pos));
        e
    }

    /// True when the node has no children (leaf).
    ///
    /// A node is a leaf iff its pointer is null; its tags are then all
    /// unknown by construction.
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.ptr == NULL_PTR
    }

    /// True when any child exists according to the tags.
    #[inline]
    pub fn has_children(&self) -> bool {
        self.tags != 0
    }

    /// True when all 8 children exist and are leaves — the tag-level
    /// precondition for pruning (the value comparison still requires the
    /// row read).
    #[inline]
    pub fn all_children_prunable(&self) -> bool {
        (0..8).all(|i| self.child_status(i).is_leaf())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn field_layout_matches_figure5() {
        let e = NodeEntry {
            ptr: 0xDEAD_BEEF,
            tags: 0x1234,
            prob: FixedLogOdds::from_bits(-2),
        };
        let w = e.pack();
        assert_eq!(w >> 32, 0xDEAD_BEEF, "pointer in [63:32]");
        assert_eq!((w >> 16) & 0xFFFF, 0x1234, "tags in [31:16]");
        assert_eq!(w & 0xFFFF, 0xFFFE, "prob in [15:0], two's complement");
    }

    #[test]
    fn status_bits_match_paper_encoding() {
        assert_eq!(ChildStatus::Unknown.bits(), 0b00);
        assert_eq!(ChildStatus::Occupied.bits(), 0b01);
        assert_eq!(ChildStatus::Free.bits(), 0b10);
        assert_eq!(ChildStatus::Inner.bits(), 0b11);
        assert!(!ChildStatus::Unknown.exists());
        assert!(ChildStatus::Occupied.is_leaf());
        assert!(ChildStatus::Free.is_leaf());
        assert!(!ChildStatus::Inner.is_leaf());
    }

    #[test]
    fn child_status_round_trip() {
        let mut e = NodeEntry::EMPTY;
        e = e.with_child_status(0, ChildStatus::Occupied);
        e = e.with_child_status(3, ChildStatus::Inner);
        e = e.with_child_status(7, ChildStatus::Free);
        assert_eq!(e.child_status(0), ChildStatus::Occupied);
        assert_eq!(e.child_status(3), ChildStatus::Inner);
        assert_eq!(e.child_status(7), ChildStatus::Free);
        assert_eq!(e.child_status(1), ChildStatus::Unknown);
        // Overwrite works.
        let e2 = e.with_child_status(3, ChildStatus::Unknown);
        assert_eq!(e2.child_status(3), ChildStatus::Unknown);
        assert_eq!(e2.child_status(0), ChildStatus::Occupied);
    }

    #[test]
    fn prunable_requires_all_leaves() {
        let mut e = NodeEntry::EMPTY;
        for i in 0..8 {
            e = e.with_child_status(i, ChildStatus::Occupied);
        }
        assert!(e.all_children_prunable());
        assert!(!e
            .with_child_status(4, ChildStatus::Inner)
            .all_children_prunable());
        assert!(!e
            .with_child_status(4, ChildStatus::Unknown)
            .all_children_prunable());
        assert!(e
            .with_child_status(4, ChildStatus::Free)
            .all_children_prunable());
    }

    #[test]
    fn empty_entry_is_leaf() {
        assert!(NodeEntry::EMPTY.is_leaf());
        assert!(!NodeEntry::EMPTY.has_children());
        assert_eq!(NodeEntry::EMPTY.pack(), 0);
    }

    #[test]
    #[should_panic(expected = "child position out of range")]
    fn child_status_bounds_checked() {
        let _ = NodeEntry::EMPTY.child_status(8);
    }

    proptest! {
        #[test]
        fn pack_unpack_roundtrip(ptr in any::<u32>(), tags in any::<u16>(), prob in any::<i16>()) {
            let e = NodeEntry { ptr, tags, prob: FixedLogOdds::from_bits(prob) };
            prop_assert_eq!(NodeEntry::unpack(e.pack()), e);
        }

        #[test]
        fn unpack_pack_roundtrip(word in any::<u64>()) {
            prop_assert_eq!(NodeEntry::unpack(word).pack(), word);
        }
    }
}
