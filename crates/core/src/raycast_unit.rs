//! The hardware ray-casting unit (paper Fig. 7, "Ray Casting and Voxel
//! Queues").
//!
//! Functionally identical to the software integrator in `omu-raycast`
//! (it *is* one, wrapped), plus a cycle model: one DDA step per cycle with
//! a small per-ray setup. Its latency is hidden behind the voxel updates —
//! the accelerator charges `max(raycast, updates, DMA)` per scan.

use omu_geometry::{KeyConverter, KeyError, Scan};
use omu_raycast::{IntegrationMode, IntegrationStats, ScanIntegrator, VoxelUpdate};

/// Cycle model + functional behavior of the ray-casting unit.
#[derive(Debug, Clone)]
pub struct RayCastUnit {
    integrator: ScanIntegrator,
    setup_cycles_per_ray: u64,
    cycles_per_step: u64,
}

impl RayCastUnit {
    /// Creates the unit. The hardware performs raywise (non-deduplicated)
    /// integration unless configured otherwise.
    pub fn new(conv: KeyConverter, max_range: Option<f64>, mode: IntegrationMode) -> Self {
        RayCastUnit {
            integrator: ScanIntegrator::new(conv, max_range, mode),
            setup_cycles_per_ray: 4,
            cycles_per_step: 1,
        }
    }

    /// Casts every ray of a scan, emitting voxel updates in stream order,
    /// and returns the integration statistics plus the unit's cycle count
    /// for this scan.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] when the scan origin is outside the map.
    pub fn cast_scan<F>(
        &mut self,
        scan: &Scan,
        emit: F,
    ) -> Result<(IntegrationStats, u64), KeyError>
    where
        F: FnMut(VoxelUpdate),
    {
        let stats = self.integrator.integrate(scan, emit)?;
        let cycles =
            stats.rays * self.setup_cycles_per_ray + stats.dda_steps * self.cycles_per_step;
        Ok((stats, cycles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omu_geometry::{Point3, PointCloud};

    #[test]
    fn cycles_scale_with_ray_length() {
        let conv = KeyConverter::new(0.1).unwrap();
        let mut unit = RayCastUnit::new(conv, None, IntegrationMode::Raywise);
        let short = Scan::new(
            Point3::ZERO,
            [Point3::new(0.5, 0.0, 0.0)]
                .into_iter()
                .collect::<PointCloud>(),
        );
        let long = Scan::new(
            Point3::ZERO,
            [Point3::new(5.0, 0.0, 0.0)]
                .into_iter()
                .collect::<PointCloud>(),
        );
        let (_, c_short) = unit.cast_scan(&short, |_| {}).unwrap();
        let (_, c_long) = unit.cast_scan(&long, |_| {}).unwrap();
        assert!(c_long > c_short);
    }

    #[test]
    fn emits_free_then_occupied_per_ray() {
        let conv = KeyConverter::new(0.1).unwrap();
        let mut unit = RayCastUnit::new(conv, None, IntegrationMode::Raywise);
        let scan = Scan::new(
            Point3::ZERO,
            [Point3::new(1.0, 0.0, 0.0)]
                .into_iter()
                .collect::<PointCloud>(),
        );
        let mut updates = Vec::new();
        let (stats, cycles) = unit.cast_scan(&scan, |u| updates.push(u)).unwrap();
        assert_eq!(stats.occupied_updates, 1);
        assert!(
            updates.iter().next_back().unwrap().hit,
            "endpoint emitted last"
        );
        assert!(cycles >= stats.dda_steps);
    }
}
