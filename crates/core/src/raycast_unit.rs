//! The hardware ray-casting unit (paper Fig. 7, "Ray Casting and Voxel
//! Queues").
//!
//! Functionally identical to the software integrator in `omu-raycast`
//! (it *is* one, wrapped), plus a cycle model. Under
//! [`FrontEnd::Scalar`] the unit steps one ray per cycle (one DDA step
//! per cycle with a small per-ray setup). Under [`FrontEnd::Packet`] —
//! the default, mirroring the software packet front end — the unit is an
//! 8-lane lockstep datapath: every live lane advances in the same cycle,
//! so a scan costs one cycle per *superstep* rather than per step, and
//! the realized speedup is the packet's lane occupancy. Its latency is
//! hidden behind the voxel updates — the accelerator charges
//! `max(raycast, updates, DMA)` per scan.

use omu_geometry::{KeyConverter, KeyError, Scan};
use omu_raycast::{
    FrontEnd, IntegrationMode, IntegrationStats, PacketStats, ScanIntegrator, VoxelUpdate,
};

/// Cycle model + functional behavior of the ray-casting unit.
#[derive(Debug, Clone)]
pub struct RayCastUnit {
    integrator: ScanIntegrator,
    setup_cycles_per_ray: u64,
    cycles_per_step: u64,
}

impl RayCastUnit {
    /// Creates the unit with the default (packet) front end. The hardware
    /// performs raywise (non-deduplicated) integration unless configured
    /// otherwise.
    pub fn new(conv: KeyConverter, max_range: Option<f64>, mode: IntegrationMode) -> Self {
        Self::with_front_end(conv, max_range, mode, FrontEnd::default())
    }

    /// Creates the unit with an explicit DDA front end.
    pub fn with_front_end(
        conv: KeyConverter,
        max_range: Option<f64>,
        mode: IntegrationMode,
        front_end: FrontEnd,
    ) -> Self {
        RayCastUnit {
            integrator: ScanIntegrator::with_front_end(conv, max_range, mode, front_end),
            setup_cycles_per_ray: 4,
            cycles_per_step: 1,
        }
    }

    /// The DDA front end the unit models.
    pub fn front_end(&self) -> FrontEnd {
        self.integrator.front_end()
    }

    /// Cumulative packet counters (all zero under [`FrontEnd::Scalar`]).
    pub fn packet_stats(&self) -> PacketStats {
        self.integrator.packet_stats()
    }

    /// Mean fraction of the unit's 8 lanes kept busy per lockstep cycle
    /// so far (`0` under [`FrontEnd::Scalar`] or before any cast).
    pub fn lane_occupancy(&self) -> f64 {
        self.integrator.packet_stats().lane_occupancy()
    }

    /// Casts every ray of a scan, emitting voxel updates in stream order,
    /// and returns the integration statistics plus the unit's cycle count
    /// for this scan.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] when the scan origin is outside the map.
    pub fn cast_scan<F>(
        &mut self,
        scan: &Scan,
        emit: F,
    ) -> Result<(IntegrationStats, u64), KeyError>
    where
        F: FnMut(VoxelUpdate),
    {
        let before = self.integrator.packet_stats();
        let stats = self.integrator.integrate(scan, emit)?;
        let cycles = match self.integrator.front_end() {
            FrontEnd::Scalar => {
                stats.rays * self.setup_cycles_per_ray + stats.dda_steps * self.cycles_per_step
            }
            FrontEnd::Packet => {
                // 8 lane-steppers advance in lockstep: one cycle per
                // superstep, with per-ray setup unchanged (lane load is
                // still sequential address generation).
                let delta = self.integrator.packet_stats().since(&before);
                stats.rays * self.setup_cycles_per_ray + delta.supersteps * self.cycles_per_step
            }
        };
        Ok((stats, cycles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omu_geometry::{Point3, PointCloud};

    fn scan_of(points: &[Point3]) -> Scan {
        Scan::new(Point3::ZERO, points.iter().copied().collect::<PointCloud>())
    }

    #[test]
    fn cycles_scale_with_ray_length() {
        let conv = KeyConverter::new(0.1).unwrap();
        let mut unit = RayCastUnit::new(conv, None, IntegrationMode::Raywise);
        let short = scan_of(&[Point3::new(0.5, 0.0, 0.0)]);
        let long = scan_of(&[Point3::new(5.0, 0.0, 0.0)]);
        let (_, c_short) = unit.cast_scan(&short, |_| {}).unwrap();
        let (_, c_long) = unit.cast_scan(&long, |_| {}).unwrap();
        assert!(c_long > c_short);
    }

    #[test]
    fn emits_free_then_occupied_per_ray() {
        let conv = KeyConverter::new(0.1).unwrap();
        let mut unit = RayCastUnit::new(conv, None, IntegrationMode::Raywise);
        let scan = scan_of(&[Point3::new(1.0, 0.0, 0.0)]);
        let mut updates = Vec::new();
        let (stats, cycles) = unit.cast_scan(&scan, |u| updates.push(u)).unwrap();
        assert_eq!(stats.occupied_updates, 1);
        assert!(
            updates.iter().next_back().unwrap().hit,
            "endpoint emitted last"
        );
        assert!(cycles >= stats.rays);
    }

    #[test]
    fn packet_unit_charges_supersteps_not_steps() {
        let conv = KeyConverter::new(0.1).unwrap();
        // 8 parallel rays of equal length: perfect lane occupancy, so the
        // packet unit should charge ~1/8 of the scalar unit's step cycles.
        let points: Vec<Point3> = (0..8)
            .map(|i| Point3::new(3.0, i as f64 * 0.05, 0.0))
            .collect();
        let scan = scan_of(&points);

        let mut packet = RayCastUnit::new(conv, None, IntegrationMode::Raywise);
        let mut scalar =
            RayCastUnit::with_front_end(conv, None, IntegrationMode::Raywise, FrontEnd::Scalar);
        let (ps, packet_cycles) = packet.cast_scan(&scan, |_| {}).unwrap();
        let (ss, scalar_cycles) = scalar.cast_scan(&scan, |_| {}).unwrap();
        assert_eq!(ps, ss, "front ends are functionally identical");
        assert!(
            packet_cycles < scalar_cycles,
            "lockstep lanes must cost fewer cycles ({packet_cycles} vs {scalar_cycles})"
        );
        let occ = packet.lane_occupancy();
        assert!(occ > 0.9, "equal-length rays should fill lanes, got {occ}");
        assert_eq!(scalar.packet_stats(), PacketStats::default());
    }
}
