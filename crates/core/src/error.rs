//! Accelerator error types.

use std::error::Error;
use std::fmt;

use omu_geometry::KeyError;

/// Invalid [`OmuConfig`](crate::OmuConfig).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// PE count not in {1, 2, 4, 8}.
    UnsupportedPeCount(usize),
    /// Fewer than 2 rows per bank (row 0 is the root row).
    TooFewRows(usize),
    /// Prune stack capacity of zero.
    EmptyPruneStack,
    /// Voxel queue capacity of zero.
    EmptyQueue,
    /// Non-positive clock frequency.
    BadClock(f64),
    /// Non-positive map resolution.
    BadResolution(f64),
    /// Burst discount above 100 %.
    BadBurstDiscount(u32),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::UnsupportedPeCount(n) => {
                write!(f, "unsupported PE count {n} (must be 1, 2, 4 or 8)")
            }
            ConfigError::TooFewRows(n) => write!(f, "need at least 2 rows per bank, got {n}"),
            ConfigError::EmptyPruneStack => write!(f, "prune stack capacity must be positive"),
            ConfigError::EmptyQueue => write!(f, "voxel queue capacity must be positive"),
            ConfigError::BadClock(g) => write!(f, "clock frequency must be positive, got {g}"),
            ConfigError::BadResolution(r) => {
                write!(f, "map resolution must be positive, got {r}")
            }
            ConfigError::BadBurstDiscount(p) => {
                write!(f, "burst discount must be at most 100 %, got {p}")
            }
        }
    }
}

impl Error for ConfigError {}

/// A PE ran out of T-Mem rows while expanding the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityError {
    /// The PE that could not allocate.
    pub pe: usize,
    /// Rows per bank configured.
    pub rows_per_bank: usize,
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PE {} exhausted its T-Mem ({} rows/bank); increase rows_per_bank or coarsen the map",
            self.pe, self.rows_per_bank
        )
    }
}

impl Error for CapacityError {}

/// Any error an [`OmuAccelerator`](crate::OmuAccelerator) operation can
/// produce.
#[derive(Debug, Clone, PartialEq)]
pub enum AccelError {
    /// Invalid configuration at construction.
    Config(ConfigError),
    /// Out-of-map coordinates.
    Key(KeyError),
    /// SRAM capacity exhausted.
    Capacity(CapacityError),
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::Config(e) => write!(f, "configuration error: {e}"),
            AccelError::Key(e) => write!(f, "coordinate error: {e}"),
            AccelError::Capacity(e) => write!(f, "capacity error: {e}"),
        }
    }
}

impl Error for AccelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AccelError::Config(e) => Some(e),
            AccelError::Key(e) => Some(e),
            AccelError::Capacity(e) => Some(e),
        }
    }
}

impl From<ConfigError> for AccelError {
    fn from(e: ConfigError) -> Self {
        AccelError::Config(e)
    }
}

impl From<KeyError> for AccelError {
    fn from(e: KeyError) -> Self {
        AccelError::Key(e)
    }
}

impl From<CapacityError> for AccelError {
    fn from(e: CapacityError) -> Self {
        AccelError::Capacity(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ConfigError::UnsupportedPeCount(3)
            .to_string()
            .contains("must be 1, 2, 4 or 8"));
        let c = CapacityError {
            pe: 2,
            rows_per_bank: 4096,
        };
        assert!(c.to_string().contains("PE 2"));
        let e: AccelError = c.into();
        assert!(e.to_string().contains("capacity"));
        assert!(e.source().is_some());
    }

    #[test]
    fn conversions() {
        let e: AccelError = ConfigError::EmptyQueue.into();
        assert!(matches!(e, AccelError::Config(_)));
        let e: AccelError = KeyError::NotFinite { coord: f64::NAN }.into();
        assert!(matches!(e, AccelError::Key(_)));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<ConfigError>();
        assert_err::<CapacityError>();
        assert_err::<AccelError>();
    }
}
