//! The PE unit: one eighth of the partitioned octree plus its update
//! datapath.
//!
//! A PE owns the subtree(s) below one or more first-level branches of the
//! global octree. Its T-Mem stores one node per 64-bit entry; the 8
//! children of a node share a row (child `i` in bank `i`). One voxel
//! update executes:
//!
//! 1. **Descent** — follow the key's child indices from the PE root to
//!    depth 16, creating missing children (log-odds 0) or expanding pruned
//!    leaves (8 children inherit the leaf's value) on the way.
//! 2. **Leaf update** — one saturating fixed-point addition + clamp
//!    (eq. 2 of the paper).
//! 3. **Bottom-up pass** — for every ancestor: read the whole children
//!    row in one cycle, attempt the prune (all 8 children present, all
//!    leaves, all values equal), otherwise write back the max (eq. 3) and
//!    refreshed status tags.
//!
//! Every SRAM access and datapath cycle is accounted per stage in
//! [`PeStats`].

use omu_geometry::{FixedLogOdds, LogOdds, Occupancy, ResolvedParams, VoxelKey, TREE_DEPTH};

use crate::config::PeTiming;
use crate::entry::{ChildStatus, NodeEntry, NULL_PTR};
use crate::error::CapacityError;
use crate::prune_mgr::PruneAddrManager;
use crate::stats::PeStats;
use crate::treemem::TreeMem;

/// Tree levels below the PE root (depth 1) down to the leaves (depth 16).
const LEVELS: usize = (TREE_DEPTH - 1) as usize;

/// Result of one PE voxel update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeUpdateOutcome {
    /// The leaf's value after the update (before any prune replaced it
    /// with an equal-valued coarser leaf).
    pub new_value: FixedLogOdds,
    /// Service time of this update in cycles.
    pub service_cycles: u64,
}

/// Result of one cached-descent query ([`PeUnit::query_cached`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeQueryOutcome {
    /// Occupancy classification of the queried voxel — always identical
    /// to what [`PeUnit::query`] would report.
    pub occupancy: Occupancy,
    /// Service time of this query in cycles.
    pub cycles: u64,
    /// Descent levels replayed from the cursor's path registers.
    pub reused_levels: u64,
    /// Cycles the replay saved vs a full-rate descent of those levels.
    pub saved_cycles: u64,
}

/// The voxel query unit's cached-descent register file for one PE: the
/// node entries along the previous query's root path, so a query
/// sharing a Morton prefix with its predecessor replays the shared
/// levels from registers instead of re-reading T-Mem.
///
/// The cursor caches raw T-Mem contents, so it is only valid while no
/// update runs between queries — the accelerator's batched query entry
/// points create cursors per call, never across calls.
#[derive(Debug, Clone)]
pub struct PeQueryCursor {
    prev: Option<VoxelKey>,
    /// Deepest tree depth with a valid entry (0 = nothing cached;
    /// entry at depth `d` lives in `entries[d - 1]`).
    depth: u8,
    entries: [NodeEntry; TREE_DEPTH as usize],
}

impl PeQueryCursor {
    /// An empty cursor (first query descends from the PE root).
    pub fn new() -> Self {
        PeQueryCursor {
            prev: None,
            depth: 0,
            entries: [NodeEntry::EMPTY; TREE_DEPTH as usize],
        }
    }

    /// Invalidates the cached path (the next query descends from the PE
    /// root). Must be called after any update to the hosting PE — the
    /// registers cache raw T-Mem contents.
    pub fn reset(&mut self) {
        self.prev = None;
        self.depth = 0;
    }
}

impl Default for PeQueryCursor {
    fn default() -> Self {
        Self::new()
    }
}

/// One processing element of the OMU accelerator.
#[derive(Debug, Clone)]
pub struct PeUnit {
    id: usize,
    mem: TreeMem,
    mgr: PruneAddrManager,
    resolved: ResolvedParams<FixedLogOdds>,
    timing: PeTiming,
    pruning_enabled: bool,
    rows_per_bank: usize,
    /// Whether the root entry of each first-level branch is live. With 8
    /// PEs a PE hosts one branch; with fewer, several (branch ≡ pe mod
    /// num_pes). Root entries live in row 0, bank = branch.
    root_live: [bool; 8],
    stats: PeStats,
}

impl PeUnit {
    /// Creates an idle PE.
    pub fn new(
        id: usize,
        rows_per_bank: usize,
        prune_stack_capacity: usize,
        resolved: ResolvedParams<FixedLogOdds>,
        timing: PeTiming,
        pruning_enabled: bool,
    ) -> Self {
        PeUnit {
            id,
            mem: TreeMem::new(rows_per_bank),
            mgr: PruneAddrManager::new(rows_per_bank, prune_stack_capacity),
            resolved,
            timing,
            pruning_enabled,
            rows_per_bank,
            root_live: [false; 8],
            stats: PeStats::default(),
        }
    }

    /// The PE index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Classifies a value into the 2-bit leaf status tag.
    #[inline]
    fn leaf_tag(&self, prob: FixedLogOdds) -> ChildStatus {
        if prob >= self.resolved.occupancy_threshold {
            ChildStatus::Occupied
        } else {
            ChildStatus::Free
        }
    }

    fn capacity_error(&self) -> CapacityError {
        CapacityError {
            pe: self.id,
            rows_per_bank: self.rows_per_bank,
        }
    }

    /// Executes one voxel update (hit or miss) for a key whose first-level
    /// branch this PE hosts.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] when the T-Mem has no free row for a
    /// required creation/expansion. The update is abandoned mid-way in
    /// that case (as the hardware would raise an interrupt).
    pub fn update_voxel(
        &mut self,
        key: VoxelKey,
        hit: bool,
    ) -> Result<PeUpdateOutcome, CapacityError> {
        let t = self.timing;
        let branch = key.first_level_branch().index();
        let mut cycles: u64 = 0;

        let mut path_locs = [(0u32, 0usize); LEVELS + 1];
        let mut path_entries = [NodeEntry::EMPTY; LEVELS + 1];

        // PE root (depth 1) lives at row 0, bank = branch. Descent reads
        // that hit a bank's open T-Mem row are charged at the (by default
        // equal) row-hit rate — Morton-ordered runs keep descending the
        // same sibling rows, which the row-buffer stats make visible.
        let mut traverse_cycles = 0u64;
        let mut charge_read = |mem: &mut TreeMem, row: u32, bank: usize| {
            let (entry, hit) = mem.read_entry_hit(row, bank);
            traverse_cycles += if hit {
                t.traverse_row_hit
            } else {
                t.traverse_per_level
            };
            entry
        };
        let mut just_created = false;
        path_locs[0] = (0, branch);
        path_entries[0] = charge_read(&mut self.mem, 0, branch);
        if !self.root_live[branch] {
            path_entries[0] = NodeEntry::EMPTY;
            self.root_live[branch] = true;
            just_created = true;
        }

        // --- Descent: nodes at depths 1..=15, leaf at 16. ---
        for step in 0..LEVELS {
            let depth = (step + 1) as u8;
            let pos = key.child_index_at(depth).index();
            let (row, bank) = path_locs[step];
            let mut node = path_entries[step];

            if !node.child_status(pos).exists() {
                if !node.has_children() && !just_created {
                    // Expand a pruned leaf: all 8 children inherit its value.
                    let new_row = self.mgr.alloc().ok_or_else(|| self.capacity_error())?;
                    let child = NodeEntry {
                        ptr: NULL_PTR,
                        tags: 0,
                        prob: node.prob,
                    };
                    self.mem.write_row(new_row, [child; 8]);
                    let tag = self.leaf_tag(node.prob);
                    node.ptr = new_row;
                    node.tags = 0;
                    for p in 0..8 {
                        node = node.with_child_status(p, tag);
                    }
                    self.mem.write_entry(row, bank, node);
                    cycles += t.expand_action;
                    self.stats.expands += 1;
                    self.stats.stage_cycles.expand += t.expand_action;
                    just_created = false;
                } else {
                    // Create just the requested child (log-odds 0).
                    if node.ptr == NULL_PTR {
                        let new_row = self.mgr.alloc().ok_or_else(|| self.capacity_error())?;
                        self.mem.write_row(new_row, [NodeEntry::EMPTY; 8]);
                        node.ptr = new_row;
                    } else {
                        self.mem.write_entry(node.ptr, pos, NodeEntry::EMPTY);
                    }
                    node = node.with_child_status(pos, self.leaf_tag(FixedLogOdds::ZERO));
                    self.mem.write_entry(row, bank, node);
                    cycles += t.create_action;
                    self.stats.creates += 1;
                    self.stats.stage_cycles.create += t.create_action;
                    just_created = true;
                }
                path_entries[step] = node;
            } else {
                just_created = false;
            }

            // Step into the child.
            let child_row = path_entries[step].ptr;
            debug_assert_ne!(child_row, NULL_PTR, "descending through a leaf");
            let child = charge_read(&mut self.mem, child_row, pos);
            path_locs[step + 1] = (child_row, pos);
            path_entries[step + 1] = child;
        }
        cycles += traverse_cycles;
        self.stats.stage_cycles.traverse += traverse_cycles;

        // --- Leaf update (eq. 2). ---
        let (leaf_row, leaf_bank) = path_locs[LEVELS];
        let mut leaf = path_entries[LEVELS];
        leaf.prob = self.resolved.update(leaf.prob, hit);
        self.mem.write_entry(leaf_row, leaf_bank, leaf);
        path_entries[LEVELS] = leaf;
        cycles += t.leaf_update;
        self.stats.stage_cycles.leaf += t.leaf_update;
        let new_value = leaf.prob;

        // --- Bottom-up: parents at depths 15..=1 (eq. 3 + prune). ---
        for step in (0..LEVELS).rev() {
            let (row, bank) = path_locs[step];
            let mut node = path_entries[step];
            debug_assert_ne!(node.ptr, NULL_PTR);
            let kids = self.mem.read_row(node.ptr);
            cycles += t.parent_per_level + t.prune_check_per_level;
            self.stats.stage_cycles.parent += t.parent_per_level;
            self.stats.stage_cycles.prune_check += t.prune_check_per_level;

            // Refresh the child status tags from the row just read;
            // existence can only be asserted by the old tags (an EMPTY
            // entry is indistinguishable from a fresh log-odds-0 leaf).
            let mut new_tags = NodeEntry { tags: 0, ..node };
            let mut all_prunable = self.pruning_enabled;
            let mut all_equal = true;
            let mut max_prob: Option<FixedLogOdds> = None;
            for (pos, kid) in kids.iter().enumerate() {
                let old = node.child_status(pos);
                if !old.exists() {
                    all_prunable = false;
                    continue;
                }
                let status = if !kid.is_leaf() {
                    all_prunable = false;
                    ChildStatus::Inner
                } else {
                    if kid.prob != kids[0].prob {
                        all_equal = false;
                    }
                    self.leaf_tag(kid.prob)
                };
                new_tags = new_tags.with_child_status(pos, status);
                max_prob = Some(match max_prob {
                    Some(m) => LogOdds::max_of(m, kid.prob),
                    None => kid.prob,
                });
            }

            if all_prunable && all_equal {
                // Prune: recycle the children row, become a leaf.
                self.mgr.free(node.ptr);
                node = NodeEntry {
                    ptr: NULL_PTR,
                    tags: 0,
                    prob: kids[0].prob,
                };
                self.mem.write_entry(row, bank, node);
                cycles += t.prune_action;
                self.stats.prunes += 1;
                self.stats.stage_cycles.prune_action += t.prune_action;
            } else {
                node.tags = new_tags.tags;
                if let Some(m) = max_prob {
                    node.prob = m;
                }
                self.mem.write_entry(row, bank, node);
            }
            path_entries[step] = node;
        }

        // Serving mode: row copies triggered by this update's writes are
        // part of its service time, so COW overhead flows through the
        // scheduler's busy/stall/drain accounting like any other stage.
        let cow = self.mem.take_cow_cycles();
        cycles += cow;
        self.stats.cow_cycles += cow;

        self.stats.updates += 1;
        self.stats.busy_cycles += cycles;
        Ok(PeUpdateOutcome {
            new_value,
            service_cycles: cycles,
        })
    }

    /// Queries the occupancy of a voxel, returning the classification and
    /// the query latency in cycles.
    pub fn query(&mut self, key: VoxelKey) -> (Occupancy, u64) {
        self.query_at_depth(key, TREE_DEPTH)
    }

    /// Multi-resolution query (one of the paper's motivations for eagerly
    /// maintaining parent occupancies, Section III-A): descends at most to
    /// `max_depth` and classifies the node found there. Inner-node values
    /// hold the max over their subtree, so a coarse query answers "is
    /// anything in this region occupied?" in fewer cycles.
    ///
    /// # Panics
    ///
    /// Panics if `max_depth` is 0 or exceeds
    /// [`TREE_DEPTH`](omu_geometry::TREE_DEPTH).
    pub fn query_at_depth(&mut self, key: VoxelKey, max_depth: u8) -> (Occupancy, u64) {
        assert!(
            (1..=TREE_DEPTH).contains(&max_depth),
            "query depth must be 1..=16, got {max_depth}"
        );
        let t = self.timing;
        let branch = key.first_level_branch().index();
        let mut cycles = t.query_overhead;
        if !self.root_live[branch] {
            return (Occupancy::Unknown, cycles);
        }
        let mut entry = self.mem.read_entry(0, branch);
        cycles += t.query_per_level;
        for depth in 1..max_depth {
            if entry.is_leaf() {
                return (self.classify(entry.prob), cycles);
            }
            let pos = key.child_index_at(depth).index();
            if !entry.child_status(pos).exists() {
                return (Occupancy::Unknown, cycles);
            }
            entry = self.mem.read_entry(entry.ptr, pos);
            cycles += t.query_per_level;
        }
        (self.classify(entry.prob), cycles)
    }

    /// Queries the occupancy of a voxel through a cached-descent cursor:
    /// levels the key shares with the cursor's previous query replay
    /// from the path registers at a per-level cost discounted by
    /// `discount_pct` percent (the voxel scheduler's burst analogue on
    /// the read side); only the new suffix pays full-rate T-Mem reads.
    ///
    /// The classification is always identical to [`Self::query`] — the
    /// cursor only changes which reads hit registers vs SRAM — provided
    /// no update ran on this PE since the cursor's previous query.
    pub fn query_cached(
        &mut self,
        key: VoxelKey,
        cursor: &mut PeQueryCursor,
        discount_pct: u32,
    ) -> PeQueryOutcome {
        let t = self.timing;
        let branch = key.first_level_branch().index();
        let mut cycles = t.query_overhead;
        let mut reused_levels = 0u64;
        let mut saved_cycles = 0u64;

        if !self.root_live[branch] {
            cursor.prev = None;
            cursor.depth = 0;
            return PeQueryOutcome {
                occupancy: Occupancy::Unknown,
                cycles,
                reused_levels,
                saved_cycles,
            };
        }

        // Resume from the deepest cached level on this key's root path.
        // A shared prefix of ≥ 1 level implies the same first-level
        // branch, so the cached entries are on the right PE subtree.
        let prefix = cursor.prev.map_or(0, |p| p.common_prefix_depth(key));
        let resume = prefix.min(cursor.depth);
        let (mut entry, mut depth) = if resume >= 1 {
            let full = t.query_per_level * resume as u64;
            let charged = full - full * discount_pct as u64 / 100;
            cycles += charged;
            reused_levels = resume as u64;
            saved_cycles = full - charged;
            (cursor.entries[(resume - 1) as usize], resume)
        } else {
            let entry = self.mem.read_entry(0, branch);
            cycles += t.query_per_level;
            cursor.entries[0] = entry;
            (entry, 1)
        };

        let occupancy = loop {
            if entry.is_leaf() || depth == TREE_DEPTH {
                break self.classify(entry.prob);
            }
            let pos = key.child_index_at(depth).index();
            if !entry.child_status(pos).exists() {
                break Occupancy::Unknown;
            }
            entry = self.mem.read_entry(entry.ptr, pos);
            cycles += t.query_per_level;
            depth += 1;
            cursor.entries[(depth - 1) as usize] = entry;
        };
        cursor.prev = Some(key);
        cursor.depth = depth;
        PeQueryOutcome {
            occupancy,
            cycles,
            reused_levels,
            saved_cycles,
        }
    }

    #[inline]
    fn classify(&self, prob: FixedLogOdds) -> Occupancy {
        self.resolved.classify(prob)
    }

    /// True when this PE holds no observation in any of its first-level
    /// branches (O(1): checks the root-row liveness flags only).
    pub fn is_empty(&self) -> bool {
        !self.root_live.iter().any(|&live| live)
    }

    /// Reads the log-odds of the node covering `key` with uncounted peeks
    /// (no cycle or SRAM accounting — map export is not a hardware
    /// operation). `None` when the voxel was never observed.
    pub fn peek_logodds(&self, key: VoxelKey) -> Option<f32> {
        let branch = key.first_level_branch().index();
        if !self.root_live[branch] {
            return None;
        }
        let mut entry = self.mem.peek_entry(0, branch);
        for depth in 1..TREE_DEPTH {
            if entry.is_leaf() {
                return Some(entry.prob.to_f32());
            }
            let pos = key.child_index_at(depth).index();
            if !entry.child_status(pos).exists() {
                return None;
            }
            entry = self.mem.peek_entry(entry.ptr, pos);
        }
        Some(entry.prob.to_f32())
    }

    /// Appends this PE's leaves to `out` as `(key, depth, logodds)` —
    /// the same canonical form as
    /// [`OccupancyOctree::snapshot`](omu_octree::OccupancyOctree::snapshot).
    /// Uses uncounted peeks (map export is not a hardware operation).
    pub fn snapshot_into(&self, out: &mut Vec<(VoxelKey, u8, f32)>) {
        for branch in 0..8 {
            if !self.root_live[branch] {
                continue;
            }
            let bit = (TREE_DEPTH - 1) as u32;
            let key = VoxelKey::new(
                ((branch & 1) as u16) << bit,
                (((branch >> 1) & 1) as u16) << bit,
                (((branch >> 2) & 1) as u16) << bit,
            );
            self.walk_snapshot(0, branch, 1, key, out);
        }
    }

    fn walk_snapshot(
        &self,
        row: u32,
        bank: usize,
        depth: u8,
        key: VoxelKey,
        out: &mut Vec<(VoxelKey, u8, f32)>,
    ) {
        let e = self.mem.peek_entry(row, bank);
        if e.is_leaf() {
            out.push((key, depth, e.prob.to_f32()));
            return;
        }
        let bit = (TREE_DEPTH - 1 - depth) as u32;
        for pos in 0..8 {
            if e.child_status(pos).exists() {
                let child_key = VoxelKey::new(
                    key.x | (((pos & 1) as u16) << bit),
                    key.y | ((((pos >> 1) & 1) as u16) << bit),
                    key.z | ((((pos >> 2) & 1) as u16) << bit),
                );
                self.walk_snapshot(e.ptr, pos, depth + 1, child_key, out);
            }
        }
    }

    /// Appends this PE's leaves whose extents intersect the key box
    /// `[min, max]` (inclusive per axis), pruning whole subtrees outside
    /// the box — the region-query analogue of [`Self::snapshot_into`],
    /// with uncounted peeks. Cost scales with the region, not the map.
    pub fn snapshot_box_into(
        &self,
        min: VoxelKey,
        max: VoxelKey,
        out: &mut Vec<(VoxelKey, u8, f32)>,
    ) {
        for branch in 0..8 {
            if !self.root_live[branch] {
                continue;
            }
            let bit = (TREE_DEPTH - 1) as u32;
            let key = VoxelKey::new(
                ((branch & 1) as u16) << bit,
                (((branch >> 1) & 1) as u16) << bit,
                (((branch >> 2) & 1) as u16) << bit,
            );
            self.walk_snapshot_box(0, branch, 1, key, min, max, out);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn walk_snapshot_box(
        &self,
        row: u32,
        bank: usize,
        depth: u8,
        key: VoxelKey,
        min: VoxelKey,
        max: VoxelKey,
        out: &mut Vec<(VoxelKey, u8, f32)>,
    ) {
        // A node at `depth` spans `span` finest voxels per axis from its
        // anchor key.
        let span = 1u32 << (TREE_DEPTH - depth);
        let overlaps = |anchor: u16, lo: u16, hi: u16| {
            let a = anchor as u32;
            a <= hi as u32 && a + span > lo as u32
        };
        if !(overlaps(key.x, min.x, max.x)
            && overlaps(key.y, min.y, max.y)
            && overlaps(key.z, min.z, max.z))
        {
            return;
        }
        let e = self.mem.peek_entry(row, bank);
        if e.is_leaf() {
            out.push((key, depth, e.prob.to_f32()));
            return;
        }
        let bit = (TREE_DEPTH - 1 - depth) as u32;
        for pos in 0..8 {
            if e.child_status(pos).exists() {
                let child_key = VoxelKey::new(
                    key.x | (((pos & 1) as u16) << bit),
                    key.y | ((((pos >> 1) & 1) as u16) << bit),
                    key.z | ((((pos >> 2) & 1) as u16) << bit),
                );
                self.walk_snapshot_box(e.ptr, pos, depth + 1, child_key, min, max, out);
            }
        }
    }

    /// Number of leaves this PE holds, without materializing a snapshot
    /// (uncounted peeks).
    pub fn num_leaves(&self) -> usize {
        let mut count = 0usize;
        for branch in 0..8 {
            if self.root_live[branch] {
                self.count_leaves(0, branch, &mut count);
            }
        }
        count
    }

    fn count_leaves(&self, row: u32, bank: usize, count: &mut usize) {
        let e = self.mem.peek_entry(row, bank);
        if e.is_leaf() {
            *count += 1;
            return;
        }
        for pos in 0..8 {
            if e.child_status(pos).exists() {
                self.count_leaves(e.ptr, pos, count);
            }
        }
    }

    /// Pins the current T-Mem epoch for serving and opens the next one
    /// (snapshot publish), returning the pinned epoch.
    pub fn publish_epoch(&mut self) -> u32 {
        self.mem.publish_epoch()
    }

    /// Drops all serving pins; writes land in place again.
    pub fn release_pins(&mut self) {
        self.mem.release_pins()
    }

    /// Whether this PE's T-Mem is serving a pinned snapshot.
    pub fn serving(&self) -> bool {
        self.mem.serving()
    }

    /// This PE's statistics (SRAM and allocator counters sampled live).
    pub fn stats(&self) -> PeStats {
        let mut s = self.stats;
        s.sram = self.mem.stats();
        s.cow_rows = self.mem.cow_rows_copied();
        s.tmem_rows = self.mem.row_stats();
        s.prune_mgr = self.mgr.stats();
        s.live_rows = self.mgr.live_rows();
        s.high_water_rows = self.mgr.high_water_live();
        s
    }

    /// Resets activity counters (map contents kept).
    pub fn reset_stats(&mut self) {
        self.stats = PeStats::default();
        self.mem.reset_stats();
    }

    /// Current T-Mem utilization (live rows / usable rows).
    pub fn utilization(&self) -> f64 {
        self.mgr.utilization()
    }

    /// Flips one stored bit — soft-error fault injection. A flipped
    /// probability or tag surfaces as a map divergence that
    /// [`verify`](crate::verify) detects; a flipped pointer corrupts a
    /// subtree.
    ///
    /// # Panics
    ///
    /// Panics if `row`, `bank` or `bit` is out of range.
    pub fn inject_bit_flip(&mut self, row: u32, bank: usize, bit: u32) {
        self.mem.inject_bit_flip(row, bank, bit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omu_geometry::OccupancyParams;

    fn pe() -> PeUnit {
        PeUnit::new(
            0,
            4096,
            512,
            OccupancyParams::default().resolve::<FixedLogOdds>(),
            PeTiming::default(),
            true,
        )
    }

    fn key_in_branch(branch: u16, offset: (u16, u16, u16)) -> VoxelKey {
        // Branch bits go to bit 15 of each axis.
        VoxelKey::new(
            ((branch & 1) << 15) | offset.0,
            (((branch >> 1) & 1) << 15) | offset.1,
            (((branch >> 2) & 1) << 15) | offset.2,
        )
    }

    #[test]
    fn single_hit_is_queryable() {
        let mut pe = pe();
        let k = key_in_branch(7, (100, 200, 300));
        let out = pe.update_voxel(k, true).unwrap();
        assert!(out.new_value > FixedLogOdds::ZERO);
        assert!(
            out.service_cycles > 50,
            "full descent + up-phase takes real cycles"
        );
        let (occ, cycles) = pe.query(k);
        assert_eq!(occ, Occupancy::Occupied);
        assert!(cycles > 0);
    }

    #[test]
    fn unobserved_is_unknown() {
        let mut pe = pe();
        pe.update_voxel(key_in_branch(7, (100, 200, 300)), true)
            .unwrap();
        let (occ, _) = pe.query(key_in_branch(7, (101, 200, 300)));
        assert_eq!(occ, Occupancy::Unknown);
        // A branch never touched is unknown at zero depth.
        let (occ, _) = pe.query(key_in_branch(0, (1, 1, 1)));
        assert_eq!(occ, Occupancy::Unknown);
    }

    #[test]
    fn misses_classify_free() {
        let mut pe = pe();
        let k = key_in_branch(3, (7, 8, 9));
        for _ in 0..3 {
            pe.update_voxel(k, false).unwrap();
        }
        assert_eq!(pe.query(k).0, Occupancy::Free);
    }

    #[test]
    fn saturated_octant_prunes_and_reexpands() {
        let mut pe = pe();
        // Saturate all 8 sibling voxels of one finest octant.
        for _round in 0..10 {
            for i in 0..8u16 {
                let k = key_in_branch(0, (2 + (i & 1), 4 + ((i >> 1) & 1), 6 + ((i >> 2) & 1)));
                pe.update_voxel(k, true).unwrap();
            }
        }
        let stats = pe.stats();
        assert!(stats.prunes > 0, "equal saturated siblings must prune");
        // The pruned leaf serves queries for all 8 voxels.
        for i in 0..8u16 {
            let k = key_in_branch(0, (2 + (i & 1), 4 + ((i >> 1) & 1), 6 + ((i >> 2) & 1)));
            assert_eq!(pe.query(k).0, Occupancy::Occupied);
        }
        // A miss inside the pruned region expands it again.
        let expands_before = pe.stats().expands;
        pe.update_voxel(key_in_branch(0, (2, 4, 6)), false).unwrap();
        assert!(pe.stats().expands > expands_before);
    }

    #[test]
    fn prune_returns_rows_for_reuse() {
        let mut pe = pe();
        for _round in 0..10 {
            for i in 0..8u16 {
                let k = key_in_branch(0, (2 + (i & 1), 4 + ((i >> 1) & 1), 6 + ((i >> 2) & 1)));
                pe.update_voxel(k, true).unwrap();
            }
        }
        let s = pe.stats();
        assert!(s.prune_mgr.frees > 0);
        // Re-expansion after prune reuses a recycled row.
        pe.update_voxel(key_in_branch(0, (2, 4, 6)), false).unwrap();
        assert!(
            pe.stats().prune_mgr.reuse_hits > 0,
            "expansion must reuse pruned rows"
        );
    }

    #[test]
    fn capacity_exhaustion_reports_error() {
        let mut tiny = PeUnit::new(
            1,
            8, // 7 usable rows — exhausted after a single deep path
            8,
            OccupancyParams::default().resolve::<FixedLogOdds>(),
            PeTiming::default(),
            true,
        );
        let e = tiny
            .update_voxel(key_in_branch(0, (333, 444, 555)), true)
            .unwrap_err();
        assert_eq!(e.pe, 1);
        assert_eq!(e.rows_per_bank, 8);
    }

    #[test]
    fn stage_cycles_accumulate_sanely() {
        let mut pe = pe();
        pe.update_voxel(key_in_branch(5, (10, 20, 30)), true)
            .unwrap();
        let s = pe.stats();
        let stage = s.stage_cycles;
        assert!(stage.traverse > 0);
        assert!(stage.leaf > 0);
        assert!(stage.parent > 0);
        assert!(stage.prune_check > 0);
        assert_eq!(s.updates, 1);
        assert!(s.busy_cycles >= stage.traverse + stage.leaf);
        // Fresh path: 15 creations below the root.
        assert_eq!(s.creates, 15);
    }

    #[test]
    fn sram_accesses_are_counted() {
        let mut pe = pe();
        pe.update_voxel(key_in_branch(2, (50, 60, 70)), true)
            .unwrap();
        let s = pe.stats();
        // At minimum: 16 descent reads + 15 row reads (8 each) on the way up.
        assert!(s.sram.reads >= 16 + 15 * 8, "reads = {}", s.sram.reads);
        assert!(s.sram.writes > 15, "writes = {}", s.sram.writes);
    }

    #[test]
    fn coarse_query_sees_occupied_subtree() {
        let mut pe = pe();
        let k = key_in_branch(1, (500, 600, 700));
        for _ in 0..5 {
            pe.update_voxel(k, true).unwrap();
        }
        // At every coarser depth the max-policy parent reports occupied.
        let mut last_cycles = u64::MAX;
        for depth in [16u8, 12, 8, 4, 1] {
            let (occ, cycles) = pe.query_at_depth(k, depth);
            assert_eq!(occ, Occupancy::Occupied, "depth {depth}");
            assert!(cycles <= last_cycles, "coarser queries are never slower");
            last_cycles = cycles;
        }
        // A sibling region at fine depth is unknown, but the coarse region
        // containing both is occupied.
        let sibling = key_in_branch(1, (500, 600, 701));
        assert_eq!(pe.query_at_depth(sibling, 16).0, Occupancy::Unknown);
        assert_eq!(pe.query_at_depth(sibling, 15).0, Occupancy::Occupied);
    }

    #[test]
    #[should_panic(expected = "query depth")]
    fn zero_depth_query_rejected() {
        let mut pe = pe();
        let _ = pe.query_at_depth(VoxelKey::ORIGIN, 0);
    }

    #[test]
    fn cached_query_matches_plain_query_everywhere() {
        let mut pe = pe();
        // A small structured map: a run of voxels plus a pruned octant.
        for i in 0..24u16 {
            pe.update_voxel(key_in_branch(2, (100 + i, 200, 300)), i % 3 != 0)
                .unwrap();
        }
        for _ in 0..10 {
            for i in 0..8u16 {
                let k = key_in_branch(2, (2 + (i & 1), 4 + ((i >> 1) & 1), 6 + ((i >> 2) & 1)));
                pe.update_voxel(k, true).unwrap();
            }
        }
        let mut cursor = PeQueryCursor::new();
        let mut total_reused = 0u64;
        let mut total_saved = 0u64;
        // Probe a coherent stream (adjacent keys) and scattered keys,
        // including unknowns and a branch the PE never touched.
        let keys: Vec<VoxelKey> =
            (0..24u16)
                .map(|i| key_in_branch(2, (100 + i, 200, 300)))
                .chain((0..8u16).map(|i| {
                    key_in_branch(2, (2 + (i & 1), 4 + ((i >> 1) & 1), 6 + ((i >> 2) & 1)))
                }))
                .chain([
                    key_in_branch(2, (999, 999, 999)),
                    key_in_branch(5, (1, 2, 3)),
                ])
                .collect();
        for k in keys {
            let plain = pe.query(k).0;
            let out = pe.query_cached(k, &mut cursor, 25);
            assert_eq!(out.occupancy, plain, "key {k}");
            total_reused += out.reused_levels;
            total_saved += out.saved_cycles;
        }
        assert!(total_reused > 0, "adjacent keys must replay registers");
        assert!(total_saved > 0, "replays must be discounted");
    }

    #[test]
    fn cached_query_discount_shrinks_cycles() {
        let mut pe = pe();
        let a = key_in_branch(1, (500, 600, 700));
        let b = key_in_branch(1, (501, 600, 700));
        pe.update_voxel(a, true).unwrap();
        pe.update_voxel(b, true).unwrap();

        // Full-rate second query (0 % discount) vs discounted replay.
        let mut c0 = PeQueryCursor::new();
        pe.query_cached(a, &mut c0, 0);
        let flat = pe.query_cached(b, &mut c0, 0);
        let mut c25 = PeQueryCursor::new();
        pe.query_cached(a, &mut c25, 25);
        let discounted = pe.query_cached(b, &mut c25, 25);
        assert_eq!(flat.occupancy, discounted.occupancy);
        assert_eq!(flat.reused_levels, discounted.reused_levels);
        assert_eq!(flat.saved_cycles, 0);
        assert!(discounted.saved_cycles > 0);
        assert!(discounted.cycles < flat.cycles);

        // Reset forgets the path: the next query replays nothing.
        c25.reset();
        assert_eq!(pe.query_cached(a, &mut c25, 25).reused_levels, 0);
    }

    #[test]
    fn row_buffer_hits_are_measured_and_default_priced_neutrally() {
        let mut pe = pe();
        // A Morton-adjacent run keeps descending the same sibling rows.
        for i in 0..8u16 {
            let k = key_in_branch(0, (2 + (i & 1), 4 + ((i >> 1) & 1), 6 + ((i >> 2) & 1)));
            pe.update_voxel(k, true).unwrap();
        }
        let s = pe.stats();
        assert!(
            s.tmem_rows.hits > 0,
            "adjacent updates must hit open T-Mem rows"
        );
        assert!(s.tmem_rows.hit_rate() > 0.0);

        // With the default timing, row hits are priced like misses: the
        // per-update service time equals the flat model's.
        let mut flat = PeUnit::new(
            0,
            4096,
            512,
            OccupancyParams::default().resolve::<FixedLogOdds>(),
            PeTiming::default(),
            true,
        );
        let k = key_in_branch(0, (2, 4, 6));
        let a = pe.update_voxel(k, true).unwrap();
        let b = {
            for i in 0..8u16 {
                let k = key_in_branch(0, (2 + (i & 1), 4 + ((i >> 1) & 1), 6 + ((i >> 2) & 1)));
                flat.update_voxel(k, true).unwrap();
            }
            flat.update_voxel(k, true).unwrap()
        };
        assert_eq!(a.service_cycles, b.service_cycles);
    }

    #[test]
    fn discounted_row_hits_shrink_descent_cycles() {
        let run = |timing: PeTiming| {
            let mut pe = PeUnit::new(
                0,
                4096,
                512,
                OccupancyParams::default().resolve::<FixedLogOdds>(),
                timing,
                true,
            );
            let mut total = 0u64;
            for i in 0..16u16 {
                let k = key_in_branch(0, (100 + (i & 3), 200, 300));
                total += pe.update_voxel(k, true).unwrap().service_cycles;
            }
            total
        };
        let flat = run(PeTiming::default());
        let discounted = run(PeTiming {
            traverse_row_hit: 1,
            ..PeTiming::default()
        });
        assert!(
            discounted < flat,
            "row-hit pricing must cut descent cycles: {discounted} vs {flat}"
        );
    }

    #[test]
    fn snapshot_contains_updated_voxel() {
        let mut pe = pe();
        let k = key_in_branch(6, (123, 456, 789));
        pe.update_voxel(k, true).unwrap();
        let mut snap = Vec::new();
        pe.snapshot_into(&mut snap);
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, k);
        assert_eq!(snap[0].1, TREE_DEPTH);
        assert!(snap[0].2 > 0.0);
    }
}
