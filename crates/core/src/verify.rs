//! Software/accelerator equivalence checking.
//!
//! The paper's fixed-point format was "chosen to have zero loss from the
//! floating-point maps"; this reproduction makes the stronger, testable
//! claim that the accelerator's map is **bit-identical** to the software
//! octree running the same algorithm on the same 16-bit fixed point
//! ([`OctreeFixed`]). This module provides the
//! checker the test-suite and the repro harness use.

use std::fmt;

use omu_geometry::VoxelKey;
use omu_octree::OctreeFixed;

use crate::accel::OmuAccelerator;
use crate::config::OmuConfig;

/// A snapshot mismatch between the software and accelerator maps.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MismatchReport {
    /// Leaves present only in the software map.
    pub only_software: usize,
    /// Leaves present only in the accelerator map.
    pub only_accelerator: usize,
    /// Leaves present in both but with different values.
    pub value_mismatches: usize,
    /// Up to 8 rendered examples for debugging.
    pub examples: Vec<String>,
}

impl MismatchReport {
    fn is_empty(&self) -> bool {
        self.only_software == 0 && self.only_accelerator == 0 && self.value_mismatches == 0
    }

    fn note(&mut self, example: String) {
        if self.examples.len() < 8 {
            self.examples.push(example);
        }
    }
}

impl fmt::Display for MismatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "map mismatch: {} software-only, {} accelerator-only, {} value mismatches",
            self.only_software, self.only_accelerator, self.value_mismatches
        )?;
        for e in &self.examples {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for MismatchReport {}

/// Builds the software baseline whose semantics match an accelerator
/// configuration (same resolution, sensor model, range, integration mode
/// and pruning flag, on 16-bit fixed point).
pub fn baseline_for(config: &OmuConfig) -> OctreeFixed {
    let mut tree = OctreeFixed::with_params(config.resolution, config.params)
        // omu-lint: allow(no-panic) — `OmuConfig` construction already
        // validated the resolution; mirroring it cannot fail.
        .expect("accelerator configs carry validated resolutions");
    tree.set_max_range(config.max_range);
    tree.set_integration_mode(config.integration_mode);
    tree.set_pruning_enabled(config.pruning_enabled);
    // The accelerator has no early-abort pre-search; map contents are
    // identical either way, but disabling it keeps op counts comparable.
    tree.set_early_abort_saturated(false);
    tree
}

/// Compares two canonical snapshots `(key, depth, logodds)`.
///
/// # Errors
///
/// Returns a [`MismatchReport`] describing every divergence; `Ok` carries
/// the number of leaves compared.
pub fn compare_snapshots(
    software: &[(VoxelKey, u8, f32)],
    accelerator: &[(VoxelKey, u8, f32)],
) -> Result<usize, MismatchReport> {
    let mut report = MismatchReport::default();
    let (mut i, mut j) = (0, 0);
    while i < software.len() && j < accelerator.len() {
        let (sk, sd, sv) = software[i];
        let (ak, ad, av) = accelerator[j];
        match (sk, sd).cmp(&(ak, ad)) {
            std::cmp::Ordering::Less => {
                report.only_software += 1;
                report.note(format!("software-only leaf {sk} depth {sd} value {sv}"));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                report.only_accelerator += 1;
                report.note(format!("accelerator-only leaf {ak} depth {ad} value {av}"));
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if sv != av {
                    report.value_mismatches += 1;
                    report.note(format!(
                        "value mismatch at {sk} depth {sd}: sw {sv} vs hw {av}"
                    ));
                }
                i += 1;
                j += 1;
            }
        }
    }
    for &(k, d, v) in &software[i..] {
        report.only_software += 1;
        report.note(format!("software-only leaf {k} depth {d} value {v}"));
    }
    for &(k, d, v) in &accelerator[j..] {
        report.only_accelerator += 1;
        report.note(format!("accelerator-only leaf {k} depth {d} value {v}"));
    }
    if report.is_empty() {
        Ok(software.len())
    } else {
        Err(report)
    }
}

/// Checks that a software baseline and an accelerator hold bit-identical
/// maps.
///
/// # Errors
///
/// Returns the mismatch report on divergence.
pub fn check_equivalence(
    tree: &OctreeFixed,
    accel: &OmuAccelerator,
) -> Result<usize, MismatchReport> {
    compare_snapshots(&tree.snapshot(), &accel.snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use omu_geometry::{Point3, PointCloud, Scan};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_scan(rng: &mut StdRng, points: usize) -> Scan {
        let origin = Point3::new(
            rng.random_range(-1.0..1.0),
            rng.random_range(-1.0..1.0),
            rng.random_range(0.0..0.5),
        );
        let cloud: PointCloud = (0..points)
            .map(|_| {
                Point3::new(
                    rng.random_range(-6.0..6.0),
                    rng.random_range(-6.0..6.0),
                    rng.random_range(-2.0..2.0),
                )
            })
            .collect();
        Scan::new(origin, cloud)
    }

    #[test]
    fn random_workload_is_bit_identical() {
        let config = OmuConfig::default();
        let mut tree = baseline_for(&config);
        let mut accel = OmuAccelerator::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(2022);
        for _ in 0..20 {
            let scan = random_scan(&mut rng, 40);
            tree.insert_scan(&scan).unwrap();
            accel.integrate_scan(&scan).unwrap();
        }
        let leaves = check_equivalence(&tree, &accel).unwrap();
        assert!(leaves > 500, "non-trivial map compared ({leaves} leaves)");
    }

    #[test]
    fn equivalence_holds_with_pruning_disabled() {
        let config = OmuConfig::builder()
            .pruning_enabled(false)
            .rows_per_bank(1 << 14)
            .build()
            .unwrap();
        let mut tree = baseline_for(&config);
        let mut accel = OmuAccelerator::new(config).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let scan = random_scan(&mut rng, 30);
            tree.insert_scan(&scan).unwrap();
            accel.integrate_scan(&scan).unwrap();
        }
        check_equivalence(&tree, &accel).unwrap();
    }

    #[test]
    fn mismatches_are_reported() {
        let k = VoxelKey::new(1, 2, 3);
        let sw = vec![(k, 16u8, 0.5f32)];
        let hw = vec![(k, 16u8, 0.25f32)];
        let r = compare_snapshots(&sw, &hw).unwrap_err();
        assert_eq!(r.value_mismatches, 1);
        assert!(r.to_string().contains("value mismatch"));

        let r = compare_snapshots(&sw, &[]).unwrap_err();
        assert_eq!(r.only_software, 1);
        let r = compare_snapshots(&[], &hw).unwrap_err();
        assert_eq!(r.only_accelerator, 1);
    }

    #[test]
    fn empty_maps_are_equivalent() {
        assert_eq!(compare_snapshots(&[], &[]), Ok(0));
    }
}
