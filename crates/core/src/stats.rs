//! Accelerator statistics: per-stage cycles, per-PE counters, and the
//! device-level record the evaluation harness consumes.

use omu_simhw::SramStats;
use serde::{Deserialize, Serialize};

use crate::prune_mgr::PruneMgrStats;
use crate::treemem::RowBufferStats;

/// Cycles spent in each PE datapath stage.
///
/// The paper's Fig. 10 accelerator breakdown maps onto these as:
/// *Update Leaf* = `traverse + leaf + create`, *Update Parents* =
/// `parent`, *Node Prune/Expand* = `prune_check + prune_action + expand`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeStageCycles {
    /// Descent: address generation + per-level child reads.
    pub traverse: u64,
    /// Leaf read-modify-write.
    pub leaf: u64,
    /// Fresh-child creation during descent.
    pub create: u64,
    /// Bottom-up parent updates (row read + max + write).
    pub parent: u64,
    /// Prune comparator stage per level.
    pub prune_check: u64,
    /// Executed prunes (stack push + leaf write-back).
    pub prune_action: u64,
    /// Executed expansions (row allocation + row write).
    pub expand: u64,
}

impl PeStageCycles {
    /// Total cycles across stages.
    pub fn total(&self) -> u64 {
        self.traverse
            + self.leaf
            + self.create
            + self.parent
            + self.prune_check
            + self.prune_action
            + self.expand
    }

    /// The Fig. 10 three-category split:
    /// `[update_leaf, update_parents, prune_expand]`.
    pub fn figure10_categories(&self) -> [u64; 3] {
        [
            self.traverse + self.leaf + self.create,
            self.parent,
            self.prune_check + self.prune_action + self.expand,
        ]
    }

    /// The Fig. 10 category shares (zeros when idle).
    pub fn figure10_shares(&self) -> [f64; 3] {
        let t = self.total();
        if t == 0 {
            return [0.0; 3];
        }
        self.figure10_categories().map(|c| c as f64 / t as f64)
    }

    /// Accumulates another record.
    pub fn merge(&mut self, other: &PeStageCycles) {
        self.traverse += other.traverse;
        self.leaf += other.leaf;
        self.create += other.create;
        self.parent += other.parent;
        self.prune_check += other.prune_check;
        self.prune_action += other.prune_action;
        self.expand += other.expand;
    }
}

/// Counters of one PE unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeStats {
    /// Voxel updates executed.
    pub updates: u64,
    /// Fresh child creations.
    pub creates: u64,
    /// Node expansions.
    pub expands: u64,
    /// Node prunes.
    pub prunes: u64,
    /// Per-stage cycle breakdown. Excludes serving-mode row-copy cycles
    /// (`cow_cycles`), which are an overhead on top of the paper's
    /// Fig. 10 datapath stages rather than one of them.
    pub stage_cycles: PeStageCycles,
    /// Total busy cycles (sum of per-update service times, including
    /// serving-mode row-copy cycles).
    pub busy_cycles: u64,
    /// Rows streamed out by the serving-mode row-COW engine.
    pub cow_rows: u64,
    /// Copy-engine cycles (already included in `busy_cycles`).
    pub cow_cycles: u64,
    /// SRAM access counters of the PE's T-Mem.
    pub sram: SramStats,
    /// Open-row (row-buffer) hit/miss counters of the PE's T-Mem — the
    /// hardware analogue of the software arena's sibling-row cache-line
    /// locality under Morton-ordered update streams.
    pub tmem_rows: RowBufferStats,
    /// Prune address manager statistics.
    pub prune_mgr: PruneMgrStats,
    /// Live children rows at sample time.
    pub live_rows: u64,
    /// Peak live children rows.
    pub high_water_rows: u64,
}

/// Device-level statistics of an [`OmuAccelerator`](crate::OmuAccelerator)
/// run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AccelStats {
    /// Scans integrated.
    pub scans: u64,
    /// Points (rays) consumed.
    pub points: u64,
    /// Voxel updates dispatched to PEs (free + occupied).
    pub voxel_updates: u64,
    /// Free-cell updates.
    pub free_updates: u64,
    /// Occupied-cell updates.
    pub occupied_updates: u64,
    /// DDA steps performed by the ray-casting unit.
    pub raycast_steps: u64,
    /// Ray-casting unit cycles (overlapped with PE work).
    pub raycast_cycles: u64,
    /// Ray packets cast by the 8-lane lockstep front end (zero under the
    /// scalar front end).
    pub raycast_packets: u64,
    /// Lockstep supersteps executed by the packet front end — its cycle
    /// currency: every live lane advances once per superstep.
    pub raycast_supersteps: u64,
    /// AXI DMA cycles for point-cloud transfer (overlapped).
    pub dma_cycles: u64,
    /// Bytes DMA-transferred from the host.
    pub dma_bytes: u64,
    /// Cycles the scheduler stalled because a PE queue was full.
    pub stall_cycles: u64,
    /// End-to-end wall cycles (the max over overlapped pipelines, summed
    /// over scans).
    pub wall_cycles: u64,
    /// Voxel queries served.
    pub queries: u64,
    /// Voxel query unit cycles.
    pub query_cycles: u64,
    /// Serving-mode snapshots published (epoch broadcasts to the PEs).
    pub snapshot_publishes: u64,
    /// Per-PE statistics.
    pub per_pe: Vec<PeStats>,
}

impl AccelStats {
    /// Mean fraction of the ray-casting unit's 8 lanes kept busy per
    /// lockstep superstep (`0` under the scalar front end).
    pub fn raycast_lane_occupancy(&self) -> f64 {
        if self.raycast_supersteps == 0 {
            0.0
        } else {
            self.raycast_steps as f64 / (self.raycast_supersteps * 8) as f64
        }
    }

    /// Sum of PE busy cycles.
    pub fn pe_busy_total(&self) -> u64 {
        self.per_pe.iter().map(|p| p.busy_cycles).sum()
    }

    /// Aggregated stage cycles over all PEs.
    pub fn stage_cycles(&self) -> PeStageCycles {
        let mut s = PeStageCycles::default();
        for p in &self.per_pe {
            s.merge(&p.stage_cycles);
        }
        s
    }

    /// Aggregated SRAM accesses over all PEs.
    pub fn sram_total(&self) -> SramStats {
        let mut s = SramStats::default();
        for p in &self.per_pe {
            s.merge(&p.sram);
        }
        s
    }

    /// Rows streamed out by the serving-mode row-COW engines, across PEs.
    pub fn cow_rows_copied(&self) -> u64 {
        self.per_pe.iter().map(|p| p.cow_rows).sum()
    }

    /// Copy-engine cycles across PEs (included in each PE's busy time).
    pub fn cow_cycles(&self) -> u64 {
        self.per_pe.iter().map(|p| p.cow_cycles).sum()
    }

    /// Total prunes across PEs.
    pub fn prunes(&self) -> u64 {
        self.per_pe.iter().map(|p| p.prunes).sum()
    }

    /// Total expansions across PEs.
    pub fn expands(&self) -> u64 {
        self.per_pe.iter().map(|p| p.expands).sum()
    }

    /// Load balance: the ratio of the busiest PE's updates to the mean
    /// (1.0 = perfectly balanced; meaningless when idle).
    pub fn load_imbalance(&self) -> f64 {
        if self.per_pe.is_empty() || self.voxel_updates == 0 {
            return 1.0;
        }
        let max = self.per_pe.iter().map(|p| p.updates).max().unwrap_or(0) as f64;
        let mean = self.voxel_updates as f64 / self.per_pe.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Wall-clock seconds at `clock_ghz`.
    pub fn wall_seconds(&self, clock_ghz: f64) -> f64 {
        omu_simhw::cycles_to_seconds(self.wall_cycles, clock_ghz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(traverse: u64, parent: u64, prune_check: u64) -> PeStageCycles {
        PeStageCycles {
            traverse,
            parent,
            prune_check,
            ..Default::default()
        }
    }

    #[test]
    fn stage_totals_and_shares() {
        let s = PeStageCycles {
            traverse: 30,
            leaf: 2,
            create: 0,
            parent: 45,
            prune_check: 15,
            prune_action: 4,
            expand: 4,
        };
        assert_eq!(s.total(), 100);
        let cats = s.figure10_categories();
        assert_eq!(cats, [32, 45, 23]);
        let shares = s.figure10_shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(shares[2] < 0.25, "prune/expand share stays small on OMU");
    }

    #[test]
    fn idle_shares_are_zero() {
        assert_eq!(PeStageCycles::default().figure10_shares(), [0.0; 3]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = stage(10, 20, 5);
        a.merge(&stage(1, 2, 3));
        assert_eq!(a.traverse, 11);
        assert_eq!(a.parent, 22);
        assert_eq!(a.prune_check, 8);
    }

    #[test]
    fn device_aggregations() {
        let mut stats = AccelStats {
            voxel_updates: 30,
            ..Default::default()
        };
        stats.per_pe = vec![
            PeStats {
                updates: 10,
                busy_cycles: 100,
                stage_cycles: stage(5, 0, 0),
                ..Default::default()
            },
            PeStats {
                updates: 20,
                busy_cycles: 300,
                stage_cycles: stage(7, 0, 0),
                ..Default::default()
            },
        ];
        assert_eq!(stats.pe_busy_total(), 400);
        assert_eq!(stats.stage_cycles().traverse, 12);
        assert!((stats.load_imbalance() - 20.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn wall_seconds_uses_clock() {
        let stats = AccelStats {
            wall_cycles: 2_000_000_000,
            ..Default::default()
        };
        assert_eq!(stats.wall_seconds(1.0), 2.0);
        assert_eq!(stats.wall_seconds(2.0), 1.0);
    }
}
