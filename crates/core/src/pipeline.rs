//! End-to-end mapping runs: stream scans through an accelerator and
//! summarize the paper's evaluation metrics.

use omu_geometry::Scan;
use serde::{Deserialize, Serialize};

use crate::accel::OmuAccelerator;
use crate::config::OmuConfig;
use crate::error::AccelError;
use crate::query_unit::QueryUnitStats;

/// Voxel updates per frame-equivalent for the paper's FPS convention
/// (a 320 × 240 sensor image at a nominal 15 updates per pixel; see
/// Section III-B and `omu_cpumodel::UPDATES_PER_FRAME`, kept numerically
/// identical here).
const UPDATES_PER_FRAME: f64 = 320.0 * 240.0 * 15.0;

/// Evaluation summary of one accelerator mapping run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccelRunSummary {
    /// Scans integrated.
    pub scans: u64,
    /// Points consumed.
    pub points: u64,
    /// Voxel updates executed.
    pub voxel_updates: u64,
    /// End-to-end latency in seconds (Table III row "OMU accelerator").
    pub latency_s: f64,
    /// Frame-equivalent throughput (Table IV).
    pub fps: f64,
    /// Modeled energy in joules (Table V).
    pub energy_j: f64,
    /// Average power in milliwatts (Section VI-C).
    pub power_mw: f64,
    /// Share of power consumed by SRAM (paper: 91 %).
    pub sram_power_share: f64,
    /// Fig. 10 accelerator-side shares
    /// `[update_leaf, update_parents, prune_expand]`.
    pub breakdown_shares: [f64; 3],
    /// Mean T-Mem row utilization at end of run.
    pub sram_utilization: f64,
    /// Busiest-PE / mean-PE update ratio (1.0 = balanced).
    pub load_imbalance: f64,
    /// Scheduler issue stalls in cycles.
    pub stall_cycles: u64,
    /// Voxel query unit counters (queries served, cycles, cached-descent
    /// reuse) — zero when the run never queried the map.
    pub query: QueryUnitStats,
    /// Serving snapshots published (epoch broadcasts) — zero when the
    /// run never served concurrent readers.
    pub snapshot_publishes: u64,
    /// Rows streamed out by the serving-mode row-COW engine while a
    /// snapshot was pinned.
    pub cow_rows_copied: u64,
    /// Copy-engine cycles (already folded into PE service times and
    /// therefore the latency/energy figures above).
    pub cow_cycles: u64,
}

/// Which voxel-update path a mapping run drives.
///
/// All engines produce bit-identical maps; they differ in how tree
/// maintenance is scheduled. [`UpdateEngine::MortonBatched`] is the
/// paper-shaped path: one sorted batch per scan, each PE's work arriving
/// as a contiguous run. [`UpdateEngine::ShardedParallel`] additionally
/// groups the batch by PE, so a PE's whole scan workload is one run —
/// the branch-shard → PE mapping of the software
/// `apply_update_batch_parallel` engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum UpdateEngine {
    /// One full descent + parent-refresh pass per voxel update
    /// (OctoMap's `updateNode` loop; the paper's CPU baseline shape).
    #[default]
    Scalar,
    /// Per-scan Morton-sorted batches
    /// ([`OmuAccelerator::integrate_scan_batched`]).
    MortonBatched,
    /// Per-scan batches grouped by PE then Morton-sorted, one contiguous
    /// run per PE ([`OmuAccelerator::integrate_scan_sharded`]).
    ShardedParallel,
}

/// Builds an accelerator from `config`, integrates every scan, and
/// summarizes the run.
///
/// # Errors
///
/// Returns the first [`AccelError`] encountered (bad origin or SRAM
/// capacity exhaustion).
///
/// # Examples
///
/// ```
/// use omu_core::{run_accelerator, OmuConfig};
/// use omu_geometry::{Point3, PointCloud, Scan};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let scans = vec![Scan::new(
///     Point3::ZERO,
///     [Point3::new(1.0, 0.0, 0.0)].into_iter().collect::<PointCloud>(),
/// )];
/// let (omu, summary) = run_accelerator(OmuConfig::default(), scans.into_iter())?;
/// assert_eq!(summary.scans, 1);
/// assert!(summary.latency_s > 0.0);
/// assert!(omu.stats().voxel_updates > 0);
/// # Ok(())
/// # }
/// ```
pub fn run_accelerator<I>(
    config: OmuConfig,
    scans: I,
) -> Result<(OmuAccelerator, AccelRunSummary), AccelError>
where
    I: Iterator<Item = Scan>,
{
    run_accelerator_with_engine(config, scans, UpdateEngine::Scalar)
}

/// [`run_accelerator`] with an explicit [`UpdateEngine`] selection.
///
/// # Errors
///
/// Returns the first [`AccelError`] encountered.
pub fn run_accelerator_with_engine<I>(
    config: OmuConfig,
    scans: I,
    engine: UpdateEngine,
) -> Result<(OmuAccelerator, AccelRunSummary), AccelError>
where
    I: Iterator<Item = Scan>,
{
    let mut omu = OmuAccelerator::new(config)?;
    for scan in scans {
        omu.integrate_scan_with(&scan, engine)?;
    }
    let summary = summarize(&omu);
    Ok((omu, summary))
}

/// Summarizes an accelerator's activity so far.
pub fn summarize(omu: &OmuAccelerator) -> AccelRunSummary {
    let stats = omu.stats();
    let latency_s = omu.elapsed_seconds();
    let ledger = omu.energy_ledger();
    let energy_j = ledger.total_joules();
    let power_mw = if latency_s > 0.0 {
        energy_j / latency_s * 1e3
    } else {
        0.0
    };
    AccelRunSummary {
        scans: stats.scans,
        points: stats.points,
        voxel_updates: stats.voxel_updates,
        latency_s,
        fps: if latency_s > 0.0 {
            stats.voxel_updates as f64 / latency_s / UPDATES_PER_FRAME
        } else {
            0.0
        },
        energy_j,
        power_mw,
        sram_power_share: ledger.share_prefix("sram"),
        breakdown_shares: stats.stage_cycles().figure10_shares(),
        sram_utilization: omu.sram_utilization(),
        load_imbalance: stats.load_imbalance(),
        stall_cycles: stats.stall_cycles,
        query: omu.query_unit_stats(),
        snapshot_publishes: stats.snapshot_publishes,
        cow_rows_copied: stats.cow_rows_copied(),
        cow_cycles: stats.cow_cycles(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omu_geometry::{Point3, PointCloud};

    fn ring_scans(n: usize) -> Vec<Scan> {
        (0..n)
            .map(|i| {
                let a = i as f64 * 0.17;
                Scan::new(
                    Point3::new(0.01, 0.01, 0.3),
                    (0..32)
                        .map(|j| {
                            let b = a + j as f64 * 0.196;
                            Point3::new(5.0 * b.cos(), 5.0 * b.sin(), 0.4)
                        })
                        .collect::<PointCloud>(),
                )
            })
            .collect()
    }

    #[test]
    fn summary_fields_are_consistent() {
        let (omu, s) = run_accelerator(OmuConfig::default(), ring_scans(10).into_iter()).unwrap();
        assert_eq!(s.scans, 10);
        assert_eq!(s.points, 320);
        assert!(s.voxel_updates > s.points, "free cells dominate updates");
        assert!(s.latency_s > 0.0);
        assert!(s.fps > 0.0);
        assert!(s.energy_j > 0.0);
        assert!(s.power_mw > 0.0);
        assert!(s.sram_power_share > 0.5);
        let share_sum: f64 = s.breakdown_shares.iter().sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
        assert!(
            s.breakdown_shares[2] < 0.3,
            "prune/expand stays below ~20-30 % on OMU"
        );
        assert!(s.load_imbalance >= 1.0);
        assert_eq!(omu.stats().scans, 10);
    }

    #[test]
    fn engines_agree_on_map_and_workload() {
        let scans = ring_scans(6);
        let (scalar, s1) =
            run_accelerator(OmuConfig::default(), scans.clone().into_iter()).unwrap();
        let (batched, s2) = run_accelerator_with_engine(
            OmuConfig::default(),
            scans.clone().into_iter(),
            UpdateEngine::MortonBatched,
        )
        .unwrap();
        let (sharded, s3) = run_accelerator_with_engine(
            OmuConfig::default(),
            scans.into_iter(),
            UpdateEngine::ShardedParallel,
        )
        .unwrap();
        assert_eq!(scalar.snapshot(), batched.snapshot());
        assert_eq!(scalar.snapshot(), sharded.snapshot());
        assert_eq!(s1.voxel_updates, s2.voxel_updates);
        assert_eq!(s1.voxel_updates, s3.voxel_updates);
        assert_eq!(s1.scans, s2.scans);
        assert!(batched.morton_runs() > 0);
        // One run per PE per scan at most.
        assert!(sharded.morton_runs() <= batched.morton_runs());
        // The contiguous runs earn the burst discount in wall cycles.
        assert!(s3.latency_s <= s2.latency_s);
        assert!(s2.latency_s < s1.latency_s);
    }

    #[test]
    fn summary_reflects_serving_mode() {
        let scans = ring_scans(4);
        let mut omu = OmuAccelerator::new(OmuConfig::default()).unwrap();
        omu.integrate_scan_with(&scans[0], UpdateEngine::MortonBatched)
            .unwrap();
        omu.publish_snapshot();
        for s in &scans[1..] {
            omu.integrate_scan_with(s, UpdateEngine::MortonBatched)
                .unwrap();
        }
        let s = summarize(&omu);
        assert_eq!(s.snapshot_publishes, 1);
        assert!(s.cow_rows_copied > 0);
        assert_eq!(
            s.cow_cycles,
            s.cow_rows_copied * crate::treemem::COW_COPY_CYCLES
        );
        // Serving never perturbs the map, only the pricing.
        assert!(s.latency_s > 0.0);
        assert!(s.energy_j > 0.0);
    }

    #[test]
    fn empty_run_summarizes_to_zeros() {
        let (_, s) = run_accelerator(OmuConfig::default(), std::iter::empty::<Scan>()).unwrap();
        assert_eq!(s.scans, 0);
        assert_eq!(s.fps, 0.0);
        assert_eq!(s.latency_s, 0.0);
    }
}
