//! The voxel query unit: occupancy classification service for collision
//! detection and planning (paper Fig. 7, "Voxel Query").

use serde::{Deserialize, Serialize};

/// Counters of the voxel query unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryUnitStats {
    /// Queries served.
    pub queries: u64,
    /// Total query cycles (PE descent + threshold compare).
    pub cycles: u64,
}

impl QueryUnitStats {
    /// Records one query of `cycles` latency.
    pub fn record(&mut self, cycles: u64) {
        self.queries += 1;
        self.cycles += cycles;
    }

    /// Mean query latency in cycles (0 when idle).
    pub fn mean_latency(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cycles as f64 / self.queries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_averages() {
        let mut s = QueryUnitStats::default();
        s.record(10);
        s.record(20);
        assert_eq!(s.queries, 2);
        assert_eq!(s.cycles, 30);
        assert_eq!(s.mean_latency(), 15.0);
    }

    #[test]
    fn idle_mean_is_zero() {
        assert_eq!(QueryUnitStats::default().mean_latency(), 0.0);
    }
}
