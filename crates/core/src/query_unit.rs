//! The voxel query unit: occupancy classification service for collision
//! detection and planning (paper Fig. 7, "Voxel Query").
//!
//! Scalar queries ([`OmuAccelerator::query_key`]) descend the hosting
//! PE's T-Mem from its root, paying one `query_per_level` SRAM read per
//! level. The batched entry points
//! ([`OmuAccelerator::query_batch`] / [`OmuAccelerator::cast_ray`])
//! model a **cached descent**: the unit holds the previous query's
//! root-to-leaf node entries in a register file per PE, so a query that
//! shares a Morton prefix with its predecessor replays the shared levels
//! from registers at the same discounted rate the voxel scheduler's
//! burst model applies to contiguous update runs
//! ([`OmuConfig::burst_discount_pct`]) — the row-buffer-hit analogue on
//! the read side. DDA-driven query rays probe adjacent voxels, which
//! share almost their whole root path, so ray casting is where the
//! discount pays most.
//!
//! [`OmuAccelerator::query_key`]: crate::OmuAccelerator::query_key
//! [`OmuAccelerator::query_batch`]: crate::OmuAccelerator::query_batch
//! [`OmuAccelerator::cast_ray`]: crate::OmuAccelerator::cast_ray
//! [`OmuConfig::burst_discount_pct`]: crate::OmuConfig

use serde::{Deserialize, Serialize};

/// Counters of the voxel query unit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryUnitStats {
    /// Queries served (every probe, including each DDA step of a ray).
    pub queries: u64,
    /// Total query cycles (PE descent + threshold compare).
    pub cycles: u64,
    /// Queries served through the batched entry point.
    pub batch_queries: u64,
    /// Batched queries answered from the unit's result latch because the
    /// Morton sort made duplicate keys adjacent (no descent at all).
    pub coalesced: u64,
    /// Query rays cast through the unit.
    pub rays: u64,
    /// DDA steps (voxel probes) executed for query rays.
    pub ray_steps: u64,
    /// Descent levels replayed from the per-PE cached path registers
    /// instead of T-Mem.
    pub reused_levels: u64,
    /// Cycles saved by the cached-descent discount (the difference
    /// between full and discounted service for the reused levels).
    pub saved_cycles: u64,
}

impl QueryUnitStats {
    /// Records one query of `cycles` latency.
    pub fn record(&mut self, cycles: u64) {
        self.queries += 1;
        self.cycles += cycles;
    }

    /// Records the cached-descent reuse of one query: `levels` served
    /// from the path registers, saving `saved` cycles vs full-rate SRAM
    /// descent.
    pub fn record_reuse(&mut self, levels: u64, saved: u64) {
        self.reused_levels += levels;
        self.saved_cycles += saved;
    }

    /// Mean query latency in cycles (0 when idle).
    pub fn mean_latency(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.cycles as f64 / self.queries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_averages() {
        let mut s = QueryUnitStats::default();
        s.record(10);
        s.record(20);
        assert_eq!(s.queries, 2);
        assert_eq!(s.cycles, 30);
        assert_eq!(s.mean_latency(), 15.0);
    }

    #[test]
    fn idle_mean_is_zero() {
        assert_eq!(QueryUnitStats::default().mean_latency(), 0.0);
    }

    #[test]
    fn reuse_accumulates() {
        let mut s = QueryUnitStats::default();
        s.record_reuse(15, 7);
        s.record_reuse(3, 1);
        assert_eq!(s.reused_levels, 18);
        assert_eq!(s.saved_cycles, 8);
    }
}
