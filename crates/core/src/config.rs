//! Accelerator configuration.

use omu_geometry::OccupancyParams;
use omu_raycast::{FrontEnd, IntegrationMode};
use serde::{Deserialize, Serialize};

use crate::error::ConfigError;

/// Per-stage cycle costs of the PE update datapath.
///
/// The defaults model the paper's pipeline: single-cycle SRAM with one
/// address-generation cycle per dependent access on the way down, and a
/// read-row / compute / write-back sequence per level on the way up. They
/// land the FR-079 workload at the paper's ~100 cycles per voxel update
/// (1.31 s for 101 M updates across 8 PEs at 1 GHz).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeTiming {
    /// Cycles per level descended (address generation + bank read).
    pub traverse_per_level: u64,
    /// Cycles per descended level whose bank read hits the open T-Mem
    /// row (see [`TreeMem`](crate::TreeMem)'s row-buffer model): the
    /// sibling row is already latched, so only the octant mux is paid.
    /// The default equals [`Self::traverse_per_level`], which keeps the
    /// paper's calibrated cycle counts; lower it to model a row-aware
    /// descent datapath (`ablation_*` experiments).
    pub traverse_row_hit: u64,
    /// Cycles for the leaf read-modify-write.
    pub leaf_update: u64,
    /// Cycles per level on the way up: parallel row read + max + write.
    pub parent_per_level: u64,
    /// Cycles per level for the prune comparator stage (equality tree over
    /// the row just read).
    pub prune_check_per_level: u64,
    /// Extra cycles for an actual prune (stack push + leaf write-back).
    pub prune_action: u64,
    /// Extra cycles for an expansion (stack pop / bump + row write).
    pub expand_action: u64,
    /// Extra cycles for creating a fresh child row during descent.
    pub create_action: u64,
    /// Cycles per level for a query descent.
    pub query_per_level: u64,
    /// Fixed query overhead (threshold compare + response).
    pub query_overhead: u64,
}

impl Default for PeTiming {
    fn default() -> Self {
        PeTiming {
            traverse_per_level: 2,
            traverse_row_hit: 2,
            leaf_update: 2,
            parent_per_level: 3,
            prune_check_per_level: 1,
            prune_action: 2,
            expand_action: 3,
            create_action: 2,
            query_per_level: 2,
            query_overhead: 2,
        }
    }
}

/// Full accelerator configuration (defaults = the paper's design point).
///
/// # Examples
///
/// ```
/// use omu_core::OmuConfig;
///
/// let config = OmuConfig::builder()
///     .num_pes(4)
///     .rows_per_bank(8192)
///     .resolution(0.1)
///     .build()
///     .unwrap();
/// assert_eq!(config.num_pes, 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OmuConfig {
    /// Number of PE units (paper: 8; must be 1, 2, 4 or 8).
    pub num_pes: usize,
    /// SRAM rows per T-Mem bank (paper: 4096 = 32 kB of 64-bit words).
    pub rows_per_bank: usize,
    /// Capacity of each PE's prune-address stack, in row pointers.
    pub prune_stack_capacity: usize,
    /// Per-PE in-flight window, in updates: a voxel whose PE already has
    /// this many unfinished updates waits in the shared queues (see
    /// `VoxelScheduler` for the buffering idealization the paper's
    /// throughput implies). Affects waiting statistics far more than
    /// latency — `ablation_queue` quantifies it.
    pub voxel_queue_capacity: usize,
    /// Clock frequency in GHz (paper: 1 GHz).
    pub clock_ghz: f64,
    /// Map resolution in metres (paper evaluation: 0.2 m).
    pub resolution: f64,
    /// Occupancy sensor model.
    pub params: OccupancyParams,
    /// Maximum mapping range in metres (`None` = unlimited).
    pub max_range: Option<f64>,
    /// Scan integration mode (the hardware executes raywise updates).
    pub integration_mode: IntegrationMode,
    /// DDA front end of the ray-casting unit: the paper's unit is an
    /// 8-lane lockstep datapath ([`FrontEnd::Packet`], the default);
    /// [`FrontEnd::Scalar`] models a one-ray-at-a-time unit for
    /// ablations. Functional output is bit-identical either way.
    pub front_end: FrontEnd,
    /// Whether tree pruning is enabled (ablation knob; paper: on).
    pub pruning_enabled: bool,
    /// PE datapath timing.
    pub timing: PeTiming,
    /// AXI stream bus width in bits (host DMA model).
    pub axi_bus_bits: u32,
    /// Per-voxel service discount (percent) for updates after the first
    /// in a contiguous same-PE run — the row-buffer-hit analogue: a run
    /// of Morton-sorted updates keeps hitting the same T-Mem row
    /// neighbourhood, so address generation and row activation amortize.
    /// Only the batched front ends issue runs; the scalar path is
    /// unaffected. `0` disables the model.
    pub burst_discount_pct: u32,
}

impl Default for OmuConfig {
    fn default() -> Self {
        OmuConfig {
            num_pes: 8,
            rows_per_bank: 4096,
            prune_stack_capacity: 2048,
            voxel_queue_capacity: 512,
            clock_ghz: 1.0,
            resolution: 0.2,
            params: OccupancyParams::default(),
            max_range: None,
            integration_mode: IntegrationMode::Raywise,
            front_end: FrontEnd::default(),
            pruning_enabled: true,
            timing: PeTiming::default(),
            axi_bus_bits: 128,
            burst_discount_pct: 25,
        }
    }
}

impl OmuConfig {
    /// Starts a builder initialized with the paper's design point.
    pub fn builder() -> OmuConfigBuilder {
        OmuConfigBuilder {
            config: OmuConfig::default(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for unsupported PE counts, empty memories,
    /// or non-positive clock/resolution.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if ![1, 2, 4, 8].contains(&self.num_pes) {
            return Err(ConfigError::UnsupportedPeCount(self.num_pes));
        }
        if self.rows_per_bank < 2 {
            return Err(ConfigError::TooFewRows(self.rows_per_bank));
        }
        if self.prune_stack_capacity == 0 {
            return Err(ConfigError::EmptyPruneStack);
        }
        if self.voxel_queue_capacity == 0 {
            return Err(ConfigError::EmptyQueue);
        }
        if !(self.clock_ghz.is_finite() && self.clock_ghz > 0.0) {
            return Err(ConfigError::BadClock(self.clock_ghz));
        }
        if !(self.resolution.is_finite() && self.resolution > 0.0) {
            return Err(ConfigError::BadResolution(self.resolution));
        }
        if self.burst_discount_pct > 100 {
            return Err(ConfigError::BadBurstDiscount(self.burst_discount_pct));
        }
        Ok(())
    }

    /// Total SRAM capacity in bytes (all PEs, 8 banks each, 8 B words).
    pub fn total_sram_bytes(&self) -> usize {
        self.num_pes * 8 * self.rows_per_bank * 8
    }

    /// Node slots available per PE (8 per usable row; row 0 is the root
    /// row).
    pub fn node_slots_per_pe(&self) -> usize {
        (self.rows_per_bank - 1) * 8
    }
}

/// Builder for [`OmuConfig`].
#[derive(Debug, Clone)]
pub struct OmuConfigBuilder {
    config: OmuConfig,
}

impl OmuConfigBuilder {
    /// Sets the PE count (1, 2, 4 or 8).
    pub fn num_pes(mut self, n: usize) -> Self {
        self.config.num_pes = n;
        self
    }

    /// Sets the rows per T-Mem bank.
    pub fn rows_per_bank(mut self, rows: usize) -> Self {
        self.config.rows_per_bank = rows;
        self
    }

    /// Sets the prune-address stack capacity.
    pub fn prune_stack_capacity(mut self, cap: usize) -> Self {
        self.config.prune_stack_capacity = cap;
        self
    }

    /// Sets the shared voxel-queue capacity (in-flight updates).
    pub fn voxel_queue_capacity(mut self, capacity: usize) -> Self {
        self.config.voxel_queue_capacity = capacity;
        self
    }

    /// Sets the clock frequency in GHz.
    pub fn clock_ghz(mut self, ghz: f64) -> Self {
        self.config.clock_ghz = ghz;
        self
    }

    /// Sets the map resolution in metres.
    pub fn resolution(mut self, res: f64) -> Self {
        self.config.resolution = res;
        self
    }

    /// Sets the occupancy sensor model.
    pub fn params(mut self, params: OccupancyParams) -> Self {
        self.config.params = params;
        self
    }

    /// Sets the maximum mapping range.
    pub fn max_range(mut self, range: Option<f64>) -> Self {
        self.config.max_range = range;
        self
    }

    /// Sets the integration mode.
    pub fn integration_mode(mut self, mode: IntegrationMode) -> Self {
        self.config.integration_mode = mode;
        self
    }

    /// Selects the ray-casting unit's DDA front end (see
    /// [`OmuConfig::front_end`]).
    pub fn front_end(mut self, front_end: FrontEnd) -> Self {
        self.config.front_end = front_end;
        self
    }

    /// Enables or disables pruning.
    pub fn pruning_enabled(mut self, enabled: bool) -> Self {
        self.config.pruning_enabled = enabled;
        self
    }

    /// Sets the PE timing model.
    pub fn timing(mut self, timing: PeTiming) -> Self {
        self.config.timing = timing;
        self
    }

    /// Sets the same-PE burst discount percentage (0 disables it).
    pub fn burst_discount_pct(mut self, pct: u32) -> Self {
        self.config.burst_discount_pct = pct;
        self
    }

    /// Builds and validates.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when the configuration is invalid.
    pub fn build(self) -> Result<OmuConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_design_point() {
        let c = OmuConfig::default();
        assert_eq!(c.num_pes, 8);
        assert_eq!(c.rows_per_bank, 4096);
        assert_eq!(c.clock_ghz, 1.0);
        assert_eq!(c.resolution, 0.2);
        // 8 PEs × 8 banks × 32 kB = 2 MB.
        assert_eq!(c.total_sram_bytes(), 2 * 1024 * 1024);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_sets_fields() {
        let c = OmuConfig::builder()
            .num_pes(2)
            .rows_per_bank(1024)
            .voxel_queue_capacity(64)
            .clock_ghz(0.5)
            .resolution(0.1)
            .pruning_enabled(false)
            .build()
            .unwrap();
        assert_eq!(c.num_pes, 2);
        assert_eq!(c.rows_per_bank, 1024);
        assert!(!c.pruning_enabled);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(OmuConfig::builder().num_pes(3).build().is_err());
        assert!(OmuConfig::builder().num_pes(16).build().is_err());
        assert!(OmuConfig::builder().rows_per_bank(1).build().is_err());
        assert!(OmuConfig::builder().clock_ghz(0.0).build().is_err());
        assert!(OmuConfig::builder().resolution(-1.0).build().is_err());
        assert!(OmuConfig::builder()
            .voxel_queue_capacity(0)
            .build()
            .is_err());
        assert!(OmuConfig::builder()
            .burst_discount_pct(101)
            .build()
            .is_err());
        assert!(OmuConfig::builder().burst_discount_pct(100).build().is_ok());
    }

    #[test]
    fn node_slots_exclude_root_row() {
        let c = OmuConfig::default();
        assert_eq!(c.node_slots_per_pe(), 4095 * 8);
    }

    #[test]
    fn default_timing_near_paper_cycles_per_update() {
        let t = PeTiming::default();
        // 15 levels below the PE root.
        let per_update = 15 * t.traverse_per_level
            + t.leaf_update
            + 15 * (t.parent_per_level + t.prune_check_per_level);
        assert!(
            (85..=115).contains(&per_update),
            "steady-state cycles/update = {per_update}, paper implies ≈ 100"
        );
    }
}
