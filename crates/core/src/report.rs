//! Area and floorplan reporting (paper Fig. 8).

use omu_simhw::{tech12nm, AreaModel};

use crate::config::OmuConfig;

/// Builds the silicon area model for a configuration, using the
/// calibrated 12 nm constants. The default configuration lands at the
/// paper's 2.5 mm².
pub fn area_model(config: &OmuConfig) -> AreaModel {
    let mut a = AreaModel::new(tech12nm::TOP_OVERHEAD_FACTOR);
    let sram_kb_per_pe = (8 * config.rows_per_bank * 8) as f64 / 1024.0;
    a.add(
        "pe.sram (8 banks)",
        sram_kb_per_pe * tech12nm::SRAM_MM2_PER_KB,
        config.num_pes,
    );
    a.add("pe.logic", tech12nm::PE_LOGIC_MM2, config.num_pes);
    a.add("voxel scheduler", tech12nm::SCHEDULER_MM2, 1);
    a.add("ray casting unit", tech12nm::RAYCAST_MM2, 1);
    a.add("voxel query unit", tech12nm::QUERY_MM2, 1);
    a.add("axi + controller + queues", tech12nm::AXI_CTRL_MM2, 1);
    a
}

/// Renders a Fig. 8-style floorplan: the PE array tiled in two rows with
/// the ray-casting/query/AXI column on the left.
pub fn floorplan_ascii(config: &OmuConfig) -> String {
    let (w, h) = tech12nm::DIE_OUTLINE_MM;
    let total = area_model(config).total_mm2();
    let n = config.num_pes;
    let cols = n.div_ceil(2);
    let mut s = String::new();
    s.push_str(&format!(
        "OMU layout — {:.2} mm × {:.2} mm, {:.2} mm² ({} PEs, 12 nm)\n",
        w, h, total, n
    ));
    let cell = |label: String| format!("{label:^9}");
    let border = |c: usize| format!("+{}\n", "---------+".repeat(c + 1));
    s.push_str(&border(cols));
    s.push('|');
    s.push_str(&cell("RayCast".into()));
    s.push('|');
    for i in 0..cols {
        s.push_str(&cell(format!("PE-{i}")));
        s.push('|');
    }
    s.push('\n');
    s.push_str(&format!("|{}|", cell("& Query".into())));
    for _ in 0..cols {
        s.push_str(&format!("{}|", cell("8x32kB".into())));
    }
    s.push('\n');
    s.push_str(&border(cols));
    s.push('|');
    s.push_str(&cell("AXI-S".into()));
    s.push('|');
    for i in 0..cols {
        let idx = cols + i;
        s.push_str(&cell(if idx < n {
            format!("PE-{idx}")
        } else {
            "-".into()
        }));
        s.push('|');
    }
    s.push('\n');
    s.push_str(&format!("|{}|", cell("ctrl".into())));
    for i in 0..cols {
        let idx = cols + i;
        s.push_str(&format!(
            "{}|",
            cell(if idx < n { "8x32kB".into() } else { "-".into() })
        ));
    }
    s.push('\n');
    s.push_str(&border(cols));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_area_matches_paper() {
        let a = area_model(&OmuConfig::default());
        let total = a.total_mm2();
        assert!(
            (total - 2.5).abs() < 0.1,
            "total area {total:.3} mm² (paper: 2.5)"
        );
    }

    #[test]
    fn area_scales_with_pe_count() {
        let cfg8 = OmuConfig::default();
        let cfg2 = OmuConfig::builder().num_pes(2).build().unwrap();
        assert!(area_model(&cfg2).total_mm2() < area_model(&cfg8).total_mm2() / 2.0);
    }

    #[test]
    fn floorplan_names_all_pes() {
        let f = floorplan_ascii(&OmuConfig::default());
        for i in 0..8 {
            assert!(
                f.contains(&format!("PE-{i}")),
                "floorplan missing PE-{i}:\n{f}"
            );
        }
        assert!(f.contains("RayCast"));
        assert!(f.contains("AXI-S"));
        assert!(f.contains("2.00 mm"));
    }
}
