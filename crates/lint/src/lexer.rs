//! A hand-rolled, line-oriented Rust lexer: just enough of the language
//! to separate *code* from *comments and string literals*, and to know
//! which lines live inside `#[cfg(test)]`-gated items.
//!
//! The rules in this crate are textual (they look for tokens like
//! `unsafe`, `.unwrap()`, `thread::spawn`), so everything hinges on not
//! being fooled by those tokens appearing inside comments, doc examples,
//! or string literals. The lexer blanks those regions out of the per-line
//! `code` text (preserving column positions) and records comment text
//! separately so the `// SAFETY:` rationales and the suppression
//! markers stay visible to the rules.
//!
//! Consistent with the `vendor/` philosophy the tool depends on nothing
//! outside `std` — no `syn`, no regex. The subset of Rust it understands
//! is deliberately small but handles what real sources throw at it:
//! nested block comments, raw strings with hashes, byte strings, char
//! literals vs lifetimes, and `#[cfg(test)]` / `#[cfg(all(test, ...))]`
//! attributes gating a braced item or a `mod tests;` declaration.

/// One source line after lexing.
#[derive(Debug, Clone)]
pub struct Line {
    /// Line text with comments and string/char literal *contents* blanked
    /// to spaces (string delimiters are kept so token shapes survive).
    /// Column positions match the raw source line.
    pub code: String,
    /// Concatenated text of all comments that appear on this line
    /// (without the `//` / `/*` markers), in source order.
    pub comment: String,
    /// True when the line starts inside or consists only of comments /
    /// whitespace — i.e. `code` holds no tokens at all.
    pub blank_code: bool,
    /// True when the line is inside a `#[cfg(test)]`-gated item.
    pub in_test: bool,
}

/// A lexed source file.
#[derive(Debug)]
pub struct LexedFile {
    /// One entry per physical source line, in order.
    pub lines: Vec<Line>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Normal,
    /// Inside a `/* ... */` comment; Rust block comments nest.
    Block {
        depth: u32,
    },
    /// Inside a `"..."` (or `b"..."`) string literal.
    Str,
    /// Inside a raw string `r##"..."##` with the given hash count.
    RawStr {
        hashes: u32,
    },
}

/// Lex a whole source file into per-line code/comment views.
pub fn lex(source: &str) -> LexedFile {
    let mut lines = Vec::new();
    let mut state = State::Normal;
    for raw in source.split('\n') {
        let (line, next) = lex_line(raw, state);
        state = next;
        lines.push(line);
    }
    mark_test_scopes(&mut lines);
    LexedFile { lines }
}

/// Lex one line starting in `state`; returns the line plus the state the
/// next line starts in. Line comments never cross lines, so only block
/// comments and (raw) strings propagate.
fn lex_line(raw: &str, start: State) -> (Line, State) {
    let chars: Vec<char> = raw.chars().collect();
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let mut state = start;
    let mut i = 0usize;

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match state {
            State::Block { depth } => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        code.push_str("  ");
                        State::Normal
                    } else {
                        State::Block { depth: depth - 1 }
                    };
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::Block { depth: depth + 1 };
                    i += 2;
                } else {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = State::Normal;
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr { hashes } => {
                if c == '"' && closes_raw(&chars, i + 1, hashes) {
                    code.push('"');
                    for _ in 0..hashes {
                        code.push(' ');
                    }
                    state = State::Normal;
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::Normal => {
                if c == '/' && next == Some('/') {
                    // Line comment: the rest of the line is comment text.
                    let text: String = chars[i + 2..].iter().collect();
                    comment.push_str(text.trim());
                    break;
                } else if c == '/' && next == Some('*') {
                    state = State::Block { depth: 1 };
                    code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    state = State::Str;
                    i += 1;
                } else if let Some(h) = raw_string_hashes(&chars, i) {
                    // r"..."  r#"..."#  br#"..."#  (c/cr strings too)
                    let prefix_len = raw_prefix_len(&chars, i);
                    for _ in 0..prefix_len + h as usize + 1 {
                        code.push(' ');
                    }
                    code.push('"');
                    // keep the quote only; positions stay aligned
                    state = State::RawStr { hashes: h };
                    i += prefix_len + h as usize + 1;
                } else if c == 'b' && next == Some('\'') {
                    // Byte char literal b'x' / b'\n'
                    let consumed = char_literal_len(&chars, i + 1);
                    for _ in 0..consumed + 1 {
                        code.push(' ');
                    }
                    i += consumed + 1;
                } else if c == '\'' {
                    let consumed = char_literal_len(&chars, i);
                    if consumed == 0 {
                        // A lifetime like 'env — keep it as code.
                        code.push(c);
                        i += 1;
                    } else {
                        for _ in 0..consumed {
                            code.push(' ');
                        }
                        i += consumed;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
        }
    }

    let line = Line {
        blank_code: code.trim().is_empty(),
        code,
        comment,
        in_test: false,
    };
    (line, state)
}

/// Length of the `r` / `br` / `cr` prefix introducing a raw string at
/// `chars[i]`, without the hashes or quote.
fn raw_prefix_len(chars: &[char], i: usize) -> usize {
    if chars[i] == 'r' {
        1
    } else {
        // br" / cr"
        debug_assert!(matches!(chars[i], 'b' | 'c'));
        2
    }
}

/// If a raw string literal starts at `chars[i]`, the number of hashes it
/// uses; `None` when this is not a raw string start.
fn raw_string_hashes(chars: &[char], i: usize) -> Option<u32> {
    let c = chars[i];
    let after = if c == 'r' {
        i + 1
    } else if (c == 'b' || c == 'c') && chars.get(i + 1) == Some(&'r') {
        i + 2
    } else {
        return None;
    };
    // Identifiers like `peer` contain `r`; require the char before `i`
    // to not be part of an identifier.
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return None;
        }
    }
    let mut h = 0u32;
    let mut j = after;
    while chars.get(j) == Some(&'#') {
        h += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some(h)
    } else {
        None
    }
}

/// True when `hashes` consecutive `#` follow position `i` (the raw-string
/// close test, `i` points just past a `"`).
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Number of chars consumed by a char literal starting at the `'` at
/// `chars[i]`, or 0 when the quote is a lifetime instead.
fn char_literal_len(chars: &[char], i: usize) -> usize {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char: scan to the closing quote.
            let mut j = i + 2;
            while let Some(&c) = chars.get(j) {
                if c == '\'' {
                    return j - i + 1;
                }
                j += 1;
            }
            0
        }
        Some(_) if chars.get(i + 2) == Some(&'\'') => 3,
        _ => 0, // lifetime ('env, '_, 'static) or stray quote
    }
}

/// Second pass: mark every line inside a `#[cfg(test)]`-gated item.
///
/// Strategy: scan the blanked `code` text token-ishly, tracking brace
/// depth. When a `#[cfg(...)]` attribute whose argument list contains the
/// word `test` appears, arm a pending marker; the next `{` opens a test
/// scope that ends when depth returns to its opening level (a `;` at the
/// same depth first — e.g. `#[cfg(test)] mod tests;` — disarms instead).
/// Other attributes and doc comments between the cfg and the item are
/// skipped naturally because they contain no braces.
fn mark_test_scopes(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    // Stack of depths at which an active test scope was opened.
    let mut test_scopes: Vec<i64> = Vec::new();
    // Armed by `#[cfg(test)]`, consumed by the next `{` or `;`.
    let mut pending = false;

    for line in lines.iter_mut() {
        line.in_test = !test_scopes.is_empty();
        let code: Vec<char> = line.code.chars().collect();
        let mut i = 0usize;
        while i < code.len() {
            let c = code[i];
            if c == '#' && matches_at(&code, i + 1, "[") {
                if let Some((end, is_test)) = parse_attribute(&code, i) {
                    if is_test {
                        pending = true;
                        line.in_test = true;
                    }
                    i = end;
                    continue;
                }
            }
            match c {
                '{' => {
                    if pending {
                        test_scopes.push(depth);
                        pending = false;
                        line.in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_scopes.last().is_some_and(|&d| depth == d) {
                        test_scopes.pop();
                    }
                }
                // `#[cfg(test)] mod tests;` — an item with no body here;
                // the gated code lives in another file, which the walker
                // lexes on its own. Disarm.
                ';' => pending = false,
                _ => {}
            }
            i += 1;
        }
        if !test_scopes.is_empty() {
            line.in_test = true;
        }
    }
}

fn matches_at(code: &[char], i: usize, s: &str) -> bool {
    s.chars()
        .enumerate()
        .all(|(k, c)| code.get(i + k) == Some(&c))
}

/// Parse an attribute starting at the `#` at `code[i]`. Returns the index
/// one past the closing `]` and whether the attribute is a `cfg(...)`
/// whose arguments mention `test` as a standalone word.
fn parse_attribute(code: &[char], i: usize) -> Option<(usize, bool)> {
    let mut j = i + 1;
    if code.get(j) != Some(&'[') {
        return None;
    }
    j += 1;
    let start = j;
    let mut depth = 1i32;
    while j < code.len() {
        match code[j] {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    let body: String = code[start..j].iter().collect();
                    return Some((j + 1, cfg_mentions_test(&body)));
                }
            }
            _ => {}
        }
        j += 1;
    }
    // Attribute spans lines — give up on it (rare; none in this repo).
    None
}

/// True when an attribute body is `cfg(...)` with `test` as a word inside.
fn cfg_mentions_test(body: &str) -> bool {
    let trimmed = body.trim_start();
    let Some(rest) = trimmed.strip_prefix("cfg") else {
        return false;
    };
    let rest = rest.trim_start();
    if !rest.starts_with('(') {
        return false;
    }
    contains_word(rest, "test")
}

/// Word-boundary containment test over identifier characters.
pub fn contains_word(haystack: &str, word: &str) -> bool {
    find_word(haystack, word, 0).is_some()
}

/// Find `word` in `haystack` at or after byte offset `from`, requiring
/// non-identifier characters (or string edges) on both sides.
pub fn find_word(haystack: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = haystack.as_bytes();
    let mut start = from;
    while let Some(pos) = haystack[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        lex(src).lines.iter().map(|l| l.code.clone()).collect()
    }

    #[test]
    fn line_comments_are_stripped_from_code() {
        let f = lex("let x = 1; // unsafe panic!()\n");
        assert!(!f.lines[0].code.contains("unsafe"));
        assert!(f.lines[0].comment.contains("unsafe panic!()"));
        assert!(f.lines[0].code.contains("let x = 1;"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "a /* one /* two */ still */ b\n/* open\nunsafe\n*/ c";
        let c = codes(src);
        assert!(c[0].contains('a') && c[0].contains('b'));
        assert!(!c[0].contains("still"));
        assert!(!c[2].contains("unsafe"));
        assert!(c[3].contains('c'));
    }

    #[test]
    fn strings_are_blanked_but_delimiters_kept() {
        let c = codes("let s = \"unsafe { panic!() }\";");
        assert!(!c[0].contains("unsafe"));
        assert!(c[0].contains("let s = \""));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let c = codes("let s = r#\"thread::spawn \" quote\"#; spawn2();");
        assert!(!c[0].contains("thread::spawn"));
        assert!(c[0].contains("spawn2()"));
    }

    #[test]
    fn escaped_string_quotes_do_not_end_the_string() {
        let c = codes(r#"let s = "a\"unsafe"; keep();"#);
        assert!(!c[0].contains("unsafe"));
        assert!(c[0].contains("keep()"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let c = codes("let c = '{'; fn f<'a>(x: &'a str) {}");
        // The brace inside the char literal must not skew depth — it is
        // blanked; the lifetime text stays.
        assert!(!c[0].contains('{') || c[0].matches('{').count() == 1);
        assert!(c[0].contains("'a"));
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}";
        let f = lex(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test, "the attribute line itself");
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test, "scope closed");
    }

    #[test]
    fn cfg_all_test_counts_and_cfg_feature_does_not() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod a {\n}\n#[cfg(feature = \"testing\")]\nmod b {\n}";
        let f = lex(src);
        assert!(f.lines[1].in_test);
        assert!(
            !f.lines[4].in_test,
            "'testing' must not match the word 'test'"
        );
    }

    #[test]
    fn cfg_test_on_semicolon_item_does_not_leak() {
        let src = "#[cfg(test)]\nmod tests;\nfn live() { x.unwrap(); }";
        let f = lex(src);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn cfg_test_with_interleaved_attribute() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n    stuff();\n}";
        let f = lex(src);
        assert!(f.lines[3].in_test);
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("a test b", "test"));
        assert!(!contains_word("attested", "test"));
        assert!(!contains_word("test_util", "test"));
        assert!(contains_word("(test)", "test"));
    }
}
