//! Workspace source discovery and per-file rule applicability.
//!
//! The walker mirrors the repository layout rather than parsing cargo
//! metadata: `crates/<name>/src` holds crate sources, `src/` the umbrella
//! crate, root `tests/` and `crates/*/tests` integration tests, and
//! `examples/` the user-facing examples. `vendor/` (offline shims of
//! external crates) and `target/` are never linted, and anything under a
//! `fixtures/` directory is lint *input*, not workspace code.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::Rule;

/// How strictly a file is held to the rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library crate source: every rule applies.
    Library,
    /// Binary / bench / example source: panicking on bad input is the
    /// normal CLI idiom, so L3 does not apply; the thread and unsafe
    /// disciplines still do.
    Bin,
    /// Test source: only the unsafe rationale and suppression hygiene
    /// apply — tests spawn threads and unwrap freely by design.
    Test,
}

impl FileClass {
    /// The rules checked for files of this class.
    pub fn rules(self) -> &'static [Rule] {
        match self {
            FileClass::Library => &[
                Rule::SafetyComment,
                Rule::ThreadConfinement,
                Rule::NoPanic,
                Rule::HandleBits,
                Rule::BadSuppression,
                Rule::AtomicConfinement,
                Rule::FsConfinement,
            ],
            FileClass::Bin => &[
                Rule::SafetyComment,
                Rule::ThreadConfinement,
                Rule::HandleBits,
                Rule::BadSuppression,
                Rule::AtomicConfinement,
            ],
            FileClass::Test => &[Rule::SafetyComment, Rule::BadSuppression],
        }
    }
}

/// One discovered source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Absolute on-disk path, for reading the contents.
    pub abs_path: PathBuf,
    /// Workspace-relative, `/`-separated (stable across hosts — this is
    /// what goes into diagnostics and the baseline).
    pub rel_path: String,
    /// The `<name>` in `crates/<name>/…`, when the file belongs to one.
    pub crate_name: Option<String>,
    /// Rule-applicability class derived from the path.
    pub class: FileClass,
}

/// Crates whose binaries-only layout exempts them from L3 wholesale.
const BIN_CRATES: [&str; 2] = ["bench", "lint"];

/// Discover every lintable source under `root`.
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in sorted_entries(&crates_dir)? {
            let name = entry.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.is_empty() {
                continue;
            }
            collect(&entry.join("src"), root, &mut out)?;
            collect(&entry.join("tests"), root, &mut out)?;
            collect(&entry.join("examples"), root, &mut out)?;
            collect(&entry.join("benches"), root, &mut out)?;
        }
    }
    collect(&root.join("src"), root, &mut out)?;
    collect(&root.join("tests"), root, &mut out)?;
    collect(&root.join("examples"), root, &mut out)?;
    collect(&root.join("benches"), root, &mut out)?;
    out.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(out)
}

fn sorted_entries(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut v: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    v.sort();
    Ok(v)
}

fn collect(dir: &Path, root: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in sorted_entries(dir)? {
        let name = entry.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if entry.is_dir() {
            if name == "fixtures" || name == "target" || name == "vendor" {
                continue;
            }
            collect(&entry, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = entry
                .strip_prefix(root)
                .unwrap_or(&entry)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push(classify(entry.clone(), rel));
        }
    }
    Ok(())
}

/// Derive crate name and class from the workspace-relative path.
fn classify(abs_path: PathBuf, rel_path: String) -> SourceFile {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let crate_name = if parts.first() == Some(&"crates") {
        parts.get(1).map(|s| (*s).to_owned())
    } else {
        None
    };
    let class = file_class(&parts, crate_name.as_deref());
    SourceFile {
        abs_path,
        rel_path,
        crate_name,
        class,
    }
}

fn file_class(parts: &[&str], crate_name: Option<&str>) -> FileClass {
    let in_tests = parts.contains(&"tests") || parts.contains(&"benches");
    if in_tests {
        return FileClass::Test;
    }
    let in_examples = parts.contains(&"examples");
    let in_bin_dir = parts.contains(&"bin");
    let is_main = parts.last() == Some(&"main.rs");
    let bin_crate = crate_name.is_some_and(|c| BIN_CRATES.contains(&c));
    if in_examples || in_bin_dir || is_main || bin_crate {
        FileClass::Bin
    } else {
        FileClass::Library
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class_of(rel: &str) -> FileClass {
        let parts: Vec<&str> = rel.split('/').collect();
        let crate_name = if parts.first() == Some(&"crates") {
            parts.get(1).copied()
        } else {
            None
        };
        file_class(&parts, crate_name)
    }

    #[test]
    fn classification() {
        assert_eq!(class_of("crates/octree/src/tree.rs"), FileClass::Library);
        assert_eq!(class_of("src/lib.rs"), FileClass::Library);
        assert_eq!(class_of("crates/bench/src/runner.rs"), FileClass::Bin);
        assert_eq!(
            class_of("crates/bench/src/bin/bench_batch_update.rs"),
            FileClass::Bin
        );
        assert_eq!(class_of("examples/quickstart.rs"), FileClass::Bin);
        assert_eq!(class_of("tests/equivalence.rs"), FileClass::Test);
        assert_eq!(
            class_of("crates/octree/tests/invariants.rs"),
            FileClass::Test
        );
        assert_eq!(class_of("crates/map/src/main.rs"), FileClass::Bin);
    }
}
