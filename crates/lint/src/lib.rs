//! `omu-lint` — the workspace invariant checker.
//!
//! The repo's core promise is that the scalar, batched, sharded and
//! pooled engines produce **bit-identical** maps (the property the OMU
//! accelerator model is verified against). That promise rests on a few
//! hand-maintained disciplines that ordinary clippy cannot express:
//!
//! - **L1 `safety-comment`** — every `unsafe` block/fn/impl carries an
//!   immediately preceding `// SAFETY:` rationale. The pool's
//!   lifetime-erased task transmute is exactly the kind of site whose
//!   soundness argument must stay next to the code.
//! - **L2 `thread-confinement`** — `thread::spawn` / `thread::scope` /
//!   `JoinHandle` appear only in `crates/pool` (plus explicitly allowed
//!   legacy sites such as the `#[doc(hidden)]`
//!   `ParallelDispatch::ScopedThreads` bench path). Every other layer
//!   dispatches through the persistent [`WorkerPool`]; a stray spawn is
//!   how per-call thread storms crept in before PR 7.
//! - **L3 `no-panic`** — library-crate non-test code returns typed
//!   errors (`MapError`, `ParallelInsertError`, `KeyError`) instead of
//!   `unwrap`/`expect`/`panic!`; a panic on a worker thread is a
//!   structural hazard the pool has to contain.
//! - **L4 `handle-bits`** — the `shard:4|row:25|oct:3` node-handle
//!   packing is an implementation secret of
//!   `octree::{arena,node,shard,snapshot}`; re-deriving it with raw
//!   shifts elsewhere breaks the next layout change silently.
//! - **L5 `bad-suppression`** — escape hatches exist
//!   (`// omu-lint: allow(no-panic) — reason`) but must name a known
//!   rule and a non-empty reason; reason-less suppressions are
//!   violations.
//! - **L6 `atomic-confinement`** — atomics (`sync::atomic` types and
//!   the memory orderings) appear only in `crates/pool` and
//!   `octree::snapshot`: the pool's wakeup latches and the snapshot
//!   pin registry are the workspace's two lock-free protocols, each
//!   with a written ordering argument. New lock-free state elsewhere
//!   must either route through them or make its case here first.
//! - **L7 `fs-confinement`** — direct `std::fs` mutation (`fs::write`,
//!   `File::create`, `OpenOptions`, renames/removes) appears only in
//!   `map::durable`, the crash-safety layer. Its temp-file-then-rename
//!   atomicity, fsync discipline and fault-injection hooks only protect
//!   writes that go through `DurableDir`/`DurableFile`; a stray
//!   `fs::write` elsewhere is a torn-file bug waiting for a power cut.
//!
//! Pre-existing violations are grandfathered in a committed baseline
//! (`omu-lint.baseline`) so the gate fails only on *new* ones while the
//! old ones stay visible and counted. Run with
//! `cargo run -p omu-lint` from the workspace root.
//!
//! [`WorkerPool`]: https://docs.rs/omu-pool

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::fs;
use std::io;
use std::path::Path;

pub use baseline::Baseline;
pub use rules::{Rule, Violation};
pub use walk::{discover, FileClass, SourceFile};

/// Result of linting a whole tree.
#[derive(Debug)]
pub struct Report {
    /// Number of source files discovered and linted.
    pub files_checked: usize,
    /// Violations not covered by the baseline — these fail the gate.
    pub fresh: Vec<Violation>,
    /// Baseline-covered (grandfathered) violations.
    pub grandfathered: Vec<Violation>,
    /// Baseline entries that no longer match anything — stale debt that
    /// should be pruned with `--update-baseline`.
    pub stale_baseline: usize,
}

impl Report {
    /// True when no fresh (non-grandfathered) violations were found.
    pub fn is_clean(&self) -> bool {
        self.fresh.is_empty()
    }
}

/// Lint every source under `root` against `baseline`.
pub fn run(root: &Path, baseline: &Baseline) -> io::Result<Report> {
    let files = discover(root)?;
    let mut all = Vec::new();
    for file in &files {
        let raw = fs::read_to_string(&file.abs_path)?;
        let lexed = lexer::lex(&raw);
        all.extend(rules::check_file(file, &raw, &lexed));
    }
    let total = all.len();
    let (fresh, grandfathered) = baseline.split(all);
    let stale_baseline = baseline.len().saturating_sub(total - fresh.len());
    Ok(Report {
        files_checked: files.len(),
        fresh,
        grandfathered,
        stale_baseline,
    })
}

/// Lint a tree with the baseline conventionally located at its root.
pub fn run_with_default_baseline(root: &Path) -> io::Result<Report> {
    let baseline = Baseline::load(&root.join(BASELINE_FILE))?;
    run(root, &baseline)
}

/// Conventional baseline filename at the workspace root.
pub const BASELINE_FILE: &str = "omu-lint.baseline";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_clean_logic() {
        let r = Report {
            files_checked: 1,
            fresh: vec![],
            grandfathered: vec![],
            stale_baseline: 0,
        };
        assert!(r.is_clean());
    }
}
