//! The workspace invariants, as textual rules over lexed sources.
//!
//! Each rule guards a discipline the parallel engines' bit-identity
//! promise rests on; see the README's "Correctness tooling" section for
//! the full rationale. Rule IDs are stable — they appear in suppression
//! comments and in the committed baseline file, so renaming one is a
//! breaking change to both.

use crate::lexer::{find_word, LexedFile};
use crate::walk::SourceFile;

/// Stable identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    /// L1: every `unsafe` must carry an adjacent `// SAFETY:` rationale.
    SafetyComment,
    /// L2: thread primitives confined to `crates/pool`.
    ThreadConfinement,
    /// L3: no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
    /// `unimplemented!` in library-crate non-test code.
    NoPanic,
    /// L4: handle bit packing confined to
    /// `octree::{arena,node,shard,snapshot}`.
    HandleBits,
    /// L5: suppressions must name a known rule and give a reason.
    BadSuppression,
    /// L6: atomics and epoch/pin primitives confined to `crates/pool`
    /// and `octree::snapshot`.
    AtomicConfinement,
    /// L7: direct `std::fs` mutation confined to `map::durable` — the
    /// crash-safety layer (temp-file atomicity, fsync, fault injection)
    /// only holds if every library write goes through it.
    FsConfinement,
}

impl Rule {
    /// Every rule, in `L1`..`L7` order.
    pub const ALL: [Rule; 7] = [
        Rule::SafetyComment,
        Rule::ThreadConfinement,
        Rule::NoPanic,
        Rule::HandleBits,
        Rule::BadSuppression,
        Rule::AtomicConfinement,
        Rule::FsConfinement,
    ];

    /// The short code used in diagnostics (`L1` … `L7`).
    pub fn code(self) -> &'static str {
        match self {
            Rule::SafetyComment => "L1",
            Rule::ThreadConfinement => "L2",
            Rule::NoPanic => "L3",
            Rule::HandleBits => "L4",
            Rule::BadSuppression => "L5",
            Rule::AtomicConfinement => "L6",
            Rule::FsConfinement => "L7",
        }
    }

    /// The stable slug used in `allow(...)` comments and the baseline.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::SafetyComment => "safety-comment",
            Rule::ThreadConfinement => "thread-confinement",
            Rule::NoPanic => "no-panic",
            Rule::HandleBits => "handle-bits",
            Rule::BadSuppression => "bad-suppression",
            Rule::AtomicConfinement => "atomic-confinement",
            Rule::FsConfinement => "fs-confinement",
        }
    }

    /// Parse a rule name as written in an `allow(...)` comment; both the
    /// slug and the short code are accepted.
    pub fn parse(name: &str) -> Option<Rule> {
        Rule::ALL
            .into_iter()
            .find(|r| r.slug() == name || r.code() == name)
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}[{}]", self.code(), self.slug())
    }
}

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule this line violates.
    pub rule: Rule,
    /// Workspace-relative, `/`-separated path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The trimmed raw source line, for the baseline fingerprint and the
    /// human report.
    pub excerpt: String,
    /// Human-readable explanation of what tripped and how to fix it.
    pub message: String,
}

impl Violation {
    /// The baseline fingerprint: rule + path + line *content* (not line
    /// number), so unrelated edits above a grandfathered violation don't
    /// un-baseline it.
    pub fn fingerprint(&self) -> String {
        format!("{}\t{}\t{}", self.rule.slug(), self.path, self.excerpt)
    }
}

/// A parsed `// omu-lint: allow(no-panic) — reason` suppression.
#[derive(Debug)]
struct Suppression {
    rule: Option<Rule>,
    reason: String,
    /// Line the comment sits on.
    comment_line: usize,
    /// Line whose violations it suppresses (the same line for trailing
    /// comments, the next code line for standalone comment lines).
    target_line: Option<usize>,
}

/// The marker every suppression comment starts with.
const ALLOW_MARKER: &str = "omu-lint:";

/// Check one file; `raw` is the original text (for excerpts), `lexed` the
/// lexer output. Returns un-suppressed violations.
pub fn check_file(file: &SourceFile, raw: &str, lexed: &LexedFile) -> Vec<Violation> {
    let raw_lines: Vec<&str> = raw.split('\n').collect();
    let mut out = Vec::new();

    let suppressions = collect_suppressions(lexed);
    // L5 first: malformed suppressions are violations themselves and can
    // never be suppressed (an allow cannot vouch for another allow).
    for s in &suppressions {
        match (&s.rule, s.reason.is_empty()) {
            (None, _) => out.push(make(
                Rule::BadSuppression,
                file,
                s.comment_line,
                &raw_lines,
                "suppression names an unknown rule (see `omu-lint --rules`)".into(),
            )),
            (Some(_), true) => out.push(make(
                Rule::BadSuppression,
                file,
                s.comment_line,
                &raw_lines,
                "suppression without a reason — write `// omu-lint: allow(rule) — <why this is sound>`"
                    .into(),
            )),
            _ => {}
        }
    }

    let mut raw_violations = Vec::new();
    check_safety_comments(file, lexed, &raw_lines, &mut raw_violations);
    check_thread_confinement(file, lexed, &raw_lines, &mut raw_violations);
    check_no_panic(file, lexed, &raw_lines, &mut raw_violations);
    check_handle_bits(file, lexed, &raw_lines, &mut raw_violations);
    check_atomic_confinement(file, lexed, &raw_lines, &mut raw_violations);
    check_fs_confinement(file, lexed, &raw_lines, &mut raw_violations);

    // Apply well-formed suppressions.
    for v in raw_violations {
        let suppressed = suppressions.iter().any(|s| {
            s.rule == Some(v.rule) && !s.reason.is_empty() && s.target_line == Some(v.line)
        });
        if !suppressed {
            out.push(v);
        }
    }
    out.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(&b.rule)));
    out
}

fn make(
    rule: Rule,
    file: &SourceFile,
    line: usize,
    raw_lines: &[&str],
    message: String,
) -> Violation {
    let excerpt = raw_lines
        .get(line - 1)
        .map(|l| {
            let t = l.trim();
            // Keep fingerprints reasonable for pathological lines.
            if t.len() > 240 {
                &t[..240]
            } else {
                t
            }
        })
        .unwrap_or("")
        .to_owned();
    Violation {
        rule,
        path: file.rel_path.clone(),
        line,
        excerpt,
        message,
    }
}

/// Extract every suppression comment. Unknown directives after the
/// marker parse as rule-less suppressions and surface as L5, so typos
/// fail loudly instead of silently not suppressing.
fn collect_suppressions(lexed: &LexedFile) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (idx, line) in lexed.lines.iter().enumerate() {
        let Some(pos) = line.comment.find(ALLOW_MARKER) else {
            continue;
        };
        let directive = line.comment[pos + ALLOW_MARKER.len()..].trim();
        let (rule, reason) = parse_allow(directive);
        let comment_line = idx + 1;
        let target_line = if line.blank_code {
            // Standalone comment: applies to the next line with code.
            lexed.lines[idx + 1..]
                .iter()
                .position(|l| !l.blank_code)
                .map(|off| comment_line + 1 + off)
        } else {
            Some(comment_line)
        };
        out.push(Suppression {
            rule,
            reason,
            comment_line,
            target_line,
        });
    }
    out
}

/// Parse `allow(rule) — reason` (also accepts `--` as the separator).
/// Returns `(None, _)` when the rule name is unknown or the shape is
/// wrong; the reason is empty when missing.
fn parse_allow(directive: &str) -> (Option<Rule>, String) {
    let Some(rest) = directive.strip_prefix("allow") else {
        return (None, String::new());
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return (None, String::new());
    };
    let Some(close) = rest.find(')') else {
        return (None, String::new());
    };
    let rule = Rule::parse(rest[..close].trim());
    let mut reason = rest[close + 1..].trim();
    for sep in ["—", "--", "–"] {
        if let Some(r) = reason.strip_prefix(sep) {
            reason = r.trim();
            break;
        }
    }
    (rule, reason.to_owned())
}

/// L1: every `unsafe` token needs a `// SAFETY:` comment on the same
/// line or heading the contiguous comment/attribute block directly above.
fn check_safety_comments(
    file: &SourceFile,
    lexed: &LexedFile,
    raw_lines: &[&str],
    out: &mut Vec<Violation>,
) {
    if !file.class.rules().contains(&Rule::SafetyComment) {
        return;
    }
    for (idx, line) in lexed.lines.iter().enumerate() {
        if find_word(&line.code, "unsafe", 0).is_none() {
            continue;
        }
        if line.comment.contains("SAFETY:") {
            continue;
        }
        // Walk up through comment-only and attribute-only lines.
        let mut ok = false;
        let mut j = idx;
        while j > 0 {
            j -= 1;
            let above = &lexed.lines[j];
            let code_trim = above.code.trim();
            let is_attr_only = code_trim.starts_with("#[") && above.comment.is_empty();
            if above.blank_code && !above.comment.is_empty() {
                if above.comment.trim_start().starts_with("SAFETY:") {
                    ok = true;
                    break;
                }
                // keep scanning up the comment block
            } else if is_attr_only {
                // attributes may sit between the comment and the item
            } else {
                break;
            }
        }
        if !ok {
            out.push(make(
                Rule::SafetyComment,
                file,
                idx + 1,
                raw_lines,
                "`unsafe` without an immediately preceding `// SAFETY:` rationale".into(),
            ));
        }
    }
}

/// L2 tokens. `thread::scope`/`thread::spawn` catch both `std::thread::`
/// and `use std::thread; thread::spawn` forms; `JoinHandle` catches
/// stashed handles regardless of how the spawn itself was spelled.
const THREAD_TOKENS: [&str; 3] = ["thread::spawn", "thread::scope", "JoinHandle"];

fn check_thread_confinement(
    file: &SourceFile,
    lexed: &LexedFile,
    raw_lines: &[&str],
    out: &mut Vec<Violation>,
) {
    if !file.class.rules().contains(&Rule::ThreadConfinement) {
        return;
    }
    if file.crate_name.as_deref() == Some("pool") {
        return; // the one crate allowed to own thread lifecycle
    }
    for (idx, line) in lexed.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for token in THREAD_TOKENS {
            if line.code.contains(token) {
                out.push(make(
                    Rule::ThreadConfinement,
                    file,
                    idx + 1,
                    raw_lines,
                    format!(
                        "`{token}` outside `crates/pool` — dispatch through `omu::pool::WorkerPool` instead"
                    ),
                ));
                break;
            }
        }
    }
}

/// L3 tokens: `(needle, must_be_call)`.
const PANIC_TOKENS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

fn check_no_panic(
    file: &SourceFile,
    lexed: &LexedFile,
    raw_lines: &[&str],
    out: &mut Vec<Violation>,
) {
    if !file.class.rules().contains(&Rule::NoPanic) {
        return;
    }
    for (idx, line) in lexed.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for token in PANIC_TOKENS {
            if let Some(at) = line.code.find(token) {
                // `.expect(` must not match `.expect_err(`; the find is
                // already exact for the other tokens since they end in a
                // delimiter. Guard the macro names against being part of
                // a longer identifier (`my_panic!` is somebody's macro).
                if token.ends_with('!') {
                    let bytes = line.code.as_bytes();
                    let before = at
                        .checked_sub(1)
                        .map(|i| bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                        .unwrap_or(false);
                    if before {
                        continue;
                    }
                }
                out.push(make(
                    Rule::NoPanic,
                    file,
                    idx + 1,
                    raw_lines,
                    format!(
                        "`{}` in library non-test code — return a typed error (`MapError`, `KeyError`, …) or justify with an allow",
                        token.trim_start_matches('.').trim_end_matches('(')
                    ),
                ));
                break;
            }
        }
    }
}

/// L4: identifiers and shift patterns that constitute handle packing.
/// `handle()`/`shard_of()`/`row()` *calls* are the sanctioned accessors
/// (defined only inside the allowed files, mostly `pub(crate)`); what
/// this rule catches is raw bit math re-deriving the packed layout.
const HANDLE_IDENTS: [&str; 7] = [
    "SHARD_BITS",
    "OCT_BITS",
    "ROW_BITS",
    "MASK_BITS",
    "MAX_ROW",
    "ROOT_ROW",
    "SPINE_SHARD",
];
const HANDLE_SHIFTS: [&str; 2] = ["<< 8", ">> 8"];

/// Files allowed to do handle bit arithmetic (within the octree crate).
/// `snapshot.rs` earns its slot the same way `arena.rs` does: its frozen
/// tables walk raw rows, so it addresses nodes through the packed layout.
const HANDLE_FILES: [&str; 4] = ["arena.rs", "node.rs", "shard.rs", "snapshot.rs"];

fn check_handle_bits(
    file: &SourceFile,
    lexed: &LexedFile,
    raw_lines: &[&str],
    out: &mut Vec<Violation>,
) {
    if !file.class.rules().contains(&Rule::HandleBits) {
        return;
    }
    if file.crate_name.as_deref() != Some("octree") {
        return;
    }
    if HANDLE_FILES.iter().any(|f| file.rel_path.ends_with(f)) {
        return;
    }
    for (idx, line) in lexed.lines.iter().enumerate() {
        let ident_hit = HANDLE_IDENTS
            .iter()
            .find(|id| find_word(&line.code, id, 0).is_some());
        let shift_hit = HANDLE_SHIFTS.iter().find(|s| line.code.contains(*s));
        if let Some(tok) = ident_hit.or(shift_hit) {
            out.push(make(
                Rule::HandleBits,
                file,
                idx + 1,
                raw_lines,
                format!(
                    "handle bit arithmetic (`{tok}`) outside `octree::{{arena,node,shard,snapshot}}` — use the handle accessors instead"
                ),
            ));
        }
    }
}

/// L6 tokens. The atomic type names and `sync::atomic` catch
/// declarations and imports; the memory-ordering paths catch every
/// load/store/RMW call site without colliding with `std::cmp::Ordering`
/// (whose variants are `Less`/`Equal`/`Greater`, never these).
const ATOMIC_TOKENS: [&str; 10] = [
    "sync::atomic",
    "AtomicBool",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// L6: lock-free state is how epoch pins and pool wakeups are published
/// cross-thread, and every new atomic is a new memory-ordering proof
/// obligation. Confine them to the two modules that own such a proof:
/// `crates/pool` (scope latches, shuffle state) and `octree::snapshot`
/// (the pin registry the row-COW reclamation floor reads). Everything
/// else synchronizes through those abstractions or a plain mutex.
fn check_atomic_confinement(
    file: &SourceFile,
    lexed: &LexedFile,
    raw_lines: &[&str],
    out: &mut Vec<Violation>,
) {
    if !file.class.rules().contains(&Rule::AtomicConfinement) {
        return;
    }
    if file.crate_name.as_deref() == Some("pool") {
        return; // thread lifecycle and its wakeup flags live here
    }
    if file.crate_name.as_deref() == Some("octree") && file.rel_path.ends_with("snapshot.rs") {
        return; // the epoch-pin registry behind snapshot reclamation
    }
    for (idx, line) in lexed.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for token in ATOMIC_TOKENS {
            if line.code.contains(token) {
                out.push(make(
                    Rule::AtomicConfinement,
                    file,
                    idx + 1,
                    raw_lines,
                    format!(
                        "atomic primitive (`{token}`) outside `crates/pool` / `octree::snapshot` — synchronize through the pool or the snapshot pin registry (or a mutex)"
                    ),
                ));
                break;
            }
        }
    }
}

/// L7 tokens: the `std::fs` mutation surface. Reads (`fs::read*`) are
/// deliberately absent — only writes need crash-safety discipline.
const FS_TOKENS: [&str; 6] = [
    "fs::write",
    "fs::rename",
    "fs::remove_file",
    "fs::create_dir",
    "File::create",
    "OpenOptions",
];

/// The one library module allowed to touch the filesystem directly:
/// it *is* the durable-storage layer (atomic temp-file renames, fsync,
/// the fault-injection wrappers).
const FS_FILE: &str = "crates/map/src/durable.rs";

/// L7: a `fs::write` sprinkled anywhere else bypasses temp-file
/// atomicity and fsync, so a crash mid-write leaves a torn file the
/// recovery path was never designed to meet. Route library writes
/// through `omu_map::DurableDir` / `DurableFile`.
fn check_fs_confinement(
    file: &SourceFile,
    lexed: &LexedFile,
    raw_lines: &[&str],
    out: &mut Vec<Violation>,
) {
    if !file.class.rules().contains(&Rule::FsConfinement) {
        return;
    }
    if file.rel_path == FS_FILE {
        return; // the sanctioned durable-storage implementation
    }
    for (idx, line) in lexed.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for token in FS_TOKENS {
            if line.code.contains(token) {
                out.push(make(
                    Rule::FsConfinement,
                    file,
                    idx + 1,
                    raw_lines,
                    format!(
                        "filesystem mutation (`{token}`) outside `map::durable` — write through `DurableDir`/`DurableFile` so crash atomicity and fault injection apply"
                    ),
                ));
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::parse(r.slug()), Some(r));
            assert_eq!(Rule::parse(r.code()), Some(r));
        }
        assert_eq!(Rule::parse("no-such-rule"), None);
    }

    #[test]
    fn allow_parsing() {
        let (r, reason) = parse_allow("allow(no-panic) — capacity checked above");
        assert_eq!(r, Some(Rule::NoPanic));
        assert_eq!(reason, "capacity checked above");
        let (r, reason) = parse_allow("allow(no-panic) -- double dash works");
        assert_eq!(r, Some(Rule::NoPanic));
        assert_eq!(reason, "double dash works");
        let (r, reason) = parse_allow("allow(no-panic)");
        assert_eq!(r, Some(Rule::NoPanic));
        assert!(reason.is_empty());
        let (r, _) = parse_allow("allow(bogus) — reason");
        assert_eq!(r, None);
    }
}
