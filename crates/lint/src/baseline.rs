//! The committed violation baseline.
//!
//! Grandfathered violations — ones that predate the linter and are being
//! burned down over time — live in `omu-lint.baseline` at the workspace
//! root. A violation matches the baseline by *fingerprint* (rule, path,
//! trimmed line content), not by line number, so edits elsewhere in a
//! file don't churn it. Each fingerprint entry is consumed at most as
//! many times as it occurs in the file, so duplicating a grandfathered
//! line is still a new violation.
//!
//! Format: one entry per line, `rule-slug<TAB>path<TAB>line content`,
//! `#`-comments and blank lines ignored. Regenerate with
//! `cargo run -p omu-lint -- --update-baseline` — and expect the diff to
//! be reviewed like code: shrinking is progress, growth needs a story.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::rules::Violation;

/// A multiset of grandfathered violation fingerprints.
#[derive(Debug, Default)]
pub struct Baseline {
    counts: HashMap<String, usize>,
}

impl Baseline {
    /// Load from `path`; a missing file is an empty baseline.
    pub fn load(path: &Path) -> io::Result<Baseline> {
        match fs::read_to_string(path) {
            Ok(text) => Ok(Self::parse(&text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(e),
        }
    }

    /// Parse baseline text (see the module docs for the format).
    pub fn parse(text: &str) -> Baseline {
        let mut counts = HashMap::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            *counts.entry(line.to_owned()).or_insert(0) += 1;
        }
        Baseline { counts }
    }

    /// Total grandfathered entries (counting duplicates).
    pub fn len(&self) -> usize {
        self.counts.values().sum()
    }

    /// Whether the baseline grandfathers nothing.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Split violations into `(new, grandfathered)`, consuming baseline
    /// entries as they match.
    pub fn split(&self, violations: Vec<Violation>) -> (Vec<Violation>, Vec<Violation>) {
        let mut remaining = self.counts.clone();
        let mut fresh = Vec::new();
        let mut old = Vec::new();
        for v in violations {
            match remaining.get_mut(&v.fingerprint()) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    old.push(v);
                }
                _ => fresh.push(v),
            }
        }
        (fresh, old)
    }

    /// Serialize a violation set as baseline text (sorted, commented).
    pub fn render(violations: &[Violation]) -> String {
        let mut lines: Vec<String> = violations.iter().map(|v| v.fingerprint()).collect();
        lines.sort();
        let mut out = String::from(
            "# omu-lint baseline — grandfathered violations, one fingerprint per line.\n\
             # Format: rule-slug<TAB>path<TAB>trimmed source line.\n\
             # Regenerate with `cargo run -p omu-lint -- --update-baseline`.\n\
             # This file should only shrink; additions need review.\n",
        );
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn v(rule: Rule, path: &str, line: usize, excerpt: &str) -> Violation {
        Violation {
            rule,
            path: path.into(),
            line,
            excerpt: excerpt.into(),
            message: String::new(),
        }
    }

    #[test]
    fn split_consumes_multiset_entries() {
        let a = v(Rule::NoPanic, "crates/x/src/lib.rs", 3, "x.unwrap();");
        let b = v(Rule::NoPanic, "crates/x/src/lib.rs", 9, "x.unwrap();");
        let baseline = Baseline::parse(&a.fingerprint());
        // Two identical lines, one baselined: exactly one stays new.
        let (fresh, old) = baseline.split(vec![a.clone(), b]);
        assert_eq!(old.len(), 1);
        assert_eq!(fresh.len(), 1);
        // Line numbers don't matter, content does.
        let moved = v(Rule::NoPanic, "crates/x/src/lib.rs", 77, "x.unwrap();");
        let (fresh, old) = baseline.split(vec![moved]);
        assert_eq!((fresh.len(), old.len()), (0, 1));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let b = Baseline::parse("# comment\n\nno-panic\tsrc/lib.rs\tx.unwrap();\n");
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn render_round_trips() {
        let a = v(Rule::SafetyComment, "src/lib.rs", 1, "unsafe {");
        let text = Baseline::render(std::slice::from_ref(&a));
        let b = Baseline::parse(&text);
        let (fresh, old) = b.split(vec![a]);
        assert!(fresh.is_empty());
        assert_eq!(old.len(), 1);
    }
}
