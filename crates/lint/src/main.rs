//! CLI front end for the workspace invariant checker.
//!
//! ```text
//! cargo run -p omu-lint                  # gate: fail on new violations
//! cargo run -p omu-lint -- --update-baseline
//! cargo run -p omu-lint -- --root <dir>  # lint another tree (fixtures)
//! cargo run -p omu-lint -- --rules       # list rules
//! cargo run -p omu-lint -- --verbose     # also print grandfathered hits
//! ```
//!
//! Exit codes: `0` clean (baseline-covered debt allowed), `1` new
//! violations, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use omu_lint::{Baseline, Rule, BASELINE_FILE};

struct Options {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    update_baseline: bool,
    verbose: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        baseline: None,
        no_baseline: false,
        update_baseline: false,
        verbose: false,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let v = args.next().ok_or("--root needs a directory")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--baseline" => {
                let v = args.next().ok_or("--baseline needs a file")?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--no-baseline" => opts.no_baseline = true,
            "--update-baseline" => opts.update_baseline = true,
            "--verbose" | "-v" => opts.verbose = true,
            "--rules" => opts.list_rules = true,
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (see --help)")),
        }
    }
    Ok(opts)
}

fn print_help() {
    println!(
        "omu-lint: enforce the workspace's unsafe/panic/thread/handle-bit discipline\n\n\
         USAGE: omu-lint [--root DIR] [--baseline FILE | --no-baseline]\n\
         \x20                [--update-baseline] [--verbose] [--rules]\n\n\
         Suppress a single finding with a justified comment on (or right above)\n\
         the offending line:\n\
         \x20   // omu-lint: allow(no-panic) — length checked two lines up\n\n\
         Exit codes: 0 clean, 1 new violations, 2 usage/io error."
    );
}

/// Locate the workspace root: the nearest ancestor of the current
/// directory that has both a `Cargo.toml` and a `crates/` directory.
fn find_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("omu-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for r in Rule::ALL {
            println!("{r}");
        }
        return ExitCode::SUCCESS;
    }

    let Some(root) = opts.root.clone().or_else(find_root) else {
        eprintln!("omu-lint: could not locate the workspace root (use --root)");
        return ExitCode::from(2);
    };
    if !root.is_dir() {
        eprintln!("omu-lint: root `{}` is not a directory", root.display());
        return ExitCode::from(2);
    }

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join(BASELINE_FILE));
    let baseline = if opts.no_baseline {
        Baseline::default()
    } else {
        match Baseline::load(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("omu-lint: reading {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    };

    let report = match omu_lint::run(&root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("omu-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if report.files_checked == 0 {
        // A gate that finds nothing to check is misconfigured, not clean.
        eprintln!(
            "omu-lint: no lintable sources under `{}` — wrong --root?",
            root.display()
        );
        return ExitCode::from(2);
    }

    if opts.update_baseline {
        let mut all = report.fresh.clone();
        all.extend(report.grandfathered.iter().cloned());
        let text = Baseline::render(&all);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("omu-lint: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "omu-lint: baseline rewritten with {} entries -> {}",
            all.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    if opts.verbose {
        for v in &report.grandfathered {
            println!(
                "{} {}:{}: {} (baselined)",
                v.rule, v.path, v.line, v.message
            );
        }
    }
    for v in &report.fresh {
        println!("{} {}:{}: {}", v.rule, v.path, v.line, v.message);
        println!("    {}", v.excerpt);
    }

    println!(
        "omu-lint: {} files checked, {} new violation(s), {} grandfathered, {} stale baseline entr{}",
        report.files_checked,
        report.fresh.len(),
        report.grandfathered.len(),
        report.stale_baseline,
        if report.stale_baseline == 1 { "y" } else { "ies" },
    );

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
