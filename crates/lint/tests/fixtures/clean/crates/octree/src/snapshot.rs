//! Fixture: `octree::snapshot` is the sanctioned home of the epoch-pin
//! registry, so atomics (L6) and handle bit arithmetic (L4) are both
//! allowed here. Must lint clean. Not compiled — lint input only.

use std::sync::atomic::{AtomicU64, Ordering};

/// The pin registry: epoch and live-pin count packed in one word, as
/// the write path's reclamation floor reads them.
pub struct PinRegistry {
    raw: AtomicU64,
}

impl PinRegistry {
    /// The epoch half of the packed word (handle-style bit math is
    /// this module's privilege).
    pub fn epoch(&self) -> u64 {
        self.raw.load(Ordering::Acquire) >> 8
    }
}
