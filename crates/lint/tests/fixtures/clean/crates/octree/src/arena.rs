//! Fixture: handle bit arithmetic *inside* a sanctioned module
//! (`octree::arena`) is allowed. Not compiled — lint input only.

/// The packing lives here by design — no L4 report.
pub fn pack(shard: u32, row: u32, oct: u32) -> u32 {
    (shard << (ROW_BITS + OCT_BITS)) | (row << 8) | oct
}

/// Unpacking too.
pub fn row_of(handle: u32) -> u32 {
    (handle >> 8) & MASK_BITS
}

const ROW_BITS: u32 = 25;
const OCT_BITS: u32 = 3;
const MASK_BITS: u32 = 0x01FF_FFFF;
