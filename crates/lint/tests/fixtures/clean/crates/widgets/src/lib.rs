//! Fixture: library source exercising every rule's *negative* space —
//! correct SAFETY rationale, well-formed suppressions, test-gated
//! unwraps. Must lint clean. Not compiled — lint input only.

/// A SAFETY comment immediately above the unsafe block satisfies L1.
pub fn read_first(v: &[u8]) -> Option<u8> {
    if v.is_empty() {
        return None;
    }
    // SAFETY: the emptiness check above guarantees at least one element,
    // so the pointer read is in bounds.
    Some(unsafe { *v.as_ptr() })
}

/// A trailing suppression with a reason quiets L3 on its own line.
pub fn first_or_die(v: &[i32]) -> i32 {
    *v.first().unwrap() // omu-lint: allow(no-panic) — fixture: documented demo of a justified unwrap
}

/// A standalone suppression with a reason covers the next code line.
pub fn last_or_die(v: &[i32]) -> i32 {
    // omu-lint: allow(no-panic) — fixture: standalone-comment form
    *v.last().unwrap()
}

/// A justified suppression quiets L7 like any other rule.
pub fn debug_dump(bytes: &[u8]) -> std::io::Result<()> {
    // omu-lint: allow(fs-confinement) — fixture: debug dump, no durability promise
    std::fs::write("dump.bin", bytes)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_threads_and_atomics_in_tests_are_fine() {
        let v = vec![1];
        assert_eq!(*v.first().unwrap(), 1);
        std::thread::spawn(|| 3).join().unwrap();
        let hits = std::sync::atomic::AtomicU32::new(0);
        hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let _ = std::fs::write("scratch.bin", b"tests write freely");
    }
}
