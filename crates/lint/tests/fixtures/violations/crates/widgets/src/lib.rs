//! Fixture: library source violating L1, L2, L3, L5, L6 and L7.
//! Not compiled — lint input only.

/// L1: an `unsafe` block with no preceding `// SAFETY:` rationale.
pub fn read_first(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() }
}

/// L2: raw thread spawn outside `crates/pool`.
pub fn off_pool_work() {
    let h = std::thread::spawn(|| 3);
    drop(h);
}

/// L3: `unwrap` in library non-test code.
pub fn first_or_die(v: &[i32]) -> i32 {
    *v.first().unwrap()
}

/// L5: a suppression with no reason never suppresses anything.
pub fn reasonless(v: &[i32]) -> i32 {
    *v.last().unwrap() // omu-lint: allow(no-panic)
}

/// L5: a suppression naming an unknown rule.
pub fn unknown_rule(v: &[i32]) -> i32 {
    // omu-lint: allow(no-yelling) — not a rule this linter knows
    v.len() as i32
}

/// L6: hand-rolled lock-free state outside `crates/pool` and
/// `octree::snapshot`.
pub static OFF_PROTOCOL: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// L7: a raw filesystem write outside the durable-storage layer.
pub fn spill(bytes: &[u8]) {
    let _ = std::fs::write("spill.bin", bytes);
}

#[cfg(test)]
mod tests {
    /// Test code may unwrap freely — must NOT be reported.
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = vec![1];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
