//! Fixture: handle bit arithmetic outside `octree::{arena,node,shard}`.
//! Not compiled — lint input only.

/// L4: re-deriving the `shard:4|row:25|oct:3` packing by hand.
pub fn row_of(handle: u32) -> u32 {
    (handle >> 8) & 0x01FF_FFFF
}

/// L4: naming the layout constants outside the sanctioned modules.
pub fn top_bit(handle: u32) -> u32 {
    handle >> (ROW_BITS + OCT_BITS)
}

const ROW_BITS: u32 = 25;
const OCT_BITS: u32 = 3;
