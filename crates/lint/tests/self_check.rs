//! The linter linting its own workspace: the live tree must be clean
//! against the committed baseline. This is the same check CI runs via
//! `cargo run -p omu-lint`, kept as a test so `cargo test` alone catches
//! a freshly introduced violation.

use std::path::PathBuf;

#[test]
fn live_workspace_is_clean_against_committed_baseline() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = omu_lint::run_with_default_baseline(&root).expect("workspace lints");
    assert!(
        report.is_clean(),
        "new lint violations in the workspace:\n{}",
        report
            .fresh
            .iter()
            .map(|v| format!("  {} {}:{}: {}", v.rule, v.path, v.line, v.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(
        report.stale_baseline, 0,
        "baseline entries no longer match any code — prune with \
         `cargo run -p omu-lint -- --update-baseline`"
    );
    assert!(
        report.files_checked > 100,
        "workspace discovery looks broken: only {} files",
        report.files_checked
    );
}
