//! Fixture-driven end-to-end tests: a mini workspace seeded with one
//! violation per rule must trip exactly those rules, and the clean
//! fixture — which exercises every rule's negative space (SAFETY
//! comments, justified suppressions, `#[cfg(test)]` code) — must lint
//! spotless.

use std::path::PathBuf;

use omu_lint::{Baseline, Rule};

fn fixture_root(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn lint(name: &str) -> omu_lint::Report {
    omu_lint::run(&fixture_root(name), &Baseline::default()).expect("fixture tree lints")
}

#[test]
fn violations_fixture_trips_every_rule() {
    let report = lint("violations");
    let hits: Vec<(Rule, &str, usize)> = report
        .fresh
        .iter()
        .map(|v| (v.rule, v.path.as_str(), v.line))
        .collect();

    let widgets = "crates/widgets/src/lib.rs";
    let expect = [
        (Rule::SafetyComment, widgets),
        (Rule::ThreadConfinement, widgets),
        (Rule::NoPanic, widgets),
        (Rule::BadSuppression, widgets),
        (Rule::AtomicConfinement, widgets),
        (Rule::FsConfinement, widgets),
        (Rule::HandleBits, "crates/octree/src/widget.rs"),
    ];
    for (rule, path) in expect {
        assert!(
            hits.iter().any(|(r, p, _)| *r == rule && *p == path),
            "expected {rule} in {path}; got {hits:#?}"
        );
    }

    // The reason-less suppression is itself a violation AND fails to
    // suppress: its line reports both L5 and the underlying L3.
    let reasonless_line = hits
        .iter()
        .find(|(r, p, _)| *r == Rule::BadSuppression && *p == widgets)
        .map(|(_, _, l)| *l)
        .expect("bad-suppression hit");
    assert!(
        hits.iter()
            .any(|(r, p, l)| *r == Rule::NoPanic && *p == widgets && *l == reasonless_line),
        "a malformed suppression must not quiet the rule it names"
    );

    // Two L5 forms: missing reason and unknown rule name.
    let l5 = hits
        .iter()
        .filter(|(r, _, _)| *r == Rule::BadSuppression)
        .count();
    assert_eq!(l5, 2, "both malformed suppressions reported: {hits:#?}");

    // Nothing from the #[cfg(test)] module leaked into the report.
    assert!(
        !hits.iter().any(|(_, _, l)| *l >= 40 && *l <= 49),
        "test-gated code must be exempt: {hits:#?}"
    );
}

#[test]
fn clean_fixture_is_spotless() {
    let report = lint("clean");
    assert!(
        report.fresh.is_empty() && report.grandfathered.is_empty(),
        "clean fixture must produce no diagnostics: {:#?}",
        report.fresh
    );
    assert!(report.files_checked >= 2, "fixture files were discovered");
}

#[test]
fn baseline_grandfathers_fixture_violations() {
    let root = fixture_root("violations");
    let no_baseline = omu_lint::run(&root, &Baseline::default()).expect("lints");
    assert!(!no_baseline.is_clean());

    // Baselining everything turns the report green without deleting the
    // violations — they move to the grandfathered bucket.
    let baseline = Baseline::parse(&Baseline::render(&no_baseline.fresh));
    let grandfathered = omu_lint::run(&root, &baseline).expect("lints");
    assert!(grandfathered.is_clean());
    assert_eq!(grandfathered.grandfathered.len(), no_baseline.fresh.len());
    assert_eq!(grandfathered.stale_baseline, 0);
}
