//! The persistent scan-integration pipeline: construct once, reuse for
//! every scan.
//!
//! [`ParallelScanIntegrator`](crate::ParallelScanIntegrator) proved the
//! fan-out/merge shape but paid for it per call: a fresh
//! `Scan`/`PointCloud` copy per shard, a fresh [`ScanIntegrator`] (key-ray
//! buffer, dedup sets) per shard, and a fresh output `Vec` per shard.
//! `ScanPipeline` owns all of that state across calls — persistent shard
//! integrators and reusable per-shard update buffers — and integrates
//! straight from a borrowed `(origin, &[Point3])`, so a steady-state scan
//! performs **zero per-call point-cloud copies** and no steady-state
//! allocation. This is the front end the octree's parallel insertion path
//! and the subtree-sharded batch apply are fed from.
//!
//! The build environment vendors no `rayon`, so the fan-out rides the
//! workspace's persistent [`WorkerPool`] (uniform rays make static
//! chunking a good fit): lane *i* is queued on worker *i*, the pool's
//! caller-help scope drains inline on a 1-CPU host, and a single-shard
//! pipeline degenerates to an inline call with no dispatch at all. The
//! pool is created lazily on first fan-out, or injected with
//! [`ScanPipeline::set_pool`] so the octree's read/write paths and the
//! front end share one set of warmed-up workers.

use std::sync::Arc;

use omu_geometry::{KeyConverter, KeyError, Point3, Scan, VoxelKey};
use omu_pool::WorkerPool;
use rustc_hash::FxHashSet;

use crate::integrate::{IntegrationMode, IntegrationStats, ScanIntegrator, VoxelUpdate};
use crate::packet::{FrontEnd, PacketStats};

/// Minimum number of scan points before [`ScanPipeline::integrate_into`]
/// fans out to threads: below this, thread spawn/join overhead exceeds
/// the ray-casting work and the whole scan runs inline on one worker
/// (mirroring the sharded batch apply's `PARALLEL_APPLY_MIN_KEYS`
/// amortization in `omu-octree`).
pub const PARALLEL_MIN_POINTS: usize = 1024;

/// A persistent, shard-parallel scan integrator (see the module docs).
///
/// # Examples
///
/// ```
/// use omu_geometry::{KeyConverter, Point3};
/// use omu_raycast::{IntegrationMode, ScanPipeline};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let conv = KeyConverter::new(0.1)?;
/// let mut pipeline = ScanPipeline::new(conv, Some(5.0), IntegrationMode::Raywise, 4);
/// let points = [Point3::new(1.0, 0.0, 0.0), Point3::new(0.0, 1.0, 0.0)];
/// let mut updates = Vec::new();
/// let stats = pipeline.integrate_into(Point3::ZERO, &points, &mut updates)?;
/// assert_eq!(stats.rays, 2);
/// assert_eq!(updates.len() as u64, stats.total_updates());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ScanPipeline {
    conv: KeyConverter,
    max_range: Option<f64>,
    mode: IntegrationMode,
    front_end: FrontEnd,
    /// One persistent sequential integrator per shard (each runs Raywise
    /// internally; dedup happens scan-globally after the merge).
    workers: Vec<ScanIntegrator>,
    /// Reusable per-shard update buffers.
    buffers: Vec<Vec<VoxelUpdate>>,
    /// Persistent dedup sets for [`IntegrationMode::DedupPerScan`].
    free_set: FxHashSet<VoxelKey>,
    occupied_set: FxHashSet<VoxelKey>,
    /// Worker pool for the fan-out; `None` until the first multi-lane
    /// scan (or until a shared pool is injected via [`Self::set_pool`]).
    pool: Option<Arc<WorkerPool>>,
}

impl ScanPipeline {
    /// Creates a pipeline fanning ray casting out over `shards` threads
    /// (`0` = one shard per available CPU).
    pub fn new(
        conv: KeyConverter,
        max_range: Option<f64>,
        mode: IntegrationMode,
        shards: usize,
    ) -> Self {
        Self::with_front_end(conv, max_range, mode, shards, FrontEnd::default())
    }

    /// [`Self::new`] with an explicit DDA front end for the shard workers
    /// (see [`FrontEnd`]).
    pub fn with_front_end(
        conv: KeyConverter,
        max_range: Option<f64>,
        mode: IntegrationMode,
        shards: usize,
        front_end: FrontEnd,
    ) -> Self {
        let shards = Self::resolve_shards(shards);
        ScanPipeline {
            conv,
            max_range,
            mode,
            front_end,
            workers: (0..shards)
                .map(|_| {
                    ScanIntegrator::with_front_end(
                        conv,
                        max_range,
                        IntegrationMode::Raywise,
                        front_end,
                    )
                })
                .collect(),
            buffers: (0..shards).map(|_| Vec::new()).collect(),
            free_set: FxHashSet::default(),
            occupied_set: FxHashSet::default(),
            pool: None,
        }
    }

    /// Installs a shared worker pool for the fan-out (e.g. the octree's
    /// pool, so ray casting and batch apply reuse the same workers).
    /// Without this, the pipeline creates its own pool on first use.
    pub fn set_pool(&mut self, pool: Arc<WorkerPool>) {
        self.pool = Some(pool);
    }

    /// The worker pool backing the fan-out, if one exists yet.
    pub fn worker_pool(&self) -> Option<&Arc<WorkerPool>> {
        self.pool.as_ref()
    }

    /// Resolves a requested shard count: `0` means one shard per
    /// available CPU.
    pub fn resolve_shards(requested: usize) -> usize {
        if requested == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            requested
        }
    }

    /// The key converter in use.
    pub fn converter(&self) -> &KeyConverter {
        &self.conv
    }

    /// The integration mode in use.
    pub fn mode(&self) -> IntegrationMode {
        self.mode
    }

    /// The configured maximum sensor range.
    pub fn max_range(&self) -> Option<f64> {
        self.max_range
    }

    /// The DDA front end the shard workers run.
    pub fn front_end(&self) -> FrontEnd {
        self.front_end
    }

    /// Cumulative packet front-end counters summed over all shard workers
    /// (all zero while running [`FrontEnd::Scalar`]).
    pub fn packet_stats(&self) -> PacketStats {
        let mut stats = PacketStats::default();
        for w in &self.workers {
            stats.merge(&w.packet_stats());
        }
        stats
    }

    /// Number of shards rays are split into.
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Whether a scan of `n_points` points would run inline on one worker
    /// instead of fanning out to threads (see [`PARALLEL_MIN_POINTS`]).
    pub fn would_run_inline(&self, n_points: usize) -> bool {
        self.workers.len() == 1 || n_points < PARALLEL_MIN_POINTS
    }

    /// Streams one scan's updates through `emit` with no buffering at
    /// all, using the first worker — the fastest path for scans the
    /// pipeline would run inline anyway ([`Self::would_run_inline`]).
    /// Only valid in [`IntegrationMode::Raywise`], where the parallel
    /// engine and the sequential integrator emit identical streams.
    ///
    /// # Panics
    ///
    /// Panics when the pipeline's mode is not `Raywise`.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] when `origin` cannot be addressed, like the
    /// sequential integrator.
    pub fn integrate_inline<F>(
        &mut self,
        origin: Point3,
        points: &[Point3],
        emit: F,
    ) -> Result<IntegrationStats, KeyError>
    where
        F: FnMut(VoxelUpdate),
    {
        assert_eq!(
            self.mode,
            IntegrationMode::Raywise,
            "inline streaming requires Raywise mode"
        );
        self.workers[0].integrate_points(origin, points, emit)
    }

    /// Integrates one scan directly from a borrowed origin and point
    /// slice, appending every voxel update to `out`.
    ///
    /// In [`IntegrationMode::Raywise`] the merged stream is byte-for-byte
    /// the sequential [`ScanIntegrator`] stream (shards are contiguous ray
    /// ranges, joined in order). In [`IntegrationMode::DedupPerScan`] the
    /// per-shard key sets are unioned before emission, so dedup stays
    /// *global* to the scan exactly like the sequential path.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] when `origin` cannot be addressed, like the
    /// sequential integrator.
    pub fn integrate_into(
        &mut self,
        origin: Point3,
        points: &[Point3],
        out: &mut Vec<VoxelUpdate>,
    ) -> Result<IntegrationStats, KeyError> {
        self.conv.coord_to_key(origin)?;
        if points.is_empty() {
            return Ok(IntegrationStats::default());
        }

        // Below the spawn-amortization threshold the whole scan runs on
        // one worker; in raywise mode it writes straight into `out`,
        // skipping the per-shard buffer and its copy entirely.
        let inline = self.would_run_inline(points.len());
        if inline && self.mode == IntegrationMode::Raywise {
            return Ok(self.workers[0]
                .integrate_points_into(origin, points, out)
                .expect("origin validated above"));
        }

        let shards = if inline { 1 } else { self.workers.len() };
        let chunk = points.len().div_ceil(shards);
        let lanes: Vec<(&mut ScanIntegrator, &mut Vec<VoxelUpdate>, &[Point3])> = self
            .workers
            .iter_mut()
            .zip(self.buffers.iter_mut())
            .zip(points.chunks(chunk))
            .map(|((w, b), p)| (w, b, p))
            .collect();

        let shard_stats: Vec<IntegrationStats> = if lanes.len() == 1 {
            // Single shard: run inline, no thread spawn.
            lanes
                .into_iter()
                .map(|(worker, buffer, slice)| {
                    buffer.clear();
                    worker
                        .integrate_points_into(origin, slice, buffer)
                        .expect("origin validated above")
                })
                .collect()
        } else {
            let nlanes = lanes.len();
            let pool = Arc::clone(
                self.pool
                    .get_or_insert_with(|| Arc::new(WorkerPool::new(nlanes))),
            );
            let mut slots: Vec<Option<IntegrationStats>> = (0..nlanes).map(|_| None).collect();
            // Lane i always lands on worker i, keeping each shard
            // integrator's scratch state warm on one thread. A task
            // panic resumes on this thread, matching the old
            // scoped-join semantics.
            pool.scope(|s| {
                for (i, ((worker, buffer, slice), slot)) in
                    lanes.into_iter().zip(slots.iter_mut()).enumerate()
                {
                    s.spawn_on(i, move || {
                        buffer.clear();
                        *slot = Some(
                            worker
                                .integrate_points_into(origin, slice, buffer)
                                .expect("origin validated above"),
                        );
                    });
                }
            });
            slots
                .into_iter()
                // omu-lint: allow(no-panic) — invariant: `scope` returns
                // only after every spawned task ran, and each task fills
                // its slot.
                .map(|s| s.expect("pipeline shard task completed"))
                .collect()
        };

        let mut stats = IntegrationStats::default();
        match self.mode {
            IntegrationMode::Raywise => {
                for (buffer, shard) in self.buffers.iter().zip(&shard_stats) {
                    out.extend_from_slice(buffer);
                    stats.merge(shard);
                }
            }
            IntegrationMode::DedupPerScan => {
                self.free_set.clear();
                self.occupied_set.clear();
                for (buffer, shard) in self.buffers.iter().zip(&shard_stats) {
                    stats.merge(shard);
                    for u in buffer {
                        if u.hit {
                            self.occupied_set.insert(u.key);
                        } else {
                            self.free_set.insert(u.key);
                        }
                    }
                }
                // Re-express the raywise counts as post-dedup counts, with
                // occupied winning over free (OctoMap semantics).
                stats.free_updates = 0;
                stats.occupied_updates = 0;
                for &k in &self.free_set {
                    if !self.occupied_set.contains(&k) {
                        out.push(VoxelUpdate { key: k, hit: false });
                        stats.free_updates += 1;
                    }
                }
                for &k in &self.occupied_set {
                    out.push(VoxelUpdate { key: k, hit: true });
                    stats.occupied_updates += 1;
                }
            }
        }
        Ok(stats)
    }

    /// [`Self::integrate_into`] for callers that already hold a [`Scan`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::integrate_into`].
    pub fn integrate_scan_into(
        &mut self,
        scan: &Scan,
        out: &mut Vec<VoxelUpdate>,
    ) -> Result<IntegrationStats, KeyError> {
        self.integrate_into(scan.origin, scan.cloud.points(), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omu_geometry::PointCloud;

    fn ring_points(n: usize) -> Vec<Point3> {
        (0..n)
            .map(|i| {
                let a = i as f64 * 0.13;
                Point3::new(3.0 * a.cos(), 3.0 * a.sin(), ((i % 5) as f64 - 2.0) * 0.3)
            })
            .collect()
    }

    #[test]
    fn pipeline_matches_sequential_stream_exactly() {
        let points = ring_points(64);
        let origin = Point3::new(0.01, 0.01, 0.01);
        let conv = KeyConverter::new(0.1).unwrap();

        let mut sequential = ScanIntegrator::new(conv, Some(5.0), IntegrationMode::Raywise);
        let mut seq_updates = Vec::new();
        let seq_stats = sequential
            .integrate_points_into(origin, &points, &mut seq_updates)
            .unwrap();

        for shards in [1, 2, 3, 8] {
            let mut pipeline = ScanPipeline::new(conv, Some(5.0), IntegrationMode::Raywise, shards);
            let mut updates = Vec::new();
            let stats = pipeline
                .integrate_into(origin, &points, &mut updates)
                .unwrap();
            assert_eq!(updates, seq_updates, "shards={shards}");
            assert_eq!(stats, seq_stats, "shards={shards}");
        }
    }

    #[test]
    fn pipeline_is_reusable_across_scans() {
        let conv = KeyConverter::new(0.1).unwrap();
        let mut pipeline = ScanPipeline::new(conv, None, IntegrationMode::Raywise, 3);
        let origin = Point3::ZERO;
        let mut reference = ScanIntegrator::new(conv, None, IntegrationMode::Raywise);
        for n in [10, 40, 7] {
            let points = ring_points(n);
            let mut updates = Vec::new();
            let stats = pipeline
                .integrate_into(origin, &points, &mut updates)
                .unwrap();
            let mut expected = Vec::new();
            let expected_stats = reference
                .integrate_points_into(origin, &points, &mut expected)
                .unwrap();
            assert_eq!(updates, expected, "scan of {n} points");
            assert_eq!(stats, expected_stats);
        }
    }

    #[test]
    fn dedup_pipeline_matches_sequential_sets() {
        let points = ring_points(48);
        let origin = Point3::new(0.01, 0.01, 0.01);
        let conv = KeyConverter::new(0.1).unwrap();

        let mut sequential = ScanIntegrator::new(conv, None, IntegrationMode::DedupPerScan);
        let mut seq_updates = Vec::new();
        let seq_stats = sequential
            .integrate_points_into(origin, &points, &mut seq_updates)
            .unwrap();

        let mut pipeline = ScanPipeline::new(conv, None, IntegrationMode::DedupPerScan, 4);
        let mut updates = Vec::new();
        let stats = pipeline
            .integrate_into(origin, &points, &mut updates)
            .unwrap();

        // Emission order is set-dependent; compare as sorted multisets.
        let canon = |mut v: Vec<VoxelUpdate>| {
            v.sort_unstable_by_key(|u| (u.key, u.hit));
            v
        };
        assert_eq!(canon(updates), canon(seq_updates));
        assert_eq!(stats.free_updates, seq_stats.free_updates);
        assert_eq!(stats.occupied_updates, seq_stats.occupied_updates);
        assert_eq!(stats.rays, seq_stats.rays);
        assert_eq!(stats.dda_steps, seq_stats.dda_steps);
    }

    #[test]
    fn scan_form_delegates_to_borrowed_form() {
        let conv = KeyConverter::new(0.1).unwrap();
        let points = ring_points(16);
        let scan = Scan::new(Point3::ZERO, points.iter().copied().collect::<PointCloud>());
        let mut pipeline = ScanPipeline::new(conv, None, IntegrationMode::Raywise, 2);
        let mut a = Vec::new();
        let sa = pipeline.integrate_scan_into(&scan, &mut a).unwrap();
        let mut b = Vec::new();
        let sb = pipeline
            .integrate_into(Point3::ZERO, &points, &mut b)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn empty_scan_is_a_noop() {
        let conv = KeyConverter::new(0.1).unwrap();
        let mut pipeline = ScanPipeline::new(conv, None, IntegrationMode::Raywise, 4);
        let mut updates = Vec::new();
        let stats = pipeline
            .integrate_into(Point3::ZERO, &[], &mut updates)
            .unwrap();
        assert_eq!(stats, IntegrationStats::default());
        assert!(updates.is_empty());
    }

    #[test]
    fn bad_origin_is_an_error() {
        let conv = KeyConverter::new(0.1).unwrap();
        let far = conv.map_half_extent() + 10.0;
        let mut pipeline = ScanPipeline::new(conv, None, IntegrationMode::Raywise, 2);
        assert!(pipeline
            .integrate_into(Point3::new(far, 0.0, 0.0), &[Point3::ZERO], &mut Vec::new())
            .is_err());
    }

    #[test]
    fn zero_shards_resolves_to_cpu_count() {
        let conv = KeyConverter::new(0.1).unwrap();
        let pipeline = ScanPipeline::new(conv, None, IntegrationMode::Raywise, 0);
        assert!(pipeline.shards() >= 1);
    }

    #[test]
    fn small_scans_run_inline_below_the_parallel_threshold() {
        let conv = KeyConverter::new(0.1).unwrap();
        let multi = ScanPipeline::new(conv, None, IntegrationMode::Raywise, 4);
        assert!(multi.would_run_inline(PARALLEL_MIN_POINTS - 1));
        assert!(!multi.would_run_inline(PARALLEL_MIN_POINTS));
        // A single-shard pipeline never pays the fan-out overhead.
        let single = ScanPipeline::new(conv, None, IntegrationMode::Raywise, 1);
        assert!(single.would_run_inline(PARALLEL_MIN_POINTS));
        assert!(single.would_run_inline(usize::MAX));
    }

    #[test]
    fn inline_and_fanned_out_paths_agree_across_the_threshold() {
        let conv = KeyConverter::new(0.1).unwrap();
        let origin = Point3::new(0.01, 0.01, 0.01);
        let mut sequential = ScanIntegrator::new(conv, Some(5.0), IntegrationMode::Raywise);
        let mut pipeline = ScanPipeline::new(conv, Some(5.0), IntegrationMode::Raywise, 4);
        // One scan below and one above PARALLEL_MIN_POINTS through the
        // same pipeline: both must match the sequential stream exactly.
        for n in [PARALLEL_MIN_POINTS / 2, PARALLEL_MIN_POINTS + 100] {
            let points = ring_points(n);
            let mut seq_updates = Vec::new();
            let seq_stats = sequential
                .integrate_points_into(origin, &points, &mut seq_updates)
                .unwrap();
            let mut updates = Vec::new();
            let stats = pipeline
                .integrate_into(origin, &points, &mut updates)
                .unwrap();
            assert_eq!(updates, seq_updates, "n={n}");
            assert_eq!(stats, seq_stats, "n={n}");
        }
    }
}
