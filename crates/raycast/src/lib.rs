//! Ray casting for probabilistic occupancy mapping.
//!
//! This crate reimplements the ray-casting kernel of OctoMap that the OMU
//! accelerator paper builds on (Fig. 1 and Section V "Ray Casting and Voxel
//! Queues"):
//!
//! - [`compute_ray_keys`] — the Amanatides–Woo 3D digital differential
//!   analyzer that enumerates the voxels a sensor ray traverses between its
//!   origin and its endpoint (OctoMap's `computeRayKeys`). The endpoint's
//!   voxel is *excluded*: traversed voxels are observed free, the endpoint
//!   is observed occupied.
//! - [`RayWalk`] — an open-ended DDA iterator used for query-style ray
//!   casting (e.g. collision probing) where no endpoint is known up front.
//! - [`RayPacket`] — the structure-of-arrays packet front end: 8 rays
//!   stepped in lockstep through the same DDA with an active-lane mask,
//!   emitting per-ray voxel sequences bit-identical to the scalar walk.
//!   [`FrontEnd`] selects which implementation the integrators run
//!   (packet by default).
//! - [`ScanIntegrator`] — turns a full [`Scan`](omu_geometry::Scan) into a stream of per-voxel
//!   hit/miss updates, in either of two modes (see [`IntegrationMode`]):
//!   the paper's raywise mode (no overlap dedup — what the OMU hardware
//!   executes and what Table II counts as "voxel updates") and OctoMap's
//!   software dedup mode.
//! - [`ScanPipeline`] — the persistent form of that fan-out: constructed
//!   once, it owns per-shard integrators and update buffers and integrates
//!   straight from a borrowed `(origin, &[Point3])` with zero per-call
//!   point-cloud copies; the front end of the octree's batched and
//!   subtree-sharded update engines.
//! - [`ParallelScanIntegrator`] — the stateless one-shot wrapper around a
//!   pipeline, kept for callers that cannot hold mutable state.
//!
//! # Examples
//!
//! ```
//! use omu_geometry::{KeyConverter, Point3};
//! use omu_raycast::{compute_ray_keys, KeyRay};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let conv = KeyConverter::new(0.1)?;
//! let mut ray = KeyRay::new();
//! compute_ray_keys(&conv, Point3::ZERO, Point3::new(1.0, 0.0, 0.0), &mut ray)?;
//! assert_eq!(ray.len(), 10); // ten 0.1 m cells traversed, endpoint excluded
//! # Ok(())
//! # }
//! ```

mod dda;
mod integrate;
mod keyray;
mod packet;
mod parallel;
mod pipeline;

pub use dda::{compute_ray_keys, RayWalk};
pub use integrate::{IntegrationMode, IntegrationStats, ScanIntegrator, VoxelUpdate};
pub use keyray::KeyRay;
pub use packet::{FrontEnd, LaneOutcome, PacketStats, RayPacket, PACKET_LANES};
pub use parallel::ParallelScanIntegrator;
pub use pipeline::{ScanPipeline, PARALLEL_MIN_POINTS};
