//! Structure-of-arrays ray packets: 8 rays stepped in lockstep through
//! the branch-free 3D DDA.
//!
//! The scalar front end ([`compute_ray_keys`](crate::compute_ray_keys))
//! walks one ray at a time; its inner loop is dominated by the
//! data-dependent axis pick (`argmin(t_max)`) and per-step loop overhead.
//! [`RayPacket`] holds the walk state of [`PACKET_LANES`] rays as fixed
//! structure-of-arrays lanes (`[[f64; 8]; 3]` t-values, `[[i32; 8]; 3]`
//! positions, an active-lane mask) and advances every live lane per
//! *superstep*:
//!
//! - the axis pick is computed branch-free for all 8 lanes (pure compares
//!   and selects over fixed arrays, which stable rustc autovectorizes into
//!   compare/blend sequences — no `std::simd` required), and
//! - each lane then replays the scalar DDA's advance/termination rules in
//!   the scalar order, so per ray the packet walk performs the *exact same
//!   floating-point operations* as the scalar walk and visits the exact
//!   same voxel sequence. Bit-identity is by construction, not by
//!   tolerance (and is property-tested in `tests/packet_front_end.rs`).
//!
//! Eight lanes is not arbitrary: it matches the octree's sibling-row
//! width, so one packet's endpoint hits are at most eight entries of one
//! 64 B leaf row — the natural unit the batched update engine scatters.

use omu_geometry::{KeyConverter, Point3, VoxelKey};
use serde::{Deserialize, Serialize};

use crate::dda::dda_setup;
use crate::integrate::effective_endpoint;
use crate::keyray::KeyRay;

/// Number of rays a [`RayPacket`] steps in lockstep.
///
/// Matches the octree's sibling-row width (8 nodes = one 64 B row), the
/// arena's branch-shard count, and one AVX2 register of `f32` lanes.
pub const PACKET_LANES: usize = 8;

/// Which DDA implementation drives scan integration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FrontEnd {
    /// One ray at a time through the scalar
    /// [`compute_ray_keys`](crate::compute_ray_keys) — the reference
    /// implementation.
    Scalar,
    /// [`PACKET_LANES`] rays in lockstep through [`RayPacket`]. Emits the
    /// bit-identical update stream in less time; the default.
    #[default]
    Packet,
}

impl std::fmt::Display for FrontEnd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FrontEnd::Scalar => "scalar",
            FrontEnd::Packet => "packet",
        })
    }
}

impl std::str::FromStr for FrontEnd {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(FrontEnd::Scalar),
            "packet" => Ok(FrontEnd::Packet),
            other => Err(format!(
                "unknown front end `{other}` (expected `scalar` or `packet`)"
            )),
        }
    }
}

/// Counters describing packet front-end execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketStats {
    /// Ray packets cast (groups of up to [`PACKET_LANES`] rays).
    pub packets: u64,
    /// Lockstep supersteps executed (each advances every live lane once).
    pub supersteps: u64,
    /// Individual lane advances performed across all supersteps. Equals
    /// the scalar front end's DDA step count for the same rays.
    pub lane_steps: u64,
}

impl PacketStats {
    /// Mean fraction of lanes live per superstep, in `[0, 1]`: how much of
    /// the 8-wide datapath ray-length divergence leaves busy.
    pub fn lane_occupancy(&self) -> f64 {
        if self.supersteps == 0 {
            0.0
        } else {
            self.lane_steps as f64 / (self.supersteps * PACKET_LANES as u64) as f64
        }
    }

    /// Accumulates another stats record into this one.
    pub fn merge(&mut self, other: &PacketStats) {
        self.packets += other.packets;
        self.supersteps += other.supersteps;
        self.lane_steps += other.lane_steps;
    }

    /// The difference `self - earlier`, for callers that snapshot
    /// cumulative stats around one scan.
    pub fn since(&self, earlier: &PacketStats) -> PacketStats {
        PacketStats {
            packets: self.packets - earlier.packets,
            supersteps: self.supersteps - earlier.supersteps,
            lane_steps: self.lane_steps - earlier.lane_steps,
        }
    }
}

/// What one packet lane resolved to after the walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LaneOutcome {
    /// The endpoint fell outside the addressable map (or the walk left it
    /// under floating-point degeneracy): the ray contributes nothing.
    #[default]
    Discarded,
    /// The ray was truncated at the maximum range: its traversed cells are
    /// free observations, no endpoint is marked occupied.
    Truncated,
    /// A full ray: traversed cells are free observations, the contained
    /// key is the occupied endpoint.
    Hit(VoxelKey),
}

/// The lockstep walk state of up to [`PACKET_LANES`] rays (see the module
/// docs for the lane layout and the bit-identity argument).
///
/// A packet is a reusable scratch object: [`Self::cast`] loads a group of
/// rays, runs the walk to completion, and leaves the per-lane voxel
/// sequences, step counts and outcomes readable until the next cast.
///
/// # Examples
///
/// ```
/// use omu_geometry::{KeyConverter, Point3};
/// use omu_raycast::{LaneOutcome, RayPacket};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let conv = KeyConverter::new(0.1)?;
/// let origin = Point3::ZERO;
/// let key_origin = conv.coord_to_key(origin)?;
/// let mut packet = RayPacket::new();
/// packet.cast(&conv, origin, key_origin, &[Point3::new(1.0, 0.0, 0.0)], None);
/// assert_eq!(packet.keys(0).len(), 10); // ten free cells, endpoint excluded
/// assert!(matches!(packet.outcome(0), LaneOutcome::Hit(_)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RayPacket {
    /// Lanes loaded by the current cast (trailing lanes are idle).
    lanes: usize,
    /// Live-lane mask: a lane stays active until it terminates by reaching
    /// its end voxel, overrunning its segment length, or walking off the
    /// map.
    active: [bool; PACKET_LANES],
    /// Current voxel per axis per lane.
    cur: [[i32; PACKET_LANES]; 3],
    /// End voxel per axis per lane (the excluded endpoint cell).
    end: [[i32; PACKET_LANES]; 3],
    /// Per-axis step direction (−1/0/+1) per lane.
    step: [[i32; PACKET_LANES]; 3],
    /// Distance along the ray to the next voxel border per axis per lane.
    t_max: [[f64; PACKET_LANES]; 3],
    /// Distance between successive borders per axis per lane.
    t_delta: [[f64; PACKET_LANES]; 3],
    /// Segment length per lane (the scalar DDA's overshoot safety net).
    length: [f64; PACKET_LANES],
    /// DDA steps taken per lane.
    steps: [u64; PACKET_LANES],
    outcome: [LaneOutcome; PACKET_LANES],
    /// Traversed (free) voxels per lane, origin cell first.
    keys: [KeyRay; PACKET_LANES],
    stats: PacketStats,
}

impl Default for RayPacket {
    fn default() -> Self {
        Self::new()
    }
}

impl RayPacket {
    /// Creates an empty packet.
    pub fn new() -> Self {
        RayPacket {
            lanes: 0,
            active: [false; PACKET_LANES],
            cur: [[0; PACKET_LANES]; 3],
            end: [[0; PACKET_LANES]; 3],
            step: [[0; PACKET_LANES]; 3],
            t_max: [[f64::INFINITY; PACKET_LANES]; 3],
            t_delta: [[f64::INFINITY; PACKET_LANES]; 3],
            length: [0.0; PACKET_LANES],
            steps: [0; PACKET_LANES],
            outcome: [LaneOutcome::Discarded; PACKET_LANES],
            keys: std::array::from_fn(|_| KeyRay::new()),
            stats: PacketStats::default(),
        }
    }

    /// Casts one ray per point of `points` (at most [`PACKET_LANES`]) from
    /// `origin`, running the lockstep walk to completion.
    ///
    /// `key_origin` must be `origin`'s voxel key (the caller has already
    /// validated the origin once for the whole scan). `max_range` applies
    /// OctoMap `maxrange` semantics per lane: longer rays are truncated
    /// and resolve to [`LaneOutcome::Truncated`]. Endpoints outside the
    /// map resolve to [`LaneOutcome::Discarded`].
    ///
    /// # Panics
    ///
    /// Panics when `points` holds more than [`PACKET_LANES`] points.
    pub fn cast(
        &mut self,
        conv: &KeyConverter,
        origin: Point3,
        key_origin: VoxelKey,
        points: &[Point3],
        max_range: Option<f64>,
    ) {
        assert!(
            points.len() <= PACKET_LANES,
            "a packet holds at most {PACKET_LANES} rays"
        );
        self.lanes = points.len();
        self.active = [false; PACKET_LANES];
        self.stats.packets += 1;

        // Lane load: scalar per-ray setup, identical operation-for-operation
        // to `effective_endpoint` + `compute_ray_keys`'s preamble.
        for (l, &p) in points.iter().enumerate() {
            self.keys[l].clear();
            self.steps[l] = 0;
            let (end, truncated) = effective_endpoint(max_range, origin, p);
            let Ok(end_key) = conv.coord_to_key(end) else {
                self.outcome[l] = LaneOutcome::Discarded;
                continue;
            };
            self.outcome[l] = if truncated {
                LaneOutcome::Truncated
            } else {
                LaneOutcome::Hit(end_key)
            };
            if key_origin == end_key {
                // Same-voxel ray: empty, zero steps (still counted as a ray
                // by the integrator).
                continue;
            }
            self.keys[l].push(key_origin);

            let direction = end - origin;
            let length = direction.norm();
            let dir = direction / length;
            let current = [
                key_origin.x as i32,
                key_origin.y as i32,
                key_origin.z as i32,
            ];
            let end_i = [end_key.x as i32, end_key.y as i32, end_key.z as i32];
            let (step, t_max, t_delta) = dda_setup(conv, origin, dir, current);
            for axis in 0..3 {
                self.cur[axis][l] = current[axis];
                self.end[axis][l] = end_i[axis];
                self.step[axis][l] = step[axis];
                self.t_max[axis][l] = t_max[axis];
                self.t_delta[axis][l] = t_delta[axis];
            }
            self.length[l] = length;
            self.active[l] = true;
        }

        if self.active[..self.lanes].contains(&true) {
            while self.superstep() {}
        }
    }

    /// Advances every live lane one DDA step. Returns `true` while any
    /// lane is still live.
    fn superstep(&mut self) -> bool {
        self.stats.supersteps += 1;

        // Phase 1 — branch-free axis pick, all lanes unconditionally:
        // `argmin(t_max)` with the scalar DDA's tie-breaking (x wins ties
        // against y, z only wins strict `<`). Pure compares and selects
        // over fixed-width arrays: the autovectorizable half of the step.
        let mut dim = [0usize; PACKET_LANES];
        for (l, d) in dim.iter_mut().enumerate() {
            let tx = self.t_max[0][l];
            let ty = self.t_max[1][l];
            let tz = self.t_max[2][l];
            let pick_y = ty < tx;
            let t01 = if pick_y { ty } else { tx };
            let d01 = pick_y as usize;
            *d = if tz < t01 { 2 } else { d01 };
        }

        // Phase 2 — advance live lanes, replaying the scalar DDA's
        // termination rules in the scalar order: bounds check, end-voxel
        // check, overshoot check, emit. Trailing unloaded lanes are
        // inactive, so the loop runs the full fixed width (no bounds
        // checks, unrolled by the compiler).
        let mut any = false;
        let mut lane_steps = 0;
        for (l, &d) in dim.iter().enumerate() {
            if !self.active[l] {
                continue;
            }
            let c = self.cur[d][l] + self.step[d][l];
            self.cur[d][l] = c;
            self.t_max[d][l] += self.t_delta[d][l];
            self.steps[l] += 1;
            lane_steps += 1;

            if !(0..=u16::MAX as i32).contains(&c) {
                // Walked off the map under floating-point degeneracy: the
                // scalar front end discards the whole ray, so does the lane.
                self.active[l] = false;
                self.outcome[l] = LaneOutcome::Discarded;
                self.keys[l].clear();
                continue;
            }
            if self.cur[0][l] == self.end[0][l]
                && self.cur[1][l] == self.end[1][l]
                && self.cur[2][l] == self.end[2][l]
            {
                self.active[l] = false;
                continue;
            }
            let dist = self.t_max[0][l].min(self.t_max[1][l]).min(self.t_max[2][l]);
            if dist > self.length[l] {
                self.active[l] = false;
                continue;
            }
            self.keys[l].push(VoxelKey::new(
                self.cur[0][l] as u16,
                self.cur[1][l] as u16,
                self.cur[2][l] as u16,
            ));
            any = true;
        }
        self.stats.lane_steps += lane_steps;
        any
    }

    /// Lanes loaded by the last cast.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The free (traversed) voxels of `lane`, origin cell first — the
    /// scalar `KeyRay` contents for the same ray.
    pub fn keys(&self, lane: usize) -> &[VoxelKey] {
        self.keys[lane].keys()
    }

    /// DDA steps `lane` took — the scalar `compute_ray_keys` step count
    /// for the same ray (zero for discarded lanes' stats purposes: the
    /// integrator only reads steps of surviving lanes).
    pub fn steps(&self, lane: usize) -> u64 {
        self.steps[lane]
    }

    /// How `lane` resolved.
    pub fn outcome(&self, lane: usize) -> LaneOutcome {
        self.outcome[lane]
    }

    /// Cumulative packet counters since construction (or the last
    /// [`Self::reset_stats`]).
    pub fn stats(&self) -> PacketStats {
        self.stats
    }

    /// Clears the cumulative counters.
    pub fn reset_stats(&mut self) {
        self.stats = PacketStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dda::compute_ray_keys;

    fn conv() -> KeyConverter {
        KeyConverter::new(0.1).unwrap()
    }

    fn cast_one(packet: &mut RayPacket, c: &KeyConverter, origin: Point3, p: Point3) {
        let ko = c.coord_to_key(origin).unwrap();
        packet.cast(c, origin, ko, &[p], None);
    }

    #[test]
    fn single_lane_matches_scalar_dda() {
        let c = conv();
        let origin = Point3::new(0.01, -0.02, 0.03);
        let end = Point3::new(0.87, 0.43, -0.22);
        let mut ray = KeyRay::new();
        let steps = compute_ray_keys(&c, origin, end, &mut ray).unwrap();

        let mut packet = RayPacket::new();
        cast_one(&mut packet, &c, origin, end);
        assert_eq!(packet.keys(0), ray.keys());
        assert_eq!(packet.steps(0), steps);
        assert_eq!(
            packet.outcome(0),
            LaneOutcome::Hit(c.coord_to_key(end).unwrap())
        );
    }

    #[test]
    fn full_packet_matches_scalar_per_lane() {
        let c = conv();
        let origin = Point3::new(0.05, 0.05, 0.05);
        let points: Vec<Point3> = (0..PACKET_LANES)
            .map(|i| {
                let a = i as f64 * 0.7;
                Point3::new(2.0 * a.cos(), 2.0 * a.sin(), (i as f64 - 3.5) * 0.2)
            })
            .collect();
        let ko = c.coord_to_key(origin).unwrap();
        let mut packet = RayPacket::new();
        packet.cast(&c, origin, ko, &points, None);

        let mut ray = KeyRay::new();
        for (l, &p) in points.iter().enumerate() {
            let steps = compute_ray_keys(&c, origin, p, &mut ray).unwrap();
            assert_eq!(packet.keys(l), ray.keys(), "lane {l}");
            assert_eq!(packet.steps(l), steps, "lane {l}");
        }
    }

    #[test]
    fn same_voxel_lane_is_empty_hit() {
        let c = conv();
        let origin = Point3::new(0.01, 0.01, 0.01);
        let mut packet = RayPacket::new();
        cast_one(&mut packet, &c, origin, Point3::new(0.05, 0.02, 0.09));
        assert!(packet.keys(0).is_empty());
        assert_eq!(packet.steps(0), 0);
        assert!(matches!(packet.outcome(0), LaneOutcome::Hit(_)));
    }

    #[test]
    fn out_of_map_lane_is_discarded() {
        let c = conv();
        let far = c.map_half_extent() + 10.0;
        let mut packet = RayPacket::new();
        let ko = c.coord_to_key(Point3::ZERO).unwrap();
        packet.cast(
            &c,
            Point3::ZERO,
            ko,
            &[Point3::new(far, 0.0, 0.0), Point3::new(0.5, 0.0, 0.0)],
            None,
        );
        assert_eq!(packet.outcome(0), LaneOutcome::Discarded);
        assert!(packet.keys(0).is_empty());
        assert!(matches!(packet.outcome(1), LaneOutcome::Hit(_)));
    }

    #[test]
    fn max_range_truncates_lane() {
        let c = conv();
        let ko = c.coord_to_key(Point3::ZERO).unwrap();
        let mut packet = RayPacket::new();
        packet.cast(
            &c,
            Point3::ZERO,
            ko,
            &[Point3::new(2.0, 0.0, 0.0)],
            Some(1.0),
        );
        assert_eq!(packet.outcome(0), LaneOutcome::Truncated);
        // No traversed cell beyond 1.0 m (key 32768 + 10).
        assert!(packet.keys(0).iter().all(|k| k.x <= 32768 + 10));
    }

    #[test]
    fn stats_accumulate_and_occupancy_bounded() {
        let c = conv();
        let ko = c.coord_to_key(Point3::ZERO).unwrap();
        let mut packet = RayPacket::new();
        let points: Vec<Point3> = (0..PACKET_LANES)
            .map(|i| Point3::new(1.0 + i as f64 * 0.3, 0.4, 0.0))
            .collect();
        packet.cast(&c, Point3::ZERO, ko, &points, None);
        let s = packet.stats();
        assert_eq!(s.packets, 1);
        assert!(s.supersteps > 0);
        assert!(s.lane_steps >= s.supersteps);
        let occ = s.lane_occupancy();
        assert!(occ > 0.0 && occ <= 1.0);
        packet.reset_stats();
        assert_eq!(packet.stats(), PacketStats::default());
    }

    #[test]
    fn front_end_parses_and_displays() {
        assert_eq!("scalar".parse::<FrontEnd>().unwrap(), FrontEnd::Scalar);
        assert_eq!("packet".parse::<FrontEnd>().unwrap(), FrontEnd::Packet);
        assert!("simd".parse::<FrontEnd>().is_err());
        assert_eq!(FrontEnd::Packet.to_string(), "packet");
        assert_eq!(FrontEnd::default(), FrontEnd::Packet);
    }
}
