//! A reusable buffer of ray voxel keys.

use omu_geometry::VoxelKey;

/// A reusable container for the voxel keys traversed by one ray.
///
/// Mirrors OctoMap's `KeyRay`: allocating the backing storage once and
/// clearing it per ray avoids per-ray heap traffic in the integration hot
/// loop.
///
/// # Examples
///
/// ```
/// use omu_raycast::KeyRay;
/// use omu_geometry::VoxelKey;
///
/// let mut ray = KeyRay::new();
/// ray.push(VoxelKey::ORIGIN);
/// assert_eq!(ray.len(), 1);
/// ray.clear();
/// assert!(ray.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct KeyRay {
    keys: Vec<VoxelKey>,
}

impl KeyRay {
    /// Creates an empty key ray.
    pub fn new() -> Self {
        KeyRay { keys: Vec::new() }
    }

    /// Creates an empty key ray with capacity for `capacity` cells.
    pub fn with_capacity(capacity: usize) -> Self {
        KeyRay {
            keys: Vec::with_capacity(capacity),
        }
    }

    /// Removes all keys, keeping the allocation.
    pub fn clear(&mut self) {
        self.keys.clear();
    }

    /// Appends a key.
    pub fn push(&mut self, key: VoxelKey) {
        self.keys.push(key);
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The keys as a slice, in traversal order (origin first).
    pub fn keys(&self) -> &[VoxelKey] {
        &self.keys
    }

    /// Iterates over the keys in traversal order.
    pub fn iter(&self) -> std::slice::Iter<'_, VoxelKey> {
        self.keys.iter()
    }
}

impl<'a> IntoIterator for &'a KeyRay {
    type Item = &'a VoxelKey;
    type IntoIter = std::slice::Iter<'a, VoxelKey>;

    fn into_iter(self) -> Self::IntoIter {
        self.keys.iter()
    }
}

impl FromIterator<VoxelKey> for KeyRay {
    fn from_iter<I: IntoIterator<Item = VoxelKey>>(iter: I) -> Self {
        KeyRay {
            keys: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_clear_reuse() {
        let mut r = KeyRay::with_capacity(8);
        r.push(VoxelKey::new(1, 2, 3));
        r.push(VoxelKey::new(4, 5, 6));
        assert_eq!(r.len(), 2);
        assert_eq!(r.keys()[0], VoxelKey::new(1, 2, 3));
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.iter().count(), 0);
    }

    #[test]
    fn collect_from_iterator() {
        let r: KeyRay = (0..4u16).map(|i| VoxelKey::new(i, i, i)).collect();
        assert_eq!(r.len(), 4);
        assert_eq!((&r).into_iter().count(), 4);
    }
}
