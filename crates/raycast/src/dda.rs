//! Amanatides–Woo 3D digital differential analyzer over the voxel grid.

use omu_geometry::{KeyConverter, KeyError, Point3, VoxelKey};

use crate::keyray::KeyRay;

/// Enumerates the voxels a ray traverses from `origin` to `end`, excluding
/// the endpoint's voxel.
///
/// This is a faithful port of OctoMap's `computeRayKeys`: the voxel
/// containing `origin` is included first, then every voxel crossed by the
/// segment, stopping just before the voxel containing `end`. If both points
/// fall in the same voxel the ray is empty.
///
/// Returns the number of DDA steps taken (equal to the number of cells
/// appended beyond the origin cell, plus the final step onto the endpoint).
/// The step count feeds the CPU cost model's *ray casting* category.
///
/// # Errors
///
/// Returns [`KeyError`] when either endpoint lies outside the addressable
/// map.
///
/// # Examples
///
/// ```
/// use omu_geometry::{KeyConverter, Point3};
/// use omu_raycast::{compute_ray_keys, KeyRay};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let conv = KeyConverter::new(0.5)?;
/// let mut ray = KeyRay::new();
/// compute_ray_keys(&conv, Point3::ZERO, Point3::new(0.2, 0.2, 0.0), &mut ray)?;
/// assert!(ray.is_empty()); // same voxel: nothing traversed
/// # Ok(())
/// # }
/// ```
pub fn compute_ray_keys(
    conv: &KeyConverter,
    origin: Point3,
    end: Point3,
    ray: &mut KeyRay,
) -> Result<u64, KeyError> {
    ray.clear();
    let key_origin = conv.coord_to_key(origin)?;
    let key_end = conv.coord_to_key(end)?;
    if key_origin == key_end {
        return Ok(0);
    }
    ray.push(key_origin);

    let direction = end - origin;
    let length = direction.norm();
    debug_assert!(length > 0.0, "distinct keys imply distinct points");
    let dir = direction / length;

    let mut current = [
        key_origin.x as i32,
        key_origin.y as i32,
        key_origin.z as i32,
    ];
    let end_key = [key_end.x as i32, key_end.y as i32, key_end.z as i32];
    let res = conv.resolution();
    let (step, mut t_max, t_delta) = dda_setup(conv, origin, dir, current);

    let mut steps: u64 = 0;
    loop {
        // Advance along the axis whose border is closest.
        let mut dim = 0;
        if t_max[1] < t_max[dim] {
            dim = 1;
        }
        if t_max[2] < t_max[dim] {
            dim = 2;
        }

        current[dim] += step[dim];
        t_max[dim] += t_delta[dim];
        steps += 1;

        if !(0..=u16::MAX as i32).contains(&current[dim]) {
            // Walked off the addressable map; both endpoints were inside, so
            // this only happens under extreme floating-point degeneracy.
            return Err(KeyError::OutOfRange {
                coord: origin[dim] + dir[dim] * t_max[dim],
                resolution: res,
            });
        }

        if current == end_key {
            break;
        }

        // Numerical safety net (OctoMap does the same): if the traversal has
        // gone beyond the segment length without landing exactly on the end
        // key, stop rather than overshoot.
        let dist_from_origin = t_max[0].min(t_max[1]).min(t_max[2]);
        if dist_from_origin > length {
            break;
        }

        ray.push(VoxelKey::new(
            current[0] as u16,
            current[1] as u16,
            current[2] as u16,
        ));
    }

    Ok(steps)
}

/// Computes the per-axis DDA parameters `(step, t_max, t_delta)` for one
/// ray with unit direction `dir`, starting in the voxel `current`.
///
/// Shared by [`compute_ray_keys`], [`RayWalk`] and the packet front end
/// ([`crate::RayPacket`]) so every traversal flavour derives its walk
/// state from the exact same floating-point operations — the packet DDA's
/// bit-identity to the scalar DDA rests on this.
pub(crate) fn dda_setup(
    conv: &KeyConverter,
    origin: Point3,
    dir: Point3,
    current: [i32; 3],
) -> ([i32; 3], [f64; 3], [f64; 3]) {
    let res = conv.resolution();
    let mut step = [0i32; 3];
    let mut t_max = [f64::INFINITY; 3];
    let mut t_delta = [f64::INFINITY; 3];
    for axis in 0..3 {
        let d = dir[axis];
        step[axis] = if d > 0.0 {
            1
        } else if d < 0.0 {
            -1
        } else {
            0
        };
        if step[axis] != 0 {
            // Distance along the ray to the first voxel border on this axis.
            let voxel_border =
                conv.axis_key_to_coord(current[axis] as u16) + step[axis] as f64 * res * 0.5;
            t_max[axis] = (voxel_border - origin[axis]) / d;
            t_delta[axis] = res / d.abs();
        }
    }
    (step, t_max, t_delta)
}

/// An open-ended DDA walk from an origin along a direction.
///
/// Yields the voxel key containing the origin first, then each voxel the ray
/// enters, until `max_range` metres have been traversed or the walk leaves
/// the addressable map. Used for query-style ray casting (find the first
/// occupied voxel along a direction) where the endpoint is not known in
/// advance.
///
/// # Examples
///
/// ```
/// use omu_geometry::{KeyConverter, Point3};
/// use omu_raycast::RayWalk;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let conv = KeyConverter::new(0.1)?;
/// let walk = RayWalk::new(&conv, Point3::ZERO, Point3::new(1.0, 0.0, 0.0), 0.55)?;
/// assert_eq!(walk.count(), 6); // origin cell + 5 crossings within 0.55 m
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RayWalk {
    current: [i32; 3],
    step: [i32; 3],
    t_max: [f64; 3],
    t_delta: [f64; 3],
    travelled: f64,
    max_range: f64,
    started: bool,
    done: bool,
}

impl RayWalk {
    /// An exhausted walk that yields nothing until [`Self::restart`] aims
    /// it at a ray — the seed value for consumers that keep one reusable
    /// walk across a whole batch of casts.
    pub fn idle() -> Self {
        RayWalk {
            current: [0; 3],
            step: [0; 3],
            t_max: [f64::INFINITY; 3],
            t_delta: [f64::INFINITY; 3],
            travelled: 0.0,
            max_range: 0.0,
            started: false,
            done: true,
        }
    }

    /// Starts a walk from `origin` along `dir` (not necessarily normalized)
    /// up to `max_range` metres.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] if the origin is outside the map or `dir` is the
    /// zero vector / not finite.
    pub fn new(
        conv: &KeyConverter,
        origin: Point3,
        dir: Point3,
        max_range: f64,
    ) -> Result<Self, KeyError> {
        let mut walk = RayWalk::idle();
        walk.restart(conv, origin, dir, max_range)?;
        Ok(walk)
    }

    /// Re-aims the walk at a new ray, resetting all iteration state — the
    /// reusable form of [`Self::new`] for batched casting loops that
    /// drive one walk per ray without constructing a fresh iterator each
    /// time. On error the walk is left exhausted (yields nothing).
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] if the origin is outside the map or `dir` is
    /// the zero vector / not finite.
    pub fn restart(
        &mut self,
        conv: &KeyConverter,
        origin: Point3,
        dir: Point3,
        max_range: f64,
    ) -> Result<(), KeyError> {
        self.travelled = 0.0;
        self.max_range = max_range;
        self.started = false;
        self.done = true; // stays exhausted if validation fails below

        let key_origin = conv.coord_to_key(origin)?;
        let dir = dir
            .normalized()
            .filter(|d| d.is_finite())
            .ok_or(KeyError::NotFinite { coord: dir.norm() })?;

        self.current = [
            key_origin.x as i32,
            key_origin.y as i32,
            key_origin.z as i32,
        ];
        let (step, t_max, t_delta) = dda_setup(conv, origin, dir, self.current);
        self.step = step;
        self.t_max = t_max;
        self.t_delta = t_delta;
        self.done = false;
        Ok(())
    }
}

impl Iterator for RayWalk {
    type Item = VoxelKey;

    fn next(&mut self) -> Option<VoxelKey> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(VoxelKey::new(
                self.current[0] as u16,
                self.current[1] as u16,
                self.current[2] as u16,
            ));
        }

        let mut dim = 0;
        if self.t_max[1] < self.t_max[dim] {
            dim = 1;
        }
        if self.t_max[2] < self.t_max[dim] {
            dim = 2;
        }
        if self.t_max[dim].is_infinite() {
            // Zero direction on every axis cannot happen (validated), but a
            // fully axis-degenerate state would spin forever otherwise.
            self.done = true;
            return None;
        }

        self.travelled = self.t_max[dim];
        if self.travelled > self.max_range {
            self.done = true;
            return None;
        }

        self.current[dim] += self.step[dim];
        self.t_max[dim] += self.t_delta[dim];
        if !(0..=u16::MAX as i32).contains(&self.current[dim]) {
            self.done = true;
            return None;
        }

        Some(VoxelKey::new(
            self.current[0] as u16,
            self.current[1] as u16,
            self.current[2] as u16,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn conv() -> KeyConverter {
        KeyConverter::new(0.1).unwrap()
    }

    #[test]
    fn axis_aligned_ray_counts_cells() {
        let c = conv();
        let mut ray = KeyRay::new();
        compute_ray_keys(&c, Point3::ZERO, Point3::new(1.0, 0.0, 0.0), &mut ray).unwrap();
        // Cells at x-keys 32768..32777 (origin included), endpoint 32778 excluded.
        assert_eq!(ray.len(), 10);
        let first = ray.keys()[0];
        assert_eq!(first, VoxelKey::ORIGIN);
        for w in ray.keys().windows(2) {
            assert_eq!(w[1].x, w[0].x + 1);
            assert_eq!(w[1].y, w[0].y);
            assert_eq!(w[1].z, w[0].z);
        }
    }

    #[test]
    fn same_voxel_yields_empty_ray() {
        let c = conv();
        let mut ray = KeyRay::new();
        let steps = compute_ray_keys(
            &c,
            Point3::new(0.01, 0.01, 0.01),
            Point3::new(0.05, 0.02, 0.09),
            &mut ray,
        )
        .unwrap();
        assert_eq!(steps, 0);
        assert!(ray.is_empty());
    }

    #[test]
    fn negative_direction_ray() {
        let c = conv();
        let mut ray = KeyRay::new();
        // End −0.55 m lies inside cell [−0.6, −0.5): six cells are traversed
        // (origin cell plus five), endpoint cell excluded.
        compute_ray_keys(&c, Point3::ZERO, Point3::new(-0.55, 0.0, 0.0), &mut ray).unwrap();
        assert_eq!(ray.len(), 6);
        for w in ray.keys().windows(2) {
            assert_eq!(w[1].x, w[0].x - 1);
        }
    }

    #[test]
    fn out_of_map_endpoint_is_error() {
        let c = conv();
        let mut ray = KeyRay::new();
        let far = c.map_half_extent() + 10.0;
        assert!(compute_ray_keys(&c, Point3::ZERO, Point3::new(far, 0.0, 0.0), &mut ray).is_err());
    }

    #[test]
    fn endpoint_voxel_never_included() {
        let c = conv();
        let mut ray = KeyRay::new();
        let end = Point3::new(0.87, 0.43, -0.22);
        compute_ray_keys(&c, Point3::new(0.01, -0.02, 0.03), end, &mut ray).unwrap();
        let end_key = c.coord_to_key(end).unwrap();
        assert!(ray.iter().all(|&k| k != end_key));
    }

    #[test]
    fn ray_walk_matches_compute_ray_keys_prefix() {
        let c = conv();
        let origin = Point3::new(0.03, 0.04, 0.05);
        let end = Point3::new(1.5, -0.7, 0.9);
        let mut ray = KeyRay::new();
        compute_ray_keys(&c, origin, end, &mut ray).unwrap();
        let dir = end - origin;
        let walk: Vec<_> = RayWalk::new(&c, origin, dir, dir.norm() * 2.0)
            .unwrap()
            .take(ray.len())
            .collect();
        assert_eq!(walk.as_slice(), ray.keys());
    }

    #[test]
    fn ray_walk_rejects_zero_direction() {
        let c = conv();
        assert!(RayWalk::new(&c, Point3::ZERO, Point3::ZERO, 1.0).is_err());
    }

    #[test]
    fn restarted_walk_matches_fresh_walk() {
        let c = conv();
        let mut walk = RayWalk::new(&c, Point3::ZERO, Point3::new(1.0, 0.3, 0.1), 2.0).unwrap();
        // Partially consume, then re-aim at a different ray.
        assert!(walk.by_ref().take(3).count() == 3);
        walk.restart(
            &c,
            Point3::new(0.2, -0.1, 0.0),
            Point3::new(-0.5, 1.0, 0.2),
            1.5,
        )
        .unwrap();
        let resumed: Vec<_> = walk.collect();
        let fresh: Vec<_> = RayWalk::new(
            &c,
            Point3::new(0.2, -0.1, 0.0),
            Point3::new(-0.5, 1.0, 0.2),
            1.5,
        )
        .unwrap()
        .collect();
        assert_eq!(resumed, fresh);
    }

    #[test]
    fn idle_walk_yields_nothing_until_restarted() {
        let c = conv();
        let mut walk = RayWalk::idle();
        assert_eq!(walk.next(), None);
        walk.restart(&c, Point3::ZERO, Point3::new(1.0, 0.0, 0.0), 0.55)
            .unwrap();
        assert_eq!(walk.count(), 6);
    }

    #[test]
    fn failed_restart_leaves_walk_exhausted() {
        let c = conv();
        let mut walk = RayWalk::new(&c, Point3::ZERO, Point3::new(1.0, 0.0, 0.0), 2.0).unwrap();
        assert!(walk.restart(&c, Point3::ZERO, Point3::ZERO, 2.0).is_err());
        assert_eq!(walk.next(), None);
    }

    #[test]
    fn ray_walk_respects_max_range() {
        let c = conv();
        let n = RayWalk::new(&c, Point3::ZERO, Point3::new(1.0, 0.0, 0.0), 1.0)
            .unwrap()
            .count();
        // Origin cell + 10 borders crossed within 1.0 m (borders at 0.05 + k*0.1 <= 1.0).
        assert_eq!(n, 11);
    }

    proptest! {
        #[test]
        fn ray_cells_are_six_connected(
            ox in -3.0f64..3.0, oy in -3.0f64..3.0, oz in -3.0f64..3.0,
            ex in -3.0f64..3.0, ey in -3.0f64..3.0, ez in -3.0f64..3.0,
        ) {
            let c = conv();
            let mut ray = KeyRay::new();
            compute_ray_keys(&c, Point3::new(ox, oy, oz), Point3::new(ex, ey, ez), &mut ray).unwrap();
            for w in ray.keys().windows(2) {
                prop_assert_eq!(w[0].manhattan_distance(w[1]), 1, "consecutive cells must share a face");
            }
        }

        #[test]
        fn ray_starts_at_origin_cell_and_stays_in_bounds(
            ox in -3.0f64..3.0, oy in -3.0f64..3.0, oz in -3.0f64..3.0,
            ex in -3.0f64..3.0, ey in -3.0f64..3.0, ez in -3.0f64..3.0,
        ) {
            let c = conv();
            let origin = Point3::new(ox, oy, oz);
            let end = Point3::new(ex, ey, ez);
            let mut ray = KeyRay::new();
            compute_ray_keys(&c, origin, end, &mut ray).unwrap();
            let ko = c.coord_to_key(origin).unwrap();
            let ke = c.coord_to_key(end).unwrap();
            if ko == ke {
                prop_assert!(ray.is_empty());
            } else {
                prop_assert_eq!(ray.keys()[0], ko);
                // Every cell lies within the key bounding box of the segment
                // (inflated by one voxel for borderline crossings).
                let (lox, hix) = (ko.x.min(ke.x).saturating_sub(1), ko.x.max(ke.x) + 1);
                let (loy, hiy) = (ko.y.min(ke.y).saturating_sub(1), ko.y.max(ke.y) + 1);
                let (loz, hiz) = (ko.z.min(ke.z).saturating_sub(1), ko.z.max(ke.z) + 1);
                for k in &ray {
                    prop_assert!(k.x >= lox && k.x <= hix);
                    prop_assert!(k.y >= loy && k.y <= hiy);
                    prop_assert!(k.z >= loz && k.z <= hiz);
                }
            }
        }

        #[test]
        fn ray_length_close_to_manhattan_bound(
            ex in -5.0f64..5.0, ey in -5.0f64..5.0, ez in -5.0f64..5.0,
        ) {
            let c = conv();
            let mut ray = KeyRay::new();
            compute_ray_keys(&c, Point3::ZERO, Point3::new(ex, ey, ez), &mut ray).unwrap();
            let ko = c.coord_to_key(Point3::ZERO).unwrap();
            let ke = c.coord_to_key(Point3::new(ex, ey, ez)).unwrap();
            // A 6-connected path from origin cell to (excluded) end cell
            // takes exactly manhattan-distance steps; the stored cells are
            // that path minus the final cell.
            prop_assert!(ray.len() as u32 <= ko.manhattan_distance(ke));
        }
    }
}
