//! Parallel scan integration: rays fan out across threads, their key
//! streams merge back into one deterministic update batch.
//!
//! This mirrors the OMU paper's PE × bank parallelism in software: each
//! shard owns a contiguous slice of the scan's rays (so concatenating
//! shard outputs reproduces the sequential emission order exactly), runs
//! a private [`ScanIntegrator`] over it, and the merged stream feeds the
//! octree's Morton-sorted batch engine.
//!
//! This type is the *stateless* (`&self`) form: each call stands up a
//! one-shot [`ScanPipeline`] and discards it — but the worker pool is
//! owned here and injected into every per-call pipeline, so repeated
//! calls reuse the same persistent threads (zero per-call spawns).
//! Callers that can hold mutable state should use [`ScanPipeline`]
//! directly — it also keeps the shard integrators and buffers alive
//! across scans and skips the per-call setup entirely.

use std::sync::Arc;

use omu_geometry::{KeyConverter, KeyError, Scan};
use omu_pool::WorkerPool;

use crate::integrate::{IntegrationMode, IntegrationStats, VoxelUpdate};
use crate::pipeline::ScanPipeline;

/// Fans a scan's rays out over threads and merges the per-shard update
/// streams into one batch.
///
/// In [`IntegrationMode::Raywise`] the merged stream is byte-for-byte the
/// sequential [`ScanIntegrator`](crate::ScanIntegrator) stream (shards are contiguous ray
/// ranges, joined in order). In [`IntegrationMode::DedupPerScan`] the
/// per-shard key sets are unioned before emission, so dedup stays
/// *global* to the scan exactly like the sequential path.
///
/// # Examples
///
/// ```
/// use omu_geometry::{KeyConverter, Point3, PointCloud, Scan};
/// use omu_raycast::{IntegrationMode, ParallelScanIntegrator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let conv = KeyConverter::new(0.1)?;
/// let integrator =
///     ParallelScanIntegrator::new(conv, Some(5.0), IntegrationMode::Raywise, 4);
/// let scan = Scan::new(
///     Point3::ZERO,
///     [Point3::new(1.0, 0.0, 0.0), Point3::new(0.0, 1.0, 0.0)]
///         .into_iter()
///         .collect::<PointCloud>(),
/// );
/// let mut updates = Vec::new();
/// let stats = integrator.integrate_into(&scan, &mut updates)?;
/// assert_eq!(stats.rays, 2);
/// assert_eq!(updates.len() as u64, stats.total_updates());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ParallelScanIntegrator {
    conv: KeyConverter,
    max_range: Option<f64>,
    mode: IntegrationMode,
    shards: usize,
    /// Persistent workers shared by every per-call pipeline (and by
    /// clones of this integrator).
    pool: Arc<WorkerPool>,
}

impl ParallelScanIntegrator {
    /// Creates an integrator fanning out over `shards` threads
    /// (`0` = one shard per available CPU).
    pub fn new(
        conv: KeyConverter,
        max_range: Option<f64>,
        mode: IntegrationMode,
        shards: usize,
    ) -> Self {
        let shards = Self::resolve_shards(shards);
        ParallelScanIntegrator {
            conv,
            max_range,
            mode,
            shards,
            pool: Arc::new(WorkerPool::new(shards)),
        }
    }

    /// The persistent worker pool backing this integrator's fan-out.
    pub fn worker_pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Resolves a requested shard count: `0` means one shard per
    /// available CPU.
    pub fn resolve_shards(requested: usize) -> usize {
        ScanPipeline::resolve_shards(requested)
    }

    /// The key converter in use.
    pub fn converter(&self) -> &KeyConverter {
        &self.conv
    }

    /// The integration mode in use.
    pub fn mode(&self) -> IntegrationMode {
        self.mode
    }

    /// The configured maximum sensor range.
    pub fn max_range(&self) -> Option<f64> {
        self.max_range
    }

    /// Number of shards rays are split into.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Integrates one scan in parallel, appending every voxel update to
    /// `out`.
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] when the scan origin cannot be addressed, like
    /// the sequential integrator.
    pub fn integrate_into(
        &self,
        scan: &Scan,
        out: &mut Vec<VoxelUpdate>,
    ) -> Result<IntegrationStats, KeyError> {
        let mut pipeline = ScanPipeline::new(self.conv, self.max_range, self.mode, self.shards);
        pipeline.set_pool(Arc::clone(&self.pool));
        pipeline.integrate_scan_into(scan, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::ScanIntegrator;
    use omu_geometry::{Point3, PointCloud};

    fn ring_scan(points: usize) -> Scan {
        Scan::new(
            Point3::new(0.01, 0.01, 0.01),
            (0..points)
                .map(|i| {
                    let a = i as f64 * 0.13;
                    Point3::new(3.0 * a.cos(), 3.0 * a.sin(), ((i % 5) as f64 - 2.0) * 0.3)
                })
                .collect::<PointCloud>(),
        )
    }

    #[test]
    fn raywise_parallel_matches_sequential_stream_exactly() {
        let scan = ring_scan(64);
        let conv = KeyConverter::new(0.1).unwrap();

        let mut sequential = ScanIntegrator::new(conv, Some(5.0), IntegrationMode::Raywise);
        let mut seq_updates = Vec::new();
        let seq_stats = sequential.integrate_into(&scan, &mut seq_updates).unwrap();

        for shards in [1, 2, 3, 8] {
            let par =
                ParallelScanIntegrator::new(conv, Some(5.0), IntegrationMode::Raywise, shards);
            let mut par_updates = Vec::new();
            let par_stats = par.integrate_into(&scan, &mut par_updates).unwrap();
            assert_eq!(par_updates, seq_updates, "shards={shards}");
            assert_eq!(par_stats, seq_stats, "shards={shards}");
        }
    }

    #[test]
    fn dedup_parallel_matches_sequential_sets() {
        let scan = ring_scan(48);
        let conv = KeyConverter::new(0.1).unwrap();

        let mut sequential = ScanIntegrator::new(conv, None, IntegrationMode::DedupPerScan);
        let mut seq_updates = Vec::new();
        let seq_stats = sequential.integrate_into(&scan, &mut seq_updates).unwrap();

        let par = ParallelScanIntegrator::new(conv, None, IntegrationMode::DedupPerScan, 4);
        let mut par_updates = Vec::new();
        let par_stats = par.integrate_into(&scan, &mut par_updates).unwrap();

        // Emission order is set-dependent; compare as sorted multisets.
        let canon = |mut v: Vec<VoxelUpdate>| {
            v.sort_unstable_by_key(|u| (u.key, u.hit));
            v
        };
        assert_eq!(canon(par_updates), canon(seq_updates));
        assert_eq!(par_stats.free_updates, seq_stats.free_updates);
        assert_eq!(par_stats.occupied_updates, seq_stats.occupied_updates);
        assert_eq!(par_stats.rays, seq_stats.rays);
        assert_eq!(par_stats.dda_steps, seq_stats.dda_steps);
    }

    #[test]
    fn zero_shards_resolves_to_cpu_count() {
        let conv = KeyConverter::new(0.1).unwrap();
        let par = ParallelScanIntegrator::new(conv, None, IntegrationMode::Raywise, 0);
        assert!(par.shards() >= 1);
    }

    #[test]
    fn empty_scan_is_a_noop() {
        let conv = KeyConverter::new(0.1).unwrap();
        let par = ParallelScanIntegrator::new(conv, None, IntegrationMode::Raywise, 4);
        let mut updates = Vec::new();
        let stats = par
            .integrate_into(&Scan::new(Point3::ZERO, PointCloud::new()), &mut updates)
            .unwrap();
        assert_eq!(stats, IntegrationStats::default());
        assert!(updates.is_empty());
    }

    #[test]
    fn bad_origin_is_an_error() {
        let conv = KeyConverter::new(0.1).unwrap();
        let far = conv.map_half_extent() + 10.0;
        let par = ParallelScanIntegrator::new(conv, None, IntegrationMode::Raywise, 2);
        let scan = Scan::new(
            Point3::new(far, 0.0, 0.0),
            [Point3::ZERO].into_iter().collect::<PointCloud>(),
        );
        assert!(par.integrate_into(&scan, &mut Vec::new()).is_err());
    }
}
