//! Scan integration: turning a point cloud into per-voxel hit/miss updates.

use omu_geometry::{KeyConverter, KeyError, Point3, Scan, VoxelKey};
use rustc_hash::FxHashSet;
use serde::{Deserialize, Serialize};

use crate::dda::compute_ray_keys;
use crate::keyray::KeyRay;
use crate::packet::{FrontEnd, LaneOutcome, PacketStats, RayPacket, PACKET_LANES};

/// Computes the effective endpoint of a ray under the range limit.
///
/// Returns `(endpoint, truncated)`. Shared by the scalar integrator and
/// the packet front end so both truncate with identical floating-point
/// operations.
pub(crate) fn effective_endpoint(
    max_range: Option<f64>,
    origin: Point3,
    point: Point3,
) -> (Point3, bool) {
    match max_range {
        Some(r) => {
            let v = point - origin;
            let len = v.norm();
            if len > r && len > 0.0 {
                (origin + v * (r / len), true)
            } else {
                (point, false)
            }
        }
        None => (point, false),
    }
}

/// One voxel observation produced by scan integration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VoxelUpdate {
    /// The observed voxel.
    pub key: VoxelKey,
    /// `true` for an endpoint (occupied observation), `false` for a
    /// traversed cell (free observation).
    pub hit: bool,
}

/// How overlapping voxels within one scan are handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum IntegrationMode {
    /// Every ray updates every cell it traverses; overlapping cells are
    /// updated multiple times. This is what the OMU accelerator executes
    /// (the paper explicitly leaves "voxel overlap search" to specialized
    /// ray-casting hardware) and what Table II counts as *voxel updates*.
    #[default]
    Raywise,
    /// OctoMap's `insertPointCloud` semantics: free and occupied cells are
    /// deduplicated per scan with key sets, and cells observed both free and
    /// occupied are updated as occupied only.
    DedupPerScan,
}

/// Counters describing one integration pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntegrationStats {
    /// Rays processed (points within range, converted successfully).
    pub rays: u64,
    /// DDA steps performed during ray casting.
    pub dda_steps: u64,
    /// Free-cell updates emitted.
    pub free_updates: u64,
    /// Occupied-cell updates emitted.
    pub occupied_updates: u64,
    /// Rays truncated at the maximum range (endpoint not marked occupied).
    pub truncated_rays: u64,
    /// Points discarded because they fell outside the addressable map.
    pub discarded_points: u64,
}

impl IntegrationStats {
    /// Total voxel updates emitted (free + occupied) — the paper's
    /// "Voxel Update" workload metric (Table II).
    pub fn total_updates(&self) -> u64 {
        self.free_updates + self.occupied_updates
    }

    /// Accumulates another stats record into this one.
    pub fn merge(&mut self, other: &IntegrationStats) {
        self.rays += other.rays;
        self.dda_steps += other.dda_steps;
        self.free_updates += other.free_updates;
        self.occupied_updates += other.occupied_updates;
        self.truncated_rays += other.truncated_rays;
        self.discarded_points += other.discarded_points;
    }
}

/// Converts scans into streams of [`VoxelUpdate`]s.
///
/// The integrator owns its scratch buffers ([`KeyRay`], dedup sets) so that
/// per-scan integration performs no steady-state allocation.
///
/// # Examples
///
/// ```
/// use omu_geometry::{KeyConverter, Point3, PointCloud, Scan};
/// use omu_raycast::{IntegrationMode, ScanIntegrator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let conv = KeyConverter::new(0.1)?;
/// let mut integrator = ScanIntegrator::new(conv, Some(5.0), IntegrationMode::Raywise);
/// let scan = Scan::new(
///     Point3::ZERO,
///     [Point3::new(1.0, 0.0, 0.0)].into_iter().collect::<PointCloud>(),
/// );
/// let mut hits = 0;
/// let stats = integrator.integrate(&scan, |u| if u.hit { hits += 1 })?;
/// assert_eq!(hits, 1);
/// assert_eq!(stats.free_updates, 10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ScanIntegrator {
    conv: KeyConverter,
    max_range: Option<f64>,
    mode: IntegrationMode,
    front_end: FrontEnd,
    keyray: KeyRay,
    /// Lockstep walk state for [`FrontEnd::Packet`] (idle under
    /// [`FrontEnd::Scalar`]).
    packet: RayPacket,
    // Fx instead of SipHash: the dedup sets hash millions of structured,
    // non-adversarial voxel keys per scan, so the cheaper mix is a
    // measurable integration-path win.
    free_set: FxHashSet<VoxelKey>,
    occupied_set: FxHashSet<VoxelKey>,
    /// Largest `free_set` / `occupied_set` sizes seen so far: each scan
    /// pre-reserves the previous high-water mark so the sets rehash at
    /// most during the first (largest-growth) scan instead of doubling
    /// their way up on every scan-sized refill.
    free_high_water: usize,
    occupied_high_water: usize,
}

impl ScanIntegrator {
    /// Creates an integrator.
    ///
    /// `max_range` limits the sensor range in metres: rays longer than the
    /// limit are truncated and update only free cells up to the limit
    /// (OctoMap `maxrange` semantics). `None` integrates rays at any length.
    pub fn new(conv: KeyConverter, max_range: Option<f64>, mode: IntegrationMode) -> Self {
        Self::with_front_end(conv, max_range, mode, FrontEnd::default())
    }

    /// Creates an integrator with an explicit DDA front end (see
    /// [`FrontEnd`]; [`Self::new`] uses the default, [`FrontEnd::Packet`]).
    pub fn with_front_end(
        conv: KeyConverter,
        max_range: Option<f64>,
        mode: IntegrationMode,
        front_end: FrontEnd,
    ) -> Self {
        ScanIntegrator {
            conv,
            max_range,
            mode,
            front_end,
            keyray: KeyRay::new(),
            packet: RayPacket::new(),
            free_set: FxHashSet::default(),
            occupied_set: FxHashSet::default(),
            free_high_water: 0,
            occupied_high_water: 0,
        }
    }

    /// The key converter in use.
    pub fn converter(&self) -> &KeyConverter {
        &self.conv
    }

    /// The integration mode in use.
    pub fn mode(&self) -> IntegrationMode {
        self.mode
    }

    /// The configured maximum sensor range.
    pub fn max_range(&self) -> Option<f64> {
        self.max_range
    }

    /// The DDA front end in use.
    pub fn front_end(&self) -> FrontEnd {
        self.front_end
    }

    /// Switches the DDA front end. Both front ends emit bit-identical
    /// update streams; this exists for benchmarking and as a reference
    /// fallback.
    pub fn set_front_end(&mut self, front_end: FrontEnd) {
        self.front_end = front_end;
    }

    /// Cumulative packet front-end counters (all zero while running
    /// [`FrontEnd::Scalar`]).
    pub fn packet_stats(&self) -> PacketStats {
        self.packet.stats()
    }

    /// Integrates one scan, invoking `apply` for every voxel update in
    /// order (free cells of each ray first, then its endpoint in
    /// [`IntegrationMode::Raywise`]; all free cells then all occupied cells
    /// in [`IntegrationMode::DedupPerScan`]).
    ///
    /// # Errors
    ///
    /// Returns [`KeyError`] only when the *scan origin* cannot be addressed;
    /// out-of-map endpoints are skipped and counted in
    /// [`IntegrationStats::discarded_points`].
    pub fn integrate<F>(&mut self, scan: &Scan, apply: F) -> Result<IntegrationStats, KeyError>
    where
        F: FnMut(VoxelUpdate),
    {
        self.integrate_points(scan.origin, scan.cloud.points(), apply)
    }

    /// The borrow-based form of [`Self::integrate`]: casts one ray from
    /// `origin` to every point of `points`, with no `Scan`/`PointCloud`
    /// wrapper required. This is what the persistent
    /// [`ScanPipeline`](crate::ScanPipeline) shards call, so a caller that
    /// already holds a point slice integrates with zero per-call cloud
    /// copies.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::integrate`].
    pub fn integrate_points<F>(
        &mut self,
        origin: Point3,
        points: &[Point3],
        mut apply: F,
    ) -> Result<IntegrationStats, KeyError>
    where
        F: FnMut(VoxelUpdate),
    {
        // Validate the origin once up front: a bad origin poisons all rays.
        let key_origin = self.conv.coord_to_key(origin)?;

        let mut stats = IntegrationStats::default();
        match (self.mode, self.front_end) {
            (IntegrationMode::Raywise, FrontEnd::Scalar) => {
                self.integrate_raywise(origin, points, &mut stats, &mut apply)
            }
            (IntegrationMode::Raywise, FrontEnd::Packet) => {
                self.integrate_raywise_packet(origin, key_origin, points, &mut stats, &mut apply)
            }
            (IntegrationMode::DedupPerScan, FrontEnd::Scalar) => {
                self.integrate_dedup(origin, points, &mut stats, &mut apply)
            }
            (IntegrationMode::DedupPerScan, FrontEnd::Packet) => {
                self.integrate_dedup_packet(origin, key_origin, points, &mut stats, &mut apply)
            }
        }
        Ok(stats)
    }

    /// Integrates one scan, appending every voxel update to `out` — the
    /// emission form consumed by the octree's batch engine
    /// (`apply_update_batch`).
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::integrate`].
    pub fn integrate_into(
        &mut self,
        scan: &Scan,
        out: &mut Vec<VoxelUpdate>,
    ) -> Result<IntegrationStats, KeyError> {
        self.integrate(scan, |u| out.push(u))
    }

    /// [`Self::integrate_points`] appending every update to `out`.
    ///
    /// # Errors
    ///
    /// Same contract as [`Self::integrate`].
    pub fn integrate_points_into(
        &mut self,
        origin: Point3,
        points: &[Point3],
        out: &mut Vec<VoxelUpdate>,
    ) -> Result<IntegrationStats, KeyError> {
        self.integrate_points(origin, points, |u| out.push(u))
    }

    /// Computes the effective endpoint of a ray under the range limit.
    ///
    /// Returns `(endpoint, truncated)`.
    fn effective_endpoint(&self, origin: Point3, point: Point3) -> (Point3, bool) {
        effective_endpoint(self.max_range, origin, point)
    }

    fn integrate_raywise<F>(
        &mut self,
        origin: Point3,
        points: &[Point3],
        stats: &mut IntegrationStats,
        apply: &mut F,
    ) where
        F: FnMut(VoxelUpdate),
    {
        for &p in points {
            let (end, truncated) = self.effective_endpoint(origin, p);
            let Ok(end_key) = self.conv.coord_to_key(end) else {
                stats.discarded_points += 1;
                continue;
            };
            let steps = match compute_ray_keys(&self.conv, origin, end, &mut self.keyray) {
                Ok(s) => s,
                Err(_) => {
                    stats.discarded_points += 1;
                    continue;
                }
            };
            stats.rays += 1;
            stats.dda_steps += steps;
            for &k in &self.keyray {
                apply(VoxelUpdate { key: k, hit: false });
            }
            stats.free_updates += self.keyray.len() as u64;
            if truncated {
                stats.truncated_rays += 1;
            } else {
                apply(VoxelUpdate {
                    key: end_key,
                    hit: true,
                });
                stats.occupied_updates += 1;
            }
        }
    }

    /// [`FrontEnd::Packet`] form of [`Self::integrate_raywise`]: casts
    /// rays in groups of [`PACKET_LANES`], then drains lanes in ray order
    /// so the emitted stream is byte-identical to the scalar front end's.
    fn integrate_raywise_packet<F>(
        &mut self,
        origin: Point3,
        key_origin: VoxelKey,
        points: &[Point3],
        stats: &mut IntegrationStats,
        apply: &mut F,
    ) where
        F: FnMut(VoxelUpdate),
    {
        for chunk in points.chunks(PACKET_LANES) {
            self.packet
                .cast(&self.conv, origin, key_origin, chunk, self.max_range);
            for l in 0..chunk.len() {
                let hit = match self.packet.outcome(l) {
                    LaneOutcome::Discarded => {
                        stats.discarded_points += 1;
                        continue;
                    }
                    LaneOutcome::Truncated => None,
                    LaneOutcome::Hit(end_key) => Some(end_key),
                };
                stats.rays += 1;
                stats.dda_steps += self.packet.steps(l);
                let keys = self.packet.keys(l);
                for &k in keys {
                    apply(VoxelUpdate { key: k, hit: false });
                }
                stats.free_updates += keys.len() as u64;
                match hit {
                    Some(end_key) => {
                        apply(VoxelUpdate {
                            key: end_key,
                            hit: true,
                        });
                        stats.occupied_updates += 1;
                    }
                    None => stats.truncated_rays += 1,
                }
            }
        }
    }

    /// [`FrontEnd::Packet`] form of [`Self::integrate_dedup`]: the cast
    /// runs through packets, the per-scan key sets and occupied-wins
    /// emission are unchanged.
    fn integrate_dedup_packet<F>(
        &mut self,
        origin: Point3,
        key_origin: VoxelKey,
        points: &[Point3],
        stats: &mut IntegrationStats,
        apply: &mut F,
    ) where
        F: FnMut(VoxelUpdate),
    {
        self.free_set.clear();
        self.occupied_set.clear();
        self.free_set.reserve(self.free_high_water);
        self.occupied_set.reserve(self.occupied_high_water);

        for chunk in points.chunks(PACKET_LANES) {
            self.packet
                .cast(&self.conv, origin, key_origin, chunk, self.max_range);
            for l in 0..chunk.len() {
                let hit = match self.packet.outcome(l) {
                    LaneOutcome::Discarded => {
                        stats.discarded_points += 1;
                        continue;
                    }
                    LaneOutcome::Truncated => None,
                    LaneOutcome::Hit(end_key) => Some(end_key),
                };
                stats.rays += 1;
                stats.dda_steps += self.packet.steps(l);
                for &k in self.packet.keys(l) {
                    self.free_set.insert(k);
                }
                match hit {
                    Some(end_key) => {
                        self.occupied_set.insert(end_key);
                    }
                    None => stats.truncated_rays += 1,
                }
            }
        }

        // Occupied wins over free within a scan (OctoMap semantics).
        for &k in &self.free_set {
            if !self.occupied_set.contains(&k) {
                apply(VoxelUpdate { key: k, hit: false });
                stats.free_updates += 1;
            }
        }
        for &k in &self.occupied_set {
            apply(VoxelUpdate { key: k, hit: true });
            stats.occupied_updates += 1;
        }
        self.free_high_water = self.free_high_water.max(self.free_set.len());
        self.occupied_high_water = self.occupied_high_water.max(self.occupied_set.len());
    }

    fn integrate_dedup<F>(
        &mut self,
        origin: Point3,
        points: &[Point3],
        stats: &mut IntegrationStats,
        apply: &mut F,
    ) where
        F: FnMut(VoxelUpdate),
    {
        self.free_set.clear();
        self.occupied_set.clear();
        // Steady-state scans are all about the same size: reserving the
        // previous high-water mark up front removes the incremental
        // rehash growth from the per-scan path (clearing keeps capacity,
        // so this only costs anything after a rebuild or an unusually
        // large scan).
        self.free_set.reserve(self.free_high_water);
        self.occupied_set.reserve(self.occupied_high_water);

        for &p in points {
            let (end, truncated) = self.effective_endpoint(origin, p);
            let Ok(end_key) = self.conv.coord_to_key(end) else {
                stats.discarded_points += 1;
                continue;
            };
            let steps = match compute_ray_keys(&self.conv, origin, end, &mut self.keyray) {
                Ok(s) => s,
                Err(_) => {
                    stats.discarded_points += 1;
                    continue;
                }
            };
            stats.rays += 1;
            stats.dda_steps += steps;
            for &k in &self.keyray {
                self.free_set.insert(k);
            }
            if truncated {
                stats.truncated_rays += 1;
            } else {
                self.occupied_set.insert(end_key);
            }
        }

        // Occupied wins over free within a scan (OctoMap semantics).
        for &k in &self.free_set {
            if !self.occupied_set.contains(&k) {
                apply(VoxelUpdate { key: k, hit: false });
                stats.free_updates += 1;
            }
        }
        for &k in &self.occupied_set {
            apply(VoxelUpdate { key: k, hit: true });
            stats.occupied_updates += 1;
        }
        self.free_high_water = self.free_high_water.max(self.free_set.len());
        self.occupied_high_water = self.occupied_high_water.max(self.occupied_set.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omu_geometry::PointCloud;

    fn integrator(mode: IntegrationMode, max_range: Option<f64>) -> ScanIntegrator {
        ScanIntegrator::new(KeyConverter::new(0.1).unwrap(), max_range, mode)
    }

    fn scan(points: &[Point3]) -> Scan {
        Scan::new(Point3::ZERO, points.iter().copied().collect::<PointCloud>())
    }

    #[test]
    fn raywise_counts_duplicates() {
        // Two identical rays: raywise emits every cell twice.
        let s = scan(&[Point3::new(0.5, 0.0, 0.0), Point3::new(0.5, 0.0, 0.0)]);
        let mut it = integrator(IntegrationMode::Raywise, None);
        let mut updates = Vec::new();
        let stats = it.integrate(&s, |u| updates.push(u)).unwrap();
        assert_eq!(stats.rays, 2);
        assert_eq!(stats.free_updates, 10);
        assert_eq!(stats.occupied_updates, 2);
        assert_eq!(stats.total_updates(), 12);
        assert_eq!(updates.len(), 12);
    }

    #[test]
    fn dedup_collapses_duplicates() {
        let s = scan(&[Point3::new(0.5, 0.0, 0.0), Point3::new(0.5, 0.0, 0.0)]);
        let mut it = integrator(IntegrationMode::DedupPerScan, None);
        let mut updates = Vec::new();
        let stats = it.integrate(&s, |u| updates.push(u)).unwrap();
        assert_eq!(stats.rays, 2);
        assert_eq!(stats.free_updates, 5);
        assert_eq!(stats.occupied_updates, 1);
        assert_eq!(updates.len(), 6);
    }

    #[test]
    fn dedup_occupied_wins_over_free() {
        // First ray ends where the second ray passes through.
        let s = scan(&[Point3::new(0.35, 0.0, 0.0), Point3::new(0.95, 0.0, 0.0)]);
        let mut it = integrator(IntegrationMode::DedupPerScan, None);
        let mut updates = Vec::new();
        it.integrate(&s, |u| updates.push(u)).unwrap();
        let end1 = it
            .converter()
            .coord_to_key(Point3::new(0.35, 0.0, 0.0))
            .unwrap();
        let as_free = updates.iter().any(|u| u.key == end1 && !u.hit);
        let as_occ = updates.iter().any(|u| u.key == end1 && u.hit);
        assert!(!as_free, "endpoint must not also be updated as free");
        assert!(as_occ);
    }

    #[test]
    fn max_range_truncates_rays() {
        let s = scan(&[Point3::new(2.0, 0.0, 0.0)]);
        let mut it = integrator(IntegrationMode::Raywise, Some(1.0));
        let mut occupied = 0;
        let mut max_x_key = 0u16;
        let stats = it
            .integrate(&s, |u| {
                if u.hit {
                    occupied += 1;
                }
                max_x_key = max_x_key.max(u.key.x);
            })
            .unwrap();
        assert_eq!(occupied, 0, "truncated ray marks no endpoint");
        assert_eq!(stats.truncated_rays, 1);
        // No cell beyond 1.0 m (key 32768 + 10).
        assert!(max_x_key <= 32768 + 10);
    }

    #[test]
    fn in_range_ray_not_truncated() {
        let s = scan(&[Point3::new(0.5, 0.0, 0.0)]);
        let mut it = integrator(IntegrationMode::Raywise, Some(1.0));
        let stats = it.integrate(&s, |_| {}).unwrap();
        assert_eq!(stats.truncated_rays, 0);
        assert_eq!(stats.occupied_updates, 1);
    }

    #[test]
    fn out_of_map_points_skipped_and_counted() {
        let far = KeyConverter::new(0.1).unwrap().map_half_extent() + 100.0;
        let s = scan(&[Point3::new(far, 0.0, 0.0), Point3::new(0.5, 0.0, 0.0)]);
        let mut it = integrator(IntegrationMode::Raywise, None);
        let stats = it.integrate(&s, |_| {}).unwrap();
        assert_eq!(stats.discarded_points, 1);
        assert_eq!(stats.rays, 1);
    }

    #[test]
    fn bad_origin_is_an_error() {
        let far = KeyConverter::new(0.1).unwrap().map_half_extent() + 100.0;
        let s = Scan::new(
            Point3::new(far, 0.0, 0.0),
            [Point3::ZERO].into_iter().collect::<PointCloud>(),
        );
        let mut it = integrator(IntegrationMode::Raywise, None);
        assert!(it.integrate(&s, |_| {}).is_err());
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = IntegrationStats {
            rays: 1,
            dda_steps: 2,
            free_updates: 3,
            ..Default::default()
        };
        let b = IntegrationStats {
            rays: 10,
            occupied_updates: 5,
            truncated_rays: 1,
            discarded_points: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.rays, 11);
        assert_eq!(a.free_updates, 3);
        assert_eq!(a.occupied_updates, 5);
        assert_eq!(a.total_updates(), 8);
    }

    #[test]
    fn dedup_sets_track_high_water_and_keep_capacity() {
        let mut it = integrator(IntegrationMode::DedupPerScan, None);
        let s = scan(&[Point3::new(1.0, 0.0, 0.0), Point3::new(0.0, 1.0, 0.0)]);
        it.integrate(&s, |_| {}).unwrap();
        assert!(it.free_high_water > 0, "free cells were deduped");
        assert!(it.occupied_high_water > 0, "endpoints were deduped");
        let cap = it.free_set.capacity();
        // Subsequent same-sized scans never shrink or regrow the sets.
        it.integrate(&s, |_| {}).unwrap();
        assert_eq!(it.free_set.capacity(), cap);
        assert_eq!(it.free_high_water, it.free_set.len());
    }

    #[test]
    fn empty_scan_is_a_noop() {
        let mut it = integrator(IntegrationMode::DedupPerScan, None);
        let stats = it
            .integrate(&scan(&[]), |_| panic!("no updates expected"))
            .unwrap();
        assert_eq!(stats, IntegrationStats::default());
    }
}
