//! Dataset execution: software baseline + accelerator model, with
//! extrapolation from scaled runs.
//!
//! Both halves honour the shared `--engine` flag and run through the
//! `omu::map` facade: each is an [`OccupancyMap`] whose backend differs
//! ([`Backend::Software`] vs [`Backend::Accelerator`]) while the engine
//! dispatch happens inside the shared `MapBackend` trait — no per-engine
//! match arms here. The CPU cost models price individual tree operations
//! (calibrated against stock scalar OctoMap), so under the batched
//! engines the modeled CPU time reflects how much tree work batching
//! *eliminated*; pass `--engine scalar` for the paper's original
//! baseline shape.

use omu_core::{summarize, AccelRunSummary, OmuConfig};
use omu_cpumodel::{frame_equivalent_fps, CpuCostModel, RuntimeBreakdown};
use omu_datasets::{Dataset, DatasetKind};
use omu_map::{Backend, Engine, MapBuilder, MapError};
use omu_octree::{MemoryStats, OpCounters};
use omu_raycast::{IntegrationMode, IntegrationStats};

use crate::args::RunOptions;

/// Default scan-count scales keeping `repro_all` in the minutes range.
/// Override with `--scale` / `--full` / `OMU_SCALE` for full-fidelity
/// runs.
pub fn default_scale(kind: DatasetKind) -> f64 {
    match kind {
        DatasetKind::Fr079Corridor => 0.35,
        DatasetKind::FreiburgCampus => 0.1,
        DatasetKind::NewCollege => 0.02,
    }
}

/// Everything measured for one dataset: the instrumented software
/// baseline (feeding the CPU cost models) and the accelerator run.
#[derive(Debug, Clone)]
pub struct DatasetRun {
    /// Which dataset.
    pub kind: DatasetKind,
    /// Scans actually executed.
    pub scans_run: usize,
    /// Extrapolation factor to the full dataset (full scans / run scans).
    pub extrapolation: f64,
    /// Points integrated in the run.
    pub points: u64,
    /// Integration statistics (rays, DDA steps, voxel updates).
    pub integration: IntegrationStats,
    /// Baseline octree operation counters (early-abort off, raywise).
    pub counters: OpCounters,
    /// Baseline tree node count at end of run.
    pub tree_nodes: usize,
    /// Baseline tree memory footprint.
    pub tree_mem: MemoryStats,
    /// Measured wall-clock seconds of the baseline software run on the
    /// host — the empirical anchor printed beside the modeled per-op
    /// extrapolations, so calibration drift between the op-count model
    /// and real batched execution is visible in every report.
    pub baseline_wall_s: f64,
    /// Accelerator run summary.
    pub accel: AccelRunSummary,
    /// Rows per bank the accelerator ended up needing (4096 = paper
    /// geometry; larger values indicate a capacity retry).
    pub accel_rows_per_bank: usize,
}

impl DatasetRun {
    /// Modeled i9-9940X runtime breakdown for the executed scans.
    pub fn i9(&self) -> RuntimeBreakdown {
        CpuCostModel::i9_9940x().runtime(&self.counters)
    }

    /// Modeled Cortex-A57 runtime breakdown for the executed scans.
    pub fn a57(&self) -> RuntimeBreakdown {
        CpuCostModel::cortex_a57().runtime(&self.counters)
    }

    /// Full-dataset i9 latency estimate in seconds.
    pub fn i9_latency_full(&self) -> f64 {
        self.i9().total_s() * self.extrapolation
    }

    /// Full-dataset A57 latency estimate in seconds.
    pub fn a57_latency_full(&self) -> f64 {
        self.a57().total_s() * self.extrapolation
    }

    /// Full-dataset OMU latency estimate in seconds.
    pub fn omu_latency_full(&self) -> f64 {
        self.accel.latency_s * self.extrapolation
    }

    /// Full-dataset point count estimate.
    pub fn points_full(&self) -> f64 {
        self.points as f64 * self.extrapolation
    }

    /// Full-dataset voxel-update estimate.
    pub fn updates_full(&self) -> f64 {
        self.integration.total_updates() as f64 * self.extrapolation
    }

    /// Frame-equivalent FPS on the i9 (updates-based; see
    /// `omu_cpumodel::UPDATES_PER_FRAME`).
    pub fn i9_fps(&self) -> f64 {
        frame_equivalent_fps(self.integration.total_updates(), self.i9().total_s())
    }

    /// Frame-equivalent FPS on the A57.
    pub fn a57_fps(&self) -> f64 {
        frame_equivalent_fps(self.integration.total_updates(), self.a57().total_s())
    }

    /// Frame-equivalent FPS on the OMU accelerator.
    pub fn omu_fps(&self) -> f64 {
        frame_equivalent_fps(self.integration.total_updates(), self.accel.latency_s)
    }

    /// Full-dataset A57 energy estimate in joules.
    pub fn a57_energy_full(&self) -> f64 {
        CpuCostModel::cortex_a57().energy_j(&self.counters) * self.extrapolation
    }

    /// Full-dataset OMU energy estimate in joules.
    pub fn omu_energy_full(&self) -> f64 {
        self.accel.energy_j * self.extrapolation
    }
}

/// Runs one dataset through baseline and accelerator with the default
/// engine ([`Engine::Batched`]).
///
/// # Panics
///
/// Same contract as [`run_dataset_with_engine`].
pub fn run_dataset(kind: DatasetKind, scale: f64) -> DatasetRun {
    run_dataset_with_engine(kind, scale, Engine::Batched)
}

/// Runs one dataset through baseline and accelerator, both driven by
/// `engine`.
///
/// The accelerator starts at the paper's 4096 rows/bank and retries with
/// larger memories when a workload (at fine resolutions or large scales)
/// overflows — the retry is reported in
/// [`DatasetRun::accel_rows_per_bank`].
///
/// # Panics
///
/// Panics if the dataset cannot be integrated at all (e.g. scan origins
/// outside the map, which the generators never produce).
pub fn run_dataset_with_engine(kind: DatasetKind, scale: f64, engine: Engine) -> DatasetRun {
    let dataset = kind.build_scaled(scale);
    let spec = *dataset.spec();
    let full_scans = kind.spec().scans;

    // Baseline and accelerator runs are independent; dispatch both on the
    // worker pool (the workspace confines raw `thread::scope` to
    // `crates/pool`). A task panic is resumed on this thread by `scope`,
    // preserving the documented panic contract.
    let pool = omu_pool::WorkerPool::new(2);
    let mut base_slot = None;
    let mut acc_slot = None;
    pool.scope(|s| {
        let dataset_ref = &dataset;
        s.spawn_on(0, || base_slot = Some(run_baseline(dataset_ref, engine)));
        s.spawn_on(1, || acc_slot = Some(run_accel(dataset_ref, engine)));
    });
    let (baseline, accel) = (
        base_slot.expect("baseline task completed"),
        acc_slot.expect("accelerator task completed"),
    );
    let (integration, counters, tree_nodes, tree_mem, points, baseline_wall_s) = baseline;
    let (accel_summary, rows_per_bank) = accel;

    DatasetRun {
        kind,
        scans_run: spec.scans,
        extrapolation: full_scans as f64 / spec.scans as f64,
        points,
        integration,
        counters,
        tree_nodes,
        tree_mem,
        baseline_wall_s,
        accel: accel_summary,
        accel_rows_per_bank: rows_per_bank,
    }
}

fn run_baseline(
    dataset: &Dataset,
    engine: Engine,
) -> (IntegrationStats, OpCounters, usize, MemoryStats, u64, f64) {
    let spec = dataset.spec();
    // One facade map, engine dispatch inside `MapBackend`. Stock OctoMap
    // behavior is preserved on the scalar engine: the early-abort
    // pre-search skips updates to already-saturated voxels (the
    // accelerator, in contrast, executes every update in full — its
    // per-update cost is constant anyway). The batched paths skip the
    // pre-search by construction.
    let mut map = MapBuilder::new(spec.resolution)
        .engine(engine)
        .integration_mode(IntegrationMode::Raywise)
        .max_range(Some(spec.max_range))
        .build()
        .expect("valid resolution");

    let mut totals = IntegrationStats::default();
    let mut points = 0u64;
    let wall_start = std::time::Instant::now();
    for scan in dataset.scans() {
        points += scan.len() as u64;
        let stats = map
            .insert(&scan)
            .expect("generated scans stay inside the map");
        totals.merge(&stats);
    }
    let wall_s = wall_start.elapsed().as_secs_f64();
    let counters = map.counters().expect("software backend tracks counters");
    let tree = map.tree().expect("baseline runs the software backend");
    (
        totals,
        counters,
        tree.num_nodes(),
        tree.memory_stats(),
        points,
        wall_s,
    )
}

fn run_accel(dataset: &Dataset, engine: Engine) -> (AccelRunSummary, usize) {
    let spec = dataset.spec();
    // The paper's geometry first; grow on capacity overflow.
    'rows: for rows_per_bank in [4096usize, 16384, 65536] {
        let config = OmuConfig::builder()
            .rows_per_bank(rows_per_bank)
            .build()
            .expect("valid config");
        let mut map = MapBuilder::new(spec.resolution)
            .engine(engine)
            .integration_mode(IntegrationMode::Raywise)
            .max_range(Some(spec.max_range))
            .backend(Backend::Accelerator(config))
            .build()
            .expect("valid config");
        for scan in dataset.scans() {
            match map.insert(&scan) {
                Ok(_) => {}
                Err(MapError::Capacity(_)) => {
                    eprintln!(
                        "  [{}] T-Mem overflow at {} rows/bank, retrying larger",
                        dataset.spec().kind.name(),
                        rows_per_bank
                    );
                    continue 'rows;
                }
                Err(e) => panic!("accelerator run failed: {e}"),
            }
        }
        let omu = map.accelerator().expect("accelerator backend");
        return (summarize(omu), rows_per_bank);
    }
    panic!("accelerator out of capacity even at 65536 rows/bank");
}

/// Runs all three datasets (in parallel threads), honouring the scale
/// and engine overrides.
pub fn run_all(opts: RunOptions) -> Vec<DatasetRun> {
    let pool = omu_pool::WorkerPool::new(DatasetKind::ALL.len());
    let mut slots: Vec<Option<DatasetRun>> = DatasetKind::ALL.iter().map(|_| None).collect();
    pool.scope(|s| {
        for (slot, kind) in slots.iter_mut().zip(DatasetKind::ALL) {
            let scale = opts.scale.unwrap_or_else(|| default_scale(kind));
            s.spawn(move || {
                eprintln!(
                    "running {} at scale {scale} ({} engine) ...",
                    kind.name(),
                    opts.engine
                );
                let run = run_dataset_with_engine(kind, scale, opts.engine);
                eprintln!(
                    "done {}: {} scans, {:.1} M updates measured",
                    kind.name(),
                    run.scans_run,
                    run.integration.total_updates() as f64 / 1e6
                );
                *slot = Some(run);
            });
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("dataset task completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_corridor_scalar_run_matches_paper_shape() {
        // The paper's comparisons are against stock scalar OctoMap, so the
        // paper-shaped orderings are asserted on the scalar engine.
        let run = run_dataset_with_engine(DatasetKind::Fr079Corridor, 0.01, Engine::Scalar); // 1 scan
        assert_eq!(run.scans_run, 1);
        assert!(run.extrapolation > 60.0);
        assert!(run.points > 50_000, "one dense scan");
        assert!(
            run.integration.total_updates() > run.points,
            "free cells dominate"
        );
        assert!(run.tree_nodes > 1000);
        // The CPU models see the same workload the accelerator ran.
        assert_eq!(run.accel.voxel_updates, run.integration.total_updates());
        assert!(run.i9().total_s() > 0.0);
        assert!(run.a57().total_s() > run.i9().total_s());
        assert!(run.accel.latency_s > 0.0);
        // Accelerator beats both CPUs.
        assert!(run.accel.latency_s < run.i9().total_s());
        // FPS ordering matches the paper.
        assert!(run.omu_fps() > run.i9_fps());
        assert!(run.i9_fps() > run.a57_fps());
    }

    #[test]
    fn tiny_corridor_batched_run_is_consistent_and_cheaper() {
        let scalar = run_dataset_with_engine(DatasetKind::Fr079Corridor, 0.01, Engine::Scalar);
        let batched = run_dataset(DatasetKind::Fr079Corridor, 0.01); // default engine
        assert_eq!(batched.scans_run, 1);
        // Same workload shape regardless of engine.
        assert_eq!(
            batched.integration.total_updates(),
            scalar.integration.total_updates()
        );
        assert_eq!(
            batched.accel.voxel_updates,
            batched.integration.total_updates()
        );
        assert_eq!(batched.tree_nodes, scalar.tree_nodes, "bit-identical maps");
        // Batching eliminates tree maintenance: fewer modeled CPU seconds
        // and fewer accelerator cycles (burst discount) than scalar.
        assert!(batched.i9().total_s() < scalar.i9().total_s());
        assert!(batched.accel.latency_s < scalar.accel.latency_s);
        assert!(batched.a57().total_s() > batched.i9().total_s());
        assert!(batched.omu_fps() > batched.a57_fps());
    }

    #[test]
    fn default_scales_are_sane() {
        for kind in DatasetKind::ALL {
            let s = default_scale(kind);
            assert!(s > 0.0 && s <= 1.0);
        }
    }
}
