//! Printers for every table and figure of the paper, consuming
//! [`DatasetRun`]s.
//!
//! Each printer emits the paper's published row next to the measured
//! (extrapolated) row so the reproduction quality is visible at a glance;
//! EXPERIMENTS.md archives the output.

use omu_cpumodel::RuntimeBreakdown;
use omu_datasets::DatasetKind;

use crate::runner::DatasetRun;
use crate::table::{fmt_f, fmt_x, TextTable};

/// Table I: qualitative comparison of mapping accelerators (static).
pub fn print_table1() {
    println!("Table I — comparison of mapping accelerators");
    let mut t = TextTable::new(["", "Dadu-p", "Dadu-cd", "Navion", "CNN-SLAM", "This work"]);
    t.row(["Dense Map", "yes", "yes", "no", "no", "yes"]);
    t.row(["Probabilistic", "no", "no", "no", "no", "yes"]);
    t.row(["Real-time", "no", "no", "yes", "yes", "yes"]);
    println!("{t}");
}

/// Table II: details of the 3D scan dataset workloads, paper vs measured.
pub fn print_table2(runs: &[DatasetRun]) {
    println!("Table II — OctoMap 3D scan dataset details (paper / measured*)");
    let mut t = TextTable::new([
        "metric",
        runs[0].kind.name(),
        runs[1].kind.name(),
        runs[2].kind.name(),
    ]);
    let paper: Vec<_> = runs.iter().map(|r| r.kind.paper()).collect();
    t.row([
        "Scan Number".to_owned(),
        format!("{} / {}", paper[0].scan_number, runs[0].scans_run),
        format!("{} / {}", paper[1].scan_number, runs[1].scans_run),
        format!("{} / {}", paper[2].scan_number, runs[2].scans_run),
    ]);
    let ppscan = |r: &DatasetRun| fmt_f(r.points as f64 / r.scans_run as f64 / 1e3) + "k";
    t.row([
        "Average Points / Scan".to_owned(),
        format!(
            "{}k / {}",
            fmt_f(paper[0].avg_points_per_scan / 1e3),
            ppscan(&runs[0])
        ),
        format!(
            "{}k / {}",
            fmt_f(paper[1].avg_points_per_scan / 1e3),
            ppscan(&runs[1])
        ),
        format!(
            "{}k / {}",
            fmt_f(paper[2].avg_points_per_scan / 1e3),
            ppscan(&runs[2])
        ),
    ]);
    let f = |p: f64, m: f64| format!("{} / {}", fmt_f(p), fmt_f(m));
    t.row([
        "Point Cloud (x10^6)".to_owned(),
        f(paper[0].point_cloud_millions, runs[0].points_full() / 1e6),
        f(paper[1].point_cloud_millions, runs[1].points_full() / 1e6),
        f(paper[2].point_cloud_millions, runs[2].points_full() / 1e6),
    ]);
    t.row([
        "Voxel Update (x10^6)".to_owned(),
        f(paper[0].voxel_update_millions, runs[0].updates_full() / 1e6),
        f(paper[1].voxel_update_millions, runs[1].updates_full() / 1e6),
        f(paper[2].voxel_update_millions, runs[2].updates_full() / 1e6),
    ]);
    t.row([
        "i9 CPU Latency (s)".to_owned(),
        f(paper[0].i9_latency_s, runs[0].i9_latency_full()),
        f(paper[1].i9_latency_s, runs[1].i9_latency_full()),
        f(paper[2].i9_latency_s, runs[2].i9_latency_full()),
    ]);
    t.row([
        "CPU Throughput (FPS)".to_owned(),
        f(paper[0].i9_fps, runs[0].i9_fps()),
        f(paper[1].i9_fps, runs[1].i9_fps()),
        f(paper[2].i9_fps, runs[2].i9_fps()),
    ]);
    println!("{t}");
    println!("* measured = this reproduction at the run scale, extrapolated to full scans\n");
}

/// Fig. 3: CPU runtime breakdown per dataset.
pub fn print_fig3(runs: &[DatasetRun]) {
    println!("Fig. 3 — runtime breakdown in OctoMap workloads (Intel i9, paper / measured)");
    let mut t = TextTable::new(["category", "paper", "measured", "dataset"]);
    for r in runs {
        let shares = r.i9().shares();
        let paper = r.kind.paper().fig3_shares;
        for (i, name) in RuntimeBreakdown::CATEGORY_NAMES.iter().enumerate() {
            t.row([
                (*name).to_owned(),
                format!("{:>4.0} %", paper[i] * 100.0),
                format!("{:>4.0} %", shares[i] * 100.0),
                r.kind.name().to_owned(),
            ]);
        }
    }
    println!("{t}");
    // Calibration anchor: the modeled total is a per-op extrapolation
    // (calibrated against stock scalar OctoMap); the measured wall-clock
    // is what the batched software baseline actually took on this host.
    println!("modeled-vs-measured (run scale, this host):");
    for r in runs {
        let modeled = r.i9().total_s();
        println!(
            "  {:<12} modeled i9 {:>8.3} s   measured wall {:>8.3} s   ratio {:>5.2}x",
            r.kind.name(),
            modeled,
            r.baseline_wall_s,
            if r.baseline_wall_s > 0.0 {
                modeled / r.baseline_wall_s
            } else {
                f64::NAN
            }
        );
    }
    println!();
}

/// Table III: latency comparison with speedups.
pub fn print_table3(runs: &[DatasetRun]) {
    println!("Table III — latency performance (s) comparison (paper / measured)");
    let mut t = TextTable::new([
        "platform",
        runs[0].kind.name(),
        runs[1].kind.name(),
        runs[2].kind.name(),
    ]);
    let f = |p: f64, m: f64| format!("{} / {}", fmt_f(p), fmt_f(m));
    t.row([
        "Intel i9 CPU".to_owned(),
        f(runs[0].kind.paper().i9_latency_s, runs[0].i9_latency_full()),
        f(runs[1].kind.paper().i9_latency_s, runs[1].i9_latency_full()),
        f(runs[2].kind.paper().i9_latency_s, runs[2].i9_latency_full()),
    ]);
    t.row([
        "Arm A57 CPU".to_owned(),
        f(
            runs[0].kind.paper().a57_latency_s,
            runs[0].a57_latency_full(),
        ),
        f(
            runs[1].kind.paper().a57_latency_s,
            runs[1].a57_latency_full(),
        ),
        f(
            runs[2].kind.paper().a57_latency_s,
            runs[2].a57_latency_full(),
        ),
    ]);
    t.row([
        "OMU accelerator".to_owned(),
        f(
            runs[0].kind.paper().omu_latency_s,
            runs[0].omu_latency_full(),
        ),
        f(
            runs[1].kind.paper().omu_latency_s,
            runs[1].omu_latency_full(),
        ),
        f(
            runs[2].kind.paper().omu_latency_s,
            runs[2].omu_latency_full(),
        ),
    ]);
    let speed = |p: f64, cpu: f64, omu: f64| format!("{} / {}", fmt_x(p), fmt_x(cpu / omu));
    t.row([
        "Speedup over i9".to_owned(),
        speed(12.8, runs[0].i9_latency_full(), runs[0].omu_latency_full()),
        speed(12.3, runs[1].i9_latency_full(), runs[1].omu_latency_full()),
        speed(11.9, runs[2].i9_latency_full(), runs[2].omu_latency_full()),
    ]);
    t.row([
        "Speedup over A57".to_owned(),
        speed(62.4, runs[0].a57_latency_full(), runs[0].omu_latency_full()),
        speed(62.2, runs[1].a57_latency_full(), runs[1].omu_latency_full()),
        speed(61.7, runs[2].a57_latency_full(), runs[2].omu_latency_full()),
    ]);
    println!("{t}");
}

/// Table IV: throughput comparison.
pub fn print_table4(runs: &[DatasetRun]) {
    println!("Table IV — throughput performance (FPS) comparison (paper / measured)");
    let mut t = TextTable::new([
        "platform",
        runs[0].kind.name(),
        runs[1].kind.name(),
        runs[2].kind.name(),
    ]);
    let f = |p: f64, m: f64| format!("{} / {}", fmt_f(p), fmt_f(m));
    t.row([
        "Intel i9 CPU".to_owned(),
        f(runs[0].kind.paper().i9_fps, runs[0].i9_fps()),
        f(runs[1].kind.paper().i9_fps, runs[1].i9_fps()),
        f(runs[2].kind.paper().i9_fps, runs[2].i9_fps()),
    ]);
    t.row([
        "Arm A57 CPU".to_owned(),
        f(runs[0].kind.paper().a57_fps, runs[0].a57_fps()),
        f(runs[1].kind.paper().a57_fps, runs[1].a57_fps()),
        f(runs[2].kind.paper().a57_fps, runs[2].a57_fps()),
    ]);
    t.row([
        "OMU accelerator".to_owned(),
        f(runs[0].kind.paper().omu_fps, runs[0].omu_fps()),
        f(runs[1].kind.paper().omu_fps, runs[1].omu_fps()),
        f(runs[2].kind.paper().omu_fps, runs[2].omu_fps()),
    ]);
    println!("{t}");
    println!("real-time requirement: 30 FPS\n");
}

/// Table V: energy comparison.
pub fn print_table5(runs: &[DatasetRun]) {
    println!("Table V — energy consumption (J) comparison (paper / measured)");
    let mut t = TextTable::new([
        "platform",
        runs[0].kind.name(),
        runs[1].kind.name(),
        runs[2].kind.name(),
    ]);
    let f = |p: f64, m: f64| format!("{} / {}", fmt_f(p), fmt_f(m));
    t.row([
        "Arm A57 CPU".to_owned(),
        f(runs[0].kind.paper().a57_energy_j, runs[0].a57_energy_full()),
        f(runs[1].kind.paper().a57_energy_j, runs[1].a57_energy_full()),
        f(runs[2].kind.paper().a57_energy_j, runs[2].a57_energy_full()),
    ]);
    t.row([
        "OMU accelerator".to_owned(),
        f(runs[0].kind.paper().omu_energy_j, runs[0].omu_energy_full()),
        f(runs[1].kind.paper().omu_energy_j, runs[1].omu_energy_full()),
        f(runs[2].kind.paper().omu_energy_j, runs[2].omu_energy_full()),
    ]);
    let benefit = |p: f64, a: f64, o: f64| format!("{} / {}", fmt_x(p), fmt_x(a / o));
    t.row([
        "Energy benefit".to_owned(),
        benefit(708.8, runs[0].a57_energy_full(), runs[0].omu_energy_full()),
        benefit(668.1, runs[1].a57_energy_full(), runs[1].omu_energy_full()),
        benefit(703.6, runs[2].a57_energy_full(), runs[2].omu_energy_full()),
    ]);
    println!("{t}");
}

/// Fig. 9: FR-079 latency and throughput bars.
pub fn print_fig9(runs: &[DatasetRun]) {
    let r = runs
        .iter()
        .find(|r| r.kind == DatasetKind::Fr079Corridor)
        .expect("corridor run present");
    println!("Fig. 9 — latency and throughput for FR-079 corridor (measured)");
    println!("(a) latency (s)");
    bar("Arm A57 CPU", r.a57_latency_full(), 90.0);
    bar("Intel i9 CPU", r.i9_latency_full(), 90.0);
    bar("OMU accelerator", r.omu_latency_full(), 90.0);
    println!(
        "    speedup: {} over i9 (paper 12.8x), {} over A57 (paper 62.4x)",
        fmt_x(r.i9_latency_full() / r.omu_latency_full()),
        fmt_x(r.a57_latency_full() / r.omu_latency_full()),
    );
    println!("(b) throughput (FPS)        [real-time requirement: 30 FPS]");
    bar("Arm A57 CPU", r.a57_fps(), 70.0);
    bar("Intel i9 CPU", r.i9_fps(), 70.0);
    bar("OMU accelerator", r.omu_fps(), 70.0);
    println!();
}

/// Fig. 10: runtime breakdown, i9 CPU vs OMU accelerator.
pub fn print_fig10(runs: &[DatasetRun]) {
    println!("Fig. 10 — runtime breakdown, i9 CPU vs OMU accelerator (measured)");
    let mut t = TextTable::new([
        "dataset",
        "platform",
        "Update Leaf",
        "Update Parents",
        "Node Prune/Expand",
    ]);
    for r in runs {
        // CPU shares, renormalized without ray casting (Fig. 10 shows the
        // three map-update categories).
        let s = r.i9().shares();
        let rest = s[1] + s[2] + s[3];
        t.row([
            r.kind.name().to_owned(),
            "i9 CPU".to_owned(),
            format!("{:>3.0} %", s[1] / rest * 100.0),
            format!("{:>3.0} %", s[2] / rest * 100.0),
            format!("{:>3.0} %", s[3] / rest * 100.0),
        ]);
        let a = r.accel.breakdown_shares;
        t.row([
            r.kind.name().to_owned(),
            "OMU acc.".to_owned(),
            format!("{:>3.0} %", a[0] * 100.0),
            format!("{:>3.0} %", a[1] * 100.0),
            format!("{:>3.0} %", a[2] * 100.0),
        ]);
    }
    println!("{t}");
    let max_prune = runs
        .iter()
        .map(|r| r.accel.breakdown_shares[2])
        .fold(0.0, f64::max);
    println!(
        "accelerator node prune/expand share stays at {:.0} % max (paper: less than 20 %)\n",
        max_prune * 100.0
    );
}

fn bar(label: &str, value: f64, full_scale: f64) {
    let width = 46.0;
    let n = ((value / full_scale) * width).round().clamp(1.0, width) as usize;
    println!("    {label:<16} {:<46} {}", "#".repeat(n), fmt_f(value));
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_prints() {
        // Static content; just exercise the printer.
        super::print_table1();
    }
}
