//! The harness's tiny command-line convention.
//!
//! Every reproduction binary accepts:
//!
//! - `--scale X` — run `X` fraction of each dataset's scans (results are
//!   linearly extrapolated to full-dataset estimates);
//! - `--full` — run every scan (equivalent to `--scale 1`);
//! - `--engine {scalar,batched,parallel,sharded[:N]}` — which update
//!   engine drives both the software baseline and the accelerator model
//!   (default `batched`; `scalar` reproduces the paper's stock-OctoMap
//!   shape). Engine parsing lives in [`omu_map::Engine`], the same value
//!   the `omu::map` facade dispatches on;
//! - the `OMU_SCALE` environment variable as a default scale.
//!
//! Without any of these, per-dataset default scales keep the whole
//! `repro_all` run in the minutes range.

use omu_map::Engine;

/// Options shared by the reproduction binaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOptions {
    /// Scan-count scale override (`None` = per-dataset defaults).
    pub scale: Option<f64>,
    /// Update engine for baseline and accelerator runs.
    pub engine: Engine,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            scale: None,
            engine: Engine::Batched,
        }
    }
}

impl RunOptions {
    /// Parses `std::env::args()` and `OMU_SCALE`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1), std::env::var("OMU_SCALE").ok())
    }

    /// Parses an explicit argument list (testable core of
    /// [`RunOptions::from_env`]).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse<I: IntoIterator<Item = String>>(args: I, env_scale: Option<String>) -> Self {
        let mut scale = env_scale.map(|s| {
            s.parse::<f64>()
                .unwrap_or_else(|_| panic!("OMU_SCALE must be a number, got {s:?}"))
        });
        let mut engine = Engine::Batched;
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--full" => scale = Some(1.0),
                "--scale" => {
                    let v = it.next().expect("--scale requires a value");
                    scale = Some(
                        v.parse::<f64>()
                            .unwrap_or_else(|_| panic!("--scale must be a number, got {v:?}")),
                    );
                }
                "--engine" => {
                    let v = it.next().expect("--engine requires a value");
                    engine = v.parse::<Engine>().unwrap_or_else(|e| panic!("{e}"));
                }
                other => {
                    panic!("unknown argument {other:?} (expected --scale X, --full or --engine E)")
                }
            }
        }
        if let Some(s) = scale {
            assert!(s > 0.0 && s <= 1.0, "scale must be in (0, 1], got {s}");
        }
        RunOptions { scale, engine }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_none_scale_and_batched_engine() {
        let o = RunOptions::parse(std::iter::empty(), None);
        assert_eq!(o.scale, None);
        assert_eq!(o.engine, Engine::Batched);
    }

    #[test]
    fn scale_flag_parses() {
        let o = RunOptions::parse(["--scale".to_owned(), "0.25".to_owned()], None);
        assert_eq!(o.scale, Some(0.25));
    }

    #[test]
    fn engine_flag_parses_all_variants() {
        for (flag, engine) in [
            ("scalar", Engine::Scalar),
            ("batched", Engine::Batched),
            ("parallel", Engine::Parallel),
            ("sharded", Engine::Sharded { shards: 8 }),
            ("sharded:4", Engine::Sharded { shards: 4 }),
        ] {
            let o = RunOptions::parse(["--engine".to_owned(), flag.to_owned()], None);
            assert_eq!(o.engine, engine, "--engine {flag}");
        }
    }

    #[test]
    fn full_flag_wins_over_env() {
        let o = RunOptions::parse(["--full".to_owned()], Some("0.1".to_owned()));
        assert_eq!(o.scale, Some(1.0));
    }

    #[test]
    fn env_scale_used_as_default() {
        let o = RunOptions::parse(std::iter::empty(), Some("0.5".to_owned()));
        assert_eq!(o.scale, Some(0.5));
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_arguments_rejected() {
        let _ = RunOptions::parse(["--bogus".to_owned()], None);
    }

    #[test]
    #[should_panic(expected = "unknown engine")]
    fn unknown_engine_rejected() {
        let _ = RunOptions::parse(["--engine".to_owned(), "hyper".to_owned()], None);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn out_of_range_scale_rejected() {
        let _ = RunOptions::parse(["--scale".to_owned(), "2.0".to_owned()], None);
    }
}
