//! The evaluation harness: everything the table/figure reproduction
//! binaries share.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! OMU paper (see DESIGN.md § 5 for the index); this library provides:
//!
//! - [`runner`] — executes one dataset through the instrumented software
//!   baseline *and* the accelerator model, with linear extrapolation from
//!   scaled runs to full-dataset estimates.
//! - [`table`] — plain-text table rendering for paper-vs-measured output.
//! - [`args`] — the tiny `--scale` / `--full` / `--engine` command-line
//!   convention.
//!
//! Run everything at once with `cargo run --release -p omu-bench --bin
//! repro_all`.

pub mod args;
pub mod reports;
pub mod runner;
pub mod table;

pub use args::RunOptions;
pub use runner::{run_all, run_dataset, run_dataset_with_engine, DatasetRun};
pub use table::TextTable;
