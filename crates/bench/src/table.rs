//! Minimal aligned-text tables for harness output.

use std::fmt;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use omu_bench::TextTable;
///
/// let mut t = TextTable::new(["metric", "paper", "measured"]);
/// t.row(["latency (s)", "16.8", "17.1"]);
/// let s = t.to_string();
/// assert!(s.contains("latency"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    write!(f, "| {:<w$} ", cell, w = widths[i])?;
                } else {
                    write!(f, "| {:>w$} ", cell, w = widths[i])?;
                }
            }
            writeln!(f, "|")
        };
        let sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            for w in &widths {
                write!(f, "+{}", "-".repeat(w + 2))?;
            }
            writeln!(f, "+")
        };
        sep(f)?;
        write_row(f, &self.headers)?;
        sep(f)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        sep(f)?;
        let _ = cols;
        Ok(())
    }
}

/// Formats a float with engineering-friendly precision.
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats a ratio as `N.N×`.
pub fn fmt_x(v: f64) -> String {
    format!("{:.1}x", v)
}

/// Formats a share as a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.0}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["a", "bee"]);
        t.row(["longer-cell", "1"]);
        t.row(["x", "22"]);
        let s = t.to_string();
        assert!(s.contains("| longer-cell |"));
        assert!(s.lines().count() >= 6);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn float_formatting_rules() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(5.234), "5.23");
        assert_eq!(fmt_f(62.37), "62.4");
        assert_eq!(fmt_f(1234.5), "1234"); // {:.0} rounds half-to-even
        assert_eq!(fmt_x(12.82), "12.8x");
        assert_eq!(fmt_pct(0.61), "61%");
    }
}
