//! Measures the concurrent serving path — epoch-pinned snapshot reads
//! under a live writer — and writes `BENCH_service.json` (in the current
//! directory).
//!
//! Three stages are reported:
//!
//! - **read_path** — the guard stage: the same randomized voxel probes
//!   through the tree's direct `&self` read path vs through a pinned
//!   [`Snapshot`](omu_octree::Snapshot). The snapshot rides the same
//!   sibling-row arena (shared chunk tables, no copies on the read
//!   side), so its single-reader throughput must stay within a few
//!   percent of the direct path; CI fails the build below 0.9×.
//! - **publish** — snapshot-publish latency on a growing map: one
//!   publish per integrated scan, holding the latest snapshot pinned the
//!   whole time (the serving steady state), so every scan's writes pay
//!   the row-COW freight. The JSON records the mean publish latency and
//!   the rows copied per epoch.
//! - **service** — [`MapService`](omu_map::MapService) end to end: the
//!   writer thread streams the corridor dataset while 1/2/4/8 readers on
//!   the service's reader pool hammer freshly-grabbed snapshots with
//!   occupancy batches. Aggregate reader throughput is the figure; the
//!   writer is never blocked by readers (and vice versa), so it should
//!   scale with cores until memory bandwidth saturates.
//!
//! Usage: `cargo run --release -p omu-bench --bin bench_service
//! [-- --scale 0.1]`.

use std::sync::Arc;
use std::time::Instant;

use omu_bench::RunOptions;
use omu_datasets::DatasetKind;
use omu_geometry::{Occupancy, Scan, VoxelKey};
use omu_map::{MapBuilder, MapService};
use omu_octree::OctreeF32;
use omu_raycast::IntegrationMode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Probe keys per batch (uniform over the mapped bounding box).
const PROBE_KEYS: usize = 100_000;
/// Read-path repetitions per timed run.
const READ_REPS: usize = 10;
/// Per-reader snapshot-grab + full-batch probe repetitions.
const SERVICE_REPS: usize = 20;
/// Dataset passes the service writer streams during the reader stage.
const WRITER_PASSES: usize = 4;
/// Dataset passes for the publish-latency stage.
const PUBLISH_PASSES: usize = 5;

struct Measurement {
    stage: &'static str,
    engine: String,
    probes: u64,
    seconds: f64,
}

impl Measurement {
    fn probes_per_sec(&self) -> f64 {
        self.probes as f64 / self.seconds
    }
}

/// Best-of-5 timing of `run`, which returns the probe count.
fn measure(stage: &'static str, engine: &str, mut run: impl FnMut() -> u64) -> Measurement {
    let mut best: Option<Measurement> = None;
    for _ in 0..5 {
        let start = Instant::now();
        let probes = run();
        let seconds = start.elapsed().as_secs_f64();
        let m = Measurement {
            stage,
            engine: engine.to_owned(),
            probes,
            seconds,
        };
        if best.as_ref().is_none_or(|b| m.seconds < b.seconds) {
            best = Some(m);
        }
    }
    best.expect("five repetitions ran")
}

fn json_entry(m: &Measurement) -> String {
    format!(
        concat!(
            "    {{ \"stage\": \"{}\", \"engine\": \"{}\", \"probes\": {}, ",
            "\"seconds\": {:.6}, \"probes_per_sec\": {:.0} }}"
        ),
        m.stage,
        m.engine,
        m.probes,
        m.seconds,
        m.probes_per_sec(),
    )
}

fn main() {
    let opts = RunOptions::from_env();
    let kind = DatasetKind::Fr079Corridor;
    let scale = opts.scale.unwrap_or(0.1);
    let dataset = kind.build_scaled(scale);
    let spec = *dataset.spec();
    let scans: Vec<Scan> = dataset.scans().collect();
    eprintln!(
        "corridor @ scale {scale}: {} scans, resolution {} m",
        scans.len(),
        spec.resolution
    );

    // Build the corridor map once for the read-path stage.
    let mut tree = OctreeF32::new(spec.resolution).expect("valid resolution");
    tree.set_integration_mode(IntegrationMode::Raywise);
    tree.set_max_range(Some(spec.max_range));
    for scan in &scans {
        tree.insert_scan_batched(scan)
            .expect("scans stay in the map");
    }
    eprintln!("map built: {} nodes", tree.num_nodes());

    // Randomized probes over the mapped bounding box (collision checks
    // arrive unsorted), same construction as the query-path bench.
    let (lo, hi) = tree
        .snapshot()
        .iter()
        .fold((u16::MAX, u16::MIN), |(lo, hi), &(k, _, _)| {
            (lo.min(k.x).min(k.y).min(k.z), hi.max(k.x).max(k.y).max(k.z))
        });
    let mut rng = StdRng::seed_from_u64(0x51AB);
    let keys: Vec<VoxelKey> = (0..PROBE_KEYS)
        .map(|_| {
            VoxelKey::new(
                rng.random_range(lo..=hi),
                rng.random_range(lo..=hi),
                rng.random_range(lo..=hi),
            )
        })
        .collect();

    let mut results = Vec::new();

    // --- read_path: direct `&self` reads vs pinned-snapshot reads. ---
    results.push(measure("read_path", "direct", || {
        let mut occupied = 0usize;
        for _ in 0..READ_REPS {
            for &k in &keys {
                if tree.occupancy(k) == Occupancy::Occupied {
                    occupied += 1;
                }
            }
        }
        std::hint::black_box(occupied);
        (READ_REPS * keys.len()) as u64
    }));
    let snap = tree.publish_snapshot();
    results.push(measure("read_path", "snapshot", || {
        let mut occupied = 0usize;
        for _ in 0..READ_REPS {
            for &k in &keys {
                if snap.occupancy(k) == Occupancy::Occupied {
                    occupied += 1;
                }
            }
        }
        std::hint::black_box(occupied);
        (READ_REPS * keys.len()) as u64
    }));
    drop(snap);
    let rate_of = |results: &[Measurement], stage: &str, engine: &str| {
        results
            .iter()
            .find(|m| m.stage == stage && m.engine == engine)
            .expect("measured stage/engine")
            .probes_per_sec()
    };
    let direct_rate = rate_of(&results, "read_path", "direct");
    let snapshot_rate = rate_of(&results, "read_path", "snapshot");
    let snapshot_vs_direct = snapshot_rate / direct_rate;
    eprintln!("snapshot/direct single-reader read throughput: {snapshot_vs_direct:.3}x");

    // --- publish: latency of publish_snapshot in the serving steady
    // state (latest snapshot held pinned while the writer streams). ---
    let (publish_ns, publishes, rows_copied_per_epoch) = {
        let mut tree = OctreeF32::new(spec.resolution).expect("valid resolution");
        tree.set_integration_mode(IntegrationMode::Raywise);
        tree.set_max_range(Some(spec.max_range));
        let mut latest = None;
        let mut publish_ns_total = 0u128;
        let mut publishes = 0u64;
        for _ in 0..PUBLISH_PASSES {
            for scan in &scans {
                tree.insert_scan_batched(scan)
                    .expect("scans stay in the map");
                let start = Instant::now();
                let snap = tree.publish_snapshot();
                publish_ns_total += start.elapsed().as_nanos();
                publishes += 1;
                latest = Some(snap);
            }
        }
        drop(latest);
        let stats = tree.snapshot_stats();
        let copied = stats.node_rows_copied + stats.leaf_rows_copied;
        (
            publish_ns_total as f64 / publishes as f64,
            publishes,
            copied as f64 / stats.snapshots_published as f64,
        )
    };
    eprintln!(
        "publish latency: {publish_ns:.0} ns mean over {publishes} publishes, \
         {rows_copied_per_epoch:.1} rows copied per epoch"
    );

    // --- service: MapService writer streaming, 1/2/4/8 readers. ---
    let mut service_publishes = 0u64;
    for readers in [1usize, 2, 4, 8] {
        let service =
            MapService::spawn(MapBuilder::new(spec.resolution).max_range(Some(spec.max_range)))
                .expect("service spawns");
        // Seed the first epoch so every reader starts on a real map.
        service.ingest(scans[0].clone()).expect("ingest");
        service.flush().expect("seed flush");
        // Queue the streaming writer workload; the writer thread drains
        // it while the readers run.
        for _ in 0..WRITER_PASSES {
            for scan in &scans {
                service.ingest(scan.clone()).expect("ingest");
            }
        }
        let pool = Arc::clone(service.reader_pool());
        let service_ref = &service;
        let keys_ref = &keys;
        let start = Instant::now();
        pool.scope(|s| {
            for _ in 0..readers {
                s.spawn(move || {
                    let mut occupied = 0usize;
                    for _ in 0..SERVICE_REPS {
                        let snap = service_ref.snapshot();
                        occupied += snap
                            .occupancy_batch_keys(keys_ref)
                            .iter()
                            .filter(|&&o| o == Occupancy::Occupied)
                            .count();
                    }
                    std::hint::black_box(occupied);
                });
            }
        });
        let seconds = start.elapsed().as_secs_f64();
        results.push(Measurement {
            stage: "service",
            engine: format!("readers_{readers}"),
            probes: (readers * SERVICE_REPS * keys.len()) as u64,
            seconds,
        });
        service.flush().expect("drain writer");
        let stats = service.service_stats();
        service_publishes = stats.publishes;
        eprintln!(
            "readers_{readers}: {:.0} probes/s aggregate ({} scans ingested, \
             {} publishes)",
            (readers * SERVICE_REPS * keys.len()) as f64 / seconds,
            stats.scans_ingested,
            stats.publishes,
        );
        service.shutdown().expect("clean shutdown");
    }

    for m in &results {
        eprintln!(
            "  {:<10} {:<10} {:>12.0} probes/s  ({:.3} s)",
            m.stage,
            m.engine,
            m.probes_per_sec(),
            m.seconds
        );
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"service\",\n",
            "  \"dataset\": \"{}\",\n",
            "  \"scale\": {},\n",
            "  \"scans\": {},\n",
            "  \"resolution_m\": {},\n",
            "  \"probe_keys\": {},\n",
            "  \"snapshot_reader_vs_direct\": {:.4},\n",
            "  \"publish_latency_ns\": {:.0},\n",
            "  \"publishes\": {},\n",
            "  \"rows_copied_per_epoch\": {:.2},\n",
            "  \"service_publishes\": {},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        kind.name(),
        scale,
        scans.len(),
        spec.resolution,
        keys.len(),
        snapshot_vs_direct,
        publish_ns,
        publishes,
        rows_copied_per_epoch,
        service_publishes,
        results
            .iter()
            .map(json_entry)
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    println!("{json}");
    eprintln!("wrote BENCH_service.json");
}
