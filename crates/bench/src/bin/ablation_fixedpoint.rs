//! Ablation: fixed-point width for the node probability field.
//!
//! The paper's 64-bit entry spends 16 bits on the log-odds probability and
//! calls the format lossless. This study quantifies that choice: for each
//! candidate fractional width, random hit/miss observation sequences are
//! accumulated in float and in quantized arithmetic, and the final
//! occupancy classifications are compared. The 10-fraction-bit Q5.10
//! format used by the reproduction misclassifies only observation
//! sequences that end within half an LSB of the threshold.

use omu_bench::table::fmt_f;
use omu_bench::TextTable;
use omu_geometry::{Occupancy, OccupancyParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Quantized accumulation at `frac_bits` fractional bits, mirroring the
/// PE's saturating add + clamp datapath.
fn run_quantized(seq: &[bool], params: &OccupancyParams, frac_bits: u32) -> f64 {
    let scale = (1u32 << frac_bits) as f32;
    let q = |x: f32| (x * scale).round().clamp(i16::MIN as f32, i16::MAX as f32) as i32;
    let (hit, miss) = (q(params.hit), q(params.miss));
    let (lo, hi) = (q(params.clamp_min), q(params.clamp_max));
    let mut v: i32 = 0;
    for &h in seq {
        v = (v + if h { hit } else { miss }).clamp(lo, hi);
    }
    v as f64 / scale as f64
}

fn run_float(seq: &[bool], params: &OccupancyParams) -> f32 {
    let mut v = 0.0f32;
    for &h in seq {
        v = (v + if h { params.hit } else { params.miss })
            .clamp(params.clamp_min, params.clamp_max);
    }
    v
}

fn main() {
    let params = OccupancyParams::default();
    let mut rng = StdRng::seed_from_u64(2022);
    let trials = 200_000;

    // Random observation sequences of random length and hit bias.
    let sequences: Vec<Vec<bool>> = (0..trials)
        .map(|_| {
            let len = rng.random_range(1..40);
            let bias = rng.random_range(0.2..0.8);
            (0..len)
                .map(|_| rng.random_range(0.0..1.0) < bias)
                .collect()
        })
        .collect();
    let float_class: Vec<Occupancy> = sequences
        .iter()
        .map(|s| params.classify(run_float(s, &params)))
        .collect();

    println!("fixed-point width study ({trials} random observation sequences):");
    let mut t = TextTable::new([
        "frac bits",
        "format",
        "LSB (log-odds)",
        "misclassified",
        "rate",
    ]);
    for frac_bits in [4u32, 6, 8, 10, 12] {
        let int_bits = 15 - frac_bits;
        let mut wrong = 0u64;
        for (seq, &fc) in sequences.iter().zip(&float_class) {
            let qv = run_quantized(seq, &params, frac_bits);
            let qc = if qv >= params.occupancy_threshold as f64 {
                Occupancy::Occupied
            } else {
                Occupancy::Free
            };
            if qc != fc {
                wrong += 1;
            }
        }
        t.row([
            frac_bits.to_string(),
            format!("Q{int_bits}.{frac_bits}"),
            fmt_f(1.0 / (1u32 << frac_bits) as f64),
            wrong.to_string(),
            format!("{:.4} %", 100.0 * wrong as f64 / trials as f64),
        ]);
    }
    println!("{t}");
    println!(
        "the reproduction (and the paper's 16-bit field) uses Q5.10; wider fractions only\n\
         chase observation sequences that terminate within half an LSB of the threshold"
    );
}
