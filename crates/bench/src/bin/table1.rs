//! Regenerates Table I (qualitative accelerator comparison).
fn main() {
    omu_bench::reports::print_table1();
}
