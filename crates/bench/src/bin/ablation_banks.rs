//! Ablation: memory-bank parallelism (the paper's 8x memory-bandwidth
//! claim, Section IV-B).
//!
//! With fewer banks the 8-children row of a parent update / prune check
//! takes multiple cycles instead of one. The functional tree is
//! unchanged; the PE timing models the serialized row access:
//! `parent_per_level = compute + write + ceil(8 / banks)` read cycles.
use omu_bench::table::{fmt_f, fmt_x};
use omu_bench::{runner::default_scale, RunOptions, TextTable};
use omu_core::{run_accelerator_with_engine, OmuConfig, PeTiming};
use omu_datasets::DatasetKind;

fn main() {
    let opts = RunOptions::from_env();
    let kind = DatasetKind::Fr079Corridor;
    let scale = opts.scale.unwrap_or(default_scale(kind) / 2.0);
    let dataset = kind.build_scaled(scale);
    let spec = *dataset.spec();

    println!(
        "bank-parallelism ablation on {} (scale {scale}, {} engine):",
        kind.name(),
        opts.engine
    );
    let mut t = TextTable::new(["banks", "row-read cycles", "latency (s)", "slowdown vs 8"]);
    let mut batch8 = None;
    for banks in [8usize, 4, 2, 1] {
        let row_read_cycles = (8 / banks) as u64;
        let timing = PeTiming {
            // Default: 1-cycle row read + compute + write = 3.
            parent_per_level: 2 + row_read_cycles,
            expand_action: 2 + row_read_cycles,
            ..PeTiming::default()
        };
        let config = OmuConfig::builder()
            .rows_per_bank(1 << 16)
            .resolution(spec.resolution)
            .max_range(Some(spec.max_range))
            .timing(timing)
            .build()
            .unwrap();
        let (_, s) =
            run_accelerator_with_engine(config, dataset.scans(), opts.engine.update_engine())
                .unwrap();
        let base = *batch8.get_or_insert(s.latency_s);
        t.row([
            banks.to_string(),
            row_read_cycles.to_string(),
            fmt_f(s.latency_s),
            fmt_x(s.latency_s / base),
        ]);
    }
    println!("{t}");
    println!("8 parallel banks serve all children in one cycle (paper Section IV-B)");
}
