//! Regenerates Fig. 3 (CPU runtime breakdown per dataset).
use omu_bench::{reports, run_all, RunOptions};
fn main() {
    let runs = run_all(RunOptions::from_env());
    reports::print_fig3(&runs);
}
