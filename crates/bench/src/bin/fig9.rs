//! Regenerates Fig. 9 (FR-079 latency and throughput bars).
use omu_bench::{reports, run_all, RunOptions};
fn main() {
    let runs = run_all(RunOptions::from_env());
    reports::print_fig9(&runs);
}
